"""Zero-copy ``mmap=True`` snapshot loading.

A mapped load must be indistinguishable from a copying load at the
query level (fingerprint and answer identity under both kernels) while
actually deferring work: label arrays are views over the mapped file
and all three serialized graphs stay lazy until something outside the
query path (e.g. fingerprinting) forces a decode.
"""

from __future__ import annotations

import random

import pytest

from repro.core.ct_index import CTIndex
from repro.core.serialization import (
    index_fingerprint,
    load_ct_index,
    load_ct_index_binary,
    save_ct_index,
    save_ct_index_binary,
)
from repro.exceptions import SerializationError
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.kernels import numpy_available
from repro.serving import QueryEngine
from repro.storage.mapped import LazyGraph, MappedSnapshot


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    cfg = CorePeripheryConfig(core_size=30, community_count=5, fringe_size=90)
    graph = core_periphery_graph(cfg, seed=17)
    index = CTIndex.build(graph, 5, backend="flat")
    path = tmp_path_factory.mktemp("mmap") / "index.ctsnap"
    save_ct_index_binary(index, path)
    return graph, index, path


def _lazy_graphs(index):
    return [index.graph, index.reduction.reduced, index.core_index.graph]


class TestMappedIdentity:
    def test_fingerprint_matches_copy_load(self, saved):
        _, index, path = saved
        mapped = load_ct_index_binary(path, mmap=True)
        copied = load_ct_index_binary(path)
        assert (
            index_fingerprint(mapped)
            == index_fingerprint(copied)
            == index_fingerprint(index)
        )

    @pytest.mark.parametrize(
        "kernel",
        ["python"]
        + (["numpy"] if numpy_available() else []),
    )
    def test_answers_match_copy_load(self, saved, kernel):
        graph, _, path = saved
        mapped = QueryEngine(load_ct_index_binary(path, mmap=True), kernel=kernel)
        copied = QueryEngine(load_ct_index_binary(path), kernel=kernel)
        rng = random.Random(3)
        pairs = [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(200)]
        assert mapped.query_batch(pairs) == copied.query_batch(pairs)
        for s in (0, graph.n // 2, graph.n - 1):
            assert mapped.query_from(s, range(graph.n)) == copied.query_from(
                s, range(graph.n)
            )

    def test_generic_loader_and_api_accept_mmap(self, saved):
        _, index, path = saved
        via_generic = load_ct_index(path, mmap=True)
        assert index_fingerprint(via_generic) == index_fingerprint(index)
        import repro

        via_api = repro.load(path, mmap=True)
        assert index_fingerprint(via_api) == index_fingerprint(index)


class TestLaziness:
    def test_snapshot_source_kept_alive(self, saved):
        _, _, path = saved
        mapped = load_ct_index_binary(path, mmap=True)
        assert isinstance(mapped.snapshot_source, MappedSnapshot)
        assert mapped.snapshot_source.size == path.stat().st_size
        # The copying load never holds a mapping.
        assert load_ct_index_binary(path).snapshot_source is None

    def test_graph_sections_start_lazy(self, saved):
        _, _, path = saved
        mapped = load_ct_index_binary(path, mmap=True)
        for lazy in _lazy_graphs(mapped):
            assert isinstance(lazy, LazyGraph)
            assert not lazy.materialized

    def test_queries_never_materialize_graphs(self, saved):
        graph, _, path = saved
        mapped = load_ct_index_binary(path, mmap=True)
        engine = QueryEngine(mapped, cache_capacity=64)
        rng = random.Random(5)
        engine.query_batch(
            [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(100)]
        )
        engine.query_from(1, range(graph.n))
        engine.query(0, graph.n - 1)
        for lazy in _lazy_graphs(mapped):
            assert not lazy.materialized

    def test_materialized_graph_matches_copy_load(self, saved):
        _, _, path = saved
        mapped = load_ct_index_binary(path, mmap=True)
        copied = load_ct_index_binary(path)
        lazy = mapped.graph
        # Touching adjacency forces the decode thunk exactly once.
        assert lazy.m == copied.graph.m
        assert lazy.materialized
        for v in range(lazy.n):
            assert list(lazy.neighbors(v)) == list(copied.graph.neighbors(v))

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_as_ndarray_views_the_mapped_file(self, saved):
        import numpy as np

        from repro.kernels.views import as_ndarray

        _, _, path = saved
        mapped = load_ct_index_binary(path, mmap=True)
        hub_dists = mapped.core_index.labels.csr_arrays()[3]
        dists = as_ndarray(hub_dists)
        assert isinstance(dists, np.ndarray)
        # A view over the read-only map cannot own (or copy) its buffer.
        assert not dists.flags["OWNDATA"]
        assert not dists.flags["WRITEABLE"]


class TestRejections:
    def test_mmap_requires_flat_backend(self, saved):
        _, _, path = saved
        with pytest.raises(SerializationError, match="backend='flat'"):
            load_ct_index_binary(path, backend="dict", mmap=True)

    def test_mmap_rejects_json_documents(self, saved, tmp_path):
        _, index, _ = saved
        json_path = tmp_path / "index.json"
        save_ct_index(index, json_path)
        with pytest.raises(SerializationError, match="binary snapshot"):
            load_ct_index(json_path, mmap=True)

    def test_weighted_graph_round_trips_mapped(self, tmp_path):
        graph = random_weighted(gnp_graph(24, 0.2, seed=9), 1, 6, seed=10)
        index = CTIndex.build(graph, 4, backend="flat")
        path = tmp_path / "weighted.ctsnap"
        save_ct_index_binary(index, path)
        mapped = load_ct_index_binary(path, mmap=True)
        assert index_fingerprint(mapped) == index_fingerprint(index)
