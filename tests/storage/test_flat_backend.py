"""Backend switching on the built indexes: ``backend=``, ``compact()``,
``to_dict_backend()`` — the dict and flat stores must be observationally
identical behind every entry point."""

from __future__ import annotations

import pytest

from repro.core.ct_index import CTIndex, build_ct_index
from repro.core.serialization import index_fingerprint
from repro.exceptions import IndexConstructionError
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.traversal import all_pairs_distances
from repro.labeling.base import LABEL_BACKENDS, validate_backend
from repro.labeling.pll import build_pll
from repro.labeling.psl import build_psl
from repro.storage.flat_labels import FlatLabelStore
from repro.storage.flat_tree import FlatTreeLabelStore
from repro.storage.sizing import ct_resident_label_bytes


@pytest.fixture(scope="module")
def graph():
    return gnp_graph(30, 0.15, seed=12)


@pytest.fixture(scope="module")
def truth(graph):
    return all_pairs_distances(graph)


def assert_answers(index, graph, truth):
    for s in graph.nodes():
        for t in graph.nodes():
            assert index.distance(s, t) == truth[s][t], (s, t)


class TestBackendArgument:
    def test_backends_registry(self):
        assert LABEL_BACKENDS == ("dict", "flat")
        for backend in LABEL_BACKENDS:
            assert validate_backend(backend) == backend

    @pytest.mark.parametrize("backend", ["csr", "", None, "FLAT"])
    def test_unknown_backend_rejected(self, backend):
        with pytest.raises(IndexConstructionError, match="backend"):
            validate_backend(backend)

    def test_build_rejects_unknown_backend(self, graph):
        with pytest.raises(IndexConstructionError, match="backend"):
            CTIndex.build(graph, 3, backend="csr")
        with pytest.raises(IndexConstructionError, match="backend"):
            build_pll(graph, backend="csr")

    def test_pll_flat_build(self, graph, truth):
        index = build_pll(graph, backend="flat")
        assert index.storage_backend == "flat"
        assert isinstance(index.labels, FlatLabelStore)
        assert_answers(index, graph, truth)

    def test_psl_flat_build(self, graph, truth):
        index = build_psl(graph, backend="flat")
        assert index.storage_backend == "flat"
        assert_answers(index, graph, truth)

    def test_ct_flat_build(self, graph, truth):
        index = CTIndex.build(graph, 4, backend="flat")
        assert index.storage_backend == "flat"
        assert isinstance(index.core_index.labels, FlatLabelStore)
        assert isinstance(index.tree_index.labels, FlatTreeLabelStore)
        assert_answers(index, graph, truth)

    def test_build_ct_index_passthrough(self, graph):
        index = build_ct_index(graph, 4, backend="flat")
        assert index.storage_backend == "flat"


class TestConversion:
    def test_compact_preserves_everything(self, graph, truth):
        index = CTIndex.build(graph, 4)
        before_print = index_fingerprint(index)
        before_entries = index.size_entries()
        index.compact()
        assert index.storage_backend == "flat"
        assert index.size_entries() == before_entries
        assert index_fingerprint(index) == before_print
        assert_answers(index, graph, truth)

    def test_round_trip_back_to_dict(self, graph, truth):
        index = CTIndex.build(graph, 4)
        fingerprint = index_fingerprint(index)
        index.compact().to_dict_backend()
        assert index.storage_backend == "dict"
        assert not isinstance(index.core_index.labels, FlatLabelStore)
        assert index_fingerprint(index) == fingerprint
        assert_answers(index, graph, truth)

    def test_compact_is_idempotent(self, graph):
        index = CTIndex.build(graph, 4, backend="flat")
        core_labels = index.core_index.labels
        index.compact()
        assert index.core_index.labels is core_labels

    def test_to_dict_backend_on_dict_is_noop(self, graph):
        index = CTIndex.build(graph, 4)
        labels = index.core_index.labels
        index.to_dict_backend()
        assert index.core_index.labels is labels

    def test_compact_weighted(self, truth):
        weighted = random_weighted(gnp_graph(20, 0.2, seed=3), 1, 9, seed=4)
        wtruth = all_pairs_distances(weighted)
        index = CTIndex.build(weighted, 3)
        fingerprint = index_fingerprint(index)
        index.compact()
        assert index_fingerprint(index) == fingerprint
        assert_answers(index, weighted, wtruth)

    def test_queries_survive_conversion_mid_stream(self, graph, truth):
        # The extension-label cache must be dropped on conversion, not
        # left pointing at the old store.
        index = CTIndex.build(graph, 4)
        pairs = [(0, graph.n - 1), (1, 2), (5, 17)]
        before = [index.distance(s, t) for s, t in pairs]
        index.compact()
        assert [index.distance(s, t) for s, t in pairs] == before
        index.to_dict_backend()
        assert [index.distance(s, t) for s, t in pairs] == before


class TestResidency:
    def test_flat_labels_are_smaller(self, graph):
        index = CTIndex.build(graph, 4)
        dict_bytes = ct_resident_label_bytes(index)
        index.compact()
        flat_bytes = ct_resident_label_bytes(index)
        assert flat_bytes["total"] < dict_bytes["total"]
        assert flat_bytes["core"] < dict_bytes["core"]
        assert set(flat_bytes) == {"core", "tree", "total"}
        assert flat_bytes["total"] == flat_bytes["core"] + flat_bytes["tree"]
