"""Binary snapshot round-trips: every (save backend × load backend ×
format) combination must reproduce the same index, bit for bit by
fingerprint and answer for answer on queries."""

from __future__ import annotations

import math

import pytest

from repro.core.ct_index import CTIndex
from repro.core.serialization import (
    index_fingerprint,
    is_binary_snapshot,
    load_ct_index,
    load_ct_index_binary,
    save_ct_index,
    save_ct_index_binary,
)
from repro.exceptions import IndexConstructionError, SerializationError
from repro.graphs.generators.primitives import star_graph
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.traversal import all_pairs_distances


@pytest.fixture(scope="module")
def built(tmp_path_factory):
    graph = gnp_graph(30, 0.15, seed=21)
    index = CTIndex.build(graph, 4)
    tmp = tmp_path_factory.mktemp("snap")
    json_path = tmp / "index.json"
    binary_path = tmp / "index.ctsnap"
    save_ct_index(index, json_path)
    save_ct_index_binary(index, binary_path)
    return graph, index, json_path, binary_path


class TestRoundTrip:
    def test_detection(self, built):
        _, _, json_path, binary_path = built
        assert is_binary_snapshot(binary_path)
        assert not is_binary_snapshot(json_path)
        assert not is_binary_snapshot(json_path.parent / "missing.ctsnap")

    def test_binary_answers_match_truth(self, built):
        graph, _, _, binary_path = built
        loaded = load_ct_index_binary(binary_path)
        truth = all_pairs_distances(graph)
        for s in graph.nodes():
            for t in graph.nodes():
                assert loaded.distance(s, t) == truth[s][t], (s, t)

    def test_fingerprint_identical_across_all_load_paths(self, built):
        _, index, json_path, binary_path = built
        fingerprints = {
            index_fingerprint(index),
            index_fingerprint(load_ct_index(json_path)),
            index_fingerprint(load_ct_index(json_path, backend="flat")),
            index_fingerprint(load_ct_index(binary_path)),
            index_fingerprint(load_ct_index_binary(binary_path, backend="dict")),
        }
        assert len(fingerprints) == 1

    def test_autodetect_routes_by_magic(self, built):
        _, _, _, binary_path = built
        # The generic loader must open the snapshot without a format flag.
        loaded = load_ct_index(binary_path)
        assert loaded.storage_backend == "flat"

    def test_load_backend_selection(self, built):
        _, _, _, binary_path = built
        assert load_ct_index_binary(binary_path).storage_backend == "flat"
        assert (
            load_ct_index_binary(binary_path, backend="dict").storage_backend
            == "dict"
        )
        assert (
            load_ct_index(binary_path, backend="dict").storage_backend == "dict"
        )

    def test_unknown_load_backend_rejected(self, built):
        _, _, json_path, binary_path = built
        with pytest.raises(SerializationError, match="backend"):
            load_ct_index_binary(binary_path, backend="csr")
        with pytest.raises(IndexConstructionError, match="backend"):
            load_ct_index(json_path, backend="csr")

    def test_save_from_flat_backend(self, built, tmp_path):
        graph, index, _, binary_path = built
        flat = CTIndex.build(graph, 4, backend="flat")
        path = tmp_path / "fromflat.ctsnap"
        save_ct_index_binary(flat, path)
        assert index_fingerprint(load_ct_index(path)) == index_fingerprint(index)

    def test_build_seconds_persisted(self, built, tmp_path):
        graph, _, _, _ = built
        index = CTIndex.build(graph, 4)
        index.build_seconds = 1.25
        path = tmp_path / "seconds.ctsnap"
        save_ct_index_binary(index, path)
        assert load_ct_index(path).build_seconds == 1.25


class TestWeightedAndSpecial:
    def test_integer_weighted_round_trip(self, tmp_path):
        graph = random_weighted(gnp_graph(18, 0.22, seed=5), 1, 7, seed=6)
        index = CTIndex.build(graph, 3)
        path = tmp_path / "intw.ctsnap"
        save_ct_index_binary(index, path)
        loaded = load_ct_index(path)
        assert index_fingerprint(loaded) == index_fingerprint(index)
        truth = all_pairs_distances(graph)
        for t in graph.nodes():
            assert loaded.distance(0, t) == truth[0][t]

    def test_float_weighted_round_trip(self, tmp_path):
        base = random_weighted(gnp_graph(15, 0.25, seed=7), 1, 5, seed=8)
        from repro.graphs.builder import GraphBuilder

        builder = GraphBuilder(base.n)
        for u, v, w in base.edges():
            builder.add_edge(u, v, w + 0.5)
        graph = builder.build()
        index = CTIndex.build(graph, 3)
        path = tmp_path / "floatw.ctsnap"
        save_ct_index_binary(index, path)
        loaded = load_ct_index(path)
        assert index_fingerprint(loaded) == index_fingerprint(index)
        truth = all_pairs_distances(graph)
        for t in graph.nodes():
            assert loaded.distance(0, t) == truth[0][t]

    def test_infinite_tree_label_round_trips(self, tmp_path):
        index = CTIndex.build(gnp_graph(20, 0.2, seed=6), 3)
        index.to_dict_backend()
        injected = None
        for pos, label in enumerate(index.tree_index.labels):
            if label:
                key = next(iter(label))
                label[key] = math.inf
                injected = (pos, key)
                break
        if injected is None:
            pytest.skip("no tree labels on this build")
        path = tmp_path / "inf.ctsnap"
        save_ct_index_binary(index, path)
        loaded = load_ct_index(path)
        pos, key = injected
        assert loaded.tree_index.labels[pos][key] == math.inf

    def test_reduction_survives(self, tmp_path):
        index = CTIndex.build(star_graph(10), 2)
        path = tmp_path / "star.ctsnap"
        save_ct_index_binary(index, path)
        assert load_ct_index(path).distance(1, 2) == 2

    def test_disconnected_graph_round_trips(self, tmp_path):
        from repro.graphs.builder import GraphBuilder

        builder = GraphBuilder(6)
        builder.add_edge(0, 1)
        builder.add_edge(1, 2)
        builder.add_edge(3, 4)
        graph = builder.build()
        index = CTIndex.build(graph, 2)
        path = tmp_path / "disc.ctsnap"
        save_ct_index_binary(index, path)
        loaded = load_ct_index(path)
        assert loaded.distance(0, 2) == 2
        assert loaded.distance(0, 3) == math.inf
        assert loaded.distance(5, 0) == math.inf

    @pytest.mark.parametrize("bandwidth", [0, 2, 6])
    def test_bandwidth_sweep(self, tmp_path, bandwidth):
        graph = gnp_graph(25, 0.15, seed=30 + bandwidth)
        index = CTIndex.build(graph, bandwidth)
        path = tmp_path / f"bw{bandwidth}.ctsnap"
        save_ct_index_binary(index, path)
        loaded = load_ct_index(path)
        assert loaded.bandwidth == bandwidth
        assert index_fingerprint(loaded) == index_fingerprint(index)
