"""Smoke tests for the ``storage-bench`` driver on a tiny graph."""

from __future__ import annotations

import json

import pytest

from repro.bench.storage_bench import (
    StorageBenchResult,
    record_storage_entry,
    storage_bench_result,
)
from repro.graphs.generators.random_graphs import gnp_graph


@pytest.fixture(scope="module")
def result() -> StorageBenchResult:
    graph = gnp_graph(40, 0.12, seed=17)
    return storage_bench_result(graph, 4, name="smoke", queries=200)


class TestResult:
    def test_verified_before_recording(self, result):
        assert result.verified is True

    def test_shape(self, result):
        assert result.name == "smoke"
        assert result.n == 40
        assert result.bandwidth == 4
        assert result.entries > 0
        assert set(result.resident) == {"dict", "flat"}
        assert result.resident["flat"]["total"] > 0

    def test_flat_is_smaller(self, result):
        assert result.resident_reduction > 1.0

    def test_query_timings_cover_every_kernel(self, result):
        from repro.kernels import numpy_available

        assert set(result.query) == {"dict_us", "flat_python_us", "flat_numpy_us"}
        assert result.query["dict_us"] > 0
        assert result.query["flat_python_us"] > 0
        if numpy_available():
            assert result.query["flat_numpy_us"] > 0
        else:
            assert result.query["flat_numpy_us"] is None

    def test_entry_is_json_ready(self, result):
        entry = result.entry()
        json.dumps(entry)  # must not contain non-serializable values
        assert entry["dataset"] == "smoke"
        assert entry["answers_verified"] is True
        assert entry["resident_reduction"] == round(result.resident_reduction, 3)

    def test_row_columns(self, result):
        row = result.row()
        for column in (
            "dataset",
            "n",
            "entries",
            "dict_kb",
            "flat_kb",
            "resident_x",
            "json_ms",
            "bin_ms",
            "load_x",
            "dict_us",
            "fpy_us",
            "fnp_us",
            "verified",
        ):
            assert column in row


class TestHistoryFile:
    def test_appends_entries(self, result, tmp_path):
        path = tmp_path / "BENCH_storage.json"
        record_storage_entry(result, path)
        record_storage_entry(result, path)
        document = json.loads(path.read_text())
        assert document["schema"] == 2
        assert len(document["entries"]) == 2
        assert document["entries"][0]["dataset"] == "smoke"
        assert document["entries"][0]["schema"] == 2
        assert "recorded_at" in document["entries"][0]

    def test_schema_1_history_is_kept_and_upgraded(self, result, tmp_path):
        # Entries written by the schema-1 driver survive untouched next
        # to new schema-2 entries; the document-level schema moves to 2.
        path = tmp_path / "BENCH_storage.json"
        old_entry = {"dataset": "legacy", "query_us": {"dict_us": 1.0, "flat_us": 2.0}}
        path.write_text(json.dumps({"schema": 1, "entries": [old_entry]}))
        record_storage_entry(result, path)
        document = json.loads(path.read_text())
        assert document["schema"] == 2
        assert document["entries"][0] == old_entry
        assert document["entries"][1]["dataset"] == "smoke"

    def test_corrupt_history_starts_fresh(self, result, tmp_path):
        path = tmp_path / "BENCH_storage.json"
        path.write_text("{ not json")
        record_storage_entry(result, path)
        document = json.loads(path.read_text())
        assert len(document["entries"]) == 1


class TestExperimentRegistration:
    def test_storage_driver_registered(self):
        from repro.bench.experiments import ExperimentCatalog

        assert "storage" in ExperimentCatalog().drivers
