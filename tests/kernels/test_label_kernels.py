"""NumPy 2-hop label kernels: answer identity, views, batch shapes.

Everything in this module requires NumPy and skips cleanly without it
(the dispatch layer's NumPy-less behavior lives in ``test_dispatch``).
Identity is always checked against the *scalar* path — ``merge_
intersection`` / ``HubLabeling.query`` — which the differential suite
in turn pins against BFS/Dijkstra ground truth.
"""

from __future__ import annotations

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.graph import INF
from repro.kernels.label_kernels import (
    NumpyLabelKernel,
    intersect_runs_min,
    weight_from_float,
    weights_from_floats,
)
from repro.kernels.views import as_ndarray, label_views
from repro.labeling.pll import build_pll
from repro.storage.flat_labels import FlatLabelStore, merge_intersection

SETTINGS = settings(max_examples=60, deadline=None)


@st.composite
def sorted_runs(draw, max_len: int = 10, universe: int = 25):
    ranks = sorted(draw(st.sets(st.integers(0, universe - 1), max_size=max_len)))
    dists = [draw(st.integers(0, 40)) for _ in ranks]
    return ranks, dists


def as_run(ranks, dists):
    return (
        np.asarray(ranks, dtype=np.int64),
        np.asarray(dists, dtype=np.int64),
    )


# ----------------------------------------------------------------------
# intersect_runs_min == merge_intersection
# ----------------------------------------------------------------------


class TestIntersect:
    @SETTINGS
    @given(run_a=sorted_runs(), run_b=sorted_runs())
    def test_matches_scalar_merge(self, run_a, run_b):
        expected = merge_intersection(*run_a, *run_b)
        got = intersect_runs_min(*as_run(*run_a), *as_run(*run_b))
        assert weight_from_float(got, integral=True) == expected

    def test_empty_runs_are_unreachable(self):
        empty = as_run([], [])
        full = as_run([0, 3], [1, 2])
        assert intersect_runs_min(*empty, *full) == np.inf
        assert intersect_runs_min(*full, *empty) == np.inf
        assert intersect_runs_min(*empty, *empty) == np.inf

    def test_match_beyond_the_longer_run_is_rejected(self):
        # Every rank of the shorter run searchsorts past the end of the
        # longer one — the clamp-to-slot-0 trick must not fabricate a hit.
        short = as_run([90, 95], [1, 1])
        long = as_run([0, 1, 2, 3], [1, 1, 1, 1])
        assert intersect_runs_min(*short, *long) == np.inf

    def test_shared_boundary_hubs(self):
        # Shared hub at the very start and very end of both runs.
        a = as_run([0, 9], [4, 1])
        b = as_run([0, 5, 9], [3, 2, 2])
        assert intersect_runs_min(*a, *b) == 3  # min(4+3, 1+2)


# ----------------------------------------------------------------------
# Views
# ----------------------------------------------------------------------


class TestViews:
    def test_views_are_cached_on_the_store(self):
        index = build_pll(gnp_graph(20, 0.2, seed=1), backend="flat")
        store = index.labels
        assert label_views(store) is label_views(store)

    def test_views_are_read_only_and_zero_copy(self):
        values = array("q", [3, 1, 4, 1, 5])
        view = as_ndarray(values)
        assert not view.flags.writeable
        assert view.tolist() == [3, 1, 4, 1, 5]
        with pytest.raises(ValueError):
            view[0] = 9

    def test_narrow_distance_arrays_widen_to_int64(self):
        # A v4 binary snapshot stores the narrowest sufficient typecode;
        # the kernel views must widen so d_s + d_t cannot overflow it.
        store = FlatLabelStore.from_arrays(
            [0, 1], [0, 1, 2], array("I", [0, 0]), array("b", [120, 125])
        )
        views = label_views(store)
        assert views.dists.dtype == np.int64
        assert views.integral
        kernel = NumpyLabelKernel(store)
        assert kernel.query(0, 1) == 245  # would overflow int8

    def test_float_stores_are_not_integral(self):
        store = FlatLabelStore.from_arrays(
            [0, 1], [0, 1, 2], array("I", [0, 0]), array("d", [0.5, 1.5])
        )
        views = label_views(store)
        assert not views.integral
        assert views.dists.dtype == np.float64


# ----------------------------------------------------------------------
# Kernel == scalar store on built indexes
# ----------------------------------------------------------------------


def pll_flat(graph):
    index = build_pll(graph, backend="flat")
    return index, NumpyLabelKernel(index.labels)


class TestKernelIdentity:
    @pytest.fixture(scope="class")
    def unweighted(self):
        return pll_flat(gnp_graph(45, 0.08, seed=23))

    @pytest.fixture(scope="class")
    def weighted(self):
        graph = random_weighted(gnp_graph(35, 0.1, seed=29), 1, 9, seed=30)
        return pll_flat(graph)

    @pytest.mark.parametrize("fixture", ["unweighted", "weighted"])
    def test_point_queries_identical(self, fixture, request):
        index, kernel = request.getfixturevalue(fixture)
        store = index.labels
        for s in range(store.n):
            for t in range(store.n):
                expected = store.query(s, t)
                got = kernel.query(s, t)
                assert got == expected and type(got) is type(expected), (s, t)

    @pytest.mark.parametrize("fixture", ["unweighted", "weighted"])
    def test_query_from_identical(self, fixture, request):
        index, kernel = request.getfixturevalue(fixture)
        store = index.labels
        targets = list(range(store.n))
        for s in (0, store.n // 2, store.n - 1):
            assert kernel.query_from(s, targets) == [
                store.query(s, t) for t in targets
            ]

    @pytest.mark.parametrize("fixture", ["unweighted", "weighted"])
    def test_query_batch_identical(self, fixture, request):
        index, kernel = request.getfixturevalue(fixture)
        store = index.labels
        pairs = [(s, t) for s in range(0, store.n, 3) for t in range(store.n)]
        assert kernel.query_batch(pairs) == [store.query(s, t) for s, t in pairs]

    def test_empty_batches(self, unweighted):
        _, kernel = unweighted
        assert kernel.query_from(0, []) == []
        assert kernel.query_batch([]) == []

    def test_self_distance_is_exact_zero(self, unweighted):
        _, kernel = unweighted
        assert kernel.query(7, 7) == 0
        assert kernel.query_from(7, [7, 8, 7]) == [
            0,
            kernel.query(7, 8),
            0,
        ]


# ----------------------------------------------------------------------
# Mixin dispatch (PLL/PSL share HubLabelBackendMixin)
# ----------------------------------------------------------------------


class TestMixinDispatch:
    def test_numpy_and_python_kernels_agree_end_to_end(self):
        graph = gnp_graph(40, 0.1, seed=31)
        index = build_pll(graph, backend="flat")
        pairs = [(s, t) for s in range(0, 40, 4) for t in range(40)]
        python = index.set_kernel("python").distances_batch(pairs)
        numpy_ = index.set_kernel("numpy").distances_batch(pairs)
        assert numpy_ == python
        assert index.kernel == "numpy"
        assert index.set_kernel("numpy").distances_from(3, range(40)) == [
            index.labels.query(3, t) for t in range(40)
        ]

    def test_kernel_cache_invalidates_on_backend_change(self):
        graph = gnp_graph(25, 0.15, seed=37)
        index = build_pll(graph, backend="flat").set_kernel("auto")
        assert index.kernel == "numpy"
        index.to_dict_backend()
        assert index.kernel == "python"
        assert index.distance(0, 1) == index.labels.query(0, 1)
        index.compact()
        assert index.kernel == "numpy"

    def test_disconnected_pairs_answer_inf(self):
        graph = gnp_graph(12, 0.0, seed=2)  # no edges at all
        index = build_pll(graph, backend="flat").set_kernel("numpy")
        assert index.distance(0, 11) == INF
        assert index.distances_from(0, [0, 1, 2]) == [0, INF, INF]


# ----------------------------------------------------------------------
# Result-type conversion helpers
# ----------------------------------------------------------------------


class TestWeightConversion:
    def test_integral_results_are_plain_ints(self):
        out = weights_from_floats(np.array([1.0, np.inf, 3.0]), integral=True)
        assert out == [1, INF, 3]
        assert type(out[0]) is int and type(out[2]) is int

    def test_float_results_stay_floats(self):
        out = weights_from_floats(np.array([1.5, np.inf]), integral=False)
        assert out == [1.5, INF]
        assert type(out[0]) is float
