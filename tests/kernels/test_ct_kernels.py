"""CT-Index numpy kernels: the 4-case dispatch is answer-identical.

Builds graphs whose query mix exercises every case of the CT answering
scheme — core–core (case 1), tree–core through the Lemma 9 extension
(case 2), cross-tree (case 3), and same-tree with the LCA-bag / d4
minimum (case 4) — and pins the vectorized kernel against the scalar
kernel on all pairs, both batch shapes, and the case/counter
bookkeeping.  Skips without NumPy.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

from repro.core.ct_index import CTIndex
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.traversal import all_pairs_distances


def build_pair(graph, bandwidth):
    """The same index twice: scalar kernel and numpy kernel."""
    slow = CTIndex.build(graph, bandwidth, backend="flat", kernel="python")
    fast = CTIndex.build(graph, bandwidth, backend="flat", kernel="numpy")
    assert slow.kernel == "python" and fast.kernel == "numpy"
    return slow, fast


def assert_identical(slow, fast, graph):
    nodes = list(graph.nodes())
    truth = all_pairs_distances(graph)
    for s in nodes:
        row = truth[s]
        for t in nodes:
            got = fast.distance(s, t)
            assert got == row[t], (s, t)
            assert type(got) is type(slow.distance(s, t)), (s, t)
    # Both batch shapes, including repeated sources and s == t pairs.
    pairs = [(s, t) for s in nodes[:: max(1, len(nodes) // 12)] for t in nodes]
    assert fast.distances_batch(pairs) == slow.distances_batch(pairs)
    mid = nodes[len(nodes) // 2]
    assert fast.distances_from(mid, nodes) == slow.distances_from(mid, nodes)


class TestFourCases:
    @pytest.fixture(scope="class")
    def cp_graph(self):
        cfg = CorePeripheryConfig(core_size=24, community_count=4, fringe_size=70)
        return core_periphery_graph(cfg, seed=11)

    def test_core_periphery_all_pairs(self, cp_graph):
        slow, fast = build_pair(cp_graph, 4)
        assert_identical(slow, fast, cp_graph)

    def test_every_case_fires_and_counts_match(self, cp_graph):
        slow, fast = build_pair(cp_graph, 4)
        slow.reset_counters()
        fast.reset_counters()
        pairs = [(s, t) for s in cp_graph.nodes() for t in cp_graph.nodes()]
        assert fast.distances_batch(pairs) == slow.distances_batch(pairs)
        # The numpy kernel mirrors the scalar case accounting exactly.
        assert dict(fast.case_counts) == dict(slow.case_counts)
        assert set(slow.case_counts) == {"case1", "case2", "case3", "case4"}

    def test_weighted_graph(self):
        graph = random_weighted(gnp_graph(50, 0.08, seed=43), 1, 9, seed=44)
        slow, fast = build_pair(graph, 4)
        assert_identical(slow, fast, graph)

    def test_bandwidth_zero_degenerates_to_core_only(self):
        # d=0 keeps every vertex in the core: the whole query mix is
        # case 1, the pure 2-hop kernel.
        graph = gnp_graph(40, 0.1, seed=47)
        slow, fast = build_pair(graph, 0)
        assert_identical(slow, fast, graph)

    def test_disconnected_components(self):
        graph = gnp_graph(36, 0.06, seed=53)  # sparse: usually disconnected
        slow, fast = build_pair(graph, 3)
        assert_identical(slow, fast, graph)


class TestKernelLifecycle:
    @pytest.fixture()
    def graph(self):
        cfg = CorePeripheryConfig(core_size=16, community_count=3, fringe_size=40)
        return core_periphery_graph(cfg, seed=19)

    def test_set_kernel_switches_without_changing_answers(self, graph):
        index = CTIndex.build(graph, 3, backend="flat")
        pairs = [(s, t) for s in range(0, graph.n, 5) for t in range(graph.n)]
        python = index.set_kernel("python").distances_batch(pairs)
        assert index.kernel == "python"
        numpy_ = index.set_kernel("numpy").distances_batch(pairs)
        assert index.kernel == "numpy"
        assert numpy_ == python

    def test_compact_enables_auto_numpy(self, graph):
        index = CTIndex.build(graph, 3, backend="dict")
        assert index.kernel == "python"
        before = index.distance(0, graph.n - 1)
        index.compact()
        assert index.kernel == "numpy"
        assert index.distance(0, graph.n - 1) == before

    def test_to_dict_backend_falls_back_to_python(self, graph):
        index = CTIndex.build(graph, 3, backend="flat", kernel="numpy")
        before = index.distances_from(1, list(range(graph.n)))
        index.to_dict_backend()
        assert index.kernel == "python"
        assert index.distances_from(1, list(range(graph.n))) == before

    def test_extension_cache_never_mixes_kernel_shapes(self, graph):
        # Warm the python kernel's dict-shaped extension cache, switch to
        # numpy (array-shaped entries), and query again: set_kernel must
        # have dropped the cache instead of serving the wrong shape.
        index = CTIndex.build(graph, 3, backend="flat", kernel="python")
        pairs = [(s, t) for s in range(graph.n) for t in range(0, graph.n, 7)]
        python = index.distances_batch(pairs)
        assert index.extension_cache_misses >= 0
        index.set_kernel("numpy")
        assert len(index._extension_cache) == 0
        assert index.distances_batch(pairs) == python
        index.set_kernel("python")
        assert len(index._extension_cache) == 0
        assert index.distances_batch(pairs) == python
