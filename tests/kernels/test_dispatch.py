"""Kernel selection: validation, resolution, fallback, and wiring.

Everything here runs **without NumPy** — the dispatch layer is exactly
the part of :mod:`repro.kernels` that must import and behave sensibly
when the ``repro[fast]`` extra is absent.  The NumPy-less environment
is simulated by monkeypatching the cached availability probe
(``repro.kernels._NUMPY_STATE``), which is the documented test hook.
"""

from __future__ import annotations

import pytest

import repro.kernels as kernels
import repro.obs as obs
from repro.core.ct_index import CTIndex
from repro.exceptions import ConfigurationError
from repro.graphs.generators.random_graphs import gnp_graph
from repro.kernels import (
    FAST_EXTRA,
    KERNEL_NAMES,
    record_kernel_queries,
    resolve_kernel,
    validate_kernel,
)
from repro.labeling.pll import build_pll
from repro.obs.tracing import Tracer
from repro.serving.engine import QueryEngine


@pytest.fixture
def graph():
    return gnp_graph(30, 0.15, seed=5)


def force_numpy(monkeypatch, available: bool) -> None:
    monkeypatch.setattr(kernels, "_NUMPY_STATE", available)


# ----------------------------------------------------------------------
# validate_kernel / resolve_kernel
# ----------------------------------------------------------------------


class TestValidate:
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_accepts_every_spelling(self, name):
        assert validate_kernel(name) == name

    @pytest.mark.parametrize("bogus", ["np", "fast", "", "NUMPY", None])
    def test_rejects_everything_else(self, bogus):
        with pytest.raises(ConfigurationError, match="unknown query kernel"):
            validate_kernel(bogus)


class TestResolve:
    def test_python_is_always_python(self, monkeypatch):
        for available in (True, False):
            force_numpy(monkeypatch, available)
            assert resolve_kernel("python", flat=True) == "python"
            assert resolve_kernel("python", flat=False) == "python"

    def test_auto_without_numpy_falls_back(self, monkeypatch):
        force_numpy(monkeypatch, False)
        assert resolve_kernel("auto", flat=True) == "python"
        assert resolve_kernel("auto", flat=False) == "python"

    def test_auto_with_numpy_needs_flat(self, monkeypatch):
        force_numpy(monkeypatch, True)
        assert resolve_kernel("auto", flat=True) == "numpy"
        assert resolve_kernel("auto", flat=False) == "python"

    def test_explicit_numpy_without_numpy_names_the_extra(self, monkeypatch):
        force_numpy(monkeypatch, False)
        with pytest.raises(ConfigurationError, match=r"repro\[fast\]"):
            resolve_kernel("numpy", flat=True)

    def test_explicit_numpy_on_dict_backend_names_compact(self, monkeypatch):
        force_numpy(monkeypatch, True)
        with pytest.raises(ConfigurationError, match="compact"):
            resolve_kernel("numpy", flat=False)

    def test_auto_never_raises(self, monkeypatch):
        for available in (True, False):
            force_numpy(monkeypatch, available)
            for flat in (True, False):
                assert resolve_kernel("auto", flat=flat) in ("numpy", "python")

    def test_fast_extra_spelling(self):
        assert FAST_EXTRA == "repro[fast]"


# ----------------------------------------------------------------------
# Index-level wiring (works on both legs; forced python via monkeypatch)
# ----------------------------------------------------------------------


class TestIndexWiring:
    def test_build_rejects_unknown_kernel(self, graph):
        with pytest.raises(ConfigurationError, match="unknown query kernel"):
            CTIndex.build(graph, 4, kernel="fast")

    def test_build_fails_fast_on_numpy_dict_mismatch(self, graph, monkeypatch):
        force_numpy(monkeypatch, True)
        with pytest.raises(ConfigurationError, match="flat"):
            CTIndex.build(graph, 4, backend="dict", kernel="numpy")

    def test_build_fails_fast_without_numpy(self, graph, monkeypatch):
        force_numpy(monkeypatch, False)
        with pytest.raises(ConfigurationError, match=r"repro\[fast\]"):
            CTIndex.build(graph, 4, backend="flat", kernel="numpy")

    def test_python_kernel_resolves_python(self, graph):
        index = CTIndex.build(graph, 4, backend="flat", kernel="python")
        assert index.kernel == "python"
        assert index.distance(0, graph.n - 1) is not None

    def test_auto_without_numpy_serves_python(self, graph, monkeypatch):
        force_numpy(monkeypatch, False)
        index = CTIndex.build(graph, 4, backend="flat", kernel="auto")
        assert index.kernel == "python"

    def test_set_kernel_numpy_then_to_dict_demotes_to_auto(self, graph):
        pytest.importorskip("numpy")
        index = CTIndex.build(graph, 4, backend="flat", kernel="numpy")
        assert index.kernel == "numpy"
        index.to_dict_backend()
        # The explicit request was demoted: dict backend resolves python
        # instead of raising on the next query.
        assert index._kernel_request == "auto"
        assert index.kernel == "python"

    def test_set_kernel_numpy_on_dict_raises(self, graph, monkeypatch):
        # Pretend NumPy is importable so the error under test is the
        # backend check, not the availability check — the test then
        # holds on NumPy-less environments too (the flat check never
        # loads the array modules).
        force_numpy(monkeypatch, True)
        index = CTIndex.build(graph, 4, backend="dict")
        with pytest.raises(ConfigurationError, match="flat"):
            index.set_kernel("numpy")

    def test_pll_mixin_mirrors_the_same_contract(self, graph, monkeypatch):
        index = build_pll(graph, backend="flat")
        force_numpy(monkeypatch, False)
        assert index.set_kernel("auto").kernel == "python"
        with pytest.raises(ConfigurationError, match=r"repro\[fast\]"):
            index.set_kernel("numpy")
        index.to_dict_backend()
        with pytest.raises(ConfigurationError, match="flat"):
            force_numpy(monkeypatch, True)
            index.set_kernel("numpy")


# ----------------------------------------------------------------------
# QueryEngine kernel parameter
# ----------------------------------------------------------------------


class TestEngineKernel:
    def test_default_leaves_index_selection_alone(self, graph):
        index = CTIndex.build(graph, 4, backend="flat", kernel="python")
        engine = QueryEngine(index)
        assert engine.stats_snapshot()["index"]["kernel"] == "python"

    def test_explicit_kernel_forwards_to_the_index(self, graph):
        index = CTIndex.build(graph, 4, backend="flat")
        engine = QueryEngine(index, kernel="python")
        assert index.kernel == "python"
        assert engine.stats_snapshot()["index"]["kernel"] == "python"

    def test_explicit_numpy_unwraps_to_the_inner_index(self, graph):
        # The engine applies kernel= to the innermost index, so a
        # cache-wrapped dict-backend PLL surfaces PLL's own (actionable)
        # rejection, not a complaint about the wrapper.
        from repro.caching import CachedDistanceIndex

        index = CachedDistanceIndex(build_pll(graph), capacity=8)
        with pytest.raises(ConfigurationError, match="flat"):
            QueryEngine(index, kernel="numpy")

    def test_explicit_numpy_on_kernelless_index_raises(self, graph):
        from repro.labeling.base import DistanceIndex

        class Oracle(DistanceIndex):
            method_name = "dummy"

            def distance(self, s, t):
                return 0

            def size_entries(self):
                return 0

        with pytest.raises(ConfigurationError, match="no query-kernel support"):
            QueryEngine(Oracle(), kernel="numpy")

    def test_bogus_kernel_rejected_before_touching_the_index(self, graph):
        index = CTIndex.build(graph, 4, backend="flat")
        with pytest.raises(ConfigurationError, match="unknown query kernel"):
            QueryEngine(index, kernel="vectorized")


# ----------------------------------------------------------------------
# Observability counters
# ----------------------------------------------------------------------


class TestKernelCounters:
    def test_disabled_obs_records_nothing(self, monkeypatch):
        counter = obs.registry().counter("kernels.queries", kernel="python")
        before = counter.value
        assert not obs.enabled()
        record_kernel_queries("python", 5)
        assert counter.value == before

    def test_enabled_obs_counts_per_kernel(self, graph):
        index = CTIndex.build(graph, 4, backend="flat", kernel="python")
        counter = obs.registry().counter("kernels.queries", kernel="python")
        before = counter.value
        with obs.observe(Tracer()):
            index.distance(0, 1)
            index.distances_from(0, [1, 2, 3])
        assert counter.value == before + 4
