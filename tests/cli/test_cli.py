"""End-to-end tests of the ``repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli.main import main
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.io import write_edge_list


@pytest.fixture
def edge_file(tmp_path):
    graph = gnp_graph(40, 0.15, seed=23)
    path = tmp_path / "graph.edges"
    write_edge_list(graph, path)
    return path


class TestStats:
    def test_stats(self, edge_file, capsys):
        assert main(["stats", str(edge_file)]) == 0
        out = capsys.readouterr().out
        assert "degeneracy" in out

    def test_missing_file(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "nope.edges")])
        assert code != 0 or "error" in capsys.readouterr().err


class TestBuildAndQuery:
    def test_build_query_roundtrip(self, edge_file, tmp_path, capsys):
        index_path = tmp_path / "idx.json"
        assert main(["build", str(edge_file), "-d", "3", "-o", str(index_path)]) == 0
        assert index_path.exists()
        assert main(["query", str(index_path), "0", "1", "2", "5"]) == 0
        out = capsys.readouterr().out
        assert "dist(0, 1)" in out
        assert "dist(2, 5)" in out

    def test_query_odd_node_count(self, edge_file, tmp_path, capsys):
        index_path = tmp_path / "idx.json"
        main(["build", str(edge_file), "-d", "2", "-o", str(index_path)])
        capsys.readouterr()
        assert main(["query", str(index_path), "0", "1", "2"]) == 2

    def test_build_with_memory_limit_om(self, edge_file, tmp_path, capsys):
        code = main(
            [
                "build",
                str(edge_file),
                "-d",
                "0",
                "-o",
                str(tmp_path / "i.json"),
                "--memory-mb",
                "0.0001",
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_path_command(self, edge_file, tmp_path, capsys):
        index_path = tmp_path / "idx.json"
        main(["build", str(edge_file), "-d", "3", "-o", str(index_path)])
        capsys.readouterr()
        assert main(["path", str(index_path), "0", "7"]) == 0
        out = capsys.readouterr().out
        assert "->" in out or "cannot reach" in out

    def test_no_reduction_flag(self, edge_file, tmp_path):
        index_path = tmp_path / "idx.json"
        assert (
            main(["build", str(edge_file), "-d", "2", "--no-reduction", "-o", str(index_path)])
            == 0
        )


class TestOtherCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "uk07" in out
        assert "stands in for" in out

    def test_generate(self, tmp_path, capsys):
        out_path = tmp_path / "talk.edges"
        assert main(["generate", "talk", "-o", str(out_path)]) == 0
        assert out_path.exists()

    def test_generate_unknown_dataset(self, tmp_path, capsys):
        assert main(["generate", "nope", "-o", str(tmp_path / "x.edges")]) == 1

    def test_find_bandwidth(self, edge_file, capsys):
        assert main(["find-bandwidth", str(edge_file), "--memory-mb", "10"]) == 0
        out = capsys.readouterr().out
        assert "d = 0" in out

    def test_bench_unknown_experiment(self, capsys):
        assert main(["bench", "exp99"]) == 2

    def test_bench_lemma3(self, capsys):
        assert main(["bench", "lemma3"]) == 0
        assert "rolling" in capsys.readouterr().out.lower()

    def test_audit(self, edge_file, tmp_path, capsys):
        index_path = tmp_path / "idx.json"
        main(["build", str(edge_file), "-d", "3", "-o", str(index_path)])
        capsys.readouterr()
        assert main(["audit", str(index_path), "--samples", "60"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_compare(self, edge_file, capsys):
        assert main(["compare", str(edge_file), "--methods", "PLL,CT-3", "--queries", "50"]) == 0
        out = capsys.readouterr().out
        assert "PLL" in out and "CT-3" in out
        assert "size_mb" in out

    def test_serve_bench(self, edge_file, capsys):
        assert (
            main(
                [
                    "serve-bench",
                    str(edge_file),
                    "-d",
                    "3",
                    "--queries",
                    "300",
                    "--hot-pairs",
                    "6",
                    "--cache",
                    "128",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "uncached" in out
        assert "ext+pair-cache" in out
        assert "core_probes" in out

    def test_serve_bench_missing_graph(self, tmp_path, capsys):
        assert main(["serve-bench", str(tmp_path / "nope.edges")]) == 1
        assert "error" in capsys.readouterr().err


class TestServeBenchKernel:
    def _run(self, edge_file, kernel):
        return main(
            [
                "serve-bench",
                str(edge_file),
                "-d",
                "3",
                "--queries",
                "200",
                "--kernel",
                kernel,
            ]
        )

    def test_kernel_python_is_reported_in_the_title(self, edge_file, capsys):
        assert self._run(edge_file, "python") == 0
        assert "kernel=python" in capsys.readouterr().out

    def test_kernel_numpy_serves_the_vectorized_path(self, edge_file, capsys):
        pytest.importorskip("numpy")
        assert self._run(edge_file, "numpy") == 0
        assert "kernel=numpy" in capsys.readouterr().out

    def test_kernel_auto_resolves_and_reports(self, edge_file, capsys):
        assert self._run(edge_file, "auto") == 0
        out = capsys.readouterr().out
        assert "kernel=python" in out or "kernel=numpy" in out

    def test_unknown_kernel_rejected_by_argparse(self, edge_file, capsys):
        with pytest.raises(SystemExit):
            self._run(edge_file, "vectorized")
        assert "invalid choice" in capsys.readouterr().err


class TestStorageCli:
    def test_build_binary_and_query(self, edge_file, tmp_path, capsys):
        index_path = tmp_path / "idx.ctsnap"
        assert (
            main(
                [
                    "build",
                    str(edge_file),
                    "-d",
                    "3",
                    "--format",
                    "binary",
                    "-o",
                    str(index_path),
                ]
            )
            == 0
        )
        assert index_path.read_bytes()[:8] == b"RCTINDEX"
        assert "[binary]" in capsys.readouterr().out
        # query auto-detects the snapshot format from the magic.
        assert main(["query", str(index_path), "0", "1"]) == 0
        assert "dist(0, 1)" in capsys.readouterr().out

    def test_build_flat_backend(self, edge_file, tmp_path, capsys):
        index_path = tmp_path / "idx.json"
        assert (
            main(
                [
                    "build",
                    str(edge_file),
                    "-d",
                    "3",
                    "--backend",
                    "flat",
                    "-o",
                    str(index_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["query", str(index_path), "0", "5"]) == 0

    def test_binary_and_json_answer_identically(self, edge_file, tmp_path, capsys):
        json_path = tmp_path / "idx.json"
        binary_path = tmp_path / "idx.ctsnap"
        main(["build", str(edge_file), "-d", "3", "-o", str(json_path)])
        main(
            [
                "build",
                str(edge_file),
                "-d",
                "3",
                "--format",
                "binary",
                "-o",
                str(binary_path),
            ]
        )
        capsys.readouterr()
        def distances(text):
            return [line for line in text.splitlines() if line.startswith("dist(")]

        main(["query", str(json_path), "0", "9", "3", "17"])
        from_json = distances(capsys.readouterr().out)
        main(["query", str(binary_path), "0", "9", "3", "17"])
        from_binary = distances(capsys.readouterr().out)
        assert from_json and from_json == from_binary

    def test_audit_binary_snapshot(self, edge_file, tmp_path, capsys):
        index_path = tmp_path / "idx.ctsnap"
        main(
            [
                "build",
                str(edge_file),
                "-d",
                "3",
                "--format",
                "binary",
                "-o",
                str(index_path),
            ]
        )
        capsys.readouterr()
        assert main(["audit", str(index_path), "--samples", "60"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_storage_bench(self, edge_file, tmp_path, capsys):
        out_path = tmp_path / "BENCH_storage.json"
        assert (
            main(
                [
                    "storage-bench",
                    str(edge_file),
                    "-d",
                    "3",
                    "--queries",
                    "100",
                    "-o",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "storage-bench" in out
        assert "resident" in out
        import json as json_module

        document = json_module.loads(out_path.read_text())
        assert document["entries"][0]["answers_verified"] is True

    def test_storage_bench_skip_output(self, edge_file, capsys):
        assert (
            main(["storage-bench", str(edge_file), "-d", "2", "--queries", "50", "-o", "-"])
            == 0
        )
        assert "verified" in capsys.readouterr().out


class TestParallelBuild:
    def test_build_with_workers_matches_serial(self, edge_file, tmp_path, capsys):
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(["build", str(edge_file), "-d", "3", "-o", str(serial_path)]) == 0
        assert (
            main(
                [
                    "build",
                    str(edge_file),
                    "-d",
                    "3",
                    "-o",
                    str(parallel_path),
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 workers" in out
        import json

        serial = json.loads(serial_path.read_text())
        parallel = json.loads(parallel_path.read_text())
        serial.pop("build_seconds")
        parallel.pop("build_seconds")
        assert serial == parallel

    def test_build_bench(self, edge_file, tmp_path, capsys):
        bench_path = tmp_path / "BENCH_build.json"
        assert (
            main(
                [
                    "build-bench",
                    str(edge_file),
                    "-d",
                    "3",
                    "--workers",
                    "1,2",
                    "-o",
                    str(bench_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "speedup" in out
        assert bench_path.exists()

    def test_build_bench_skip_recording(self, edge_file, capsys):
        assert main(["build-bench", str(edge_file), "-d", "3", "--workers", "1", "-o", "-"]) == 0
        assert "recorded entry" not in capsys.readouterr().out

    def test_build_bench_bad_workers(self, edge_file, capsys):
        assert main(["build-bench", str(edge_file), "--workers", "1,x"]) == 2
        assert "error" in capsys.readouterr().err
