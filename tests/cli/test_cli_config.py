"""CLI coverage for ``--config``, ``--chunked``, and ``scale-bench``."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main
from repro.core.serialization import index_fingerprint, load_ct_index
from repro.graphs.generators.random_graphs import connected_gnp_graph
from repro.graphs.io import write_edge_list


@pytest.fixture
def edge_file(tmp_path):
    graph = connected_gnp_graph(60, 0.08, seed=31)
    path = tmp_path / "graph.edges"
    write_edge_list(graph, path)
    return path


class TestBuildConfigFlag:
    def test_config_round_trips_to_the_same_fingerprint(
        self, edge_file, tmp_path, capsys
    ):
        config_path = tmp_path / "config.json"
        config_path.write_text(
            json.dumps(
                {"bandwidth": 3, "backend": "flat", "core_backend": "psl"}
            )
        )
        by_config = tmp_path / "a.idx"
        by_flags = tmp_path / "b.idx"
        assert (
            main(
                [
                    "build",
                    str(edge_file),
                    "--config",
                    str(config_path),
                    "-o",
                    str(by_config),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "build",
                    str(edge_file),
                    "-d",
                    "3",
                    "--backend",
                    "flat",
                    "--core-backend",
                    "psl",
                    "-o",
                    str(by_flags),
                ]
            )
            == 0
        )
        assert index_fingerprint(load_ct_index(by_config)) == index_fingerprint(
            load_ct_index(by_flags)
        )

    def test_conflicting_flag_fails_cleanly(self, edge_file, tmp_path, capsys):
        config_path = tmp_path / "config.json"
        config_path.write_text(json.dumps({"bandwidth": 3}))
        code = main(
            [
                "build",
                str(edge_file),
                "--config",
                str(config_path),
                "-d",
                "9",
                "-o",
                str(tmp_path / "x.idx"),
            ]
        )
        captured = capsys.readouterr()
        assert code != 0
        assert "conflict" in captured.err + captured.out

    def test_unknown_config_key_fails_cleanly(self, edge_file, tmp_path, capsys):
        config_path = tmp_path / "config.json"
        config_path.write_text(json.dumps({"bandwith": 3}))
        code = main(
            [
                "build",
                str(edge_file),
                "--config",
                str(config_path),
                "-o",
                str(tmp_path / "x.idx"),
            ]
        )
        assert code != 0

    def test_chunked_loader_builds_the_same_index(self, edge_file, tmp_path):
        plain = tmp_path / "a.idx"
        chunked = tmp_path / "b.idx"
        assert main(["build", str(edge_file), "-d", "3", "-o", str(plain)]) == 0
        assert (
            main(
                ["build", str(edge_file), "-d", "3", "--chunked", "-o", str(chunked)]
            )
            == 0
        )
        assert index_fingerprint(load_ct_index(plain)) == index_fingerprint(
            load_ct_index(chunked)
        )


class TestScaleBenchCommand:
    def test_smallest_tier_smoke(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "BENCH_scale.json"
        assert (
            main(["scale-bench", "--tiers", "cp-1k", "-o", str(out)]) == 0
        )
        printed = capsys.readouterr().out
        assert "cp-1k" in printed
        assert "recorded 1 entries" in printed
        document = json.loads(out.read_text())
        assert document["entries"][0]["verify"]["identical"] is True

    def test_dash_output_skips_recording(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["scale-bench", "--tiers", "rmat-10", "-o", "-"]) == 0
        assert not (tmp_path / "BENCH_scale.json").exists()
