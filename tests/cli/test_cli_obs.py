"""End-to-end tests of the observability CLI surface."""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.cli.main import main
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.io import write_edge_list


@pytest.fixture
def edge_file(tmp_path):
    graph = gnp_graph(60, 0.12, seed=23)
    path = tmp_path / "graph.edges"
    write_edge_list(graph, path)
    return path


class TestTracedBuild:
    def test_build_with_trace_metrics_profile(self, edge_file, tmp_path, capsys):
        trace = tmp_path / "build.trace.jsonl"
        metrics = tmp_path / "metrics.txt"
        profile = tmp_path / "profile.txt"
        code = main(
            [
                "build",
                str(edge_file),
                "-d",
                "3",
                "-o",
                str(tmp_path / "idx.json"),
                "--trace",
                str(trace),
                "--metrics",
                str(metrics),
                "--profile",
                str(profile),
            ]
        )
        assert code == 0
        # The session cleans up after itself.
        assert not obs.enabled()
        assert obs.current_tracer() is None
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert {"ct.build", "treedec.mde"} <= {r["name"] for r in records}
        metrics_text = metrics.read_text()
        assert "# TYPE mde_rounds counter" in metrics_text
        assert "function calls" in profile.read_text()

    def test_build_without_flags_stays_dark(self, edge_file, tmp_path):
        assert (
            main(["build", str(edge_file), "-d", "3", "-o", str(tmp_path / "i.json")])
            == 0
        )
        assert not obs.enabled()
        assert obs.current_tracer() is None


class TestTraceCommand:
    def test_renders_tree_and_summary(self, edge_file, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        main(
            [
                "build",
                str(edge_file),
                "-d",
                "3",
                "-o",
                str(tmp_path / "i.json"),
                "--trace",
                str(trace),
            ]
        )
        capsys.readouterr()
        assert main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "ct.build" in out
        assert "total_ms" in out

    def test_empty_trace_file(self, tmp_path, capsys):
        trace = tmp_path / "empty.jsonl"
        trace.write_text("")
        assert main(["trace", str(trace)]) == 0
        assert "empty trace" in capsys.readouterr().out

    def test_corrupt_trace_is_a_handled_error(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        trace.write_text("not json\n")
        assert main(["trace", str(trace)]) == 1
        assert "error" in capsys.readouterr().err


class TestServeBenchTrace:
    def test_serve_bench_records_query_spans(self, edge_file, tmp_path, capsys):
        trace = tmp_path / "serve.trace.jsonl"
        code = main(
            [
                "serve-bench",
                str(edge_file),
                "-d",
                "3",
                "--queries",
                "40",
                "--trace",
                str(trace),
            ]
        )
        assert code == 0
        names = {
            json.loads(line)["name"] for line in trace.read_text().splitlines()
        }
        assert "serving.query" in names


class TestObsBenchCommand:
    def test_obs_bench_records_artifact(self, edge_file, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "obs-bench",
                str(edge_file),
                "-d",
                "3",
                "--queries",
                "80",
                "-o",
                str(tmp_path / "BENCH_obs.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "disabled" in out and "enabled" in out
        assert "overhead" in out
        document = json.loads((tmp_path / "BENCH_obs.json").read_text())
        assert document["entries"][0]["identical"] is True

    def test_obs_bench_kernel_flag_pins_the_measured_path(
        self, edge_file, tmp_path, capsys
    ):
        code = main(
            [
                "obs-bench",
                str(edge_file),
                "-d",
                "3",
                "--queries",
                "60",
                "--kernel",
                "python",
                "-o",
                str(tmp_path / "BENCH_obs.json"),
            ]
        )
        assert code == 0
        assert "kernel=python" in capsys.readouterr().out
        document = json.loads((tmp_path / "BENCH_obs.json").read_text())
        assert document["entries"][0]["kernel"] == "python"
