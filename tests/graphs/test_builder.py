"""Unit tests for GraphBuilder normalization."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.builder import GraphBuilder


class TestAddEdge:
    def test_basic(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1)
        b.add_edge(1, 2, 4)
        g = b.build()
        assert g.m == 2
        assert g.edge_weight(1, 2) == 4

    def test_self_loop_dropped(self):
        b = GraphBuilder(2)
        b.add_edge(1, 1)
        assert b.dropped_self_loops == 1
        assert b.build().m == 0

    def test_parallel_edges_keep_min_weight(self):
        b = GraphBuilder(2)
        b.add_edge(0, 1, 5)
        b.add_edge(1, 0, 3)
        b.add_edge(0, 1, 9)
        assert b.merged_parallel_edges == 2
        assert b.build().edge_weight(0, 1) == 3

    def test_out_of_range_rejected(self):
        b = GraphBuilder(2)
        with pytest.raises(GraphError):
            b.add_edge(0, 2)

    def test_non_positive_weight_rejected(self):
        b = GraphBuilder(2)
        with pytest.raises(GraphError):
            b.add_edge(0, 1, 0)
        with pytest.raises(GraphError):
            b.add_edge(0, 1, -2)

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder(-1)


class TestBulkHelpers:
    def test_add_edges(self):
        b = GraphBuilder(4)
        b.add_edges([(0, 1), (1, 2, 7)])
        g = b.build()
        assert g.m == 2
        assert g.edge_weight(1, 2) == 7

    def test_add_clique(self):
        b = GraphBuilder(5)
        b.add_clique([1, 2, 3, 4])
        assert b.edge_count == 6

    def test_add_clique_with_duplicates(self):
        b = GraphBuilder(3)
        b.add_clique([0, 1, 1, 2])
        assert b.edge_count == 3

    def test_add_path(self):
        b = GraphBuilder(4)
        b.add_path([3, 1, 0, 2])
        g = b.build()
        assert g.m == 3
        assert g.has_edge(3, 1)
        assert g.has_edge(0, 2)

    def test_add_path_empty(self):
        b = GraphBuilder(3)
        b.add_path([])
        assert b.edge_count == 0


class TestBuild:
    def test_unweighted_flag(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1)
        assert b.build().unweighted

    def test_weighted_flag(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1, 2)
        assert not b.build().unweighted

    def test_edge_count_property(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1)
        b.add_edge(0, 1)
        assert b.edge_count == 1
