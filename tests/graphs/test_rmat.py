"""Unit tests for the R-MAT generator."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.generators.rmat import GRAPH500_PROBS, rmat_graph


class TestRmat:
    def test_deterministic(self):
        assert rmat_graph(7, 8, seed=1) == rmat_graph(7, 8, seed=1)
        assert rmat_graph(7, 8, seed=1) != rmat_graph(7, 8, seed=2)

    def test_node_count(self):
        g = rmat_graph(6, 4, seed=3)
        assert g.n == 64

    def test_edge_count_bounded_by_draws(self):
        g = rmat_graph(6, 4, seed=4)
        assert 0 < g.m <= 4 * 64

    def test_skewed_degrees(self):
        g = rmat_graph(9, 8, seed=5)
        # R-MAT with Graph500 probabilities concentrates edges on
        # low-id nodes: heavy-tailed degrees.
        assert g.max_degree() > 5 * g.average_degree()

    def test_uniform_probs_not_skewed(self):
        skewed = rmat_graph(8, 8, seed=6)
        uniform = rmat_graph(8, 8, seed=6, probs=(0.25, 0.25, 0.25, 0.25))
        assert uniform.max_degree() < skewed.max_degree()

    def test_graph500_probs_sum(self):
        assert abs(sum(GRAPH500_PROBS) - 1.0) < 1e-12

    def test_validation(self):
        with pytest.raises(GraphError):
            rmat_graph(0, 4, seed=0)
        with pytest.raises(GraphError):
            rmat_graph(5, 0, seed=0)
        with pytest.raises(GraphError):
            rmat_graph(5, 4, seed=0, probs=(0.5, 0.5, 0.5, 0.5))
        with pytest.raises(GraphError):
            rmat_graph(5, 4, seed=0, noise=1.0)

    def test_indexable(self):
        from repro.core.ct_index import CTIndex
        from repro.graphs.traversal import single_source_distances

        g = rmat_graph(7, 6, seed=7)
        index = CTIndex.build(g, 4)
        truth = single_source_distances(g, 0)
        for t in range(g.n):
            assert index.distance(0, t) == truth[t]
