"""Unit tests for BFS/Dijkstra/connectivity against networkx ground truth."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.generators.primitives import cycle_graph, grid_graph, path_graph
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.graph import INF, Graph
from repro.graphs.traversal import (
    all_pairs_distances,
    bfs_distances,
    connected_components,
    dijkstra_distances,
    distances_to_targets,
    eccentricity,
    is_connected,
    largest_component_subgraph,
    pairwise_distance,
    single_source_distances,
)


def to_networkx(graph: Graph) -> nx.Graph:
    nxg = nx.Graph()
    nxg.add_nodes_from(graph.nodes())
    for u, v, w in graph.edges():
        nxg.add_edge(u, v, weight=w)
    return nxg


class TestBfs:
    def test_path_graph(self):
        dist = bfs_distances(path_graph(5), 0)
        assert dist == [0, 1, 2, 3, 4]

    def test_unreachable_is_inf(self):
        g = Graph.from_edges(4, [(0, 1)])
        dist = bfs_distances(g, 0)
        assert dist[2] == INF
        assert dist[3] == INF

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        g = gnp_graph(40, 0.08, seed=seed)
        nxg = to_networkx(g)
        expected = nx.single_source_shortest_path_length(nxg, 0)
        dist = bfs_distances(g, 0)
        for v in g.nodes():
            assert dist[v] == expected.get(v, INF)


class TestDijkstra:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        g = random_weighted(gnp_graph(30, 0.15, seed=seed), 1, 9, seed=seed + 50)
        nxg = to_networkx(g)
        expected = nx.single_source_dijkstra_path_length(nxg, 0)
        dist = dijkstra_distances(g, 0)
        for v in g.nodes():
            assert dist[v] == expected.get(v, INF)

    def test_prefers_light_detour(self):
        g = Graph.from_edges(3, [(0, 2, 10), (0, 1, 1), (1, 2, 1)])
        assert dijkstra_distances(g, 0)[2] == 2


class TestDispatch:
    def test_single_source_uses_bfs_for_unweighted(self):
        g = path_graph(4)
        assert single_source_distances(g, 0) == bfs_distances(g, 0)

    def test_single_source_uses_dijkstra_for_weighted(self):
        g = Graph.from_edges(3, [(0, 1, 2), (1, 2, 2)])
        assert single_source_distances(g, 0) == dijkstra_distances(g, 0)


class TestPairwise:
    @pytest.mark.parametrize("seed", range(6))
    def test_bidirectional_bfs_matches_full(self, seed):
        g = gnp_graph(35, 0.1, seed=seed)
        full = all_pairs_distances(g)
        import random

        rng = random.Random(seed)
        for _ in range(60):
            s, t = rng.randrange(g.n), rng.randrange(g.n)
            assert pairwise_distance(g, s, t) == full[s][t]

    @pytest.mark.parametrize("seed", range(4))
    def test_bidirectional_dijkstra_matches_full(self, seed):
        g = random_weighted(gnp_graph(25, 0.15, seed=seed), 1, 7, seed=seed)
        full = all_pairs_distances(g)
        import random

        rng = random.Random(seed)
        for _ in range(50):
            s, t = rng.randrange(g.n), rng.randrange(g.n)
            assert pairwise_distance(g, s, t) == full[s][t]

    def test_same_node(self):
        assert pairwise_distance(path_graph(3), 1, 1) == 0

    def test_disconnected_pair(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert pairwise_distance(g, 0, 3) == INF


class TestConnectivity:
    def test_components(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
        comps = connected_components(g)
        assert comps == [[0, 1, 2], [3, 4], [5]]

    def test_is_connected(self):
        assert is_connected(cycle_graph(5))
        assert not is_connected(Graph.from_edges(3, [(0, 1)]))
        assert is_connected(Graph.empty(1))
        assert is_connected(Graph.empty(0))

    def test_largest_component(self):
        g = Graph.from_edges(7, [(0, 1), (1, 2), (2, 3), (4, 5)])
        sub, originals = largest_component_subgraph(g)
        assert originals == [0, 1, 2, 3]
        assert sub.m == 3


class TestMisc:
    def test_eccentricity_of_path_end(self):
        assert eccentricity(path_graph(6), 0) == 5

    def test_eccentricity_isolated(self):
        assert eccentricity(Graph.empty(3), 0) == 0

    def test_distances_to_targets(self):
        g = grid_graph(3, 3)
        result = distances_to_targets(g, 0, [8, 4])
        assert result == {8: 4, 4: 2}
