"""Unit tests for the directed graph substrate."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.graphs.digraph import DiGraph, backward_distances, forward_distances
from repro.graphs.graph import INF


def random_digraph(n: int, p: float, seed: int, *, weighted: bool = False) -> DiGraph:
    rng = random.Random(seed)
    arcs = []
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                if weighted:
                    arcs.append((u, v, rng.randint(1, 9)))
                else:
                    arcs.append((u, v))
    return DiGraph.from_arcs(n, arcs)


def to_networkx(graph: DiGraph) -> nx.DiGraph:
    nxg = nx.DiGraph()
    nxg.add_nodes_from(graph.nodes())
    for u, v, w in graph.arcs():
        nxg.add_edge(u, v, weight=w)
    return nxg


class TestConstruction:
    def test_basic(self):
        g = DiGraph.from_arcs(3, [(0, 1), (1, 2)])
        assert g.n == 3
        assert g.m == 2
        assert list(g.out_neighbors(0)) == [(1, 1)]
        assert list(g.in_neighbors(2)) == [(1, 1)]

    def test_asymmetric(self):
        g = DiGraph.from_arcs(2, [(0, 1)])
        assert g.out_degree(0) == 1
        assert g.in_degree(0) == 0
        assert forward_distances(g, 1)[0] == INF

    def test_self_loops_dropped(self):
        g = DiGraph.from_arcs(2, [(0, 0), (0, 1)])
        assert g.m == 1

    def test_duplicate_keeps_min_weight(self):
        g = DiGraph.from_arcs(2, [(0, 1, 5), (0, 1, 2)])
        assert list(g.out_neighbors(0)) == [(1, 2)]

    def test_both_directions_distinct(self):
        g = DiGraph.from_arcs(2, [(0, 1, 3), (1, 0, 7)])
        assert g.m == 2

    def test_bad_arcs_rejected(self):
        with pytest.raises(GraphError):
            DiGraph.from_arcs(2, [(0, 5)])
        with pytest.raises(GraphError):
            DiGraph.from_arcs(2, [(0, 1, 0)])
        with pytest.raises(GraphError):
            DiGraph.from_arcs(2, [(0,)])

    def test_reversed(self):
        g = DiGraph.from_arcs(3, [(0, 1, 2), (1, 2, 3)])
        r = g.reversed()
        assert list(r.out_neighbors(1)) == [(0, 2)]
        assert list(r.out_neighbors(2)) == [(1, 3)]


class TestSearch:
    @pytest.mark.parametrize("seed", range(4))
    def test_forward_matches_networkx(self, seed):
        g = random_digraph(30, 0.1, seed)
        nxg = to_networkx(g)
        expected = nx.single_source_shortest_path_length(nxg, 0)
        dist = forward_distances(g, 0)
        for v in g.nodes():
            assert dist[v] == expected.get(v, INF)

    @pytest.mark.parametrize("seed", range(3))
    def test_weighted_forward_matches_networkx(self, seed):
        g = random_digraph(25, 0.12, seed, weighted=True)
        nxg = to_networkx(g)
        expected = nx.single_source_dijkstra_path_length(nxg, 0)
        dist = forward_distances(g, 0)
        for v in g.nodes():
            assert dist[v] == expected.get(v, INF)

    def test_backward_is_forward_on_reversed(self):
        g = random_digraph(20, 0.15, seed=9)
        reversed_g = g.reversed()
        for v in (0, 5, 10):
            assert backward_distances(g, v) == forward_distances(reversed_g, v)
