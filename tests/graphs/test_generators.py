"""Unit tests for every graph generator family."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
    scaled_config,
)
from repro.graphs.generators.power_law import (
    barabasi_albert_graph,
    chung_lu_graph,
    power_law_cluster_graph,
    power_law_weights,
)
from repro.graphs.generators.primitives import (
    binary_tree_graph,
    clique_graph,
    complete_bipartite_graph,
    cycle_graph,
    grid_graph,
    lollipop_graph,
    path_graph,
    star_graph,
)
from repro.graphs.generators.random_graphs import (
    caveman_graph,
    connected_gnp_graph,
    gnm_graph,
    gnp_graph,
    random_tree,
    random_weighted,
)
from repro.graphs.generators.worst_case import (
    rolling_cliques_distance,
    rolling_cliques_graph,
    rolling_cliques_group,
)
from repro.graphs.traversal import bfs_distances, is_connected


class TestPrimitives:
    def test_path(self):
        g = path_graph(5)
        assert (g.n, g.m) == (5, 4)

    def test_cycle(self):
        g = cycle_graph(6)
        assert (g.n, g.m) == (6, 6)
        assert all(g.degree(v) == 2 for v in g.nodes())

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_clique(self):
        g = clique_graph(5)
        assert g.m == 10

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 6
        assert g.m == 6

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(2, 3)
        assert g.m == 6
        assert not g.has_edge(0, 1)

    def test_grid_distances(self):
        g = grid_graph(3, 4)
        dist = bfs_distances(g, 0)
        assert dist[11] == 5  # manhattan distance to opposite corner

    def test_grid_bad_dims(self):
        with pytest.raises(GraphError):
            grid_graph(0, 3)

    def test_binary_tree(self):
        g = binary_tree_graph(3)
        assert g.n == 15
        assert g.m == 14
        assert is_connected(g)

    def test_lollipop(self):
        g = lollipop_graph(4, 3)
        assert g.n == 7
        assert g.m == 6 + 3
        assert is_connected(g)


class TestRandomGraphs:
    def test_gnp_deterministic(self):
        assert gnp_graph(50, 0.1, seed=7) == gnp_graph(50, 0.1, seed=7)

    def test_gnp_seed_sensitivity(self):
        assert gnp_graph(50, 0.1, seed=7) != gnp_graph(50, 0.1, seed=8)

    def test_gnp_extreme_probabilities(self):
        assert gnp_graph(10, 0.0, seed=1).m == 0
        assert gnp_graph(10, 1.0, seed=1).m == 45

    def test_gnp_density_close_to_p(self):
        g = gnp_graph(200, 0.1, seed=3)
        expected = 0.1 * 199 / 2 * 200
        assert abs(g.m - expected) < expected * 0.25

    def test_gnp_sparse_path_density(self):
        g = gnp_graph(500, 0.01, seed=4)
        expected = 0.01 * 499 / 2 * 500
        assert abs(g.m - expected) < expected * 0.25

    def test_gnp_rejects_bad_p(self):
        with pytest.raises(GraphError):
            gnp_graph(5, 1.5, seed=0)

    def test_gnm_exact_edges(self):
        g = gnm_graph(20, 30, seed=5)
        assert g.m == 30

    def test_gnm_too_many_edges(self):
        with pytest.raises(GraphError):
            gnm_graph(4, 10, seed=0)

    def test_connected_gnp(self):
        g = connected_gnp_graph(60, 0.02, seed=6)
        assert is_connected(g)

    def test_caveman(self):
        g = caveman_graph(4, 5, rewire_prob=0.0, seed=1)
        assert g.n == 20
        assert is_connected(g)

    def test_caveman_rewired_stays_same_size(self):
        g = caveman_graph(4, 5, rewire_prob=0.3, seed=2)
        assert g.n == 20

    def test_random_weighted_range(self):
        g = random_weighted(gnp_graph(20, 0.3, seed=1), 2, 6, seed=9)
        assert all(2 <= w <= 6 for _, _, w in g.edges())
        assert not g.unweighted

    def test_random_weighted_rejects_bad_range(self):
        with pytest.raises(GraphError):
            random_weighted(path_graph(3), 0, 5, seed=1)

    def test_random_tree(self):
        g = random_tree(40, seed=3)
        assert g.m == 39
        assert is_connected(g)


class TestPowerLaw:
    def test_ba_connected_with_min_degree(self):
        g = barabasi_albert_graph(200, 3, seed=1)
        assert is_connected(g)
        assert min(g.degree(v) for v in g.nodes()) >= 3

    def test_ba_heavy_tail(self):
        g = barabasi_albert_graph(400, 3, seed=2)
        assert g.max_degree() > 8 * g.average_degree() / 2

    def test_ba_rejects_bad_params(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(3, 5, seed=0)
        with pytest.raises(GraphError):
            barabasi_albert_graph(10, 0, seed=0)

    def test_chung_lu_expected_degrees(self):
        weights = [10.0] * 100
        g = chung_lu_graph(weights, seed=3)
        assert abs(g.average_degree() - 10.0) < 3.0

    def test_chung_lu_empty(self):
        assert chung_lu_graph([], seed=1).n == 0
        assert chung_lu_graph([0.0, 0.0], seed=1).m == 0

    def test_chung_lu_rejects_negative(self):
        with pytest.raises(GraphError):
            chung_lu_graph([1.0, -2.0], seed=0)

    def test_power_law_weights(self):
        weights = power_law_weights(500, exponent=2.5, min_degree=2.0, seed=4)
        assert len(weights) == 500
        assert min(weights) >= 2.0

    def test_power_law_weights_bad_exponent(self):
        with pytest.raises(GraphError):
            power_law_weights(10, exponent=1.0, min_degree=1.0, seed=0)

    def test_holme_kim_connected(self):
        g = power_law_cluster_graph(150, 3, 0.5, seed=5)
        assert is_connected(g)

    def test_holme_kim_more_clustered_than_ba(self):
        from repro.graphs.statistics import approximate_clustering

        ba = barabasi_albert_graph(300, 3, seed=6)
        hk = power_law_cluster_graph(300, 3, 0.9, seed=6)
        assert approximate_clustering(hk, 150, seed=1) > approximate_clustering(
            ba, 150, seed=1
        )


class TestCorePeriphery:
    def test_deterministic(self):
        cfg = CorePeripheryConfig(core_size=50, community_count=5, fringe_size=100)
        assert core_periphery_graph(cfg, 1) == core_periphery_graph(cfg, 1)

    def test_connected(self):
        cfg = CorePeripheryConfig(core_size=40, community_count=4, fringe_size=80)
        assert is_connected(core_periphery_graph(cfg, 2))

    def test_boundary_moves_with_bandwidth(self):
        from repro.treedec.elimination import minimum_degree_elimination

        cfg = CorePeripheryConfig(
            core_size=120, core_density=0.5, community_count=15, fringe_size=400
        )
        graph = core_periphery_graph(cfg, 3)
        boundary2 = minimum_degree_elimination(graph, bandwidth=2).boundary
        boundary20 = minimum_degree_elimination(graph, bandwidth=20).boundary
        assert 0 < boundary2 < boundary20 < graph.n

    def test_scaled_config(self):
        base = CorePeripheryConfig(core_size=100, community_count=10, fringe_size=200)
        half = scaled_config(base, 0.5)
        assert half.core_size == 50
        assert half.community_count == 5
        assert half.fringe_size == 100
        assert half.core_density == base.core_density

    def test_scaled_config_rejects_nonpositive(self):
        with pytest.raises(GraphError):
            scaled_config(CorePeripheryConfig(), 0)

    def test_validation(self):
        with pytest.raises(GraphError):
            core_periphery_graph(CorePeripheryConfig(core_size=1), 0)
        with pytest.raises(GraphError):
            core_periphery_graph(CorePeripheryConfig(core_density=0.0), 0)
        with pytest.raises(GraphError):
            core_periphery_graph(CorePeripheryConfig(community_anchors=0), 0)


class TestRollingCliques:
    def test_shape(self):
        g = rolling_cliques_graph(k=3, d=4)
        assert g.n == 12
        # Each node connects to its group (d/2 - 1 = 1) and both adjacent
        # groups (2 * d/2 = 4): degree 5 everywhere on this small ring.
        assert all(g.degree(v) == 5 for v in g.nodes())

    def test_rejects_odd_d(self):
        with pytest.raises(GraphError):
            rolling_cliques_graph(3, 5)

    def test_rejects_small_k(self):
        with pytest.raises(GraphError):
            rolling_cliques_graph(1, 4)

    def test_group_function(self):
        assert rolling_cliques_group(0, 4) == 0
        assert rolling_cliques_group(2, 4) == 1

    @pytest.mark.parametrize("k,d", [(2, 4), (3, 4), (4, 6), (5, 8)])
    def test_closed_form_distance_matches_bfs(self, k, d):
        g = rolling_cliques_graph(k, d)
        for s in range(0, g.n, max(1, g.n // 7)):
            dist = bfs_distances(g, s)
            for t in g.nodes():
                assert dist[t] == rolling_cliques_distance(s, t, k, d), (s, t)

    def test_contains_d_clique(self):
        d = 6
        g = rolling_cliques_graph(3, d)
        members = list(range(d))  # groups 0 and 1 form a d-clique
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                assert g.has_edge(u, v)
