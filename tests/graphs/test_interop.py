"""Unit tests for networkx interoperability."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.interop import digraph_from_networkx, from_networkx, to_networkx


class TestFromNetworkx:
    def test_basic(self):
        nxg = nx.Graph()
        nxg.add_edge("a", "b")
        nxg.add_edge("b", "c", weight=4)
        graph, originals = from_networkx(nxg)
        assert originals == ["a", "b", "c"]
        assert graph.m == 2
        assert graph.edge_weight(1, 2) == 4

    def test_isolated_nodes_kept(self):
        nxg = nx.Graph()
        nxg.add_nodes_from([1, 2, 3])
        nxg.add_edge(1, 2)
        graph, _ = from_networkx(nxg)
        assert graph.n == 3
        assert graph.m == 1

    def test_custom_weight_attribute(self):
        nxg = nx.Graph()
        nxg.add_edge(0, 1, cost=7)
        graph, _ = from_networkx(nxg, weight_attribute="cost")
        assert graph.edge_weight(0, 1) == 7

    def test_directed_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(nx.DiGraph([(0, 1)]))

    def test_multigraph_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(nx.MultiGraph([(0, 1), (0, 1)]))

    def test_roundtrip(self):
        graph = random_weighted(gnp_graph(25, 0.2, seed=1), 1, 9, seed=2)
        back, originals = from_networkx(to_networkx(graph))
        # Integer node labels sort by repr as strings... verify distances
        # survive through the mapping instead of identity.
        assert back.n == graph.n
        assert back.m == graph.m

    def test_indexing_converted_graph(self):
        from repro.core.ct_index import CTIndex
        from repro.graphs.traversal import single_source_distances

        nxg = nx.karate_club_graph()
        graph, _ = from_networkx(nxg)
        index = CTIndex.build(graph, 3)
        truth = single_source_distances(graph, 0)
        for t in graph.nodes():
            assert index.distance(0, t) == truth[t]


class TestDigraphFromNetworkx:
    def test_basic(self):
        nxg = nx.DiGraph()
        nxg.add_edge(0, 1, weight=2)
        nxg.add_edge(1, 0, weight=5)
        digraph, _ = digraph_from_networkx(nxg)
        assert digraph.m == 2
        assert list(digraph.out_neighbors(0)) == [(1, 2)]

    def test_undirected_rejected(self):
        with pytest.raises(GraphError):
            digraph_from_networkx(nx.Graph([(0, 1)]))

    def test_directed_labeling_matches_networkx(self):
        from repro.labeling.directed_pll import build_directed_pll

        nxg = nx.gnp_random_graph(25, 0.15, seed=4, directed=True)
        digraph, originals = digraph_from_networkx(nxg)
        index = build_directed_pll(digraph)
        compact = {node: i for i, node in enumerate(originals)}
        lengths = dict(nx.all_pairs_shortest_path_length(nxg))
        for s in nxg.nodes():
            for t in nxg.nodes():
                expected = lengths.get(s, {}).get(t, float("inf"))
                assert index.distance(compact[s], compact[t]) == expected
