"""Unit tests for the chunked (out-of-core) edge-list loader.

The contract under test: :func:`read_edge_list_chunked` returns exactly
what :func:`read_edge_list` returns for any valid file, at any chunk
size, with or without NumPy — and for malformed input it raises
:class:`GraphFormatError` naming the offending ``path:line`` and chunk,
never silently dropping a line.
"""

from __future__ import annotations

import pytest

import repro.kernels as kernels
from repro.exceptions import GraphError, GraphFormatError
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.io import read_edge_list, read_edge_list_chunked, write_edge_list


def _assert_same_graph(a, b):
    graph_a, ids_a = a
    graph_b, ids_b = b
    assert ids_a == ids_b
    assert graph_a.n == graph_b.n
    assert graph_a.m == graph_b.m
    assert graph_a.unweighted == graph_b.unweighted
    for v in range(graph_a.n):
        assert list(graph_a.neighbors(v)) == list(graph_b.neighbors(v))


@pytest.fixture(params=["numpy", "python"])
def loader(request, monkeypatch):
    """The chunked loader, once per backend (NumPy and pure-Python)."""
    if request.param == "python":
        monkeypatch.setattr(kernels, "_NUMPY_STATE", False)
    elif not kernels.numpy_available():
        pytest.skip("NumPy not installed")
    return read_edge_list_chunked


class TestEquivalence:
    @pytest.mark.parametrize("chunk_edges", [1, 3, 64, 1 << 18])
    def test_matches_buffered_loader(self, tmp_path, loader, chunk_edges):
        path = tmp_path / "g.edges"
        path.write_text(
            "# header\n"
            "10 40\n"
            "40 7 2.5\n"
            "7 10 3\n"
            "10 40 9\n"   # duplicate: min weight wins
            "40 10 1.5\n"  # duplicate, reversed orientation
            "5 5\n"        # self-loop: dropped
            "% other comment\n"
            "1000000 7\n"
        )
        _assert_same_graph(
            loader(path, chunk_edges=chunk_edges), read_edge_list(path)
        )

    def test_roundtrip_generated_graphs(self, tmp_path, loader):
        base = gnp_graph(40, 0.2, seed=3)
        for graph in (base, random_weighted(base, 2, 9, seed=4)):
            path = tmp_path / "g.edges"
            write_edge_list(graph, path)
            _assert_same_graph(loader(path, chunk_edges=7), read_edge_list(path))

    def test_empty_file(self, tmp_path, loader):
        path = tmp_path / "g.edges"
        path.write_text("# nothing but comments\n\n")
        graph, ids = loader(path)
        assert graph.n == 0 and graph.m == 0 and ids == []

    def test_all_self_loops(self, tmp_path, loader):
        path = tmp_path / "g.edges"
        path.write_text("3 3\n9 9\n")
        graph, ids = loader(path)
        assert ids == [3, 9]
        assert graph.n == 2 and graph.m == 0

    def test_duplicate_weights_keep_minimum(self, tmp_path, loader):
        path = tmp_path / "g.edges"
        path.write_text("0 1 5\n1 0 2\n0 1 7\n")
        graph, _ = loader(path, chunk_edges=2)
        assert graph.edge_weight(0, 1) == 2

    def test_unweighted_flag_after_dedup(self, tmp_path, loader):
        # The only non-1 weight belongs to a duplicate that loses the
        # min-merge; the surviving graph is unweighted, exactly as the
        # buffered loader (via GraphBuilder) decides it.
        path = tmp_path / "g.edges"
        path.write_text("0 1 3\n0 1 1\n1 2\n")
        graph, _ = loader(path, chunk_edges=2)
        assert read_edge_list(path)[0].unweighted == graph.unweighted


class TestMalformed:
    """Every bad line fails loudly, naming file:line and the chunk."""

    def test_trailing_garbage_columns(self, tmp_path, loader):
        path = tmp_path / "g.edges"
        path.write_text("0 1\n1 2\n2 3 1.5 extra\n")
        with pytest.raises(GraphFormatError, match=r"g\.edges:3: .*chunk 1"):
            loader(path, chunk_edges=2)

    def test_truncated_line(self, tmp_path, loader):
        path = tmp_path / "g.edges"
        path.write_text("0 1\n7\n")
        with pytest.raises(GraphFormatError, match=r"g\.edges:2:"):
            loader(path)

    def test_non_integer_endpoint(self, tmp_path, loader):
        path = tmp_path / "g.edges"
        path.write_text("0 1\n1 x\n")
        with pytest.raises(GraphFormatError, match="non-integer"):
            loader(path)

    def test_negative_endpoint(self, tmp_path, loader):
        path = tmp_path / "g.edges"
        path.write_text("0 1\n-4 2\n")
        with pytest.raises(GraphFormatError, match="negative node id"):
            loader(path)

    def test_bad_weight(self, tmp_path, loader):
        path = tmp_path / "g.edges"
        path.write_text("0 1 abc\n")
        with pytest.raises(GraphFormatError, match="bad weight"):
            loader(path)

    def test_non_positive_weight(self, tmp_path, loader):
        path = tmp_path / "g.edges"
        path.write_text("0 1 0\n")
        with pytest.raises(GraphFormatError, match="non-positive weight"):
            loader(path)

    def test_error_in_later_chunk_names_that_chunk(self, tmp_path, loader):
        lines = [f"{i} {i + 1}\n" for i in range(10)]
        lines.append("bad line here\n")
        path = tmp_path / "g.edges"
        path.write_text("".join(lines))
        with pytest.raises(GraphFormatError, match=r"g\.edges:11: .*chunk 3"):
            loader(path, chunk_edges=3)

    def test_error_is_a_graph_error(self, tmp_path, loader):
        path = tmp_path / "g.edges"
        path.write_text("nope\n")
        with pytest.raises(GraphError):
            loader(path)

    def test_invalid_chunk_size(self, tmp_path, loader):
        path = tmp_path / "g.edges"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError, match="chunk_edges"):
            loader(path, chunk_edges=0)

    def test_no_silent_drops(self, tmp_path, loader):
        # A valid prefix must not be returned when a later line is bad:
        # the loader either returns the whole file or raises.
        path = tmp_path / "g.edges"
        path.write_text("0 1\n1 2\nbroken\n")
        with pytest.raises(GraphFormatError):
            loader(path, chunk_edges=1)
