"""Unit tests for the random geometric (road-like) generator."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.generators.geometric import random_geometric_graph
from repro.graphs.traversal import is_connected
from repro.treedec.decomposition import mde_treewidth


class TestGeometric:
    def test_deterministic(self):
        a = random_geometric_graph(100, 0.12, seed=1)
        b = random_geometric_graph(100, 0.12, seed=1)
        assert a == b

    def test_connected_by_default(self):
        g = random_geometric_graph(150, 0.08, seed=2)
        assert is_connected(g)

    def test_unstitched_may_disconnect(self):
        g = random_geometric_graph(150, 0.04, seed=3, connect=False)
        # Small radius: almost surely several components.
        from repro.graphs.traversal import connected_components

        assert len(connected_components(g)) >= 1  # structural smoke

    def test_weighted_lengths(self):
        g = random_geometric_graph(80, 0.15, seed=4)
        weights = [w for _, _, w in g.edges()]
        assert weights
        assert all(1 <= w <= 150 for w in weights)
        assert not g.unweighted

    def test_unweighted_mode(self):
        g = random_geometric_graph(80, 0.15, seed=5, weighted=False)
        assert g.unweighted

    def test_low_treewidth_road_regime(self):
        # Geometric graphs with small radius have grid-like treewidth,
        # far below their node count.
        g = random_geometric_graph(200, 0.07, seed=6, weighted=False)
        assert mde_treewidth(g) < 30

    def test_validation(self):
        with pytest.raises(GraphError):
            random_geometric_graph(0, 0.1, seed=0)
        with pytest.raises(GraphError):
            random_geometric_graph(10, 0.0, seed=0)

    def test_h2h_home_turf(self):
        # The generator exists to exercise H2H's favorable regime.
        from repro.graphs.traversal import all_pairs_distances
        from repro.labeling.h2h import build_h2h

        g = random_geometric_graph(60, 0.15, seed=7)
        h2h = build_h2h(g)
        truth = all_pairs_distances(g)
        for s in range(0, 60, 7):
            for t in range(60):
                assert h2h.distance(s, t) == truth[s][t]
