"""Unit tests for graph statistics."""

from __future__ import annotations

import pytest

from repro.graphs.generators.primitives import (
    clique_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.graph import Graph
from repro.graphs.statistics import (
    approximate_clustering,
    core_periphery_coefficient,
    degeneracy,
    degeneracy_ordering,
    degree_histogram,
    summarize,
)


class TestDegeneracy:
    def test_tree_is_1_degenerate(self):
        assert degeneracy(path_graph(10)) == 1
        assert degeneracy(star_graph(6)) == 1

    def test_cycle_is_2_degenerate(self):
        assert degeneracy(cycle_graph(7)) == 2

    def test_clique(self):
        assert degeneracy(clique_graph(6)) == 5

    def test_grid(self):
        assert degeneracy(grid_graph(4, 4)) == 2

    def test_empty(self):
        assert degeneracy(Graph.empty(0)) == 0
        assert degeneracy(Graph.empty(3)) == 0

    def test_matches_networkx(self):
        import networkx as nx

        g = gnp_graph(60, 0.1, seed=9)
        nxg = nx.Graph()
        nxg.add_nodes_from(g.nodes())
        nxg.add_edges_from((u, v) for u, v, _ in g.edges())
        expected = max(nx.core_number(nxg).values())
        assert degeneracy(g) == expected

    def test_core_numbers_match_networkx(self):
        import networkx as nx

        g = gnp_graph(50, 0.12, seed=10)
        nxg = nx.Graph()
        nxg.add_nodes_from(g.nodes())
        nxg.add_edges_from((u, v) for u, v, _ in g.edges())
        expected = nx.core_number(nxg)
        _, core_number = degeneracy_ordering(g)
        for v in g.nodes():
            assert core_number[v] == expected[v]


class TestHistogramAndSummary:
    def test_degree_histogram(self):
        hist = degree_histogram(star_graph(4))
        assert hist == {4: 1, 1: 4}

    def test_summary_fields(self):
        g = grid_graph(3, 3)
        summary = summarize(g)
        assert summary.n == 9
        assert summary.m == 12
        assert summary.min_degree == 2
        assert summary.max_degree == 4
        assert summary.components == 1
        assert summary.degeneracy == 2

    def test_summary_as_row(self):
        row = summarize(path_graph(3)).as_row()
        assert row["n"] == 3
        assert "degeneracy" in row


class TestClustering:
    def test_clique_fully_clustered(self):
        assert approximate_clustering(clique_graph(6), samples=10, seed=1) == pytest.approx(1.0)

    def test_tree_unclustered(self):
        assert approximate_clustering(star_graph(8), samples=10, seed=1) == 0.0

    def test_no_eligible_nodes(self):
        assert approximate_clustering(path_graph(2), samples=5, seed=1) == 0.0


class TestCorePeripheryCoefficient:
    def test_regular_graph_scores_high(self):
        assert core_periphery_coefficient(cycle_graph(10)) == 1.0

    def test_core_periphery_scores_lower(self):
        from repro.graphs.generators.primitives import lollipop_graph

        lollipop = lollipop_graph(10, 50)
        assert core_periphery_coefficient(lollipop) < 0.5

    def test_empty(self):
        assert core_periphery_coefficient(Graph.empty(0)) == 0.0
