"""Unit tests for edge-list I/O."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphFormatError
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.io import read_edge_list, write_edge_list


class TestRead:
    def test_basic(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 1\n1 2\n")
        graph, originals = read_edge_list(path)
        assert graph.n == 3
        assert graph.m == 2
        assert originals == [0, 1, 2]

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# comment\n% other comment\n\n0 1\n")
        graph, _ = read_edge_list(path)
        assert graph.m == 1

    def test_non_contiguous_ids_compacted(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("10 40\n40 7\n")
        graph, originals = read_edge_list(path)
        assert graph.n == 3
        assert originals == [7, 10, 40]
        assert graph.has_edge(1, 2)  # 10 - 40

    def test_weights(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 1 2.5\n1 2 3\n")
        graph, _ = read_edge_list(path)
        assert graph.edge_weight(0, 1) == 2.5
        assert graph.edge_weight(1, 2) == 3
        assert isinstance(graph.edge_weight(1, 2), int)

    def test_duplicate_and_loop_normalized(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 1\n1 0\n2 2\n")
        graph, _ = read_edge_list(path)
        assert graph.m == 1

    def test_bad_column_count(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_non_integer_node(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_negative_node(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("-1 2\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_bad_weight(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 1 heavy\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("")
        graph, originals = read_edge_list(path)
        assert graph.n == 0
        assert originals == []


class TestRoundTrip:
    def test_unweighted_roundtrip(self, tmp_path):
        graph = gnp_graph(30, 0.2, seed=1)
        path = tmp_path / "g.edges"
        write_edge_list(graph, path)
        loaded, _ = read_edge_list(path)
        assert loaded == graph

    def test_weighted_roundtrip(self, tmp_path):
        graph = random_weighted(gnp_graph(20, 0.3, seed=2), 1, 9, seed=3)
        path = tmp_path / "g.edges"
        write_edge_list(graph, path)
        loaded, _ = read_edge_list(path)
        assert loaded == graph

    def test_header_written_as_comments(self, tmp_path):
        graph = gnp_graph(5, 0.5, seed=4)
        path = tmp_path / "g.edges"
        write_edge_list(graph, path, header="hello\nworld")
        lines = path.read_text().splitlines()
        assert lines[0] == "# hello"
        assert lines[1] == "# world"

    def test_isolated_nodes_not_preserved(self, tmp_path):
        # Edge-list formats cannot express isolated nodes; document that.
        from repro.graphs.graph import Graph

        graph = Graph.from_edges(5, [(0, 1)])
        path = tmp_path / "g.edges"
        write_edge_list(graph, path)
        loaded, _ = read_edge_list(path)
        assert loaded.n == 2
