"""Unit tests for the Graph type."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.graphs.generators.primitives import clique_graph, path_graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.n == 4
        assert g.m == 3
        assert g.unweighted

    def test_from_edges_weighted(self):
        g = Graph.from_edges(3, [(0, 1, 5), (1, 2, 2)])
        assert not g.unweighted
        assert g.edge_weight(0, 1) == 5
        assert g.edge_weight(2, 1) == 2

    def test_empty(self):
        g = Graph.empty(5)
        assert g.n == 5
        assert g.m == 0
        assert g.max_degree() == 0

    def test_zero_nodes(self):
        g = Graph.empty(0)
        assert g.n == 0
        assert list(g.edges()) == []
        assert g.average_degree() == 0.0

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1, [], unweighted=True)

    def test_asymmetric_adjacency_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [[(1, 1)], []], unweighted=True)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(1, [[(0, 1)]], unweighted=True)

    def test_out_of_range_neighbor_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [[(5, 1)], []], unweighted=True)

    def test_parallel_edges_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [[(1, 1), (1, 2)], [(0, 1), (0, 2)]], unweighted=True)


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph.from_edges(5, [(0, 4), (0, 2), (0, 1)])
        assert g.neighbor_ids(0) == (1, 2, 4)

    def test_neighbor_weights_aligned(self):
        g = Graph.from_edges(3, [(0, 2, 7), (0, 1, 3)])
        assert g.neighbor_ids(0) == (1, 2)
        assert g.neighbor_weights(0) == (3, 7)

    def test_degree(self):
        g = path_graph(4)
        assert g.degree(0) == 1
        assert g.degree(1) == 2

    def test_degree_out_of_range(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            g.degree(3)

    def test_has_edge(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(0, 0)

    def test_edge_weight_missing_raises(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            g.edge_weight(0, 2)

    def test_edges_iterates_once(self):
        g = clique_graph(4)
        edges = list(g.edges())
        assert len(edges) == 6
        assert all(u < v for u, v, _ in edges)

    def test_total_weight(self):
        g = Graph.from_edges(3, [(0, 1, 2), (1, 2, 3)])
        assert g.total_weight() == 5

    def test_max_and_average_degree(self):
        g = path_graph(5)
        assert g.max_degree() == 2
        assert g.average_degree() == pytest.approx(2 * 4 / 5)


class TestDerivedGraphs:
    def test_induced_subgraph(self):
        g = path_graph(5)
        sub, originals = g.induced_subgraph([1, 2, 3])
        assert originals == [1, 2, 3]
        assert sub.n == 3
        assert sub.m == 2
        assert sub.has_edge(0, 1)

    def test_induced_subgraph_drops_cross_edges(self):
        g = path_graph(5)
        sub, _ = g.induced_subgraph([0, 2, 4])
        assert sub.m == 0

    def test_induced_subgraph_duplicates_collapsed(self):
        g = path_graph(3)
        sub, originals = g.induced_subgraph([1, 1, 2])
        assert originals == [1, 2]
        assert sub.n == 2

    def test_relabeled_roundtrip(self):
        g = Graph.from_edges(3, [(0, 1, 2), (1, 2, 5)])
        permuted = g.relabeled([2, 0, 1])
        assert permuted.edge_weight(2, 0) == 2
        assert permuted.edge_weight(0, 1) == 5

    def test_relabeled_rejects_non_permutation(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            g.relabeled([0, 0, 1])

    def test_with_unit_weights(self):
        g = Graph.from_edges(3, [(0, 1, 9), (1, 2, 4)])
        unit = g.with_unit_weights()
        assert unit.unweighted
        assert unit.edge_weight(0, 1) == 1
        assert unit.m == g.m


class TestDunder:
    def test_equality(self):
        a = path_graph(4)
        b = path_graph(4)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert path_graph(4) != path_graph(5)

    def test_repr(self):
        g = Graph.from_edges(3, [(0, 1, 2)])
        assert "weighted" in repr(g)
        assert "n=3" in repr(g)
