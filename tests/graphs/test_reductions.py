"""Unit tests for the equivalence (twin) reduction."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.generators.primitives import clique_graph, star_graph
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.graph import Graph
from repro.graphs.reductions import (
    eliminate_equivalent_nodes,
    reduction_identity,
    verify_reduction_distances,
)


class TestFalseTwins:
    def test_star_leaves_fold(self):
        # All leaves of a star share the neighborhood {center}.
        reduction = eliminate_equivalent_nodes(star_graph(5))
        assert reduction.reduced.n == 2
        assert reduction.removed_count == 4

    def test_false_twin_distance_is_two(self):
        reduction = eliminate_equivalent_nodes(star_graph(3))
        leaves = [v for v in range(1, 4)]
        assert reduction.class_distance(leaves[0], leaves[1]) == 2

    def test_degree_zero_nodes_not_folded(self):
        g = Graph.empty(4)
        reduction = eliminate_equivalent_nodes(g)
        assert reduction.reduced.n == 4
        assert reduction.removed_count == 0


class TestTrueTwins:
    def test_clique_folds_to_single_node(self):
        reduction = eliminate_equivalent_nodes(clique_graph(5))
        assert reduction.reduced.n == 1

    def test_true_twin_distance_is_one(self):
        reduction = eliminate_equivalent_nodes(clique_graph(4))
        assert reduction.class_distance(0, 3) == 1

    def test_same_node_distance_zero(self):
        reduction = eliminate_equivalent_nodes(clique_graph(3))
        assert reduction.class_distance(1, 1) == 0


class TestMapDistance:
    def test_cross_class_uses_reduced_distance(self):
        # Two stars joined at the centers: leaves fold per star.
        g = Graph.from_edges(6, [(0, 1), (0, 2), (3, 4), (3, 5), (0, 3)])
        reduction = eliminate_equivalent_nodes(g)
        rs = reduction.representative[1]
        rt = reduction.representative[4]
        assert rs != rt
        # dist(leaf, other-star leaf) = 1 + 1 + 1 = 3.
        assert reduction.map_distance(1, 4, 3) == 3

    def test_same_node(self):
        reduction = eliminate_equivalent_nodes(star_graph(3))
        assert reduction.map_distance(2, 2, 999) == 0

    def test_class_distance_rejects_cross_class(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        reduction = eliminate_equivalent_nodes(g)
        rep0 = reduction.representative[0]
        rep1 = reduction.representative[1]
        if rep0 != rep1:
            with pytest.raises(GraphError):
                reduction.class_distance(0, 1)


class TestPreservation:
    @pytest.mark.parametrize("seed", range(8))
    def test_distances_preserved_random(self, seed):
        g = gnp_graph(35, 0.12, seed=seed)
        reduction = eliminate_equivalent_nodes(g)
        verify_reduction_distances(reduction, samples=80)

    def test_weighted_graphs_untouched(self):
        g = random_weighted(gnp_graph(15, 0.3, seed=1), 2, 5, seed=2)
        reduction = eliminate_equivalent_nodes(g)
        assert reduction.reduced is g
        assert reduction.removed_count == 0

    def test_empty_graph(self):
        reduction = eliminate_equivalent_nodes(Graph.empty(0))
        verify_reduction_distances(reduction)


class TestIdentity:
    def test_identity_reduction(self):
        g = gnp_graph(10, 0.3, seed=5)
        reduction = reduction_identity(g)
        assert reduction.reduced is g
        assert reduction.representative == list(range(10))
        assert all(kind is None for kind in reduction.twin_kind)
