"""Unit tests for the Euler-tour LCA structure."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import DecompositionError
from repro.treedec.lca import ForestLCA, naive_lca


def random_forest(n: int, n_roots: int, seed: int) -> list[int | None]:
    rng = random.Random(seed)
    parent: list[int | None] = []
    # Parents always point to lower indexes, so index 0..n_roots-1 are roots.
    for v in range(n):
        if v < n_roots:
            parent.append(None)
        else:
            parent.append(rng.randrange(v))
    return parent


class TestSingleTree:
    def test_path_tree(self):
        parent = [None, 0, 1, 2, 3]
        lca = ForestLCA(parent)
        assert lca.lca(4, 2) == 2
        assert lca.lca(4, 4) == 4
        assert lca.lca(0, 4) == 0
        assert lca.depth(4) == 4

    def test_binary_tree(self):
        #      0
        #    1   2
        #   3 4 5 6
        parent = [None, 0, 0, 1, 1, 2, 2]
        lca = ForestLCA(parent)
        assert lca.lca(3, 4) == 1
        assert lca.lca(3, 6) == 0
        assert lca.lca(5, 6) == 2
        assert lca.is_ancestor(0, 6)
        assert not lca.is_ancestor(1, 6)

    def test_single_node(self):
        lca = ForestLCA([None])
        assert lca.lca(0, 0) == 0
        assert lca.root(0) == 0

    def test_empty_forest(self):
        lca = ForestLCA([])
        assert lca.n == 0


class TestForest:
    def test_roots_and_membership(self):
        parent = [None, None, 0, 1]
        lca = ForestLCA(parent)
        assert lca.root(2) == 0
        assert lca.root(3) == 1
        assert lca.same_tree(0, 2)
        assert not lca.same_tree(2, 3)

    def test_cross_tree_lca_raises(self):
        lca = ForestLCA([None, None])
        with pytest.raises(DecompositionError):
            lca.lca(0, 1)

    def test_out_of_range_parent_rejected(self):
        with pytest.raises(DecompositionError):
            ForestLCA([5])

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_naive_on_random_forests(self, seed):
        parent = random_forest(60, n_roots=3, seed=seed)
        lca = ForestLCA(parent)
        rng = random.Random(seed + 100)
        for _ in range(200):
            u = rng.randrange(60)
            v = rng.randrange(60)
            expected = naive_lca(parent, u, v)
            if expected is None:
                assert not lca.same_tree(u, v)
            else:
                assert lca.lca(u, v) == expected

    def test_depths_match_parent_walk(self):
        parent = random_forest(40, n_roots=2, seed=9)
        lca = ForestLCA(parent)
        for v in range(40):
            depth = 0
            x = parent[v]
            while x is not None:
                depth += 1
                x = parent[x]
            assert lca.depth(v) == depth
