"""Unit tests for MDE tree decompositions and their validation."""

from __future__ import annotations

import pytest

from repro.exceptions import DecompositionError
from repro.graphs.generators.primitives import (
    clique_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.graph import Graph
from repro.treedec.decomposition import (
    decomposition_from_elimination,
    mde_tree_decomposition,
    mde_treewidth,
)
from repro.treedec.elimination import minimum_degree_elimination


class TestPaperExample:
    def test_parents_match_figure_2(self, paper_graph):
        td = mde_tree_decomposition(paper_graph)
        # Example 4: parent of B8 is B10; B_n (B12) is the root.
        # 0-based: parent[pos] is a bag index == elimination position.
        parent_1based = [None if p is None else p + 1 for p in td.parent]
        assert parent_1based == [2, 3, 4, 11, 8, 7, 8, 10, 10, 11, 12, None]

    def test_validates(self, paper_graph):
        mde_tree_decomposition(paper_graph).validate()

    def test_width(self, paper_graph):
        assert mde_tree_decomposition(paper_graph).width == 3


class TestValidity:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: path_graph(10),
            lambda: cycle_graph(9),
            lambda: clique_graph(6),
            lambda: star_graph(7),
            lambda: grid_graph(4, 4),
            lambda: gnp_graph(35, 0.12, seed=1),
            lambda: gnp_graph(35, 0.05, seed=2),  # likely disconnected
        ],
    )
    def test_decomposition_is_valid(self, factory):
        graph = factory()
        td = mde_tree_decomposition(graph)
        td.validate()

    def test_known_treewidths(self):
        assert mde_tree_decomposition(path_graph(10)).width == 1
        assert mde_tree_decomposition(cycle_graph(8)).width == 2
        assert mde_tree_decomposition(clique_graph(7)).width == 6
        assert mde_tree_decomposition(star_graph(9)).width == 1

    def test_grid_treewidth_reasonable(self):
        # tw(grid k x k) = k; MDE is a heuristic so allow slack upward.
        width = mde_tree_decomposition(grid_graph(5, 5)).width
        assert 5 <= width <= 10

    def test_mde_treewidth_helper(self):
        assert mde_treewidth(clique_graph(5)) == 4


class TestStructure:
    def test_parents_have_larger_positions(self):
        td = mde_tree_decomposition(gnp_graph(40, 0.1, seed=3))
        for i, p in enumerate(td.parent):
            if p is not None:
                assert p > i

    def test_forest_roots_match_components(self):
        from repro.graphs.traversal import connected_components

        g = Graph.from_edges(10, [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (7, 8)])
        td = mde_tree_decomposition(g)
        assert len(td.roots) == len(connected_components(g))

    def test_height_of_path_decomposition(self):
        td = mde_tree_decomposition(path_graph(8))
        assert td.height() >= 2
        assert td.height() <= 8

    def test_height_empty(self):
        td = mde_tree_decomposition(Graph.empty(0))
        assert td.height() == 0

    def test_bag_of(self):
        td = mde_tree_decomposition(path_graph(4))
        for v in range(4):
            assert v in td.bag_of(v)

    def test_ancestors_chain(self):
        td = mde_tree_decomposition(path_graph(6))
        for i in range(len(td.bags)):
            chain = td.ancestors(i)
            # Chain ends at a root.
            if chain:
                assert td.parent[chain[-1]] is None

    def test_children_inverse_of_parent(self):
        td = mde_tree_decomposition(gnp_graph(30, 0.15, seed=4))
        for i, p in enumerate(td.parent):
            if p is not None:
                assert i in td.children[p]


class TestFromElimination:
    def test_partial_elimination_rejected(self):
        result = minimum_degree_elimination(gnp_graph(20, 0.3, seed=5), bandwidth=2)
        with pytest.raises(DecompositionError):
            decomposition_from_elimination(result)

    def test_lemma2_violation_detected(self):
        # Build a decomposition then corrupt a bag to break Lemma 2.
        td = mde_tree_decomposition(path_graph(5))
        td.bags[-1] = tuple(sorted(set(td.bags[-1]) | {0}))
        with pytest.raises(DecompositionError):
            td.validate()

    def test_edge_coverage_violation_detected(self):
        td = mde_tree_decomposition(path_graph(3))
        td.bags = [tuple(b) for b in [(0,), (1,), (2,)]]
        with pytest.raises(DecompositionError):
            td.validate()
