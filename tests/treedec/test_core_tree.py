"""Unit tests for the core-tree decomposition (Section 4.3)."""

from __future__ import annotations

import pytest

from repro.exceptions import DecompositionError
from repro.graphs.generators.primitives import clique_graph, path_graph
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.graph import Graph
from repro.treedec.core_tree import core_tree_decomposition
from repro.treedec.elimination import minimum_degree_elimination


class TestPaperExample:
    """Example 5: bandwidth d = 2 on the Figure 1(a) graph."""

    def test_boundary_and_core(self, paper_graph):
        ctd = core_tree_decomposition(paper_graph, 2)
        assert ctd.boundary == 8
        assert [v + 1 for v in ctd.core_nodes] == [9, 10, 11, 12]

    def test_roots(self, paper_graph):
        ctd = core_tree_decomposition(paper_graph, 2)
        root_nodes = sorted(ctd.node_at(r) + 1 for r in ctd.roots)
        assert root_nodes == [4, 8]  # R = {4, 8}

    def test_interfaces(self, paper_graph):
        ctd = core_tree_decomposition(paper_graph, 2)
        interfaces = {
            ctd.node_at(r) + 1: [u + 1 for u in nodes] for r, nodes in ctd.interface.items()
        }
        assert interfaces == {4: [11, 12], 8: [10, 12]}

    def test_tree_membership(self, paper_graph):
        # T8 contains B5, B6, B7, B8 (Example 5).
        ctd = core_tree_decomposition(paper_graph, 2)
        members = ctd.tree_members()
        by_root = {
            ctd.node_at(r) + 1: sorted(ctd.node_at(p) + 1 for p in positions)
            for r, positions in members.items()
        }
        assert by_root[8] == [5, 6, 7, 8]
        assert by_root[4] == [1, 2, 3, 4]

    def test_root_function(self, paper_graph):
        ctd = core_tree_decomposition(paper_graph, 2)
        # r(6) = 8 (Example 9) and r(5) = r(6) (Example 12).
        pos6 = ctd.position[5]
        pos5 = ctd.position[4]
        assert ctd.node_at(ctd.root[pos6]) + 1 == 8
        assert ctd.root[pos5] == ctd.root[pos6]

    def test_validates(self, paper_graph):
        core_tree_decomposition(paper_graph, 2).validate()


class TestGeneral:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 5, 10])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_validate_random(self, d, seed):
        g = gnp_graph(50, 0.1, seed=seed)
        ctd = core_tree_decomposition(g, d)
        ctd.validate()

    def test_bandwidth_zero_everything_core(self):
        g = gnp_graph(20, 0.3, seed=3)
        ctd = core_tree_decomposition(g, 0)
        assert ctd.boundary == 0
        assert ctd.core_nodes == list(range(20))
        assert ctd.forest_height() == 0

    def test_huge_bandwidth_everything_forest(self):
        g = gnp_graph(25, 0.2, seed=4)
        ctd = core_tree_decomposition(g, 1000)
        assert ctd.boundary == 25
        assert ctd.core_nodes == []

    def test_interface_sizes_bounded(self):
        g = gnp_graph(60, 0.12, seed=5)
        for d in (2, 4, 8):
            ctd = core_tree_decomposition(g, d)
            assert all(len(nodes) <= d for nodes in ctd.interface.values())

    def test_interface_nodes_are_core(self):
        g = gnp_graph(60, 0.12, seed=6)
        ctd = core_tree_decomposition(g, 4)
        for nodes in ctd.interface.values():
            assert all(ctd.is_core(u) for u in nodes)

    def test_tree_of_core_node_raises(self):
        g = clique_graph(6)
        ctd = core_tree_decomposition(g, 2)
        with pytest.raises(DecompositionError):
            ctd.tree_of(0)

    def test_elimination_reuse(self):
        g = gnp_graph(30, 0.15, seed=7)
        elimination = minimum_degree_elimination(g, bandwidth=3)
        ctd = core_tree_decomposition(g, 3, elimination=elimination)
        assert ctd.elimination is elimination

    def test_elimination_bandwidth_mismatch(self):
        g = gnp_graph(20, 0.2, seed=8)
        elimination = minimum_degree_elimination(g, bandwidth=3)
        with pytest.raises(DecompositionError):
            core_tree_decomposition(g, 5, elimination=elimination)

    def test_neighbors_split_chain_and_interface(self):
        # Lemma 15(1): tree neighbors of any bag lie on its ancestor
        # chain; core neighbors lie in the tree's interface.
        g = gnp_graph(70, 0.1, seed=9)
        ctd = core_tree_decomposition(g, 4)
        for pos in range(ctd.boundary):
            step = ctd.elimination.steps[pos]
            chain_nodes = {ctd.node_at(p) for p in ctd.ancestors_of(pos)}
            interface = set(ctd.interface[ctd.root[pos]])
            for u in step.neighbors:
                if ctd.is_core(u):
                    assert u in interface, (pos, u)
                else:
                    assert u in chain_nodes, (pos, u)

    def test_depths_consistent(self):
        g = gnp_graph(40, 0.12, seed=10)
        ctd = core_tree_decomposition(g, 3)
        for pos in range(ctd.boundary):
            p = ctd.parent[pos]
            if p is None:
                assert ctd.depth[pos] == 0
            else:
                assert ctd.depth[pos] == ctd.depth[p] + 1

    def test_lca_within_tree(self):
        g = path_graph(12)
        ctd = core_tree_decomposition(g, 2)
        members = ctd.tree_members()
        for positions in members.values():
            for a in positions[:4]:
                for b in positions[:4]:
                    meet = ctd.lca(a, b)
                    assert meet in positions

    def test_forest_height_path(self):
        g = path_graph(10)
        ctd = core_tree_decomposition(g, 2)
        assert ctd.forest_height() >= 1

    def test_empty_graph(self):
        ctd = core_tree_decomposition(Graph.empty(0), 5)
        assert ctd.boundary == 0
        assert ctd.roots == []
