"""Unit tests for treewidth bounds."""

from __future__ import annotations

import pytest

from repro.graphs.generators.primitives import (
    clique_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.generators.worst_case import rolling_cliques_graph
from repro.graphs.graph import Graph
from repro.treedec.treewidth import TreewidthBounds, mmd_plus_lower_bound, treewidth_bounds


class TestMmdPlus:
    def test_known_exact_values(self):
        # MMD+ is exact on these families.
        assert mmd_plus_lower_bound(path_graph(10)) == 1
        assert mmd_plus_lower_bound(cycle_graph(8)) == 2
        assert mmd_plus_lower_bound(clique_graph(6)) == 5
        assert mmd_plus_lower_bound(star_graph(7)) == 1

    def test_grid_lower_bound(self):
        # tw(k x k grid) = k; MMD+ finds at least 3 on a 5x5 grid.
        assert mmd_plus_lower_bound(grid_graph(5, 5)) >= 3

    def test_rolling_cliques_lower_bound(self):
        # Lemma 3's gadget has tw >= d - 1; MMD+ certifies a large part.
        d = 12
        assert mmd_plus_lower_bound(rolling_cliques_graph(4, d)) >= d - 1

    def test_empty_and_tiny(self):
        assert mmd_plus_lower_bound(Graph.empty(0)) == 0
        assert mmd_plus_lower_bound(Graph.empty(3)) == 0
        assert mmd_plus_lower_bound(Graph.from_edges(2, [(0, 1)])) == 1

    def test_at_least_degeneracy_is_not_guaranteed_but_bracket_is(self):
        # treewidth_bounds combines MMD+ with degeneracy, so the bracket
        # lower bound dominates both.
        from repro.graphs.statistics import degeneracy

        g = gnp_graph(40, 0.15, seed=3)
        bounds = treewidth_bounds(g)
        assert bounds.lower >= degeneracy(g)
        assert bounds.lower >= mmd_plus_lower_bound(g)


class TestBracket:
    @pytest.mark.parametrize("seed", range(5))
    def test_lower_at_most_upper(self, seed):
        g = gnp_graph(35, 0.12, seed=seed)
        bounds = treewidth_bounds(g)
        assert 0 <= bounds.lower <= bounds.upper

    def test_clique_bracket_tight(self):
        bounds = treewidth_bounds(clique_graph(7))
        assert bounds.lower == bounds.upper == 6

    def test_tree_bracket_tight(self):
        bounds = treewidth_bounds(path_graph(12))
        assert bounds.lower == bounds.upper == 1

    def test_invalid_bracket_rejected(self):
        with pytest.raises(ValueError):
            TreewidthBounds(lower=5, upper=3)
