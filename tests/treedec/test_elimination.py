"""Unit tests for the weighted MDE engine, including the paper's trace."""

from __future__ import annotations

import pytest

from repro.exceptions import DecompositionError
from repro.graphs.generators.primitives import clique_graph, cycle_graph, path_graph, star_graph
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.graph import Graph
from repro.graphs.traversal import single_source_distances
from repro.treedec.elimination import (
    elimination_width_profile,
    minimum_degree_elimination,
)


class TestPaperExample:
    """Examples 3-5 of the paper, on the Figure 1(a) graph."""

    def test_full_elimination_order(self, paper_graph):
        result = minimum_degree_elimination(paper_graph, bandwidth=None)
        # The paper's order v1..v12 is 0-based 0..11 here.
        assert result.eliminated_order() == list(range(12))

    def test_bags_match_figure_2(self, paper_graph):
        result = minimum_degree_elimination(paper_graph, bandwidth=None)
        bags_1based = [
            sorted(x + 1 for x in (step.node,) + step.neighbors) for step in result.steps
        ]
        assert bags_1based == [
            [1, 2],
            [2, 3],
            [3, 4, 12],
            [4, 11, 12],
            [5, 8, 12],
            [6, 7, 8],
            [7, 8, 10],
            [8, 10, 12],
            [9, 10, 11, 12],
            [10, 11, 12],
            [11, 12],
            [12],
        ]

    def test_bandwidth_2_boundary(self, paper_graph):
        # Example 5: d = 2 gives λ = 8 and core {v9, v10, v11, v12}.
        result = minimum_degree_elimination(paper_graph, bandwidth=2)
        assert result.boundary == 8
        assert [v + 1 for v in result.core_nodes] == [9, 10, 11, 12]

    def test_treewidth_of_example(self, paper_graph):
        result = minimum_degree_elimination(paper_graph, bandwidth=None)
        # Figure 2: the largest bag has 4 nodes, tw(T) = 3 (|N_9| = 3).
        assert result.width == 3


class TestBasics:
    def test_path_eliminates_fully_at_width_1(self):
        result = minimum_degree_elimination(path_graph(8), bandwidth=None)
        assert result.boundary == 8
        assert result.width == 1

    def test_clique_width(self):
        result = minimum_degree_elimination(clique_graph(5), bandwidth=None)
        assert result.width == 4

    def test_cycle_width_2(self):
        assert minimum_degree_elimination(cycle_graph(9)).width == 2

    def test_bandwidth_zero_keeps_connected_graph_in_core(self):
        g = cycle_graph(6)
        result = minimum_degree_elimination(g, bandwidth=0)
        assert result.boundary == 0
        assert result.core_nodes == list(range(6))

    def test_bandwidth_zero_eliminates_isolated_nodes(self):
        g = Graph.from_edges(4, [(0, 1)])
        result = minimum_degree_elimination(g, bandwidth=0)
        assert result.boundary == 2
        assert sorted(step.node for step in result.steps) == [2, 3]

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(DecompositionError):
            minimum_degree_elimination(path_graph(3), bandwidth=-1)

    def test_max_steps(self):
        result = minimum_degree_elimination(path_graph(10), max_steps=3)
        assert result.boundary == 3

    def test_empty_graph(self):
        result = minimum_degree_elimination(Graph.empty(0))
        assert result.boundary == 0
        assert result.width == 0

    def test_bandwidth_stops_at_exceeding_degree(self):
        # Star: center degree n, leaves degree 1; with d = 1 all leaves
        # are eliminated and the center follows (its degree shrinks).
        result = minimum_degree_elimination(star_graph(5), bandwidth=1)
        assert result.boundary == 6

    def test_bag_sizes_bounded_by_bandwidth(self):
        g = gnp_graph(60, 0.15, seed=3)
        for d in (1, 2, 4, 8):
            result = minimum_degree_elimination(g, bandwidth=d)
            assert all(len(step.neighbors) <= d for step in result.steps)


class TestCoreGraph:
    def test_core_graph_compacts(self):
        g = gnp_graph(40, 0.2, seed=4)
        result = minimum_degree_elimination(g, bandwidth=3)
        core, originals = result.core_graph()
        assert core.n == len(result.core_nodes)
        assert originals == result.core_nodes

    def test_core_graph_weighted_after_fill_in(self):
        g = path_graph(5)
        # Eliminating middle path nodes creates weight-2+ shortcut edges.
        result = minimum_degree_elimination(g, max_steps=3)
        core, _ = result.core_graph()
        if core.m:
            assert max(w for _, _, w in core.edges()) >= 1

    def test_lemma7_core_distances_preserved(self):
        # dist_{G_{λ+1}}(s, t) == dist_G(s, t) for core nodes (Lemma 7).
        g = gnp_graph(40, 0.12, seed=5)
        result = minimum_degree_elimination(g, bandwidth=3)
        core, originals = result.core_graph()
        for i, orig in enumerate(originals[:8]):
            truth = single_source_distances(g, orig)
            reduced = single_source_distances(core, i)
            for j, other in enumerate(originals):
                assert reduced[j] == truth[other], (orig, other)

    def test_lemma7_weighted_input(self):
        g = random_weighted(gnp_graph(25, 0.2, seed=6), 1, 5, seed=7)
        result = minimum_degree_elimination(g, bandwidth=3)
        core, originals = result.core_graph()
        for i, orig in enumerate(originals[:5]):
            truth = single_source_distances(g, orig)
            reduced = single_source_distances(core, i)
            for j, other in enumerate(originals):
                assert reduced[j] == truth[other]


class TestLocalDistances:
    def brute_force_local_distance(self, graph, s, t, k):
        """Shortest path with all intermediates among the first k
        eliminated nodes (Definition 5), by exhaustive Dijkstra on the
        allowed subgraph."""
        import heapq

        from repro.graphs.graph import INF

        allowed = set(k)
        dist = {s: 0}
        heap = [(0, s)]
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist.get(v, INF):
                continue
            if v == t:
                return d
            for u, w in graph.neighbors(v):
                if u != t and u not in allowed:
                    continue
                nd = d + w
                if nd < dist.get(u, INF):
                    dist[u] = nd
                    heapq.heappush(heap, (nd, u))
        return dist.get(t, INF)

    @pytest.mark.parametrize("seed", range(4))
    def test_lemma14_delta_is_local_distance(self, seed):
        # δ⁻_i(u) equals the (i-1)-local distance between v_i and u.
        g = gnp_graph(25, 0.18, seed=seed)
        result = minimum_degree_elimination(g, bandwidth=4)
        order = result.eliminated_order()
        for i, step in enumerate(result.steps):
            earlier = order[:i]
            for u, recorded in step.local_distance.items():
                expected = self.brute_force_local_distance(g, step.node, u, earlier)
                assert recorded == expected, (i, step.node, u)


class TestWidthProfile:
    def test_profile_matches_full_run(self):
        g = gnp_graph(30, 0.2, seed=8)
        profile = elimination_width_profile(g)
        assert len(profile) == 30
        result = minimum_degree_elimination(g)
        assert profile == [len(step.neighbors) for step in result.steps]

    def test_profile_of_tree_is_ones(self):
        profile = elimination_width_profile(path_graph(6))
        assert profile[:-1] == [1] * 5
        assert profile[-1] == 0
