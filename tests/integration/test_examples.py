"""Integration: every example script runs cleanly."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    sorted(path.name for path in EXAMPLES_DIR.glob("*.py")),
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{script} produced no output"


def test_at_least_three_examples_exist():
    assert len(list(EXAMPLES_DIR.glob("*.py"))) >= 3
