"""Integration: the full CLI workflow a user would run, end to end."""

from __future__ import annotations

import pytest

from repro.cli.main import main


@pytest.fixture
def workdir(tmp_path, capsys):
    return tmp_path


class TestPipeline:
    def test_generate_build_audit_query_path(self, workdir, capsys):
        edges = workdir / "g.edges"
        index = workdir / "g.idx"

        assert main(["generate", "talk", "-o", str(edges)]) == 0
        assert main(["stats", str(edges)]) == 0
        assert main(["build", str(edges), "-d", "10", "-o", str(index)]) == 0
        assert main(["audit", str(index), "--samples", "80"]) == 0
        capsys.readouterr()

        assert main(["query", str(index), "0", "100"]) == 0
        out = capsys.readouterr().out
        assert "dist(0, 100)" in out

        assert main(["path", str(index), "0", "100"]) == 0
        out = capsys.readouterr().out
        assert "->" in out or "cannot reach" in out

    def test_find_bandwidth_then_build_at_found_d(self, workdir, capsys):
        edges = workdir / "g.edges"
        assert main(["generate", "talk", "-o", str(edges)]) == 0
        capsys.readouterr()
        assert main(["find-bandwidth", str(edges), "--memory-mb", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "smallest feasible bandwidth" in out
        # Parse the found d and build with it.
        found = int(out.split("d = ")[1].split()[0])
        index = workdir / "g.idx"
        assert main(["build", str(edges), "-d", str(found), "-o", str(index)]) == 0

    def test_audit_detects_tampering(self, workdir, capsys):
        import json

        edges = workdir / "g.edges"
        index_path = workdir / "g.idx"
        main(["generate", "talk", "-o", str(edges)])
        main(["build", str(edges), "-d", "5", "-o", str(index_path)])
        document = json.loads(index_path.read_text())
        # Tamper with a stored tree-label distance.
        for label in document["tree_labels"]:
            if label:
                key = next(iter(label))
                label[key] = label[key] + 7
                break
        index_path.write_text(json.dumps(document))
        capsys.readouterr()
        assert main(["audit", str(index_path), "--samples", "400"]) == 1
        assert "FAIL" in capsys.readouterr().out
