"""Integration: the headline quantitative shapes of the paper hold.

These tests pin the *relationships* (who wins, roughly by how much) on
small registry datasets — the full-figure versions live under
``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import load_dataset
from repro.bench.workloads import random_pairs
from repro.core.ct_index import CTIndex
from repro.exceptions import OverMemoryError
from repro.labeling.base import MemoryBudget
from repro.labeling.cd import build_cd
from repro.labeling.psl_variants import build_psl_plus


@pytest.fixture(scope="module")
def talk():
    return load_dataset("talk")


class TestSizeShapes:
    def test_ct_much_smaller_than_psl_plus(self, talk):
        psl = build_psl_plus(talk)
        ct = CTIndex.build(talk, 100)
        # Paper: 4.79x smaller on average; require at least 1.5x here.
        assert psl.size_entries() > 1.5 * ct.size_entries()

    def test_bandwidth_sweep_monotone_with_slack(self, talk):
        sizes = [CTIndex.build(talk, d).size_entries() for d in (0, 2, 5, 20)]
        # Sizes fall steeply early in the sweep (Figure 10a).
        assert sizes[1] < sizes[0]
        assert sizes[3] < sizes[0] * 0.6

    def test_cd_larger_than_ct(self, talk):
        cd = build_cd(talk, 100)
        ct = CTIndex.build(talk, 100)
        assert cd.size_entries() > 3 * ct.size_entries()  # Table 3: ~10x

    def test_cd_slower_to_build_than_ct(self, talk):
        cd = build_cd(talk, 100)
        ct = CTIndex.build(talk, 100)
        assert cd.build_seconds > 2 * ct.build_seconds


class TestOmBehaviour:
    def test_om_pattern_under_budget(self, talk):
        psl_size = build_psl_plus(talk).size_bytes()
        budget = MemoryBudget(limit_bytes=int(psl_size * 0.6))
        with pytest.raises(OverMemoryError):
            build_psl_plus(talk, budget=budget)
        # CT-100 fits in the same budget.
        index = CTIndex.build(talk, 100, budget=MemoryBudget(limit_bytes=int(psl_size * 0.6)))
        assert index.size_bytes() <= psl_size * 0.6


class TestQueryShapes:
    def test_sub_millisecond_queries(self, talk):
        import time

        index = CTIndex.build(talk, 100)
        workload = random_pairs(talk, 3000, seed=5)
        started = time.perf_counter()
        for s, t in workload.pairs:
            index.distance(s, t)
        per_query = (time.perf_counter() - started) / len(workload)
        # Paper: below 0.4 ms at d=100 even on the largest graph.
        assert per_query < 1e-3

    def test_query_case_mix_realistic(self, talk):
        index = CTIndex.build(talk, 20)
        workload = random_pairs(talk, 2000, seed=6)
        for s, t in workload.pairs:
            index.distance(s, t)
        # With most nodes in the forest, tree-touching cases dominate.
        tree_cases = (
            index.case_counts["case2"]
            + index.case_counts["case3"]
            + index.case_counts["case4"]
        )
        assert tree_cases > index.case_counts["case1"]
