"""Integration: every index type answers identically on shared graphs."""

from __future__ import annotations

import random

import pytest

from repro.core.ct_index import CTIndex
from repro.graphs.generators.core_periphery import CorePeripheryConfig, core_periphery_graph
from repro.graphs.generators.power_law import barabasi_albert_graph
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.generators.worst_case import rolling_cliques_graph
from repro.graphs.traversal import single_source_distances
from repro.labeling.cd import build_cd
from repro.labeling.h2h import build_h2h
from repro.labeling.pll import build_pll
from repro.labeling.psl import build_psl
from repro.labeling.psl_variants import build_psl_plus, build_psl_star


def build_lineup(graph):
    indexes = {
        "PLL": build_pll(graph),
        "PSL+": build_psl_plus(graph),
        "PSL*": build_psl_star(graph),
        "H2H": build_h2h(graph),
        "CD-4": build_cd(graph, 4),
        "CT-0": CTIndex.build(graph, 0),
        "CT-4": CTIndex.build(graph, 4),
        "CT-64": CTIndex.build(graph, 64),
    }
    if graph.unweighted:
        indexes["PSL"] = build_psl(graph)
    return indexes


GRAPHS = {
    "gnp": lambda: gnp_graph(60, 0.08, seed=101),
    "gnp_disconnected": lambda: gnp_graph(60, 0.02, seed=102),
    "weighted": lambda: random_weighted(gnp_graph(40, 0.12, seed=103), 1, 9, seed=104),
    "ba": lambda: barabasi_albert_graph(80, 3, seed=105),
    "core_periphery": lambda: core_periphery_graph(
        CorePeripheryConfig(core_size=40, community_count=5, fringe_size=120), seed=106
    ),
    "rolling_cliques": lambda: rolling_cliques_graph(3, 6),
}


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_methods_agree_with_search(name):
    graph = GRAPHS[name]()
    indexes = build_lineup(graph)
    rng = random.Random(999)
    sources = [rng.randrange(graph.n) for _ in range(12)]
    for s in sources:
        truth = single_source_distances(graph, s)
        for t in range(graph.n):
            expected = truth[t]
            for method, index in indexes.items():
                assert index.distance(s, t) == expected, (name, method, s, t)


def test_index_sizes_ranked_on_core_periphery():
    """The size ordering the whole paper is about."""
    graph = core_periphery_graph(
        CorePeripheryConfig(
            core_size=100, core_density=0.5, community_count=12, fringe_size=500
        ),
        seed=107,
    )
    psl_plus = build_psl_plus(graph)
    psl_star = build_psl_star(graph)
    ct = CTIndex.build(graph, 10)
    assert ct.size_entries() < psl_star.size_entries() < psl_plus.size_entries()


def test_ct_builds_faster_than_psl_plus_on_core_periphery():
    graph = core_periphery_graph(
        CorePeripheryConfig(
            core_size=120, core_density=0.5, community_count=12, fringe_size=700
        ),
        seed=108,
    )
    # Wall-clock comparison: take the min of three builds per method so a
    # transient load spike on a busy CI machine cannot flip the outcome.
    psl_plus_seconds = min(
        build_psl_plus(graph).build_seconds for _ in range(3)
    )
    ct_seconds = min(CTIndex.build(graph, 20).build_seconds for _ in range(3))
    assert ct_seconds < psl_plus_seconds * 1.5
