"""Smoke tests for the observability-overhead bench driver."""

from __future__ import annotations

import json

import repro.obs as obs
from repro.bench.obs_bench import obs_bench_result, record_obs_entry
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)


def _small_graph():
    cfg = CorePeripheryConfig(
        core_size=25,
        community_count=5,
        community_size_min=4,
        community_size_max=15,
        fringe_size=90,
    )
    return core_periphery_graph(cfg, seed=11)


class TestObsBench:
    def test_result_rows_and_phases(self):
        result = obs_bench_result(
            _small_graph(), 4, name="smoke", queries=120, repeats=1
        )
        assert [row["config"] for row in result.rows] == ["disabled", "enabled"]
        assert all(row["queries"] == 120 for row in result.rows)
        assert result.identical
        assert isinstance(result.overhead, float)
        phase_names = {phase["name"] for phase in result.phases}
        assert "ct.build" in phase_names
        assert "treedec.mde" in phase_names
        # The bench restores the observability switches it flipped.
        assert not obs.enabled()
        assert obs.current_tracer() is None

    def test_record_appends_history(self, tmp_path):
        result = obs_bench_result(
            _small_graph(), 4, name="smoke", queries=60, repeats=1
        )
        path = tmp_path / "BENCH_obs.json"
        record_obs_entry(result, path)
        record_obs_entry(result, path)
        document = json.loads(path.read_text())
        assert document["schema"] == 1
        assert len(document["entries"]) == 2
        entry = document["entries"][0]
        assert entry["dataset"] == "smoke"
        assert entry["identical"] is True
        assert "overhead_pct" in entry
        assert "recorded_at" in entry
