"""Unit tests for span tracing, export, and the profiling hook."""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.exceptions import ConfigurationError, SerializationError
from repro.obs.export import (
    format_trace_tree,
    read_trace,
    summarize_trace,
    write_trace,
)
from repro.obs.profiling import profile_block
from repro.obs.tracing import (
    NOOP_SPAN,
    Tracer,
    capture,
    current_tracer,
    span,
    tracing_enabled,
)


class TestSpans:
    def test_disabled_span_is_the_shared_noop(self):
        assert not tracing_enabled()
        assert span("anything", n=1) is NOOP_SPAN
        with span("anything") as sp:
            assert sp is NOOP_SPAN
            sp.set(ignored=True)

    def test_capture_records_nested_spans_with_parents(self):
        with capture() as tracer:
            with span("outer", n=10) as outer:
                with span("inner") as inner:
                    pass
                outer.set(done=True)
        assert current_tracer() is None
        names = [s.name for s in tracer.finished]
        assert names == ["inner", "outer"]  # finish order
        inner_span, outer_span = tracer.finished
        assert inner_span.parent_id == outer_span.span_id
        assert outer_span.parent_id is None
        assert outer_span.attrs == {"n": 10, "done": True}
        assert outer_span.duration_s >= inner_span.duration_s >= 0.0

    def test_set_after_exit_lands_on_the_recorded_span(self):
        # The serving engine attributes the query case after the timed
        # block closes; the attrs dict is shared with the record.
        with capture() as tracer:
            with span("serving.query") as sp:
                pass
            sp.set(case="case2")
        assert tracer.finished[0].attrs == {"case": "case2"}

    def test_exception_marks_error_and_propagates(self):
        with capture() as tracer:
            with pytest.raises(RuntimeError):
                with span("boom"):
                    raise RuntimeError("x")
        assert tracer.finished[0].attrs["error"] == "RuntimeError"

    def test_capture_restores_an_outer_tracer(self):
        with capture() as outer:
            with capture() as inner:
                with span("in-inner"):
                    pass
            assert current_tracer() is outer
            with span("in-outer"):
                pass
        assert [s.name for s in inner.finished] == ["in-inner"]
        assert [s.name for s in outer.finished] == ["in-outer"]


class TestObserve:
    def test_observe_sets_and_restores_both_switches(self):
        assert not obs.enabled() and not tracing_enabled()
        with obs.observe() as tracer:
            assert obs.enabled() and tracing_enabled()
            assert isinstance(tracer, Tracer)
        assert not obs.enabled() and not tracing_enabled()

    def test_observe_reuses_an_installed_tracer(self):
        with capture() as tracer:
            with obs.observe() as inner:
                assert inner is tracer

    def test_enable_disable_roundtrip(self):
        tracer = obs.enable()
        try:
            with span("op"):
                pass
        finally:
            returned = obs.disable()
        assert returned is tracer
        assert [s.name for s in tracer.finished] == ["op"]


class TestExport:
    def test_write_read_roundtrip(self, tmp_path):
        with capture() as tracer:
            with span("a", k=1):
                with span("b"):
                    pass
        path = tmp_path / "trace.jsonl"
        assert write_trace(tracer, path) == 2
        records = read_trace(path)
        assert [r["name"] for r in records] == ["b", "a"]
        assert records[1]["attrs"] == {"k": 1}
        assert records[0]["parent"] == records[1]["id"]

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok", "dur_us": 1, "start_us": 0, "id": 0, "parent": null, "attrs": {}}\nnot json\n')
        with pytest.raises(SerializationError):
            read_trace(path)
        with pytest.raises(SerializationError):
            read_trace(tmp_path / "missing.jsonl")

    def test_summary_sorted_by_total(self):
        records = [
            {"name": "fast", "dur_us": 1.0, "start_us": 0, "id": 0, "parent": None, "attrs": {}},
            {"name": "slow", "dur_us": 100.0, "start_us": 1, "id": 1, "parent": None, "attrs": {}},
            {"name": "fast", "dur_us": 3.0, "start_us": 2, "id": 2, "parent": None, "attrs": {}},
        ]
        rows = summarize_trace(records)
        assert [r["name"] for r in rows] == ["slow", "fast"]
        fast = rows[1]
        assert fast["count"] == 2
        assert fast["mean_us"] == 2.0
        assert fast["max_us"] == 3.0

    def test_tree_indents_children_and_truncates(self):
        records = [
            {"name": "root", "dur_us": 10.0, "start_us": 0, "id": 0, "parent": None, "attrs": {}},
            {"name": "child", "dur_us": 5.0, "start_us": 1, "id": 1, "parent": 0, "attrs": {"k": 2}},
        ]
        text = format_trace_tree(records)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert "k=2" in lines[1]
        truncated = format_trace_tree(records, max_spans=1)
        assert "1 more spans" in truncated


class TestProfiling:
    def test_profile_block_reports_function_rows(self):
        def workload():
            return sum(range(2000))

        with profile_block() as report:
            workload()
        text = report.text(limit=5)
        assert "function calls" in text
        with pytest.raises(ConfigurationError):
            report.text(sort="bogus")
