"""The instrumented hot paths: spans emitted, fingerprints untouched."""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.core.ct_index import CTIndex
from repro.core.serialization import index_fingerprint
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.labeling.psl import build_psl
from repro.obs.tracing import capture
from repro.serving.engine import QueryEngine
from repro.storage.binary import load_ct_index_binary, save_ct_index_binary


@pytest.fixture(scope="module")
def graph():
    cfg = CorePeripheryConfig(
        core_size=30,
        community_count=6,
        community_size_min=4,
        community_size_max=20,
        fringe_size=120,
    )
    return core_periphery_graph(cfg, seed=7)


class TestBuildSpans:
    def test_traced_build_emits_the_phase_breakdown(self, graph):
        with obs.observe() as tracer:
            CTIndex.build(graph, 4, backend="flat")
        names = {span.name for span in tracer.finished}
        assert {
            "ct.build",
            "ct.reduction",
            "ct.decompose",
            "treedec.mde",
            "ct.core_labeling",
            "ct.forest_labeling",
            "storage.compact",
            "labeling.pll",
        } <= names
        build_span = next(s for s in tracer.finished if s.name == "ct.build")
        assert build_span.attrs["n"] == graph.n
        assert build_span.attrs["bandwidth"] == 4
        mde = next(s for s in tracer.finished if s.name == "treedec.mde")
        assert mde.attrs["boundary"] + mde.attrs["core"] > 0
        assert "cutoff_degree" in mde.attrs
        # Phase spans nest under the build span.
        by_id = {s.span_id: s for s in tracer.finished}
        assert by_id[mde.parent_id].name == "ct.decompose"

    def test_psl_levels_traced(self, graph):
        with obs.observe() as tracer:
            build_psl(graph)
        names = [s.name for s in tracer.finished]
        assert "labeling.psl" in names
        levels = [s for s in tracer.finished if s.name == "labeling.psl.level"]
        assert levels
        top = next(s for s in tracer.finished if s.name == "labeling.psl")
        assert top.attrs["rounds"] == len(levels)

    def test_counters_accumulate_only_when_enabled(self, graph):
        registry = obs.registry()
        registry.reset()
        CTIndex.build(graph, 4)
        assert registry.counter("mde.rounds").snapshot() == 0
        with obs.observe():
            CTIndex.build(graph, 4)
        assert registry.counter("mde.rounds").snapshot() > 0
        assert registry.counter("ct.core_label_entries").snapshot() > 0
        assert registry.counter("ct.forest_label_entries").snapshot() > 0

    def test_binary_load_traced(self, graph, tmp_path):
        index = CTIndex.build(graph, 4, backend="flat")
        path = tmp_path / "index.bin"
        save_ct_index_binary(index, path)
        with capture() as tracer:
            loaded = load_ct_index_binary(path)
        load_span = next(s for s in tracer.finished if s.name == "storage.binary_load")
        assert load_span.attrs["backend"] == "flat"
        assert load_span.attrs["bytes"] > 0
        assert index_fingerprint(loaded) == index_fingerprint(index)


class TestFingerprintNeutrality:
    def test_tracing_never_changes_the_index(self, graph):
        plain = index_fingerprint(CTIndex.build(graph, 4, backend="flat"))
        with obs.observe():
            traced = index_fingerprint(CTIndex.build(graph, 4, backend="flat"))
        assert traced == plain

    def test_tracing_never_changes_answers(self, graph):
        index = CTIndex.build(graph, 4)
        pairs = [(0, graph.n - 1), (3, 57), (12, 12), (1, 90)]
        plain = [index.distance(s, t) for s, t in pairs]
        with obs.observe():
            traced = [index.distance(s, t) for s, t in pairs]
        assert traced == plain


class TestServingSpans:
    def test_single_query_span_carries_case_attribution(self, graph):
        index = CTIndex.build(graph, 4)
        engine = QueryEngine(index)
        with obs.observe() as tracer:
            engine.query(0, graph.n - 1)
            engine.query_batch([(0, 1), (2, 3)])
            engine.query_from(0, [1, 2, 3])
        names = [s.name for s in tracer.finished]
        assert names == ["serving.query", "serving.query_batch", "serving.query_from"]
        single = tracer.finished[0]
        assert single.attrs["case"] in ("case1", "case2", "case3", "case4", "local")
        assert tracer.finished[1].attrs["size"] == 2
        assert tracer.finished[2].attrs["size"] == 3
