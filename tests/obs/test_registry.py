"""Unit tests for the metrics registry and metric primitives."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, ReproError
from repro.obs.metrics import BUCKET_EDGES, Counter, Gauge, LatencyHistogram
from repro.obs.registry import MetricsRegistry, registry


class TestPrimitives:
    def test_counter_accumulates_and_rejects_negative(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)
        # ConfigurationError is catchable under both disciplines.
        with pytest.raises(ValueError):
            counter.inc(-1)
        with pytest.raises(ReproError):
            counter.inc(-1)
        counter.reset()
        assert counter.snapshot() == 0

    def test_gauge_set_inc_dec_reset(self):
        gauge = Gauge()
        gauge.set(7.5)
        gauge.inc(0.5)
        gauge.dec(3.0)
        assert gauge.snapshot() == 5.0
        gauge.reset()
        assert gauge.snapshot() == 0.0

    def test_histogram_reset_zeroes_everything(self):
        histogram = LatencyHistogram()
        for seconds in (1e-6, 5e-5, 2e-3):
            histogram.record(seconds)
        assert histogram.count == 3
        histogram.reset()
        assert histogram.count == 0
        assert histogram.total_seconds == 0.0
        assert histogram.snapshot() == {"count": 0}
        assert all(c == 0 for c in histogram.counts)
        # Still usable after reset.
        histogram.record(1e-4)
        assert histogram.count == 1


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("x.count")
        b = reg.counter("x.count")
        assert a is b
        assert len(reg) == 1

    def test_labels_distinguish_metrics_order_insensitively(self):
        reg = MetricsRegistry()
        a = reg.histogram("lat", kind="single", engine=1)
        b = reg.histogram("lat", engine=1, kind="single")
        c = reg.histogram("lat", engine=2, kind="single")
        assert a is b
        assert a is not c
        assert len(reg) == 2

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("metric")
        with pytest.raises(ConfigurationError):
            reg.gauge("metric")

    def test_reset_keeps_entries_clear_drops_them(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        counter.inc(3)
        reg.reset()
        assert counter.snapshot() == 0
        assert reg.counter("c") is counter
        reg.clear()
        assert reg.counter("c") is not counter

    def test_contains_by_name(self):
        reg = MetricsRegistry()
        reg.gauge("g", shard="0")
        assert "g" in reg
        assert "missing" not in reg

    def test_snapshot_is_plain_data(self):
        reg = MetricsRegistry()
        reg.counter("c", kind="a").inc(2)
        reg.histogram("h").record(1e-5)
        snap = reg.snapshot()
        assert snap["c"] == [{"labels": {"kind": "a"}, "value": 2}]
        assert snap["h"][0]["histogram"]["count"] == 1

    def test_default_registry_is_a_singleton(self):
        assert registry() is registry()
        assert isinstance(registry(), MetricsRegistry)


class TestPrometheusRender:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("mde.rounds").inc(7)
        reg.gauge("boundary.size", graph="talk").set(561)
        text = reg.render_prometheus()
        assert "# TYPE mde_rounds counter" in text
        assert "mde_rounds 7" in text
        assert '# TYPE boundary_size gauge' in text
        assert 'boundary_size{graph="talk"} 561' in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        histogram = reg.histogram("lat", kind="single")
        histogram.record(BUCKET_EDGES[0] / 2)  # first bucket
        histogram.record(BUCKET_EDGES[3])      # fourth bucket
        text = reg.render_prometheus()
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{kind="single",le="+Inf"} 2' in text
        assert 'lat_count{kind="single"} 2' in text
        assert "lat_sum{" in text
        # Cumulative counts never decrease along the bucket series.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("lat_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 2

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
