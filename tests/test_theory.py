"""Tests that the implementation lives inside the paper's stated bounds."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.ct_index import CTIndex
from repro.exceptions import ReproError
from repro.graphs.generators.core_periphery import CorePeripheryConfig, core_periphery_graph
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.generators.worst_case import rolling_cliques_graph
from repro.labeling.cd import build_cd
from repro.labeling.h2h import build_h2h
from repro.labeling.pll import build_pll
from repro.theory import (
    CTBoundReport,
    cd_size_bound,
    ct_bound_report,
    h2h_size_bound,
    rolling_cliques_lower_bound,
    verify_ct_bounds,
)
from tests.properties.strategies import bandwidths, graphs


class TestLemma6TreeBound:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("bandwidth", [2, 5, 10])
    def test_random_graphs(self, seed, bandwidth):
        g = gnp_graph(60, 0.1, seed=seed)
        index = CTIndex.build(g, bandwidth, use_equivalence_reduction=False)
        report = verify_ct_bounds(index)
        assert report.tree_entries <= report.tree_bound

    def test_core_periphery(self):
        cfg = CorePeripheryConfig(core_size=60, community_count=8, fringe_size=200)
        g = core_periphery_graph(cfg, seed=5)
        for d in (2, 10, 30):
            verify_ct_bounds(CTIndex.build(g, d))

    def test_check_raises_on_fabricated_violation(self):
        report = CTBoundReport(
            bandwidth=2,
            boundary=10,
            core_size=5,
            forest_height=3,
            tree_entries=100,
            core_entries=0,
            tree_bound=50,
            query_probe_bound=6,
        )
        with pytest.raises(ReproError):
            report.check()

    @settings(max_examples=40, deadline=None)
    @given(graph=graphs(max_nodes=20), bandwidth=bandwidths)
    def test_lemma6_property(self, graph, bandwidth):
        index = CTIndex.build(graph, bandwidth)
        verify_ct_bounds(index)


class TestTheorem3QueryProbes:
    def test_per_query_probes_bounded(self):
        cfg = CorePeripheryConfig(core_size=50, community_count=8, fringe_size=180)
        g = core_periphery_graph(cfg, seed=6)
        index = CTIndex.build(g, 6, use_equivalence_reduction=False)
        report = ct_bound_report(index)
        import random

        rng = random.Random(7)
        for _ in range(300):
            s, t = rng.randrange(g.n), rng.randrange(g.n)
            before = index.core_probes
            index.distance(s, t)
            probes = index.core_probes - before
            assert probes <= report.query_probe_bound, (s, t, probes)


class TestGadgetLowerBound:
    @pytest.mark.parametrize("k,d", [(2, 4), (4, 8), (6, 12)])
    def test_pll_respects_certified_lower_bound(self, k, d):
        g = rolling_cliques_graph(k, d)
        pll = build_pll(g)
        assert pll.size_entries() >= rolling_cliques_lower_bound(k, d)

    def test_bad_parameters(self):
        with pytest.raises(ReproError):
            rolling_cliques_lower_bound(1, 4)
        with pytest.raises(ReproError):
            rolling_cliques_lower_bound(3, 5)


class TestBaselineBounds:
    def test_h2h_within_nh(self):
        g = gnp_graph(40, 0.12, seed=8)
        h2h = build_h2h(g)
        assert h2h.size_entries() <= h2h_size_bound(g.n, h2h.height())

    def test_cd_within_nd2_plus_core(self):
        g = gnp_graph(40, 0.12, seed=9)
        cd = build_cd(g, 4)
        core_size = len(cd.decomposition.core_nodes)
        assert cd.size_entries() <= cd_size_bound(g.n, 4, core_size)

    def test_bound_validation(self):
        with pytest.raises(ReproError):
            h2h_size_bound(-1, 2)
        with pytest.raises(ReproError):
            cd_size_bound(1, -2, 0)
