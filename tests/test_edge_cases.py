"""Cross-cutting edge cases that don't belong to a single module suite."""

from __future__ import annotations

import math

import pytest

from repro.core.ct_index import CTIndex
from repro.graphs.builder import GraphBuilder
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.graph import Graph
from repro.graphs.traversal import all_pairs_distances
from repro.labeling.base import MemoryBudget
from repro.treedec.core_tree import core_tree_decomposition
from repro.treedec.elimination import minimum_degree_elimination


class TestFloatWeights:
    """Non-integer weights flow through every layer."""

    def build_float_graph(self):
        builder = GraphBuilder(6)
        builder.add_edge(0, 1, 0.5)
        builder.add_edge(1, 2, 1.25)
        builder.add_edge(2, 3, 0.75)
        builder.add_edge(0, 3, 3.5)
        builder.add_edge(3, 4, 0.5)
        builder.add_edge(4, 5, 2.0)
        builder.add_edge(0, 5, 1.0)
        return builder.build()

    def test_dijkstra_float(self):
        g = self.build_float_graph()
        truth = all_pairs_distances(g)
        assert truth[0][3] == pytest.approx(2.5)  # 0-1-2-3 beats the direct 3.5

    @pytest.mark.parametrize("bandwidth", [0, 2, 10])
    def test_ct_float_weights(self, bandwidth):
        g = self.build_float_graph()
        index = CTIndex.build(g, bandwidth)
        truth = all_pairs_distances(g)
        for s in range(6):
            for t in range(6):
                assert index.distance(s, t) == pytest.approx(truth[s][t])

    def test_pll_float_weights(self):
        from repro.labeling.pll import build_pll

        g = self.build_float_graph()
        pll = build_pll(g)
        truth = all_pairs_distances(g)
        for s in range(6):
            for t in range(6):
                assert pll.distance(s, t) == pytest.approx(truth[s][t])


class TestEliminationAccessors:
    def test_rank_total_order(self):
        g = gnp_graph(30, 0.15, seed=1)
        result = minimum_degree_elimination(g, bandwidth=3)
        ranks = sorted(result.rank(v) for v in g.nodes())
        assert ranks == list(range(g.n))
        # Eliminated nodes rank before every core node.
        forest_max = max(
            (result.rank(step.node) for step in result.steps), default=-1
        )
        core_min = min((result.rank(v) for v in result.core_nodes), default=g.n)
        assert forest_max < core_min

    def test_width_profile_first_exceeds_matches_boundary(self):
        from repro.treedec.elimination import elimination_width_profile

        g = gnp_graph(40, 0.15, seed=2)
        d = 3
        bounded = minimum_degree_elimination(g, bandwidth=d)
        profile = elimination_width_profile(g)
        # The bounded run stops exactly where the full profile first
        # exceeds d.
        first_over = next((i for i, w in enumerate(profile) if w > d), len(profile))
        assert bounded.boundary == first_over

    def test_bag_members_sorted_and_contain_owner(self):
        g = gnp_graph(30, 0.2, seed=3)
        ctd = core_tree_decomposition(g, 3)
        for pos in range(ctd.boundary):
            members = ctd.bag_members(pos)
            assert list(members) == sorted(members)
            assert ctd.node_at(pos) in members

    def test_tree_members_partition_forest(self):
        g = gnp_graph(50, 0.1, seed=4)
        ctd = core_tree_decomposition(g, 3)
        members = ctd.tree_members()
        all_positions = sorted(p for positions in members.values() for p in positions)
        assert all_positions == list(range(ctd.boundary))
        for r, positions in members.items():
            assert r in positions
            assert all(ctd.root[p] == r for p in positions)


class TestBudgetAccounting:
    def test_ct_budget_charges_match_entries(self):
        g = gnp_graph(40, 0.15, seed=5)
        budget = MemoryBudget.unlimited()
        index = CTIndex.build(g, 4, budget=budget, use_equivalence_reduction=False)
        assert budget.charged_entries == index.size_entries()

    def test_psl_star_budget_matches_retained(self):
        from repro.labeling.psl_variants import build_psl_star

        g = gnp_graph(40, 0.12, seed=6)
        budget = MemoryBudget.unlimited()
        index = build_psl_star(g, budget=budget)
        assert budget.charged_entries == index.size_entries()


class TestUnitWeightConversion:
    def test_with_unit_weights_changes_distances(self):
        g = Graph.from_edges(3, [(0, 1, 10), (1, 2, 10), (0, 2, 15)])
        unit = g.with_unit_weights()
        assert all_pairs_distances(g)[0][2] == 15
        assert all_pairs_distances(unit)[0][2] == 1

    def test_ct_on_unit_converted(self):
        g = Graph.from_edges(4, [(0, 1, 5), (1, 2, 5), (2, 3, 5), (0, 3, 20)])
        index = CTIndex.build(g.with_unit_weights(), 2)
        assert index.distance(0, 3) == 1


class TestInfinityHandling:
    def test_inf_is_math_inf(self):
        g = Graph.from_edges(4, [(0, 1)])
        index = CTIndex.build(g, 2)
        assert index.distance(0, 3) == math.inf
        assert index.distance(0, 3) == float("inf")

    def test_inf_never_stored_in_labels(self):
        g = Graph.from_edges(8, [(0, 1), (1, 2), (4, 5), (6, 7)])
        index = CTIndex.build(g, 2, use_equivalence_reduction=False)
        for label in index.tree_index.labels:
            assert all(v != math.inf for v in label.values())
        for v in range(index.core_index.labels.n):
            for _, dist in index.core_index.labels.iter_rank_entries(v):
                assert dist != math.inf
