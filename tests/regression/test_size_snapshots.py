"""Deterministic size-snapshot regression net.

Everything that decides an index's entry count — generators, the twin
reduction, elimination tie-breaking, label pruning — is seeded and
deterministic, so the exact entry counts below are stable across runs
and platforms.  A diff here means an algorithmic change (intended or
not) to one of those stages: re-derive the snapshot deliberately, and
re-check the Exp 1 OM ladder (BENCH_MEMORY_LIMIT_MB) while you're at it.
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import load_dataset
from repro.bench.runner import build_method

SNAPSHOT = {
    "talk": {"n": 1344, "m": 14137, "PSL+": 51146, "PSL*": 26433, "CT-20": 21711, "CT-100": 20721},
    "amaz": {"n": 1515, "m": 14064, "PSL+": 56614, "PSL*": 26481, "CT-20": 15684, "CT-100": 18789},
    "epin": {"n": 2049, "m": 19650, "PSL+": 88259, "PSL*": 44981, "CT-20": 28054, "CT-100": 27991},
    "dblp": {"n": 2359, "m": 19504, "PSL+": 86554, "PSL*": 36679, "CT-20": 20812, "CT-100": 28260},
}


@pytest.mark.parametrize("dataset", sorted(SNAPSHOT))
def test_graph_shape_snapshot(dataset):
    graph = load_dataset(dataset)
    expected = SNAPSHOT[dataset]
    assert graph.n == expected["n"]
    assert graph.m == expected["m"]


@pytest.mark.parametrize("dataset", sorted(SNAPSHOT))
@pytest.mark.parametrize("method", ["PSL+", "PSL*", "CT-20", "CT-100"])
def test_entry_count_snapshot(dataset, method):
    graph = load_dataset(dataset)
    index = build_method(method, graph)
    assert index.size_entries() == SNAPSHOT[dataset][method], (
        f"{method} on {dataset}: entry count drifted from the snapshot; "
        "if this change is intentional, regenerate SNAPSHOT and revisit "
        "the Exp 1 OM calibration"
    )
