"""Regression tests pinning down the extension-label LRU (PR 1).

The per-position extension cache must be a *true* LRU: at capacity it
evicts the least-recently-*used* position (a recent touch rescues an old
entry), ``reset_counters()`` restarts it cold, and — the property the
cache exists to preserve — answers on a hot-tree workload are identical
with and without it, even while eviction churns.
"""

from __future__ import annotations

import random

import pytest

from repro.core.ct_index import CTIndex
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)


@pytest.fixture(scope="module")
def index():
    cfg = CorePeripheryConfig(core_size=30, community_count=5, fringe_size=110)
    graph = core_periphery_graph(cfg, seed=23)
    built = CTIndex.build(graph, 4, use_equivalence_reduction=False)
    assert built.decomposition.boundary >= 8, "fixture needs a real forest"
    return built


class TestEvictionOrder:
    def test_capacity_evicts_least_recently_used(self, index):
        index.extension_cache_size = 3
        index.reset_counters()
        index._extended_labels(0)
        index._extended_labels(1)
        index._extended_labels(2)
        # Touch 0 so it becomes most-recent; 1 is now the LRU entry.
        index._extended_labels(0)
        index._extended_labels(3)
        assert set(index._extension_cache) == {2, 0, 3}
        # 1 was evicted: asking for it again is a miss...
        misses = index.extension_cache_misses
        index._extended_labels(1)
        assert index.extension_cache_misses == misses + 1
        # ...and the rescued 0 survived both evictions as a hit.
        hits = index.extension_cache_hits
        index._extended_labels(0)
        assert index.extension_cache_hits == hits + 1

    def test_cache_never_exceeds_capacity_under_churn(self, index):
        index.extension_cache_size = 2
        index.reset_counters()
        rng = random.Random(2)
        for _ in range(100):
            index._extended_labels(rng.randrange(index.decomposition.boundary))
            assert len(index._extension_cache) <= 2


class TestResetStartsCold:
    def test_reset_counters_forces_misses(self, index):
        index.extension_cache_size = 64
        index.reset_counters()
        index._extended_labels(0)
        index._extended_labels(0)
        assert index.extension_cache_hits == 1
        index.reset_counters()
        assert index.extension_cache_hits == 0
        assert index.extension_cache_misses == 0
        index._extended_labels(0)
        # Cold after reset: the warm entry is gone, so this was a miss.
        assert index.extension_cache_misses == 1
        assert index.extension_cache_hits == 0


class TestHotTreeWorkload:
    def test_cached_equals_uncached_under_eviction_churn(self, index):
        """A skewed workload hammering a few trees, with capacity far
        below the working set, must answer exactly like no cache."""
        graph = index.graph
        rng = random.Random(31)
        # Hot set: forest nodes from a couple of trees, plus strays.
        forest_nodes = [
            index.decomposition.node_at(pos)
            for pos in range(index.decomposition.boundary)
        ]
        hot = forest_nodes[:6]
        stream = []
        for _ in range(400):
            if rng.random() < 0.8:
                stream.append((rng.choice(hot), rng.choice(hot)))
            else:
                stream.append((rng.randrange(graph.n), rng.randrange(graph.n)))

        index.extension_cache_size = 0
        index.reset_counters()
        uncached = [index.distance(s, t) for s, t in stream]

        index.extension_cache_size = 2  # forces constant eviction
        index.reset_counters()
        churned = [index.distance(s, t) for s, t in stream]
        assert churned == uncached
        assert len(index._extension_cache) <= 2

        index.extension_cache_size = 4096  # everything fits
        index.reset_counters()
        unbounded = [index.distance(s, t) for s, t in stream]
        assert unbounded == uncached
