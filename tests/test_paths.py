"""Unit and property tests for shortest-path reconstruction."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ct_index import CTIndex
from repro.exceptions import QueryError
from repro.graphs.generators.primitives import grid_graph, path_graph
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.graph import Graph
from repro.graphs.traversal import single_source_distances
from repro.labeling.pll import build_pll
from repro.paths import (
    distance_many,
    eccentricity_lower_bound,
    is_shortest_path,
    path_length,
    shortest_path,
)
from tests.properties.strategies import bandwidths, graphs


class TestShortestPath:
    def test_trivial(self):
        g = path_graph(4)
        index = build_pll(g)
        assert shortest_path(index, g, 2, 2) == [2]
        assert shortest_path(index, g, 0, 3) == [0, 1, 2, 3]

    def test_unreachable(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        index = build_pll(g)
        assert shortest_path(index, g, 0, 3) is None

    def test_grid_path_valid(self):
        g = grid_graph(5, 5)
        index = CTIndex.build(g, 3)
        path = shortest_path(index, g, 0, 24)
        assert path is not None
        assert path[0] == 0 and path[-1] == 24
        assert is_shortest_path(index, g, path)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_pairs_via_ct(self, seed):
        g = gnp_graph(40, 0.1, seed=seed)
        index = CTIndex.build(g, 4)
        rng = random.Random(seed)
        for _ in range(30):
            s, t = rng.randrange(g.n), rng.randrange(g.n)
            path = shortest_path(index, g, s, t)
            truth = single_source_distances(g, s)[t]
            if path is None:
                assert truth == float("inf")
            else:
                assert path_length(g, path) == truth
                assert all(g.has_edge(u, v) for u, v in zip(path, path[1:]))

    def test_weighted_graph(self):
        g = random_weighted(gnp_graph(25, 0.2, seed=9), 1, 9, seed=10)
        index = build_pll(g)
        rng = random.Random(0)
        for _ in range(20):
            s, t = rng.randrange(g.n), rng.randrange(g.n)
            path = shortest_path(index, g, s, t)
            truth = single_source_distances(g, s)[t]
            if path is not None:
                assert path_length(g, path) == truth

    def test_inconsistent_index_detected(self):
        # An index built over a different graph cannot reconstruct paths.
        g1 = path_graph(6)
        g2 = Graph.from_edges(6, [(0, 5), (1, 2), (2, 3), (3, 4)])
        index = build_pll(g1)
        with pytest.raises(QueryError):
            shortest_path(index, g2, 0, 5)


class TestHelpers:
    def test_is_shortest_path_rejects_non_path(self):
        g = path_graph(4)
        index = build_pll(g)
        assert not is_shortest_path(index, g, [0, 2])
        assert not is_shortest_path(index, g, [])

    def test_is_shortest_path_rejects_detour(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        index = build_pll(g)
        assert not is_shortest_path(index, g, [0, 1, 2])
        assert is_shortest_path(index, g, [0, 2])

    def test_distance_many(self):
        g = path_graph(5)
        index = build_pll(g)
        assert distance_many(index, [(0, 4), (1, 1), (2, 4)]) == [4, 0, 2]

    def test_eccentricity_lower_bound(self):
        g = path_graph(10)
        index = build_pll(g)
        assert eccentricity_lower_bound(index, g, 0, range(10)) == 9
        assert eccentricity_lower_bound(index, g, 0, [1, 2]) == 2


@settings(max_examples=40, deadline=None)
@given(graph=graphs(min_nodes=2, max_nodes=18), bandwidth=bandwidths, data=st.data())
def test_reconstruction_property(graph, bandwidth, data):
    """Reconstructed paths are genuine and exactly as long as the distance."""
    index = CTIndex.build(graph, bandwidth)
    s = data.draw(st.integers(0, graph.n - 1))
    t = data.draw(st.integers(0, graph.n - 1))
    truth = single_source_distances(graph, s)[t]
    path = shortest_path(index, graph, s, t)
    if path is None:
        assert truth == float("inf")
    else:
        assert path[0] == s and path[-1] == t
        assert path_length(graph, path) == truth
        assert len(set(path)) == len(path)  # simple path
