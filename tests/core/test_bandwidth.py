"""Unit tests for the bandwidth binary search (Exp 7 machinery)."""

from __future__ import annotations

import pytest

from repro.core.bandwidth import find_bandwidth
from repro.core.ct_index import CTIndex
from repro.exceptions import IndexConstructionError
from repro.graphs.generators.core_periphery import CorePeripheryConfig, core_periphery_graph
from repro.graphs.generators.random_graphs import gnp_graph


@pytest.fixture(scope="module")
def cp_graph():
    cfg = CorePeripheryConfig(
        core_size=80, core_density=0.5, community_count=10, fringe_size=300
    )
    return core_periphery_graph(cfg, seed=31)


class TestSearch:
    def test_generous_limit_picks_zero(self, cp_graph):
        generous = CTIndex.build(cp_graph, 0).size_bytes() + 1000
        result = find_bandwidth(cp_graph, generous)
        assert result.bandwidth == 0
        assert result.index.bandwidth == 0
        assert len(result.probes) == 1

    def test_tight_limit_needs_positive_bandwidth(self, cp_graph):
        size0 = CTIndex.build(cp_graph, 0).size_bytes()
        result = find_bandwidth(cp_graph, int(size0 * 0.6))
        assert result.bandwidth > 0
        assert result.index.size_bytes() <= size0 * 0.6

    def test_monotone_in_memory(self, cp_graph):
        size0 = CTIndex.build(cp_graph, 0).size_bytes()
        limits = [int(size0 * f) for f in (0.5, 0.7, 1.1)]
        chosen = [find_bandwidth(cp_graph, limit).bandwidth for limit in limits]
        assert chosen == sorted(chosen, reverse=True)
        assert chosen[-1] == 0

    def test_minimality(self, cp_graph):
        # No smaller d fits within the same limit.
        size0 = CTIndex.build(cp_graph, 0).size_bytes()
        limit = int(size0 * 0.6)
        result = find_bandwidth(cp_graph, limit)
        d = result.bandwidth
        if d > 0:
            smaller = CTIndex.build(cp_graph, d - 1)
            assert smaller.size_bytes() > limit

    def test_impossible_limit_raises(self, cp_graph):
        with pytest.raises(IndexConstructionError):
            find_bandwidth(cp_graph, 64, max_upper_bound=16)

    def test_probe_log_records_failures(self, cp_graph):
        size0 = CTIndex.build(cp_graph, 0).size_bytes()
        result = find_bandwidth(cp_graph, int(size0 * 0.6))
        assert any(not probe.feasible for probe in result.probes)
        assert any(probe.feasible for probe in result.probes)
        assert result.seconds > 0

    def test_geometric_scan_brackets(self, cp_graph):
        # A limit that d=0 misses forces the 1, 2, 4, ... scan; the probe
        # log must show the geometric prefix.
        size0 = CTIndex.build(cp_graph, 0).size_bytes()
        result = find_bandwidth(cp_graph, int(size0 * 0.6))
        bandwidths = [probe.bandwidth for probe in result.probes]
        assert bandwidths[0] == 0
        assert bandwidths[1] == 1
        # Scan doubles until the first feasible probe.
        first_ok = next(i for i, probe in enumerate(result.probes) if probe.feasible)
        assert bandwidths[1:first_ok + 1] == [2**i for i in range(first_ok)]
