"""Unit tests for the one-to-many batch query API."""

from __future__ import annotations

import pytest

import random

from repro.caching import CachedDistanceIndex
from repro.core.ct_index import CTIndex
from repro.exceptions import QueryError
from repro.graphs.generators.core_periphery import CorePeripheryConfig, core_periphery_graph
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.traversal import all_pairs_distances, single_source_distances


class TestDistancesFrom:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("bandwidth", [0, 3, 8])
    def test_matches_single_queries(self, seed, bandwidth):
        g = gnp_graph(35, 0.12, seed=seed)
        index = CTIndex.build(g, bandwidth)
        truth = all_pairs_distances(g)
        for s in range(0, g.n, 4):
            batch = index.distances_from(s, list(g.nodes()))
            assert batch == truth[s]

    def test_weighted(self):
        g = random_weighted(gnp_graph(25, 0.2, seed=7), 1, 9, seed=8)
        index = CTIndex.build(g, 3)
        truth = single_source_distances(g, 3)
        assert index.distances_from(3, list(g.nodes())) == truth

    def test_with_reduction_twins(self):
        from repro.graphs.generators.primitives import star_graph

        g = star_graph(8)
        index = CTIndex.build(g, 2)
        batch = index.distances_from(1, [0, 1, 2, 8])
        assert batch == [1, 0, 2, 2]

    def test_empty_targets(self):
        g = gnp_graph(10, 0.3, seed=9)
        index = CTIndex.build(g, 2)
        assert index.distances_from(0, []) == []

    def test_out_of_range(self):
        g = gnp_graph(10, 0.3, seed=10)
        index = CTIndex.build(g, 2)
        with pytest.raises(QueryError):
            index.distances_from(10, [0])
        with pytest.raises(QueryError):
            index.distances_from(0, [10])

    def test_core_source(self):
        cfg = CorePeripheryConfig(core_size=40, community_count=4, fringe_size=120)
        g = core_periphery_graph(cfg, seed=11)
        index = CTIndex.build(g, 4, use_equivalence_reduction=False)
        core_node = index.core_originals[0]
        truth = single_source_distances(g, core_node)
        assert index.distances_from(core_node, list(g.nodes())) == truth

    def test_batch_reuses_extension(self):
        # A forest source should trigger at most one extension build for
        # its own side across the whole batch (plus one per target).
        cfg = CorePeripheryConfig(core_size=40, community_count=6, fringe_size=150)
        g = core_periphery_graph(cfg, seed=12)
        index = CTIndex.build(g, 5, use_equivalence_reduction=False)
        tree_nodes = [
            v for v in g.nodes() if index.decomposition.position[v] is not None
        ]
        s = tree_nodes[0]
        targets = tree_nodes[1:60]
        index.reset_counters()
        batch_probes_start = index.core_probes
        index.distances_from(s, targets)
        batch_probes = index.core_probes - batch_probes_start
        index.reset_counters()
        for t in targets:
            index.distance(s, t)
        single_probes = index.core_probes
        assert batch_probes <= single_probes


class TestBatchAcrossCases:
    """distances_from ≡ distance on all four query cases, through both
    the bare index and the cache wrapper (the tentpole's batch path)."""

    @pytest.fixture(scope="class")
    def setup(self):
        cfg = CorePeripheryConfig(core_size=50, community_count=8, fringe_size=180)
        graph = core_periphery_graph(cfg, seed=41)
        index = CTIndex.build(graph, 5, use_equivalence_reduction=False)
        return graph, index

    def _sources_covering_cases(self, graph, index):
        position = index.decomposition.position
        core = next(v for v in graph.nodes() if position[v] is None)
        tree = next(v for v in graph.nodes() if position[v] is not None)
        return [core, tree]

    def test_bare_index_equivalence(self, setup):
        graph, index = setup
        targets = list(graph.nodes())
        for s in self._sources_covering_cases(graph, index):
            batch = index.distances_from(s, targets)
            singles = [index.distance(s, t) for t in targets]
            assert batch == singles
        # Both core and tree sources against all nodes covers case 1-4.
        assert set(index.case_counts) == {"case1", "case2", "case3", "case4"}

    def test_cache_wrapper_equivalence(self, setup):
        graph, index = setup
        cached = CachedDistanceIndex(index)
        targets = list(graph.nodes())
        for s in self._sources_covering_cases(graph, index):
            batch = cached.distances_from(s, targets)
            assert batch == [index.distance(s, t) for t in targets]
        # Second pass is answered from the cache, identically.
        hits_before = cached.hits
        for s in self._sources_covering_cases(graph, index):
            assert cached.distances_from(s, targets) == [
                index.distance(s, t) for t in targets
            ]
        assert cached.hits >= hits_before + 2 * len(targets)

    def test_random_mixed_batches(self, setup):
        graph, index = setup
        cached = CachedDistanceIndex(index)
        rng = random.Random(2)
        truth_cache: dict[int, list] = {}
        for _ in range(12):
            s = rng.randrange(graph.n)
            targets = [rng.randrange(graph.n) for _ in range(25)]
            if s not in truth_cache:
                truth_cache[s] = single_source_distances(graph, s)
            expected = [truth_cache[s][t] for t in targets]
            assert index.distances_from(s, targets) == expected
            assert cached.distances_from(s, targets) == expected
