"""Unit tests for the CT-Index audit."""

from __future__ import annotations

import pytest

from repro.core.ct_index import CTIndex
from repro.core.validation import AuditReport, audit_ct_index
from repro.exceptions import ReproError
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.graph import Graph


class TestAudit:
    @pytest.mark.parametrize("bandwidth", [0, 3, 10])
    def test_healthy_index_passes(self, bandwidth):
        g = gnp_graph(50, 0.1, seed=1)
        index = CTIndex.build(g, bandwidth)
        report = audit_ct_index(index, samples=120, seed=2)
        assert report.ok
        assert report.mismatches == 0
        assert report.structure_ok and report.bounds_ok
        assert report.sampled_queries == 120
        assert "PASS" in report.summary()

    def test_weighted_index(self):
        g = random_weighted(gnp_graph(30, 0.15, seed=3), 1, 9, seed=4)
        report = audit_ct_index(CTIndex.build(g, 3), samples=80)
        assert report.ok

    def test_deterministic(self):
        g = gnp_graph(30, 0.15, seed=5)
        index = CTIndex.build(g, 3)
        a = audit_ct_index(index, samples=50, seed=9)
        b = audit_ct_index(index, samples=50, seed=9)
        assert a.case_counts == b.case_counts

    def test_empty_graph(self):
        index = CTIndex.build(Graph.empty(0), 2)
        report = audit_ct_index(index, samples=10)
        assert report.ok
        assert report.sampled_queries == 0

    def test_corrupted_index_detected(self):
        g = gnp_graph(40, 0.15, seed=6)
        index = CTIndex.build(g, 4, use_equivalence_reduction=False)
        # Corrupt one tree label: shrink a stored distance.
        for label in index.tree_index.labels:
            if label:
                target = next(iter(label))
                label[target] = label[target] + 5
                break
        report = audit_ct_index(index, samples=300, seed=7)
        assert report.mismatches > 0
        assert not report.ok

    def test_raise_on_failure(self):
        g = gnp_graph(40, 0.15, seed=8)
        index = CTIndex.build(g, 4, use_equivalence_reduction=False)
        for label in index.tree_index.labels:
            if label:
                target = next(iter(label))
                label[target] = label[target] + 3
                break
        with pytest.raises(ReproError):
            audit_ct_index(index, samples=300, seed=9, raise_on_failure=True)

    def test_report_dataclass(self):
        report = AuditReport(
            sampled_queries=1,
            mismatches=1,
            structure_ok=True,
            bounds_ok=True,
            case_counts={},
            seconds=0.1,
        )
        assert not report.ok
        assert "FAIL" in report.summary()
