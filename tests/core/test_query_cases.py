"""Targeted tests that every query case and Lemma is actually exercised."""

from __future__ import annotations

import random

import pytest

from repro.core.ct_index import CTIndex
from repro.graphs.generators.core_periphery import CorePeripheryConfig, core_periphery_graph
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.traversal import all_pairs_distances, single_source_distances


@pytest.fixture(scope="module")
def cp_index():
    cfg = CorePeripheryConfig(
        core_size=60, core_density=0.5, community_count=8, fringe_size=200
    )
    graph = core_periphery_graph(cfg, seed=21)
    index = CTIndex.build(graph, 5, use_equivalence_reduction=False)
    return graph, index


def classify(index: CTIndex, s: int, t: int) -> str:
    position = index.decomposition.position
    ps, pt = position[s], position[t]
    if ps is None and pt is None:
        return "case1"
    if ps is None or pt is None:
        return "case2"
    if index.decomposition.same_tree(ps, pt):
        return "case4"
    return "case3"


class TestCaseCoverage:
    def test_all_four_cases_hit_and_exact(self, cp_index):
        graph, index = cp_index
        rng = random.Random(99)
        seen: dict[str, int] = {}
        cache: dict[int, list] = {}
        for _ in range(600):
            s = rng.randrange(graph.n)
            t = rng.randrange(graph.n)
            if s == t:
                continue
            case = classify(index, s, t)
            seen[case] = seen.get(case, 0) + 1
            if s not in cache:
                cache[s] = single_source_distances(graph, s)
            assert index.distance(s, t) == cache[s][t], (s, t, case)
        assert set(seen) == {"case1", "case2", "case3", "case4"}, seen

    def test_counters_match_classification(self, cp_index):
        graph, index = cp_index
        index.reset_counters()
        rng = random.Random(7)
        expected: dict[str, int] = {"case1": 0, "case2": 0, "case3": 0, "case4": 0}
        for _ in range(200):
            s = rng.randrange(graph.n)
            t = rng.randrange(graph.n)
            if s == t:
                continue
            expected[classify(index, s, t)] += 1
            index.distance(s, t)
        for case, count in expected.items():
            assert index.case_counts[case] == count


class TestLemma9:
    """Extension-based Cases 3-4 agree with the naive Equation 1."""

    @pytest.mark.parametrize("seed", range(3))
    def test_extension_equals_naive(self, seed):
        g = gnp_graph(45, 0.1, seed=seed)
        index = CTIndex.build(g, 3, use_equivalence_reduction=False)
        for s in range(g.n):
            for t in range(g.n):
                assert index.distance(s, t) == index.distance_naive_4hop(s, t), (s, t)

    def test_extension_uses_fewer_probes(self, cp_index):
        # O(d) vs O(d²) only bites when interfaces are large, so use a
        # larger bandwidth (bigger interfaces) and restrict to cross-tree
        # pairs whose trees both touch >= 3 core nodes.
        graph, _ = cp_index
        index = CTIndex.build(graph, 12, use_equivalence_reduction=False)
        rng = random.Random(3)
        pairs = []
        attempts = 0
        while len(pairs) < 30 and attempts < 200_000:
            attempts += 1
            s = rng.randrange(graph.n)
            t = rng.randrange(graph.n)
            if s == t or classify(index, s, t) != "case3":
                continue
            if (
                len(index.decomposition.interface_of(s)) >= 3
                and len(index.decomposition.interface_of(t)) >= 3
            ):
                pairs.append((s, t))
        assert pairs, "no cross-tree pairs with large interfaces found"
        index.reset_counters()
        for s, t in pairs:
            index.distance(s, t)
        extension_probes = index.core_probes
        index.reset_counters()
        for s, t in pairs:
            index.distance_naive_4hop(s, t)
        naive_probes = index.core_probes
        assert extension_probes < naive_probes


class TestCase4Subtleties:
    def test_core_detour_beats_local_path(self):
        # Two long chains hang off the same tree; the local (d2) answer
        # through the LCA bag is long, while a detour through the core is
        # short.  Case 4 must take min(d2, d4).
        from repro.graphs.builder import GraphBuilder

        b = GraphBuilder(12)
        # Dense core: 0-1-2-3 clique.
        b.add_clique([0, 1, 2, 3])
        # A path 4-5-6-7-8-9 (one tree once eliminated), whose two ends
        # also touch the core.
        b.add_path([4, 5, 6, 7, 8, 9])
        b.add_edge(4, 0)
        b.add_edge(9, 1)
        # Extra fringe to make 10, 11 leaves.
        b.add_edge(10, 2)
        b.add_edge(11, 2)
        g = b.build()
        index = CTIndex.build(g, 2, use_equivalence_reduction=False)
        truth = all_pairs_distances(g)
        for s in g.nodes():
            for t in g.nodes():
                assert index.distance(s, t) == truth[s][t], (s, t)
        # dist(4, 9): local path length 5 vs core detour 4-0-1-9 = 3.
        assert truth[4][9] == 3
        assert index.distance(4, 9) == 3
