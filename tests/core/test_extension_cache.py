"""Unit tests for the per-position extension-label LRU in CTIndex."""

from __future__ import annotations

import random

import pytest

from repro.core.ct_index import CTIndex, build_ct_index
from repro.exceptions import QueryError
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.traversal import all_pairs_distances


@pytest.fixture(scope="module")
def cp_graph():
    cfg = CorePeripheryConfig(core_size=40, community_count=6, fringe_size=140)
    return core_periphery_graph(cfg, seed=17)


class TestCorrectness:
    @pytest.mark.parametrize("cache_size", [0, 2, 256])
    def test_answers_independent_of_cache_size(self, cp_graph, cache_size):
        index = CTIndex.build(
            cp_graph, 5, use_equivalence_reduction=False, extension_cache_size=cache_size
        )
        truth = all_pairs_distances(cp_graph)
        rng = random.Random(5)
        for _ in range(300):
            s = rng.randrange(cp_graph.n)
            t = rng.randrange(cp_graph.n)
            assert index.distance(s, t) == truth[s][t], (s, t)

    def test_repeat_queries_stay_exact(self, cp_graph):
        index = CTIndex.build(cp_graph, 5, use_equivalence_reduction=False)
        truth = all_pairs_distances(cp_graph)
        s, t = 1, cp_graph.n - 1
        assert [index.distance(s, t) for _ in range(5)] == [truth[s][t]] * 5


class TestCacheBehavior:
    def test_hot_queries_skip_core_probes(self, cp_graph):
        index = CTIndex.build(cp_graph, 5, use_equivalence_reduction=False)
        rng = random.Random(11)
        hot = [(rng.randrange(cp_graph.n), rng.randrange(cp_graph.n)) for _ in range(6)]
        stream = [hot[rng.randrange(len(hot))] for _ in range(300)]

        index.extension_cache_size = 0
        index.reset_counters()
        uncached_answers = [index.distance(s, t) for s, t in stream]
        uncached_probes = index.core_probes

        index.extension_cache_size = 256
        index.reset_counters()
        cached_answers = [index.distance(s, t) for s, t in stream]
        cached_probes = index.core_probes

        assert cached_answers == uncached_answers
        assert cached_probes < uncached_probes
        assert index.extension_cache_hits > 0
        assert 0.0 < index.extension_cache_hit_rate <= 1.0

    def test_disabled_cache_counts_misses_only(self, cp_graph):
        index = CTIndex.build(
            cp_graph, 5, use_equivalence_reduction=False, extension_cache_size=0
        )
        rng = random.Random(3)
        for _ in range(100):
            index.distance(rng.randrange(cp_graph.n), rng.randrange(cp_graph.n))
        assert index.extension_cache_hits == 0
        assert len(index._extension_cache) == 0

    def test_bound_is_respected(self, cp_graph):
        index = CTIndex.build(
            cp_graph, 5, use_equivalence_reduction=False, extension_cache_size=2
        )
        rng = random.Random(7)
        for _ in range(200):
            index.distance(rng.randrange(cp_graph.n), rng.randrange(cp_graph.n))
        assert len(index._extension_cache) <= 2

    def test_reset_counters_drops_cache(self, cp_graph):
        index = CTIndex.build(cp_graph, 5, use_equivalence_reduction=False)
        rng = random.Random(19)
        for _ in range(50):
            index.distance(rng.randrange(cp_graph.n), rng.randrange(cp_graph.n))
        index.reset_counters()
        assert index.extension_cache_hits == 0
        assert index.extension_cache_misses == 0
        assert len(index._extension_cache) == 0

    def test_batch_uses_cache(self, cp_graph):
        index = CTIndex.build(cp_graph, 5, use_equivalence_reduction=False)
        index.reset_counters()
        index.distances_from(0, list(cp_graph.nodes()))
        first_misses = index.extension_cache_misses
        index.distances_from(0, list(cp_graph.nodes()))
        # The second batch reuses every extension set from the first.
        assert index.extension_cache_misses == first_misses


class TestSatelliteBugfixes:
    def test_naive_4hop_validates_bounds(self, cp_graph):
        """Regression: out-of-range ids must raise QueryError, not
        IndexError/KeyError, exactly like ``distance``."""
        index = CTIndex.build(cp_graph, 5)
        for s, t in ((-1, 0), (0, -1), (cp_graph.n, 0), (0, cp_graph.n)):
            with pytest.raises(QueryError):
                index.distance_naive_4hop(s, t)
            with pytest.raises(QueryError):
                index.distance(s, t)

    def test_build_ct_index_forwards_core_kwargs(self):
        """Regression: the functional alias silently dropped core_order
        and core_backend."""
        g = gnp_graph(30, 0.15, seed=21)
        via_alias = build_ct_index(
            g, 3, core_order="elimination", core_backend="pll", extension_cache_size=7
        )
        via_method = CTIndex.build(g, 3, core_order="elimination", core_backend="pll")
        degree_build = CTIndex.build(g, 3, core_order="degree")
        assert via_alias.core_index.order == via_method.core_index.order
        if degree_build.core_index.order != via_method.core_index.order:
            # The kwarg demonstrably reached the builder.
            assert via_alias.core_index.order != degree_build.core_index.order
        assert via_alias.extension_cache_size == 7
        truth = all_pairs_distances(g)
        for s in range(0, g.n, 4):
            for t in range(g.n):
                assert via_alias.distance(s, t) == truth[s][t]

    def test_build_ct_index_psl_backend(self):
        g = gnp_graph(30, 0.15, seed=22)
        index = build_ct_index(g, 3, core_backend="psl")
        truth = all_pairs_distances(g)
        for t in range(g.n):
            assert index.distance(0, t) == truth[0][t]
