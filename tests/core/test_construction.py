"""Unit tests for CT-Index construction (Algorithm 1, lines 18-33)."""

from __future__ import annotations

import pytest

from repro.core.construction import build_core_index, build_tree_index, construct
from repro.exceptions import OverMemoryError
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.graph import INF
from repro.labeling.base import MemoryBudget
from repro.treedec.core_tree import core_tree_decomposition


class TestPaperTreeIndex:
    """Figure 5 / Examples 6, 7, 10 pin down the exact tree labels."""

    @pytest.fixture
    def tree_index(self, paper_graph):
        return build_tree_index(core_tree_decomposition(paper_graph, 2))

    def label_1based(self, tree_index, node_1based):
        pos = tree_index.decomposition.position[node_1based - 1]
        return {k + 1: v for k, v in tree_index.labels[pos].items()}

    def test_v5_label(self, tree_index):
        # Example 7: v5 has ancestor {v8: 1} and interfaces {v10: 4, v12: 1}.
        assert self.label_1based(tree_index, 5) == {8: 1, 10: 4, 12: 1}

    def test_v7_label(self, tree_index):
        # Example 6: the 8-local distance from v7 to v12 is 4.
        assert self.label_1based(tree_index, 7) == {8: 2, 10: 1, 12: 4}

    def test_v6_label(self, tree_index):
        # Example 10 uses δT(v6, v10) = 2 and δT(v6, v12) = 3.
        assert self.label_1based(tree_index, 6) == {7: 1, 8: 1, 10: 2, 12: 3}

    def test_v8_root_label(self, tree_index):
        # Figure 5: v8 (a root) stores only its interface {v10: 3, v12: 2}.
        assert self.label_1based(tree_index, 8) == {10: 3, 12: 2}

    def test_v1_label(self, tree_index):
        # Figure 5 row for v1: ancestors {v2, v3, v4} and interface.
        assert self.label_1based(tree_index, 1) == {2: 1, 3: 2, 4: 3, 11: 4, 12: 3}

    def test_size_entries(self, tree_index):
        assert tree_index.size_entries() == sum(len(lbl) for lbl in tree_index.labels)

    def test_local_distance_self_zero(self, tree_index):
        pos = tree_index.decomposition.position[4]  # v5
        assert tree_index.local_distance(pos, 4) == 0

    def test_local_distance_unknown_target_inf(self, tree_index):
        pos = tree_index.decomposition.position[0]  # v1
        assert tree_index.local_distance(pos, 8) == INF  # v9 not a target


class TestCoreIndex:
    def test_core_index_over_reduced_graph(self, paper_graph):
        decomposition = core_tree_decomposition(paper_graph, 2)
        core_index, originals, compact = build_core_index(decomposition)
        assert [v + 1 for v in originals] == [9, 10, 11, 12]
        assert compact[originals[0]] == 0
        # Example 8: dist(v11, v12) = 1 in G_{λ+1}.
        assert core_index.distance(compact[10], compact[11]) == 1
        # Example 9 uses dist_{G9}(v10, v11) = 1 and dist_{G9}(v12, v11) = 1.
        assert core_index.distance(compact[9], compact[10]) == 1

    def test_weighted_core_graph(self):
        g = gnp_graph(40, 0.1, seed=1)
        decomposition = core_tree_decomposition(g, 3)
        core_graph, _ = decomposition.core_graph()
        core_index, _, _ = build_core_index(decomposition)
        assert core_index.graph == core_graph


class TestConstruct:
    def test_construct_returns_consistent_pieces(self):
        g = gnp_graph(50, 0.12, seed=2)
        decomposition, tree_index, core_index, originals, compact, elapsed = construct(g, 4)
        assert tree_index.decomposition is decomposition
        assert len(originals) == len(decomposition.core_nodes)
        assert elapsed > 0

    def test_budget_shared_across_phases(self):
        g = gnp_graph(60, 0.15, seed=3)
        with pytest.raises(OverMemoryError):
            construct(g, 4, budget=MemoryBudget(limit_bytes=200))

    def test_weighted_input(self):
        g = random_weighted(gnp_graph(30, 0.15, seed=4), 1, 6, seed=5)
        decomposition, tree_index, core_index, _, _, _ = construct(g, 3)
        assert decomposition.boundary + len(decomposition.core_nodes) == g.n
