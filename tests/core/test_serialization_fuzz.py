"""Failure injection: corrupted index files must fail loudly and cleanly."""

from __future__ import annotations

import json
import random

import pytest

from repro.core.ct_index import CTIndex
from repro.core.serialization import load_ct_index, save_ct_index
from repro.exceptions import SerializationError
from repro.graphs.generators.random_graphs import gnp_graph


@pytest.fixture(scope="module")
def saved_document(tmp_path_factory):
    g = gnp_graph(20, 0.2, seed=1)
    index = CTIndex.build(g, 3)
    path = tmp_path_factory.mktemp("fuzz") / "index.json"
    save_ct_index(index, path)
    return json.loads(path.read_text())


def write_and_load(tmp_path, document):
    path = tmp_path / "candidate.json"
    path.write_text(json.dumps(document))
    return load_ct_index(path)


class TestFieldDeletion:
    @pytest.mark.parametrize(
        "field", ["graph", "reduction", "elimination", "tree_labels", "core", "bandwidth"]
    )
    def test_missing_top_level_field(self, tmp_path, saved_document, field):
        document = dict(saved_document)
        del document[field]
        with pytest.raises(SerializationError):
            write_and_load(tmp_path, document)

    def test_missing_nested_field(self, tmp_path, saved_document):
        document = json.loads(json.dumps(saved_document))
        del document["core"]["order"]
        with pytest.raises(SerializationError):
            write_and_load(tmp_path, document)


class TestTypeCorruption:
    def test_string_bandwidth(self, tmp_path, saved_document):
        document = dict(saved_document)
        document["bandwidth"] = "twenty"
        with pytest.raises(SerializationError):
            write_and_load(tmp_path, document)

    def test_graph_edges_scrambled(self, tmp_path, saved_document):
        document = json.loads(json.dumps(saved_document))
        document["graph"]["edges"] = [["a", "b", 1]]
        with pytest.raises(SerializationError):
            write_and_load(tmp_path, document)

    def test_truncated_json(self, tmp_path, saved_document):
        path = tmp_path / "trunc.json"
        text = json.dumps(saved_document)
        path.write_text(text[: len(text) // 2])
        with pytest.raises(SerializationError):
            load_ct_index(path)


class TestRandomDeletionFuzz:
    def test_random_key_deletions_never_crash_uncleanly(self, tmp_path, saved_document):
        rng = random.Random(7)
        for trial in range(25):
            document = json.loads(json.dumps(saved_document))
            # Delete a random key at a random depth.
            node = document
            for _ in range(rng.randint(1, 3)):
                keys = [k for k in node if isinstance(node, dict)] if isinstance(node, dict) else []
                if not keys:
                    break
                key = rng.choice(keys)
                if rng.random() < 0.5 or not isinstance(node[key], dict):
                    del node[key]
                    break
                node = node[key]
            path = tmp_path / f"fuzz{trial}.json"
            path.write_text(json.dumps(document))
            try:
                index = load_ct_index(path)
            except SerializationError:
                continue  # clean failure is the expected outcome
            # If it still loads, it must still answer queries sanely.
            index.distance(0, index.graph.n - 1)
