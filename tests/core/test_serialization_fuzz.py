"""Failure injection: corrupted index files must fail loudly and cleanly.

Two corpora share one built index:

* **JSON documents** — field deletion, type corruption, truncation, and
  a randomized key-deletion sweep against the v1/v2 loader;
* **Binary snapshots** — truncation at every structural boundary,
  deterministic single-bit flips over the whole file, and targeted
  header corruption (magic, version, section count, section names)
  against the v3 loader.  The CRC-32 section checksums mean every
  payload flip must surface as a clean
  :class:`~repro.exceptions.SerializationError`, never as garbage
  labels or an uncaught ``struct.error``.
"""

from __future__ import annotations

import json
import random
import struct

import pytest

from repro.core.ct_index import CTIndex
from repro.core.serialization import (
    load_ct_index,
    load_ct_index_binary,
    save_ct_index,
    save_ct_index_binary,
)
from repro.exceptions import SerializationError
from repro.graphs.generators.random_graphs import gnp_graph
from repro.storage.binary import _HEADER, _SECTION, _SECTION_NAMES, MAGIC


@pytest.fixture(scope="module")
def built_index():
    return CTIndex.build(gnp_graph(20, 0.2, seed=1), 3)


@pytest.fixture(scope="module")
def saved_document(tmp_path_factory, built_index):
    path = tmp_path_factory.mktemp("fuzz") / "index.json"
    save_ct_index(built_index, path)
    return json.loads(path.read_text())


@pytest.fixture(scope="module")
def snapshot_bytes(tmp_path_factory, built_index):
    path = tmp_path_factory.mktemp("fuzz-bin") / "index.ctsnap"
    save_ct_index_binary(built_index, path)
    return path.read_bytes()


def write_and_load(tmp_path, document):
    path = tmp_path / "candidate.json"
    path.write_text(json.dumps(document))
    return load_ct_index(path)


class TestFieldDeletion:
    @pytest.mark.parametrize(
        "field", ["graph", "reduction", "elimination", "tree_labels", "core", "bandwidth"]
    )
    def test_missing_top_level_field(self, tmp_path, saved_document, field):
        document = dict(saved_document)
        del document[field]
        with pytest.raises(SerializationError):
            write_and_load(tmp_path, document)

    def test_missing_nested_field(self, tmp_path, saved_document):
        document = json.loads(json.dumps(saved_document))
        del document["core"]["order"]
        with pytest.raises(SerializationError):
            write_and_load(tmp_path, document)


class TestTypeCorruption:
    def test_string_bandwidth(self, tmp_path, saved_document):
        document = dict(saved_document)
        document["bandwidth"] = "twenty"
        with pytest.raises(SerializationError):
            write_and_load(tmp_path, document)

    def test_graph_edges_scrambled(self, tmp_path, saved_document):
        document = json.loads(json.dumps(saved_document))
        document["graph"]["edges"] = [["a", "b", 1]]
        with pytest.raises(SerializationError):
            write_and_load(tmp_path, document)

    def test_truncated_json(self, tmp_path, saved_document):
        path = tmp_path / "trunc.json"
        text = json.dumps(saved_document)
        path.write_text(text[: len(text) // 2])
        with pytest.raises(SerializationError):
            load_ct_index(path)


class TestRandomDeletionFuzz:
    def test_random_key_deletions_never_crash_uncleanly(self, tmp_path, saved_document):
        rng = random.Random(7)
        for trial in range(25):
            document = json.loads(json.dumps(saved_document))
            # Delete a random key at a random depth.
            node = document
            for _ in range(rng.randint(1, 3)):
                keys = [k for k in node if isinstance(node, dict)] if isinstance(node, dict) else []
                if not keys:
                    break
                key = rng.choice(keys)
                if rng.random() < 0.5 or not isinstance(node[key], dict):
                    del node[key]
                    break
                node = node[key]
            path = tmp_path / f"fuzz{trial}.json"
            path.write_text(json.dumps(document))
            try:
                index = load_ct_index(path)
            except SerializationError:
                continue  # clean failure is the expected outcome
            # If it still loads, it must still answer queries sanely.
            index.distance(0, index.graph.n - 1)


# ----------------------------------------------------------------------
# Binary snapshot fuzzing
# ----------------------------------------------------------------------


def _load_bytes(tmp_path, data: bytes):
    path = tmp_path / "candidate.ctsnap"
    path.write_bytes(data)
    return load_ct_index_binary(path)


class TestBinaryTruncation:
    def test_truncation_at_every_boundary(self, tmp_path, snapshot_bytes):
        table_end = _HEADER.size + _SECTION.size * len(_SECTION_NAMES)
        payload_len = len(snapshot_bytes) - table_end
        cuts = {0, 1, 4, _HEADER.size - 1, _HEADER.size}
        cuts.update(_HEADER.size + _SECTION.size * i for i in range(len(_SECTION_NAMES)))
        cuts.update(table_end + (payload_len * i) // 16 for i in range(16))
        cuts.add(len(snapshot_bytes) - 1)
        for cut in sorted(cuts):
            with pytest.raises(SerializationError):
                _load_bytes(tmp_path, snapshot_bytes[:cut])

    def test_truncated_snapshot_fails_cleanly_via_autodetect(
        self, tmp_path, snapshot_bytes
    ):
        # load_ct_index routes magic-prefixed files to the binary loader;
        # a truncated snapshot must not fall through to the JSON parser.
        path = tmp_path / "trunc.ctsnap"
        path.write_bytes(snapshot_bytes[: len(snapshot_bytes) // 2])
        with pytest.raises(SerializationError):
            load_ct_index(path)

    def test_empty_file(self, tmp_path):
        with pytest.raises(SerializationError, match="too short"):
            _load_bytes(tmp_path, b"")


class TestBinaryBitFlips:
    def test_single_bit_flips_fail_cleanly(self, tmp_path, snapshot_bytes, built_index):
        """Flip one bit at 120 deterministic positions across the file.

        Every flip must either raise SerializationError (the expected
        outcome: CRC mismatch, bad magic, bounds violation, ...) or — in
        the astronomically unlikely event a flip survives the checksums —
        still load into an index that answers like the original.
        """
        rng = random.Random(20260806)
        positions = sorted(
            rng.randrange(len(snapshot_bytes)) for _ in range(120)
        )
        survivors = 0
        for pos in positions:
            corrupted = bytearray(snapshot_bytes)
            corrupted[pos] ^= 1 << rng.randrange(8)
            try:
                index = _load_bytes(tmp_path, bytes(corrupted))
            except SerializationError:
                continue
            survivors += 1
            n = index.graph.n
            assert index.distance(0, n - 1) == built_index.distance(0, n - 1)
        # CRC-32 over every section means essentially no flip loads.
        assert survivors == 0

    def test_payload_flip_reports_checksum(self, tmp_path, snapshot_bytes):
        table_end = _HEADER.size + _SECTION.size * len(_SECTION_NAMES)
        corrupted = bytearray(snapshot_bytes)
        corrupted[table_end + 5] ^= 0x40
        with pytest.raises(SerializationError, match="checksum mismatch"):
            _load_bytes(tmp_path, bytes(corrupted))


class TestBinaryHeaderCorruption:
    def test_bad_magic(self, tmp_path, snapshot_bytes):
        corrupted = b"NOTANIDX" + snapshot_bytes[len(MAGIC) :]
        with pytest.raises(SerializationError, match="bad magic"):
            _load_bytes(tmp_path, corrupted)

    def test_bad_magic_via_autodetect_is_not_json(self, tmp_path, snapshot_bytes):
        # Without the magic the generic loader tries JSON; raw binary
        # must still fail with SerializationError, not UnicodeDecodeError.
        path = tmp_path / "notmagic.ctsnap"
        path.write_bytes(b"NOTANIDX" + snapshot_bytes[len(MAGIC) :])
        with pytest.raises(SerializationError):
            load_ct_index(path)

    @pytest.mark.parametrize("version", [0, 1, 2, 5, 99, 2**32 - 1])
    def test_unsupported_header_version(self, tmp_path, snapshot_bytes, version):
        corrupted = bytearray(snapshot_bytes)
        corrupted[len(MAGIC) : len(MAGIC) + 4] = struct.pack("<I", version)
        with pytest.raises(SerializationError, match=f"version {version}"):
            _load_bytes(tmp_path, bytes(corrupted))

    def test_version_3_header_on_v4_payload_mismatches_meta(
        self, tmp_path, snapshot_bytes
    ):
        # 3 is an accepted header version, but the meta section of a v4
        # snapshot pins 4 — rewriting only the header must not load.
        corrupted = bytearray(snapshot_bytes)
        corrupted[len(MAGIC) : len(MAGIC) + 4] = struct.pack("<I", 3)
        with pytest.raises(SerializationError, match="meta section claims"):
            _load_bytes(tmp_path, bytes(corrupted))

    def test_huge_section_count(self, tmp_path, snapshot_bytes):
        corrupted = bytearray(snapshot_bytes)
        corrupted[_HEADER.size - 4 : _HEADER.size] = struct.pack("<I", 50_000)
        with pytest.raises(SerializationError, match="section table"):
            _load_bytes(tmp_path, bytes(corrupted))

    def test_renamed_section_reported_missing(self, tmp_path, snapshot_bytes):
        # Smash the first section's name (not covered by its payload CRC):
        # the loader must report the section as missing, not decode junk.
        corrupted = bytearray(snapshot_bytes)
        corrupted[_HEADER.size : _HEADER.size + 4] = b"XXXX"
        with pytest.raises(SerializationError, match="missing snapshot sections"):
            _load_bytes(tmp_path, bytes(corrupted))

    def test_random_garbage_behind_magic(self, tmp_path):
        rng = random.Random(11)
        for trial in range(10):
            garbage = MAGIC + bytes(
                rng.randrange(256) for _ in range(rng.randrange(4, 4096))
            )
            with pytest.raises(SerializationError):
                _load_bytes(tmp_path, garbage)


class TestCraftedSectionTables:
    """Adversarial tables: structurally valid entries, dishonest layout.

    Every entry individually passes the bounds check, so these shapes
    reach the table-consistency validation — a crafted table could
    otherwise alias one payload under two names or smuggle a second
    copy of a section past the reader.
    """

    @staticmethod
    def _entry(data: bytes, i: int):
        return _SECTION.unpack_from(data, _HEADER.size + _SECTION.size * i)

    @staticmethod
    def _patch_entry(data: bytearray, i: int, name, offset, length, crc) -> None:
        _SECTION.pack_into(
            data, _HEADER.size + _SECTION.size * i, name, offset, length, crc
        )

    def test_duplicate_section_name_rejected(self, tmp_path, snapshot_bytes):
        corrupted = bytearray(snapshot_bytes)
        name0 = self._entry(corrupted, 0)[0]
        _, offset, length, crc = self._entry(corrupted, 1)
        self._patch_entry(corrupted, 1, name0, offset, length, crc)
        with pytest.raises(SerializationError, match="repeats section"):
            _load_bytes(tmp_path, bytes(corrupted))

    def test_overlapping_sections_rejected(self, tmp_path, snapshot_bytes):
        # Point section 1 into section 0's byte range (same name, own
        # length): each entry is in bounds, but the ranges collide.
        corrupted = bytearray(snapshot_bytes)
        _, offset0, _, _ = self._entry(corrupted, 0)
        name1, _, length1, crc1 = self._entry(corrupted, 1)
        self._patch_entry(corrupted, 1, name1, offset0, length1, crc1)
        with pytest.raises(SerializationError, match="overlap"):
            _load_bytes(tmp_path, bytes(corrupted))

    def test_identical_aliased_entries_rejected(self, tmp_path, snapshot_bytes):
        # Entry 1 becomes a byte-for-byte copy of entry 0: duplicate
        # name AND full range overlap (the CRC would even verify) —
        # the duplicate-name check must fire before any payload reads.
        corrupted = bytearray(snapshot_bytes)
        self._patch_entry(corrupted, 1, *self._entry(corrupted, 0))
        with pytest.raises(SerializationError, match="repeats section"):
            _load_bytes(tmp_path, bytes(corrupted))

    @pytest.mark.parametrize("use_mmap", [False, True])
    def test_rejection_shared_by_mapped_loads(
        self, tmp_path, snapshot_bytes, use_mmap
    ):
        # The table validation runs in _read_sections, shared by the
        # copying and mmap paths; both must refuse a crafted table.
        corrupted = bytearray(snapshot_bytes)
        _, offset0, _, _ = self._entry(corrupted, 0)
        name1, _, length1, crc1 = self._entry(corrupted, 1)
        self._patch_entry(corrupted, 1, name1, offset0 + 1, length1, crc1)
        path = tmp_path / "crafted.ctsnap"
        path.write_bytes(bytes(corrupted))
        with pytest.raises(SerializationError, match="overlap"):
            load_ct_index_binary(path, mmap=use_mmap)
