"""Unit tests for CT-Index save/load."""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.core.ct_index import CTIndex
from repro.core.serialization import (
    FORMAT_VERSION,
    index_fingerprint,
    load_ct_index,
    save_ct_index,
)
from repro.exceptions import SerializationError
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.traversal import all_pairs_distances

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _reject_constant(name: str):
    raise ValueError(f"non-standard JSON constant {name!r}")


def strict_loads(text: str):
    """Parse as a strict (RFC 8259) JSON consumer would: no Infinity/NaN."""
    return json.loads(text, parse_constant=_reject_constant)


class TestRoundTrip:
    @pytest.mark.parametrize("bandwidth", [0, 2, 5])
    def test_unweighted_roundtrip(self, tmp_path, bandwidth):
        g = gnp_graph(35, 0.12, seed=1)
        index = CTIndex.build(g, bandwidth)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        loaded = load_ct_index(path)
        assert loaded.bandwidth == bandwidth
        assert loaded.size_entries() == index.size_entries()
        truth = all_pairs_distances(g)
        for s in g.nodes():
            for t in g.nodes():
                assert loaded.distance(s, t) == truth[s][t], (s, t)

    def test_weighted_roundtrip(self, tmp_path):
        g = random_weighted(gnp_graph(20, 0.2, seed=2), 1, 7, seed=3)
        index = CTIndex.build(g, 3)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        loaded = load_ct_index(path)
        truth = all_pairs_distances(g)
        for s in g.nodes():
            for t in g.nodes():
                assert loaded.distance(s, t) == truth[s][t]

    def test_reduction_survives(self, tmp_path):
        from repro.graphs.generators.primitives import star_graph

        index = CTIndex.build(star_graph(10), 2)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        loaded = load_ct_index(path)
        assert loaded.distance(1, 2) == 2  # twin-class distance restored

    def test_build_seconds_persisted(self, tmp_path):
        index = CTIndex.build(gnp_graph(15, 0.2, seed=4), 2)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        assert load_ct_index(path).build_seconds == index.build_seconds


class TestStrictJson:
    """Regression: documents must parse under strict JSON rules even
    when stored weights are ``math.inf`` (previously emitted as the
    non-standard ``Infinity`` literal)."""

    @staticmethod
    def _index_with_infinite_label():
        # Inject an infinity into a tree-label map directly: the round
        # trip must preserve it exactly, whatever produced it.
        index = CTIndex.build(gnp_graph(20, 0.2, seed=6), 3)
        for pos, label in enumerate(index.tree_index.labels):
            if label:
                key = next(iter(label))
                label[key] = math.inf
                return index, pos, key
        pytest.skip("no tree labels on this build")

    def test_output_is_strict_json(self, tmp_path):
        index, _, _ = self._index_with_infinite_label()
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        document = strict_loads(path.read_text())  # raises on Infinity/NaN
        assert document["version"] == FORMAT_VERSION
        assert "Infinity" not in path.read_text()

    def test_infinite_weight_roundtrips_exactly(self, tmp_path):
        index, pos, key = self._index_with_infinite_label()
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        loaded = load_ct_index(path)
        assert loaded.tree_index.labels[pos][key] == math.inf
        assert isinstance(loaded.tree_index.labels[pos][key], float)

    def test_plain_document_strict_and_queryable(self, tmp_path):
        g = gnp_graph(25, 0.15, seed=7)
        index = CTIndex.build(g, 3)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        strict_loads(path.read_text())
        loaded = load_ct_index(path)
        truth = all_pairs_distances(g)
        for t in g.nodes():
            assert loaded.distance(0, t) == truth[0][t]

    def test_version_1_documents_still_load(self, tmp_path):
        # Version 1 wrote weights as raw numbers; the decoder must keep
        # accepting them (sentinel decoding is a no-op on numbers).
        g = gnp_graph(15, 0.25, seed=8)
        index = CTIndex.build(g, 2)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        document = json.loads(path.read_text())
        document["version"] = 1
        path.write_text(json.dumps(document))
        loaded = load_ct_index(path)
        truth = all_pairs_distances(g)
        for t in g.nodes():
            assert loaded.distance(0, t) == truth[0][t]


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_ct_index(tmp_path / "absent.json")

    def test_not_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("this is not json")
        with pytest.raises(SerializationError):
            load_ct_index(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(SerializationError):
            load_ct_index(path)

    def test_wrong_version(self, tmp_path):
        index = CTIndex.build(gnp_graph(10, 0.3, seed=5), 2)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        document = json.loads(path.read_text())
        document["version"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(SerializationError):
            load_ct_index(path)


class TestUnknownVersions:
    """Regression: a JSON document from a newer (or nonsense) writer must
    raise a :class:`SerializationError` that *names the version found*
    and the versions this build reads — never load half-understood data
    or crash with a KeyError deeper in the decoder."""

    @staticmethod
    def _patched_document(tmp_path, version):
        index = CTIndex.build(gnp_graph(12, 0.3, seed=9), 2)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        document = json.loads(path.read_text())
        document["version"] = version
        path.write_text(json.dumps(document))
        return path

    @pytest.mark.parametrize("version", [3, 4, 99, 2**40, 0, -1, "2", None])
    def test_unknown_version_is_named_in_the_error(self, tmp_path, version):
        path = self._patched_document(tmp_path, version)
        with pytest.raises(SerializationError) as excinfo:
            load_ct_index(path)
        message = str(excinfo.value)
        assert repr(version) in message
        assert "version" in message

    def test_bool_version_rejected(self, tmp_path):
        # bool is an int subclass: `True in {1, 2}` is True, so a naive
        # membership check would accept a `true` version field.
        path = self._patched_document(tmp_path, True)
        with pytest.raises(SerializationError, match="True"):
            load_ct_index(path)

    def test_missing_version_rejected(self, tmp_path):
        index = CTIndex.build(gnp_graph(12, 0.3, seed=9), 2)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        document = json.loads(path.read_text())
        del document["version"]
        path.write_text(json.dumps(document))
        with pytest.raises(SerializationError, match="None"):
            load_ct_index(path)

    def test_error_mentions_supported_versions(self, tmp_path):
        path = self._patched_document(tmp_path, 7)
        with pytest.raises(SerializationError, match=r"\[1, 2\]"):
            load_ct_index(path)


class TestGoldenFixtures:
    """Checked-in snapshots of both formats (see ``golden/regenerate.py``).

    These pin backward compatibility: today's loader must keep reading
    bytes written by past builds.  If one of these fails after a format
    change, that change broke compatibility — bump the version and add a
    migration path instead of regenerating the fixture.
    """

    BANDWIDTH = 3

    @staticmethod
    def _golden_truth():
        return all_pairs_distances(gnp_graph(20, 0.2, seed=1))

    def test_golden_json_loads_and_answers(self):
        index = load_ct_index(GOLDEN_DIR / "index_v2.json")
        assert index.bandwidth == self.BANDWIDTH
        truth = self._golden_truth()
        for s in index.graph.nodes():
            for t in index.graph.nodes():
                assert index.distance(s, t) == truth[s][t], (s, t)

    @pytest.mark.parametrize("fixture", ["index_v3.ctsnap", "index_v4.ctsnap"])
    def test_golden_binary_loads_and_answers(self, fixture):
        index = load_ct_index(GOLDEN_DIR / fixture)
        assert index.bandwidth == self.BANDWIDTH
        assert index.storage_backend == "flat"
        truth = self._golden_truth()
        for s in index.graph.nodes():
            for t in index.graph.nodes():
                assert index.distance(s, t) == truth[s][t], (s, t)

    @pytest.mark.parametrize("fixture", ["index_v3.ctsnap", "index_v4.ctsnap"])
    def test_golden_fixtures_are_the_same_index(self, fixture):
        from_json = load_ct_index(GOLDEN_DIR / "index_v2.json")
        from_binary = load_ct_index(GOLDEN_DIR / fixture)
        assert index_fingerprint(from_json) == index_fingerprint(from_binary)

    def test_golden_fixtures_match_a_fresh_build(self):
        fresh = CTIndex.build(gnp_graph(20, 0.2, seed=1), self.BANDWIDTH)
        loaded = load_ct_index(GOLDEN_DIR / "index_v2.json")
        assert index_fingerprint(loaded) == index_fingerprint(fresh)

    def test_golden_json_document_is_version_2(self):
        document = json.loads((GOLDEN_DIR / "index_v2.json").read_text())
        assert document["version"] == 2

    def test_golden_binary_headers_pin_their_versions(self):
        from repro.storage.binary import _HEADER, BINARY_FORMAT_VERSION, MAGIC

        for fixture, expected in (("index_v3.ctsnap", 3), ("index_v4.ctsnap", 4)):
            data = (GOLDEN_DIR / fixture).read_bytes()
            magic, version, _count = _HEADER.unpack_from(data, 0)
            assert magic == MAGIC
            assert version == expected
        assert BINARY_FORMAT_VERSION == 4

    def test_golden_v4_fixture_is_smaller_than_v3(self):
        # The point of v4: narrowest-sufficient typecodes shrink the file.
        v3 = (GOLDEN_DIR / "index_v3.ctsnap").stat().st_size
        v4 = (GOLDEN_DIR / "index_v4.ctsnap").stat().st_size
        assert v4 < v3
