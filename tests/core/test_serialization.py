"""Unit tests for CT-Index save/load."""

from __future__ import annotations

import json

import pytest

from repro.core.ct_index import CTIndex
from repro.core.serialization import load_ct_index, save_ct_index
from repro.exceptions import SerializationError
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.traversal import all_pairs_distances


class TestRoundTrip:
    @pytest.mark.parametrize("bandwidth", [0, 2, 5])
    def test_unweighted_roundtrip(self, tmp_path, bandwidth):
        g = gnp_graph(35, 0.12, seed=1)
        index = CTIndex.build(g, bandwidth)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        loaded = load_ct_index(path)
        assert loaded.bandwidth == bandwidth
        assert loaded.size_entries() == index.size_entries()
        truth = all_pairs_distances(g)
        for s in g.nodes():
            for t in g.nodes():
                assert loaded.distance(s, t) == truth[s][t], (s, t)

    def test_weighted_roundtrip(self, tmp_path):
        g = random_weighted(gnp_graph(20, 0.2, seed=2), 1, 7, seed=3)
        index = CTIndex.build(g, 3)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        loaded = load_ct_index(path)
        truth = all_pairs_distances(g)
        for s in g.nodes():
            for t in g.nodes():
                assert loaded.distance(s, t) == truth[s][t]

    def test_reduction_survives(self, tmp_path):
        from repro.graphs.generators.primitives import star_graph

        index = CTIndex.build(star_graph(10), 2)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        loaded = load_ct_index(path)
        assert loaded.distance(1, 2) == 2  # twin-class distance restored

    def test_build_seconds_persisted(self, tmp_path):
        index = CTIndex.build(gnp_graph(15, 0.2, seed=4), 2)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        assert load_ct_index(path).build_seconds == index.build_seconds


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_ct_index(tmp_path / "absent.json")

    def test_not_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("this is not json")
        with pytest.raises(SerializationError):
            load_ct_index(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(SerializationError):
            load_ct_index(path)

    def test_wrong_version(self, tmp_path):
        index = CTIndex.build(gnp_graph(10, 0.3, seed=5), 2)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        document = json.loads(path.read_text())
        document["version"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(SerializationError):
            load_ct_index(path)
