"""Unit tests for CT-Index save/load."""

from __future__ import annotations

import json
import math

import pytest

from repro.core.ct_index import CTIndex
from repro.core.serialization import FORMAT_VERSION, load_ct_index, save_ct_index
from repro.exceptions import SerializationError
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.traversal import all_pairs_distances


def _reject_constant(name: str):
    raise ValueError(f"non-standard JSON constant {name!r}")


def strict_loads(text: str):
    """Parse as a strict (RFC 8259) JSON consumer would: no Infinity/NaN."""
    return json.loads(text, parse_constant=_reject_constant)


class TestRoundTrip:
    @pytest.mark.parametrize("bandwidth", [0, 2, 5])
    def test_unweighted_roundtrip(self, tmp_path, bandwidth):
        g = gnp_graph(35, 0.12, seed=1)
        index = CTIndex.build(g, bandwidth)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        loaded = load_ct_index(path)
        assert loaded.bandwidth == bandwidth
        assert loaded.size_entries() == index.size_entries()
        truth = all_pairs_distances(g)
        for s in g.nodes():
            for t in g.nodes():
                assert loaded.distance(s, t) == truth[s][t], (s, t)

    def test_weighted_roundtrip(self, tmp_path):
        g = random_weighted(gnp_graph(20, 0.2, seed=2), 1, 7, seed=3)
        index = CTIndex.build(g, 3)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        loaded = load_ct_index(path)
        truth = all_pairs_distances(g)
        for s in g.nodes():
            for t in g.nodes():
                assert loaded.distance(s, t) == truth[s][t]

    def test_reduction_survives(self, tmp_path):
        from repro.graphs.generators.primitives import star_graph

        index = CTIndex.build(star_graph(10), 2)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        loaded = load_ct_index(path)
        assert loaded.distance(1, 2) == 2  # twin-class distance restored

    def test_build_seconds_persisted(self, tmp_path):
        index = CTIndex.build(gnp_graph(15, 0.2, seed=4), 2)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        assert load_ct_index(path).build_seconds == index.build_seconds


class TestStrictJson:
    """Regression: documents must parse under strict JSON rules even
    when stored weights are ``math.inf`` (previously emitted as the
    non-standard ``Infinity`` literal)."""

    @staticmethod
    def _index_with_infinite_label():
        # Inject an infinity into a tree-label map directly: the round
        # trip must preserve it exactly, whatever produced it.
        index = CTIndex.build(gnp_graph(20, 0.2, seed=6), 3)
        for pos, label in enumerate(index.tree_index.labels):
            if label:
                key = next(iter(label))
                label[key] = math.inf
                return index, pos, key
        pytest.skip("no tree labels on this build")

    def test_output_is_strict_json(self, tmp_path):
        index, _, _ = self._index_with_infinite_label()
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        document = strict_loads(path.read_text())  # raises on Infinity/NaN
        assert document["version"] == FORMAT_VERSION
        assert "Infinity" not in path.read_text()

    def test_infinite_weight_roundtrips_exactly(self, tmp_path):
        index, pos, key = self._index_with_infinite_label()
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        loaded = load_ct_index(path)
        assert loaded.tree_index.labels[pos][key] == math.inf
        assert isinstance(loaded.tree_index.labels[pos][key], float)

    def test_plain_document_strict_and_queryable(self, tmp_path):
        g = gnp_graph(25, 0.15, seed=7)
        index = CTIndex.build(g, 3)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        strict_loads(path.read_text())
        loaded = load_ct_index(path)
        truth = all_pairs_distances(g)
        for t in g.nodes():
            assert loaded.distance(0, t) == truth[0][t]

    def test_version_1_documents_still_load(self, tmp_path):
        # Version 1 wrote weights as raw numbers; the decoder must keep
        # accepting them (sentinel decoding is a no-op on numbers).
        g = gnp_graph(15, 0.25, seed=8)
        index = CTIndex.build(g, 2)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        document = json.loads(path.read_text())
        document["version"] = 1
        path.write_text(json.dumps(document))
        loaded = load_ct_index(path)
        truth = all_pairs_distances(g)
        for t in g.nodes():
            assert loaded.distance(0, t) == truth[0][t]


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_ct_index(tmp_path / "absent.json")

    def test_not_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("this is not json")
        with pytest.raises(SerializationError):
            load_ct_index(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(SerializationError):
            load_ct_index(path)

    def test_wrong_version(self, tmp_path):
        index = CTIndex.build(gnp_graph(10, 0.3, seed=5), 2)
        path = tmp_path / "index.json"
        save_ct_index(index, path)
        document = json.loads(path.read_text())
        document["version"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(SerializationError):
            load_ct_index(path)
