"""Unit tests for CTIndex: the paper's query examples and general behavior."""

from __future__ import annotations

import pytest

from repro.core.ct_index import CTIndex, build_ct_index
from repro.exceptions import OverMemoryError, QueryError
from repro.graphs.generators.core_periphery import CorePeripheryConfig, core_periphery_graph
from repro.graphs.generators.primitives import clique_graph, path_graph, star_graph
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.graph import INF, Graph
from repro.graphs.traversal import all_pairs_distances
from repro.labeling.base import MemoryBudget


@pytest.fixture
def paper_index(paper_graph):
    # No twin reduction so node ids map 1:1 onto the paper's.
    return CTIndex.build(paper_graph, 2, use_equivalence_reduction=False)


class TestPaperQueries:
    """Examples 8, 9, 11, 12 of Section 4.5 (nodes 0-based here)."""

    def test_example_8_case1_core_core(self, paper_index):
        # s = v11, t = v12, both core: dist = 1.
        assert paper_index.distance(10, 11) == 1
        assert paper_index.case_counts["case1"] == 1

    def test_example_9_case2_tree_core(self, paper_index):
        # s = v6 (tree), t = v11 (core): dist = 3.
        assert paper_index.distance(5, 10) == 3
        assert paper_index.case_counts["case2"] == 1

    def test_example_11_case3_cross_tree(self, paper_index):
        # s = v6 (tree T8), t = v1 (tree T4): the example reports 6 as the
        # minimum over the extended label intersection.
        assert paper_index.distance(5, 0) == 6
        assert paper_index.case_counts["case3"] == 1

    def test_example_12_case4_same_tree(self, paper_index):
        # s = v5, t = v6, same tree: d2 = 2 wins over d4 = 4.
        assert paper_index.distance(4, 5) == 2
        assert paper_index.case_counts["case4"] == 1

    def test_example_10_extension(self, paper_graph):
        # L_ext(v6) = {v10: 2, v11: 3, v12: 3}.  Figure 5's core labels
        # come from the elimination-based hub order (v12 > v11 > ...).
        index = CTIndex.build(
            paper_graph, 2, use_equivalence_reduction=False, core_order="elimination"
        )
        pos6 = index.decomposition.position[5]
        extended = index._extended_labels(pos6)
        by_node = {
            index.core_originals[index.core_index.order[rank]]: dist
            for rank, dist in extended.items()
        }
        readable = {node + 1: dist for node, dist in by_node.items()}
        assert readable == {10: 2, 11: 3, 12: 3}

    def test_figure_5_core_labels(self, paper_graph):
        # The core index of Figure 5, hub order v12 > v11 > v10 > v9.
        index = CTIndex.build(
            paper_graph, 2, use_equivalence_reduction=False, core_order="elimination"
        )
        compact = index._core_compact
        labels = index.core_index.labels
        readable = {}
        for node_1b in (9, 10, 11, 12):
            entries = labels.label_entries(compact[node_1b - 1])
            readable[node_1b] = sorted(
                (index.core_originals[hub] + 1, dist) for hub, dist in entries
            )
        assert readable == {
            9: [(9, 0), (10, 1), (11, 1), (12, 1)],
            10: [(10, 0), (11, 1), (12, 1)],
            11: [(11, 0), (12, 1)],
            12: [(12, 0)],
        }

    def test_all_pairs_exact(self, paper_graph, paper_index):
        truth = all_pairs_distances(paper_graph)
        for s in paper_graph.nodes():
            for t in paper_graph.nodes():
                assert paper_index.distance(s, t) == truth[s][t]


class TestGeneralCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("bandwidth", [0, 2, 5, 50])
    def test_random(self, seed, bandwidth):
        g = gnp_graph(30, 0.12, seed=seed)
        index = CTIndex.build(g, bandwidth)
        truth = all_pairs_distances(g)
        for s in g.nodes():
            for t in g.nodes():
                assert index.distance(s, t) == truth[s][t]

    def test_weighted(self):
        g = random_weighted(gnp_graph(25, 0.18, seed=5), 1, 9, seed=6)
        index = CTIndex.build(g, 3)
        truth = all_pairs_distances(g)
        for s in g.nodes():
            for t in g.nodes():
                assert index.distance(s, t) == truth[s][t]

    def test_disconnected(self):
        g = Graph.from_edges(8, [(0, 1), (1, 2), (4, 5), (6, 7)])
        index = CTIndex.build(g, 2)
        assert index.distance(0, 2) == 2
        assert index.distance(0, 5) == INF
        assert index.distance(3, 3) == 0
        assert index.distance(3, 0) == INF

    def test_pure_tree_graph(self):
        g = path_graph(20)
        index = CTIndex.build(g, 2, use_equivalence_reduction=False)
        assert index.core_size == 0  # fully eliminated
        truth = all_pairs_distances(g)
        for s in range(20):
            for t in range(20):
                assert index.distance(s, t) == truth[s][t]

    def test_clique_graph(self):
        g = clique_graph(7)
        index = CTIndex.build(g, 2, use_equivalence_reduction=False)
        for s in range(7):
            for t in range(7):
                assert index.distance(s, t) == (0 if s == t else 1)

    def test_star_with_reduction(self):
        g = star_graph(10)
        index = CTIndex.build(g, 2)
        assert index.distance(1, 2) == 2
        assert index.distance(0, 5) == 1

    def test_naive_4hop_agrees(self):
        g = gnp_graph(40, 0.1, seed=7)
        index = CTIndex.build(g, 3)
        truth = all_pairs_distances(g)
        for s in range(0, 40, 3):
            for t in range(0, 40, 2):
                assert index.distance_naive_4hop(s, t) == truth[s][t]


class TestApi:
    def test_out_of_range_query(self):
        index = CTIndex.build(path_graph(4), 2)
        with pytest.raises(QueryError):
            index.distance(0, 4)
        with pytest.raises(QueryError):
            index.distance(-1, 0)

    def test_method_name_includes_bandwidth(self):
        index = CTIndex.build(path_graph(4), 7)
        assert index.method_name == "CT-7"

    def test_stats_extra_fields(self):
        g = gnp_graph(30, 0.15, seed=8)
        stats = CTIndex.build(g, 3).stats()
        assert "core_size" in stats.extra
        assert "boundary" in stats.extra
        assert stats.extra["tree_entries"] + stats.extra["core_entries"] == stats.entries

    def test_reset_counters(self):
        index = CTIndex.build(path_graph(6), 2)
        index.distance(0, 5)
        index.reset_counters()
        assert index.core_probes == 0
        assert not index.case_counts

    def test_build_ct_index_alias(self):
        g = path_graph(5)
        assert build_ct_index(g, 2).distance(0, 4) == 4

    def test_budget_overflow(self):
        g = gnp_graph(60, 0.25, seed=9)
        with pytest.raises(OverMemoryError):
            CTIndex.build(g, 2, budget=MemoryBudget(limit_bytes=120))

    def test_boundary_and_core_size_partition(self):
        g = gnp_graph(40, 0.15, seed=10)
        index = CTIndex.build(g, 4, use_equivalence_reduction=False)
        assert index.boundary + index.core_size == g.n


class TestBandwidthTradeOff:
    def test_size_decreases_on_core_periphery_graph(self):
        cfg = CorePeripheryConfig(
            core_size=80, core_density=0.5, community_count=10, fringe_size=300
        )
        g = core_periphery_graph(cfg, seed=11)
        size0 = CTIndex.build(g, 0).size_entries()
        size5 = CTIndex.build(g, 5).size_entries()
        assert size5 < size0

    def test_ct0_equals_psl_plus_size(self):
        from repro.labeling.psl_variants import build_psl_plus

        cfg = CorePeripheryConfig(core_size=50, community_count=5, fringe_size=150)
        g = core_periphery_graph(cfg, seed=12)
        ct0 = CTIndex.build(g, 0)
        psl_plus = build_psl_plus(g)
        assert ct0.size_entries() == psl_plus.size_entries()
