"""Regenerate the golden index fixtures in this directory.

Run from the repository root::

    PYTHONPATH=src python tests/core/golden/regenerate.py

The fixtures pin the on-disk formats: ``index_v2.json`` is the JSON
document (format version 2), ``index_v3.ctsnap`` the binary snapshot
of format version 3 and ``index_v4.ctsnap`` of format version 4, all
of the same deterministic build —
``CTIndex.build(gnp_graph(20, 0.2, seed=1), bandwidth=3)`` with
``build_seconds`` zeroed so the bytes are reproducible.

``index_v3.ctsnap`` is *frozen*: the current writer only emits version
4, so the v3 fixture can never be regenerated — it exists precisely to
prove today's loader still reads bytes written by the v3 writer.

Only regenerate after an *intentional* format change; the golden tests
in ``tests/core/test_serialization.py`` exist to catch accidental ones.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.ct_index import CTIndex
from repro.core.serialization import save_ct_index, save_ct_index_binary
from repro.graphs.generators.random_graphs import gnp_graph

GOLDEN_DIR = Path(__file__).resolve().parent
GOLDEN_SEED = 1
GOLDEN_N = 20
GOLDEN_P = 0.2
GOLDEN_BANDWIDTH = 3


def golden_index() -> CTIndex:
    """The deterministic build both fixtures were written from."""
    index = CTIndex.build(
        gnp_graph(GOLDEN_N, GOLDEN_P, seed=GOLDEN_SEED), GOLDEN_BANDWIDTH
    )
    index.build_seconds = 0.0
    return index


def main() -> None:
    index = golden_index()
    save_ct_index(index, GOLDEN_DIR / "index_v2.json")
    save_ct_index_binary(index, GOLDEN_DIR / "index_v4.ctsnap")
    print(f"wrote fixtures to {GOLDEN_DIR} (index_v3.ctsnap is frozen)")


if __name__ == "__main__":
    main()
