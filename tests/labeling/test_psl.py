"""Unit tests for the round-synchronous PSL builder."""

from __future__ import annotations

import pytest

from repro.exceptions import IndexConstructionError, OverMemoryError
from repro.graphs.generators.primitives import cycle_graph, path_graph, star_graph
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.graph import INF, Graph
from repro.graphs.traversal import all_pairs_distances, eccentricity
from repro.labeling.base import MemoryBudget
from repro.labeling.pll import build_pll
from repro.labeling.psl import build_psl


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        g = gnp_graph(30, 0.12, seed=seed)
        psl = build_psl(g)
        truth = all_pairs_distances(g)
        for s in g.nodes():
            for t in g.nodes():
                assert psl.distance(s, t) == truth[s][t]

    def test_disconnected(self):
        g = Graph.from_edges(5, [(0, 1), (2, 3)])
        psl = build_psl(g)
        assert psl.distance(0, 3) == INF
        assert psl.distance(2, 3) == 1

    def test_weighted_rejected(self):
        g = random_weighted(gnp_graph(10, 0.3, seed=1), 2, 5, seed=2)
        with pytest.raises(IndexConstructionError):
            build_psl(g)

    def test_path_and_cycle(self):
        for g in (path_graph(12), cycle_graph(9), star_graph(6)):
            psl = build_psl(g)
            truth = all_pairs_distances(g)
            for s in g.nodes():
                for t in g.nodes():
                    assert psl.distance(s, t) == truth[s][t]


class TestEquivalenceWithPll:
    @pytest.mark.parametrize("seed", range(5))
    def test_same_labels_as_pll_under_same_order(self, seed):
        # PSL's level-synchronous construction yields the same canonical
        # label sets as PLL's sequential pruned searches.
        g = gnp_graph(25, 0.15, seed=seed)
        pll = build_pll(g)
        psl = build_psl(g, order=pll.order)
        for v in g.nodes():
            assert sorted(pll.labels.label_entries(v)) == sorted(
                psl.labels.label_entries(v)
            ), v


class TestRounds:
    def test_rounds_bounded_by_diameter(self):
        g = path_graph(9)
        psl = build_psl(g)
        diameter = max(eccentricity(g, v) for v in g.nodes())
        assert psl.rounds <= diameter + 2

    def test_star_needs_two_rounds(self):
        psl = build_psl(star_graph(5))
        assert psl.rounds <= 3


class TestBudget:
    def test_budget_overflow(self):
        g = gnp_graph(30, 0.3, seed=3)
        with pytest.raises(OverMemoryError):
            build_psl(g, budget=MemoryBudget(limit_bytes=64))

    def test_exempt_nodes(self):
        g = cycle_graph(10)
        index = build_psl(
            g, budget=MemoryBudget(limit_bytes=1), budget_exempt=frozenset(g.nodes())
        )
        assert index.size_entries() > 0
