"""The scale-construction paths: vectorized PSL, hopdb, and order="is".

All three are alternative *schedules* over the same canonical label
definition, so every test here is differential: identical labels (or
identical ``index_fingerprint``) against the serial reference, or exact
distances against BFS where the decomposition itself legitimately
differs (``order="is"``).
"""

from __future__ import annotations

import pytest

import repro.kernels as kernels
from repro.core.ct_index import CTIndex
from repro.core.serialization import index_fingerprint
from repro.exceptions import IndexConstructionError
from repro.graphs.generators.power_law import barabasi_albert_graph
from repro.graphs.generators.primitives import cycle_graph, star_graph
from repro.graphs.generators.random_graphs import (
    connected_gnp_graph,
    gnp_graph,
    random_weighted,
)
from repro.graphs.traversal import bfs_distances
from repro.labeling.hopdb import build_hopdb
from repro.labeling.pll import build_pll
from repro.labeling.psl import VECTORIZE_MIN_NODES, build_psl

needs_numpy = pytest.mark.skipif(
    not kernels.numpy_available(), reason="NumPy not installed"
)


def _same_labels(a, b):
    for v in a.graph.nodes():
        assert sorted(a.labels.label_entries(v)) == sorted(
            b.labels.label_entries(v)
        ), v


class TestVectorizedPsl:
    @needs_numpy
    @pytest.mark.parametrize("seed", range(4))
    def test_numpy_rounds_match_python_rounds(self, seed):
        g = gnp_graph(max(VECTORIZE_MIN_NODES, 80), 0.06, seed=seed)
        serial = build_psl(g, kernel="python")
        vectorized = build_psl(g, order=serial.order, kernel="numpy")
        _same_labels(serial, vectorized)

    @needs_numpy
    def test_scale_free_and_structured_shapes(self):
        for g in (
            barabasi_albert_graph(200, 3, seed=2),
            star_graph(100),
            cycle_graph(90),
        ):
            serial = build_psl(g, kernel="python")
            vectorized = build_psl(g, order=serial.order, kernel="numpy")
            _same_labels(serial, vectorized)

    @needs_numpy
    def test_auto_matches_explicit_on_large_graphs(self):
        g = gnp_graph(120, 0.05, seed=9)
        assert g.n >= VECTORIZE_MIN_NODES
        auto = build_psl(g, kernel="auto")
        explicit = build_psl(g, order=auto.order, kernel="python")
        _same_labels(auto, explicit)

    def test_auto_without_numpy_falls_back(self, monkeypatch):
        monkeypatch.setattr(kernels, "_NUMPY_STATE", False)
        g = gnp_graph(max(VECTORIZE_MIN_NODES, 70), 0.08, seed=3)
        index = build_psl(g, kernel="auto")
        truth = bfs_distances(g, 0)
        for t in g.nodes():
            assert index.distance(0, t) == truth[t]


class TestHopDoubling:
    @pytest.mark.parametrize("seed", range(4))
    def test_same_labels_as_pll_under_same_order(self, seed):
        g = gnp_graph(30, 0.12, seed=seed)
        pll = build_pll(g)
        hop = build_hopdb(g, order=pll.order)
        _same_labels(pll, hop)

    def test_disconnected_and_structured_shapes(self):
        from repro.graphs.graph import Graph

        for g in (
            Graph.from_edges(6, [(0, 1), (2, 3), (3, 4)]),
            star_graph(12),
            cycle_graph(11),
            barabasi_albert_graph(60, 2, seed=5),
        ):
            pll = build_pll(g)
            hop = build_hopdb(g, order=pll.order)
            _same_labels(pll, hop)

    def test_weighted_rejected(self):
        g = random_weighted(gnp_graph(10, 0.3, seed=1), 2, 5, seed=2)
        with pytest.raises(IndexConstructionError):
            build_hopdb(g)

    def test_ct_core_backend_fingerprint_identity(self):
        g = connected_gnp_graph(150, 0.04, seed=7)
        reference = index_fingerprint(CTIndex.build(g, 4, core_backend="pll"))
        for core_backend in ("psl", "hopdb"):
            index = CTIndex.build(g, 4, core_backend=core_backend)
            assert index_fingerprint(index) == reference, core_backend


class TestIndependentSetOrder:
    def test_exact_distances(self):
        g = connected_gnp_graph(140, 0.045, seed=13)
        index = CTIndex.build(g, 4, order="is")
        for s in range(0, g.n, 29):
            truth = bfs_distances(g, s)
            for t in range(0, g.n, 7):
                assert index.distance(s, t) == truth[t], (s, t)

    def test_backends_agree_under_is_order(self):
        g = connected_gnp_graph(120, 0.05, seed=17)
        reference = index_fingerprint(
            CTIndex.build(g, 3, order="is", core_backend="pll")
        )
        for core_backend in ("psl", "hopdb"):
            index = CTIndex.build(g, 3, order="is", core_backend=core_backend)
            assert index_fingerprint(index) == reference, core_backend

    def test_unknown_order_rejected(self):
        g = gnp_graph(20, 0.2, seed=1)
        with pytest.raises(IndexConstructionError):
            CTIndex.build(g, 3, order="random")
