"""Unit tests for the CD core-tree baseline."""

from __future__ import annotations

import pytest

from repro.exceptions import OverMemoryError
from repro.graphs.generators.primitives import cycle_graph, grid_graph, path_graph
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.graph import INF, Graph
from repro.graphs.traversal import all_pairs_distances
from repro.labeling.base import MemoryBudget
from repro.labeling.cd import build_cd


def assert_exact(index, graph):
    truth = all_pairs_distances(graph)
    for s in graph.nodes():
        for t in graph.nodes():
            assert index.distance(s, t) == truth[s][t], (s, t)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("bandwidth", [1, 3, 6])
    def test_random_unweighted(self, seed, bandwidth):
        g = gnp_graph(26, 0.14, seed=seed)
        assert_exact(build_cd(g, bandwidth), g)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_weighted(self, seed):
        g = random_weighted(gnp_graph(18, 0.2, seed=seed), 1, 7, seed=seed + 40)
        assert_exact(build_cd(g, 3), g)

    def test_bandwidth_zero(self):
        g = gnp_graph(15, 0.25, seed=6)
        assert_exact(build_cd(g, 0), g)

    def test_all_forest(self):
        # Huge bandwidth: the whole graph is eliminated; core matrix empty.
        g = path_graph(12)
        cd = build_cd(g, 100)
        assert len(cd.core_distances) == 0
        assert_exact(cd, g)

    def test_disconnected(self):
        g = Graph.from_edges(8, [(0, 1), (1, 2), (4, 5), (5, 6)])
        assert_exact(build_cd(g, 2), g)

    def test_grid(self):
        assert_exact(build_cd(grid_graph(4, 5), 3), grid_graph(4, 5))


class TestShape:
    def test_core_matrix_quadratic(self):
        # The dense core keeps a pairwise matrix: |C| choose 2 entries for
        # a connected core.
        g = gnp_graph(30, 0.5, seed=7)
        cd = build_cd(g, 2)
        n_core = len(cd.decomposition.core_nodes)
        assert len(cd.core_distances) == n_core * (n_core - 1) // 2

    def test_larger_than_ct_on_core_periphery(self):
        from repro.core.ct_index import CTIndex
        from repro.graphs.generators.core_periphery import (
            CorePeripheryConfig,
            core_periphery_graph,
        )

        cfg = CorePeripheryConfig(core_size=60, community_count=6, fringe_size=150)
        g = core_periphery_graph(cfg, seed=1)
        cd = build_cd(g, 10)
        ct = CTIndex.build(g, 10, use_equivalence_reduction=False)
        assert cd.size_entries() > ct.size_entries()

    def test_budget_overflow(self):
        g = gnp_graph(40, 0.4, seed=8)
        with pytest.raises(OverMemoryError):
            build_cd(g, 2, budget=MemoryBudget(limit_bytes=100))

    def test_isolated_nodes(self):
        g = Graph.from_edges(5, [(0, 1)])
        cd = build_cd(g, 2)
        assert cd.distance(2, 3) == INF
        assert cd.distance(0, 1) == 1
