"""Unit tests for Pruned Landmark Labeling."""

from __future__ import annotations

import pytest

from repro.exceptions import OverMemoryError
from repro.graphs.generators.primitives import clique_graph, cycle_graph, grid_graph, path_graph
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.graph import INF, Graph
from repro.graphs.traversal import all_pairs_distances
from repro.labeling.base import MemoryBudget
from repro.labeling.ordering import degree_order, random_order
from repro.labeling.pll import build_pll


def assert_exact(index, graph):
    truth = all_pairs_distances(graph)
    for s in graph.nodes():
        for t in graph.nodes():
            assert index.distance(s, t) == truth[s][t], (s, t)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_unweighted(self, seed):
        assert_exact(build_pll(gnp_graph(30, 0.12, seed=seed)), gnp_graph(30, 0.12, seed=seed))

    @pytest.mark.parametrize("seed", range(4))
    def test_random_weighted(self, seed):
        g = random_weighted(gnp_graph(22, 0.2, seed=seed), 1, 9, seed=seed + 10)
        assert_exact(build_pll(g), g)

    def test_disconnected(self):
        g = Graph.from_edges(6, [(0, 1), (2, 3)])
        pll = build_pll(g)
        assert pll.distance(0, 1) == 1
        assert pll.distance(0, 3) == INF
        assert pll.distance(4, 5) == INF

    def test_named_graphs(self, small_graphs):
        for name, g in small_graphs.items():
            assert_exact(build_pll(g), g)

    def test_single_node(self):
        pll = build_pll(Graph.empty(1))
        assert pll.distance(0, 0) == 0

    def test_random_order_still_exact(self):
        g = gnp_graph(25, 0.15, seed=7)
        assert_exact(build_pll(g, random_order(g, seed=1)), g)


class TestLabelStructure:
    def test_first_hub_labels_everything_in_component(self):
        g = cycle_graph(8)
        pll = build_pll(g)
        top = pll.order[0]
        # The highest-ranked node appears in every node's label.
        for v in g.nodes():
            hubs = [h for h, _ in pll.labels.label_entries(v)]
            assert top in hubs

    def test_clique_labels_quadratic(self):
        # In a clique, pairs at distance 1 admit no intermediate hub, so
        # the index must hold ~n^2/2 entries (the Lemma 3 phenomenon).
        n = 10
        pll = build_pll(clique_graph(n))
        assert pll.size_entries() == n * (n + 1) // 2

    def test_path_labels_small_under_balanced_order(self):
        # A balanced-separator order realizes the O(n log n) bound on a
        # path (Theorem 4.4 of [2]); degree order cannot (all ties).
        n = 64

        def balanced(lo: int, hi: int, out: list[int]) -> None:
            if lo > hi:
                return
            mid = (lo + hi) // 2
            out.append(mid)
            balanced(lo, mid - 1, out)
            balanced(mid + 1, hi, out)

        order: list[int] = []
        balanced(0, n - 1, order)
        pll = build_pll(path_graph(n), order)
        import math

        assert pll.size_entries() <= 2 * n * math.log2(n)
        assert_exact(pll, path_graph(n))

    def test_max_label_size(self):
        pll = build_pll(grid_graph(5, 5))
        assert pll.max_label_size() >= 1
        assert pll.max_label_size() <= 25

    def test_self_hub_present(self):
        g = gnp_graph(15, 0.2, seed=9)
        pll = build_pll(g)
        for v in g.nodes():
            assert (v, 0) in pll.labels.label_entries(v)

    def test_degree_order_beats_random_on_scale_free(self):
        from repro.graphs.generators.power_law import barabasi_albert_graph

        g = barabasi_albert_graph(150, 3, seed=2)
        by_degree = build_pll(g, degree_order(g))
        by_random = build_pll(g, random_order(g, seed=3))
        assert by_degree.size_entries() < by_random.size_entries()


class TestBudget:
    def test_budget_overflow_raises(self):
        g = gnp_graph(40, 0.3, seed=1)
        with pytest.raises(OverMemoryError):
            build_pll(g, budget=MemoryBudget(limit_bytes=100))

    def test_budget_exempt_nodes_do_not_charge(self):
        g = clique_graph(8)
        exempt = frozenset(g.nodes())
        # All nodes exempt: even a 1-byte budget survives.
        index = build_pll(g, budget=MemoryBudget(limit_bytes=1), budget_exempt=exempt)
        assert index.size_entries() > 0

    def test_generous_budget_passes(self):
        g = gnp_graph(20, 0.2, seed=2)
        index = build_pll(g, budget=MemoryBudget.from_megabytes(10))
        assert index.size_entries() > 0


class TestStats:
    def test_stats_populated(self):
        g = gnp_graph(20, 0.2, seed=3)
        stats = build_pll(g).stats()
        assert stats.method == "PLL"
        assert stats.entries > 0
        assert stats.bytes == stats.entries * 8
        assert stats.build_seconds > 0
