"""Unit tests for labeling anatomy analysis."""

from __future__ import annotations

from repro.core.ct_index import CTIndex
from repro.graphs.generators.core_periphery import CorePeripheryConfig, core_periphery_graph
from repro.graphs.generators.primitives import clique_graph, star_graph
from repro.graphs.generators.random_graphs import gnp_graph
from repro.labeling.analysis import analyze_ct_index, analyze_labels
from repro.labeling.hub_labels import HubLabeling
from repro.labeling.pll import build_pll


class TestAnalyzeLabels:
    def test_empty(self):
        anatomy = analyze_labels(HubLabeling([]))
        assert anatomy.total_entries == 0
        assert anatomy.max_label == 0

    def test_totals_match(self):
        g = gnp_graph(40, 0.15, seed=1)
        pll = build_pll(g)
        anatomy = analyze_labels(pll.labels)
        assert anatomy.total_entries == pll.size_entries()
        assert anatomy.max_label == pll.max_label_size()
        assert anatomy.median_label <= anatomy.p90_label <= anatomy.max_label

    def test_star_concentrates_on_center(self):
        pll = build_pll(star_graph(30))
        anatomy = analyze_labels(pll.labels)
        # Nearly every entry names the center hub or a self hub.
        assert anatomy.top_hub_share > 0.4

    def test_clique_spreads_hubs(self):
        pll = build_pll(clique_graph(30))
        anatomy = analyze_labels(pll.labels)
        # Quadratic labels spread across all hubs: top-10 can't dominate.
        assert anatomy.top_hub_share < 0.9

    def test_as_row_keys(self):
        pll = build_pll(gnp_graph(15, 0.3, seed=2))
        row = analyze_labels(pll.labels).as_row()
        assert {"entries", "max_label", "mean_label", "top10_hub_share"} <= set(row)


class TestAnalyzeCtIndex:
    def test_split_sums_to_total(self):
        cfg = CorePeripheryConfig(core_size=50, community_count=6, fringe_size=200)
        g = core_periphery_graph(cfg, seed=3)
        index = CTIndex.build(g, 5)
        anatomy = analyze_ct_index(index)
        assert anatomy.total == index.size_entries()
        assert anatomy.core_entries == index.core_index.size_entries()
        assert anatomy.ancestor_entries > 0
        assert anatomy.interface_entries > 0

    def test_bandwidth_zero_all_core(self):
        g = gnp_graph(25, 0.2, seed=4)
        index = CTIndex.build(g, 0)
        anatomy = analyze_ct_index(index)
        assert anatomy.ancestor_entries == 0
        assert anatomy.interface_entries == 0
        assert anatomy.core_entries == index.size_entries()

    def test_core_share_row(self):
        g = gnp_graph(25, 0.2, seed=5)
        row = analyze_ct_index(CTIndex.build(g, 3)).as_row()
        assert 0.0 <= float(str(row["core_share"])) <= 1.0
