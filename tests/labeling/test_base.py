"""Unit tests for the index base types and the memory budget."""

from __future__ import annotations

import pytest

from repro.exceptions import OverMemoryError
from repro.labeling.base import BYTES_PER_ENTRY, DistanceIndex, IndexStats, MemoryBudget


class _TableIndex(DistanceIndex):
    """Minimal concrete index: answers from a lookup table."""

    def __init__(self, table):
        self.table = table
        self.calls = 0

    def distance(self, s, t):
        self.calls += 1
        return self.table[(s, t)]

    def size_entries(self):
        return len(self.table)


class TestBatchProtocolDefaults:
    """Every DistanceIndex gets loop-based batch methods for free."""

    @pytest.fixture
    def index(self):
        return _TableIndex({(0, 1): 3, (0, 2): 5, (1, 2): 1, (0, 0): 0})

    def test_distances_from(self, index):
        assert index.distances_from(0, [0, 1, 2]) == [0, 3, 5]
        assert index.calls == 3

    def test_distances_batch(self, index):
        assert index.distances_batch([(0, 1), (1, 2), (0, 1)]) == [3, 1, 3]
        assert index.calls == 3

    def test_empty_batches(self, index):
        assert index.distances_from(0, []) == []
        assert index.distances_batch([]) == []
        assert index.calls == 0


class TestMemoryBudget:
    def test_unlimited_never_raises(self):
        budget = MemoryBudget.unlimited()
        budget.charge(10**9)
        assert budget.charged_entries == 10**9

    def test_limit_respected(self):
        budget = MemoryBudget(limit_bytes=BYTES_PER_ENTRY * 3)
        budget.charge(3)
        with pytest.raises(OverMemoryError):
            budget.charge()

    def test_bulk_charge(self):
        budget = MemoryBudget(limit_bytes=BYTES_PER_ENTRY * 10)
        with pytest.raises(OverMemoryError):
            budget.charge(11)

    def test_error_carries_sizes(self):
        budget = MemoryBudget(limit_bytes=8)
        with pytest.raises(OverMemoryError) as excinfo:
            budget.charge(2)
        assert excinfo.value.modeled_bytes == 16
        assert excinfo.value.limit_bytes == 8

    def test_from_megabytes(self):
        budget = MemoryBudget.from_megabytes(1.5)
        assert budget.limit_bytes == 1_500_000


class TestIndexStats:
    def test_megabytes(self):
        stats = IndexStats(method="x", entries=250_000, bytes=2_000_000, build_seconds=1.0)
        assert stats.megabytes == 2.0

    def test_as_row(self):
        stats = IndexStats(
            method="CT-20",
            entries=10,
            bytes=80,
            build_seconds=0.5,
            extra={"core_size": 4},
        )
        row = stats.as_row()
        assert row["method"] == "CT-20"
        assert row["entries"] == 10
        assert row["core_size"] == 4
