"""Unit tests for the hub-label store."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.graph import INF
from repro.graphs.traversal import all_pairs_distances
from repro.labeling.hub_labels import HubLabeling


class TestStructure:
    def test_rank_mapping(self):
        labels = HubLabeling([2, 0, 1])
        assert labels.rank_of(2) == 0
        assert labels.rank_of(1) == 2
        assert labels.node_of_rank(0) == 2

    def test_append_and_read(self):
        labels = HubLabeling([0, 1, 2])
        labels.append_entry(2, 0, 3)
        labels.append_entry(2, 2, 0)
        assert labels.label_entries(2) == [(0, 3), (2, 0)]
        assert labels.label_size(2) == 2
        assert labels.label_rank_map(2) == {0: 3, 2: 0}

    def test_append_out_of_order_rejected(self):
        labels = HubLabeling([0, 1])
        labels.append_entry(0, 1, 2)
        with pytest.raises(QueryError):
            labels.append_entry(0, 0, 1)

    def test_sizes(self):
        labels = HubLabeling([0, 1, 2])
        labels.append_entry(0, 0, 0)
        labels.append_entry(1, 0, 1)
        labels.append_entry(1, 1, 0)
        assert labels.total_entries() == 3
        assert labels.max_label_size() == 2

    def test_drop_label(self):
        labels = HubLabeling([0, 1])
        labels.append_entry(0, 0, 0)
        labels.drop_label(0)
        assert labels.label_size(0) == 0
        assert labels.total_entries() == 0

    def test_iter_rank_entries(self):
        labels = HubLabeling([0, 1])
        labels.append_entry(1, 0, 5)
        assert list(labels.iter_rank_entries(1)) == [(0, 5)]


class TestQuery:
    def test_same_node_zero(self):
        labels = HubLabeling([0, 1])
        assert labels.query(0, 0) == 0

    def test_no_common_hub_inf(self):
        labels = HubLabeling([0, 1, 2])
        labels.append_entry(0, 0, 0)
        labels.append_entry(1, 1, 0)
        assert labels.query(0, 1) == INF

    def test_min_over_common_hubs(self):
        labels = HubLabeling([0, 1, 2, 3])
        labels.append_entry(2, 0, 5)
        labels.append_entry(2, 1, 1)
        labels.append_entry(3, 0, 1)
        labels.append_entry(3, 1, 4)
        assert labels.query(2, 3) == 5  # min(5+1, 1+4)

    def test_query_with_map(self):
        labels = HubLabeling([0, 1, 2])
        labels.append_entry(2, 0, 2)
        labels.append_entry(2, 1, 7)
        assert labels.query_with_map({0: 3, 1: 1}, 2) == 5

    def test_query_merge_static(self):
        assert HubLabeling.query_merge([0, 2], [1, 1], [2, 5], [2, 2]) == 3
        assert HubLabeling.query_merge([], [], [0], [1]) == INF


class TestVerification:
    def test_verify_two_hop_cover_passes_for_pll(self):
        from repro.labeling.pll import build_pll

        g = gnp_graph(25, 0.2, seed=1)
        pll = build_pll(g)
        pll.labels.verify_two_hop_cover(g, all_pairs_distances(g))

    def test_verify_two_hop_cover_detects_missing(self):
        from repro.graphs.generators.primitives import path_graph

        g = path_graph(3)
        labels = HubLabeling([0, 1, 2])
        labels.append_entry(0, 0, 0)  # incomplete labeling
        with pytest.raises(QueryError):
            labels.verify_two_hop_cover(g, all_pairs_distances(g))
