"""Unit tests for directed 2-hop labeling."""

from __future__ import annotations

import pytest

from repro.exceptions import OverMemoryError
from repro.graphs.digraph import DiGraph, forward_distances
from repro.graphs.graph import INF
from repro.labeling.base import MemoryBudget
from repro.labeling.directed_pll import build_directed_pll
from tests.graphs.test_digraph import random_digraph


def assert_exact(index, graph):
    for s in graph.nodes():
        truth = forward_distances(graph, s)
        for t in graph.nodes():
            assert index.distance(s, t) == truth[t], (s, t)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_unweighted(self, seed):
        assert_exact(build_directed_pll(random_digraph(25, 0.1, seed)), random_digraph(25, 0.1, seed))

    @pytest.mark.parametrize("seed", range(4))
    def test_random_weighted(self, seed):
        g = random_digraph(20, 0.12, seed, weighted=True)
        assert_exact(build_directed_pll(g), g)

    def test_asymmetric_distances(self):
        g = DiGraph.from_arcs(3, [(0, 1), (1, 2)])
        index = build_directed_pll(g)
        assert index.distance(0, 2) == 2
        assert index.distance(2, 0) == INF

    def test_directed_cycle(self):
        n = 7
        g = DiGraph.from_arcs(n, [(i, (i + 1) % n) for i in range(n)])
        index = build_directed_pll(g)
        for s in range(n):
            for t in range(n):
                assert index.distance(s, t) == (t - s) % n

    def test_dag(self):
        g = DiGraph.from_arcs(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        index = build_directed_pll(g)
        assert index.distance(0, 4) == 3
        assert index.distance(4, 0) == INF

    def test_isolated_nodes(self):
        g = DiGraph.from_arcs(4, [(0, 1)])
        index = build_directed_pll(g)
        assert index.distance(2, 3) == INF
        assert index.distance(2, 2) == 0


class TestStructure:
    def test_size_counts_both_sides(self):
        g = random_digraph(20, 0.15, seed=50)
        index = build_directed_pll(g)
        assert index.size_entries() == (
            index.out_labels.total_entries() + index.in_labels.total_entries()
        )
        assert index.max_label_size() >= 1

    def test_self_hub_both_sides(self):
        g = random_digraph(15, 0.2, seed=51)
        index = build_directed_pll(g)
        for v in g.nodes():
            assert (v, 0) in index.out_labels.label_entries(v)
            assert (v, 0) in index.in_labels.label_entries(v)

    def test_budget(self):
        g = random_digraph(30, 0.2, seed=52)
        with pytest.raises(OverMemoryError):
            build_directed_pll(g, budget=MemoryBudget(limit_bytes=64))

    def test_custom_order(self):
        g = random_digraph(18, 0.15, seed=53)
        order = list(range(g.n))
        index = build_directed_pll(g, order=order)
        assert_exact(index, g)
