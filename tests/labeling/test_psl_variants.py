"""Unit tests for PSL+ and PSL*."""

from __future__ import annotations

import pytest

from repro.exceptions import IndexConstructionError, OverMemoryError
from repro.graphs.generators.primitives import clique_graph, star_graph
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.graph import INF, Graph
from repro.graphs.traversal import all_pairs_distances
from repro.labeling.base import MemoryBudget
from repro.labeling.psl_variants import build_psl_plus, build_psl_star


def assert_exact(index, graph):
    truth = all_pairs_distances(graph)
    for s in graph.nodes():
        for t in graph.nodes():
            assert index.distance(s, t) == truth[s][t], (s, t)


class TestPslPlus:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("backend", ["pll", "psl"])
    def test_exact(self, seed, backend):
        g = gnp_graph(28, 0.12, seed=seed)
        assert_exact(build_psl_plus(g, backend=backend), g)

    def test_twin_heavy_graph_shrinks(self):
        g = star_graph(20)
        index = build_psl_plus(g)
        assert index.reduction.reduced.n == 2
        assert index.size_entries() <= 4
        assert_exact(index, g)

    def test_clique_collapses(self):
        g = clique_graph(8)
        index = build_psl_plus(g)
        assert index.reduction.reduced.n == 1
        assert_exact(index, g)

    def test_disconnected(self):
        g = Graph.from_edges(6, [(0, 1), (2, 3)])
        index = build_psl_plus(g)
        assert index.distance(0, 2) == INF
        assert index.distance(4, 5) == INF
        assert index.distance(4, 4) == 0

    def test_unknown_backend(self):
        with pytest.raises(IndexConstructionError):
            build_psl_plus(gnp_graph(5, 0.5, seed=1), backend="magic")

    def test_smaller_than_unreduced(self):
        from repro.labeling.pll import build_pll

        g = star_graph(30)
        assert build_psl_plus(g).size_entries() < build_pll(g).size_entries()


class TestPslStar:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("backend", ["pll", "psl"])
    def test_exact(self, seed, backend):
        g = gnp_graph(28, 0.12, seed=seed)
        assert_exact(build_psl_star(g, backend=backend), g)

    def test_drops_labels(self):
        g = gnp_graph(60, 0.08, seed=7)
        star = build_psl_star(g)
        plus = build_psl_plus(g)
        assert star.dropped_count > 0
        assert star.size_entries() < plus.size_entries()

    def test_dropped_nodes_form_independent_set(self):
        g = gnp_graph(50, 0.1, seed=8)
        star = build_psl_star(g)
        reduced = star.reduction.reduced
        dropped = {v for v in reduced.nodes() if star.dropped[v]}
        for v in dropped:
            assert not any(u in dropped for u in reduced.neighbor_ids(v))

    def test_both_endpoints_dropped(self):
        # Force a query between two dropped nodes.
        g = gnp_graph(60, 0.1, seed=9)
        star = build_psl_star(g)
        reduced = star.reduction.reduced
        dropped = [v for v in reduced.nodes() if star.dropped[v]]
        if len(dropped) >= 2:
            truth = all_pairs_distances(reduced)
            for s in dropped[:5]:
                for t in dropped[:5]:
                    assert star._reduced_distance(s, t) == truth[s][t]

    def test_disconnected(self):
        g = Graph.from_edges(7, [(0, 1), (1, 2), (3, 4), (4, 5)])
        assert_exact(build_psl_star(g), g)

    def test_budget_excludes_dropped_labels(self):
        # A budget that covers only the retained labels must succeed.
        g = gnp_graph(50, 0.1, seed=10)
        star = build_psl_star(g)
        retained_bytes = star.size_bytes()
        rebuilt = build_psl_star(g, budget=MemoryBudget(limit_bytes=retained_bytes + 8))
        assert rebuilt.size_entries() == star.size_entries()

    def test_budget_overflow_still_possible(self):
        g = gnp_graph(50, 0.2, seed=11)
        with pytest.raises(OverMemoryError):
            build_psl_star(g, budget=MemoryBudget(limit_bytes=64))
