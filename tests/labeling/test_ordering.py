"""Unit tests for vertex-order strategies."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.generators.primitives import star_graph
from repro.graphs.generators.random_graphs import gnp_graph
from repro.labeling.ordering import (
    degeneracy_based_order,
    degree_order,
    elimination_based_order,
    make_order,
    random_order,
    validate_order,
)


class TestDegreeOrder:
    def test_descending_degree(self):
        g = star_graph(5)
        order = degree_order(g)
        assert order[0] == 0  # the center

    def test_ties_broken_by_id(self):
        g = star_graph(3)
        assert degree_order(g)[1:] == [1, 2, 3]

    def test_is_permutation(self):
        g = gnp_graph(30, 0.2, seed=1)
        validate_order(g, degree_order(g))


class TestOtherOrders:
    def test_degeneracy_order_permutation(self):
        g = gnp_graph(30, 0.15, seed=2)
        validate_order(g, degeneracy_based_order(g))

    def test_elimination_order_permutation(self):
        g = gnp_graph(25, 0.15, seed=3)
        validate_order(g, elimination_based_order(g))

    def test_elimination_order_core_first(self):
        # The last-eliminated (core) node leads the order.
        from repro.graphs.generators.primitives import lollipop_graph

        g = lollipop_graph(6, 10)
        order = elimination_based_order(g)
        assert order[0] < 6  # a clique member

    def test_random_order_deterministic(self):
        g = gnp_graph(20, 0.2, seed=4)
        assert random_order(g, seed=5) == random_order(g, seed=5)
        assert random_order(g, seed=5) != random_order(g, seed=6)


class TestRegistry:
    def test_make_order_by_name(self):
        g = gnp_graph(15, 0.2, seed=7)
        assert make_order(g, "degree") == degree_order(g)

    def test_make_order_unknown(self):
        with pytest.raises(GraphError):
            make_order(gnp_graph(5, 0.5, seed=1), "alphabetical")

    def test_validate_rejects_bad_order(self):
        g = gnp_graph(5, 0.5, seed=8)
        with pytest.raises(GraphError):
            validate_order(g, [0, 0, 1, 2, 3])
        with pytest.raises(GraphError):
            validate_order(g, [0, 1, 2])
