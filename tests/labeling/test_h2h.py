"""Unit tests for the H2H baseline."""

from __future__ import annotations

import pytest

from repro.exceptions import OverMemoryError
from repro.graphs.generators.primitives import (
    clique_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.graph import INF, Graph
from repro.graphs.traversal import all_pairs_distances
from repro.labeling.base import MemoryBudget
from repro.labeling.h2h import build_h2h


def assert_exact(index, graph):
    truth = all_pairs_distances(graph)
    for s in graph.nodes():
        for t in graph.nodes():
            assert index.distance(s, t) == truth[s][t], (s, t)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_unweighted(self, seed):
        g = gnp_graph(28, 0.12, seed=seed)
        assert_exact(build_h2h(g), g)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_weighted(self, seed):
        g = random_weighted(gnp_graph(20, 0.2, seed=seed), 1, 8, seed=seed + 30)
        assert_exact(build_h2h(g), g)

    def test_road_like_grid(self):
        g = grid_graph(5, 6)
        assert_exact(build_h2h(g), g)

    def test_primitives(self):
        for g in (path_graph(10), cycle_graph(7), clique_graph(6), star_graph(8)):
            assert_exact(build_h2h(g), g)

    def test_disconnected(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
        h2h = build_h2h(g)
        assert h2h.distance(0, 2) == 2
        assert h2h.distance(0, 4) == INF
        assert h2h.distance(5, 5) == 0


class TestSizeShape:
    def test_size_tracks_height_on_path(self):
        h2h = build_h2h(path_graph(40))
        # Ancestor arrays: sum of chain lengths, far below n^2.
        assert h2h.size_entries() < 40 * 40 / 2

    def test_clique_is_quadratic(self):
        n = 10
        h2h = build_h2h(clique_graph(n))
        assert h2h.size_entries() == n * (n - 1) // 2

    def test_height_reported(self):
        h2h = build_h2h(grid_graph(4, 4))
        assert h2h.height() >= 4

    def test_grid_much_smaller_than_core_periphery(self):
        # H2H's strength is low-treewidth graphs: per-node cost on a grid
        # stays near the grid width, not n.
        g = grid_graph(6, 6)
        h2h = build_h2h(g)
        assert h2h.size_entries() / g.n < 2 * 6 + 8


class TestBudget:
    def test_budget_overflow(self):
        g = clique_graph(30)
        with pytest.raises(OverMemoryError):
            build_h2h(g, budget=MemoryBudget(limit_bytes=80))
