"""Property/metamorphic tests over rebuilt indexes.

Beyond agreeing with ground truth, an exact distance oracle must satisfy
metric properties that need no ground truth at all:

* ``d(s, s) = 0`` and symmetry ``d(s, t) = d(t, s)``;
* the triangle inequality ``d(s, t) <= d(s, v) + d(v, t)``;
* *edge-deletion monotonicity*: removing an edge and rebuilding can only
  lengthen (or disconnect) shortest paths, never shorten them.

These catch whole bug classes (asymmetric case dispatch, stale caches,
wrong reduction mapping) even when a generator-specific ground truth is
unavailable.
"""

from __future__ import annotations

import random

import pytest

from repro.core.ct_index import CTIndex
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import INF, Graph
from repro.labeling.psl import build_psl

from tests.differential.cases import FAST_CASES, DifferentialCase

#: Cases × bandwidths exercised; kept small so tier-1 stays quick.
METRIC_CASES = tuple((case, case.bandwidths[-1]) for case in FAST_CASES[:3])


def _drop_edge(graph: Graph, u: int, v: int) -> Graph:
    """``graph`` without the edge ``{u, v}`` (weights preserved)."""
    builder = GraphBuilder(graph.n)
    for a, b, w in graph.edges():
        if {a, b} != {u, v}:
            builder.add_edge(a, b, w)
    return builder.build()


def _sample_nodes(graph: Graph, count: int, seed: int) -> list[int]:
    rng = random.Random(seed)
    return [rng.randrange(graph.n) for _ in range(count)]


@pytest.mark.parametrize(
    ("case", "bandwidth"), METRIC_CASES, ids=lambda value: str(value)
)
class TestMetricProperties:
    def test_self_distance_zero(self, case: DifferentialCase, bandwidth: int):
        graph = case.build_graph()
        index = CTIndex.build(graph, bandwidth)
        for s in graph.nodes():
            assert index.distance(s, s) == 0, case.reproducer()

    def test_symmetry(self, case: DifferentialCase, bandwidth: int):
        graph = case.build_graph()
        index = CTIndex.build(graph, bandwidth)
        nodes = _sample_nodes(graph, 40, seed=5)
        for s in nodes:
            for t in nodes:
                assert index.distance(s, t) == index.distance(t, s), (
                    f"asymmetry at ({s}, {t}); {case.reproducer()}"
                )

    def test_triangle_inequality(self, case: DifferentialCase, bandwidth: int):
        graph = case.build_graph()
        index = CTIndex.build(graph, bandwidth)
        nodes = _sample_nodes(graph, 12, seed=9)
        for s in nodes:
            for t in nodes:
                direct = index.distance(s, t)
                for v in nodes:
                    detour = index.distance(s, v) + index.distance(v, t)
                    assert direct <= detour, (
                        f"triangle violated at ({s}, {t}) via {v}: "
                        f"{direct} > {detour}; {case.reproducer()}"
                    )


class TestEdgeDeletionMonotonicity:
    @pytest.mark.parametrize("case", FAST_CASES[:3], ids=lambda c: c.name)
    def test_distances_never_decrease(self, case: DifferentialCase):
        graph = case.build_graph()
        bandwidth = case.bandwidths[-1]
        before = CTIndex.build(graph, bandwidth)
        rng = random.Random(case.params.get("seed", 0))
        edges = list(graph.edges())
        u, v, _ = edges[rng.randrange(len(edges))]
        after = CTIndex.build(_drop_edge(graph, u, v), bandwidth)
        nodes = _sample_nodes(graph, 30, seed=13)
        for s in nodes:
            for t in nodes:
                d_before = before.distance(s, t)
                d_after = after.distance(s, t)
                assert d_after >= d_before, (
                    f"deleting edge ({u}, {v}) shortened dist({s}, {t}) "
                    f"from {d_before} to {d_after}; {case.reproducer()}"
                )

    def test_deleting_a_bridge_disconnects(self):
        # Path graph: removing any edge splits it; distances across the
        # cut must become INF, never a finite detour.
        builder = GraphBuilder(6)
        for i in range(5):
            builder.add_edge(i, i + 1)
        graph = builder.build()
        after = CTIndex.build(_drop_edge(graph, 2, 3), 2)
        assert after.distance(0, 5) == INF
        assert after.distance(3, 5) == 2

    def test_monotonicity_holds_for_psl_too(self):
        case = FAST_CASES[0]
        graph = case.build_graph()
        before = build_psl(graph)
        edges = list(graph.edges())
        u, v, _ = edges[len(edges) // 2]
        after = build_psl(_drop_edge(graph, u, v))
        for s in range(0, graph.n, 4):
            for t in range(graph.n):
                assert after.distance(s, t) >= before.distance(s, t)
