"""Differential cross-check: every oracle answers every pair identically.

For each seeded case graph the suite builds ``CTIndex`` (serial and
``workers=2``), ``PLL``, ``PSL`` (unweighted graphs only), takes
BFS/Dijkstra as ground truth, and compares **all** vertex pairs.  Any
mismatch fails with the case's minimal reproducer — one line of Python
that regenerates the graph — plus the first offending pair, so a sweep
failure is debuggable without re-running the sweep.

Every family is also cross-checked under the CSR ``backend="flat"``
storage: the flat build must answer every pair exactly like the dict
build *and* hash to the same :func:`index_fingerprint` — the
storage-equivalence guarantee behind ``compact()`` and the binary
snapshot format.  When NumPy is installed the vectorized query kernels
(:mod:`repro.kernels`) are cross-checked too: ``kernel="numpy"`` builds
must answer every pair and both batch shapes identically to the scalar
path.

The fast cases run on every tier-1 invocation; the bigger randomized
sweep is marked ``slow`` (run it with ``pytest tests/differential``,
skip it with ``-m "not slow"``).
"""

from __future__ import annotations

import pytest

from repro.core.ct_index import CTIndex
from repro.core.serialization import index_fingerprint
from repro.graphs.traversal import all_pairs_distances
from repro.kernels import numpy_available
from repro.labeling.pll import build_pll
from repro.labeling.psl import build_psl

from tests.differential.cases import FAST_CASES, SLOW_CASES, DifferentialCase


def _check_oracle(case: DifferentialCase, name: str, oracle, truth) -> None:
    graph = oracle.graph
    for s in graph.nodes():
        row = truth[s]
        for t in graph.nodes():
            got = oracle.distance(s, t)
            if got != row[t]:
                pytest.fail(
                    f"{name} disagrees with ground truth on {case.name}: "
                    f"dist({s}, {t}) = {got}, expected {row[t]}.\n"
                    f"Reproducer: {case.reproducer()}"
                )


def _cross_check(case: DifferentialCase) -> None:
    graph = case.build_graph()
    truth = all_pairs_distances(graph)

    _check_oracle(case, "PLL", build_pll(graph), truth)
    _check_oracle(case, "PLL (flat)", build_pll(graph, backend="flat"), truth)
    if graph.unweighted:
        _check_oracle(case, "PSL", build_psl(graph), truth)

    for bandwidth in case.bandwidths:
        serial = CTIndex.build(graph, bandwidth)
        _check_oracle(case, f"CT-{bandwidth} (serial)", serial, truth)

    # Parallel schedule at the largest bandwidth: answers must match AND
    # the index must be byte-identical to the serial build.
    bandwidth = case.bandwidths[-1]
    serial = CTIndex.build(graph, bandwidth)
    parallel = CTIndex.build(graph, bandwidth, workers=2)
    if index_fingerprint(parallel) != index_fingerprint(serial):
        pytest.fail(
            f"CT-{bandwidth} workers=2 build is not byte-identical to serial "
            f"on {case.name}.\nReproducer: {case.reproducer()}"
        )
    _check_oracle(case, f"CT-{bandwidth} (workers=2)", parallel, truth)

    # Flat-storage build at the largest bandwidth: same answers, same
    # fingerprint — the CSR backend must be invisible to both the query
    # layer and the serialized document.
    flat = CTIndex.build(graph, bandwidth, backend="flat")
    assert flat.storage_backend == "flat"
    if index_fingerprint(flat) != index_fingerprint(serial):
        pytest.fail(
            f"CT-{bandwidth} backend='flat' build fingerprint differs from "
            f"the dict build on {case.name} — the fingerprint must be "
            f"storage-agnostic.\nReproducer: {case.reproducer()}"
        )
    _check_oracle(case, f"CT-{bandwidth} (flat)", flat, truth)

    # Vectorized kernels (when NumPy is installed): the numpy CT kernel
    # and the numpy label kernel must answer every pair — point and both
    # batch shapes — exactly like the scalar path, across all four CT
    # cases including the Lemma 9 extension.
    if numpy_available():
        fast = CTIndex.build(graph, bandwidth, backend="flat", kernel="numpy")
        assert fast.kernel == "numpy"
        _check_oracle(case, f"CT-{bandwidth} (numpy kernel)", fast, truth)
        nodes = list(graph.nodes())
        pairs = [(s, t) for s in nodes for t in nodes]
        expected = [truth[s][t] for s, t in pairs]
        if fast.distances_batch(pairs) != expected:
            pytest.fail(
                f"CT-{bandwidth} numpy distances_batch disagrees with ground "
                f"truth on {case.name}.\nReproducer: {case.reproducer()}"
            )
        source = nodes[len(nodes) // 2]
        if fast.distances_from(source, nodes) != [truth[source][t] for t in nodes]:
            pytest.fail(
                f"CT-{bandwidth} numpy distances_from({source}) disagrees with "
                f"ground truth on {case.name}.\nReproducer: {case.reproducer()}"
            )
        _check_oracle(
            case,
            "PLL (numpy kernel)",
            build_pll(graph, backend="flat").set_kernel("numpy"),
            truth,
        )

    # And converting back must not change a single answer.
    _check_oracle(case, f"CT-{bandwidth} (flat->dict)", flat.to_dict_backend(), truth)


@pytest.mark.parametrize("case", FAST_CASES, ids=lambda c: c.name)
def test_differential_fast(case: DifferentialCase) -> None:
    _cross_check(case)


@pytest.mark.slow
@pytest.mark.parametrize("case", SLOW_CASES, ids=lambda c: c.name)
def test_differential_slow(case: DifferentialCase) -> None:
    _cross_check(case)


def test_reproducer_round_trips() -> None:
    """The printed reproducer regenerates the exact case graph."""
    case = FAST_CASES[0]
    namespace: dict = {}
    exec(case.reproducer(), namespace)  # noqa: S102 - our own string
    regenerated = namespace["graph"]
    original = case.build_graph()
    assert regenerated.n == original.n
    assert list(regenerated.edges()) == list(original.edges())
