"""Seeded graph cases for the differential suite.

Every case is a named generator plus its exact parameters, so a failing
assertion can print a *minimal reproducer* — one line of Python that
regenerates the offending graph from its seed.  Run it in a REPL (or
paste it into a scratch test) to debug without re-running the sweep::

    from tests.differential.cases import make_graph
    graph = make_graph("power_law", seed=3, n=60, attach=2)

The generator families mirror the structures the paper targets:
``power_law`` (preferential attachment, the scale-free regime),
``core_periphery`` (dense core + tree-like communities, CT-Index's home
turf), ``worst_case`` (the rolling-cliques lower-bound gadget of
Lemma 3), plus ``gnp``/``weighted_gnp`` as unstructured controls.
"""

from __future__ import annotations

import dataclasses

from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.graphs.generators.power_law import barabasi_albert_graph
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.generators.worst_case import rolling_cliques_graph
from repro.graphs.graph import Graph

#: name -> graph factory taking keyword params (seed included where the
#: generator is randomized).
GENERATORS = {
    "power_law": lambda seed, n, attach: barabasi_albert_graph(n, attach, seed=seed),
    "core_periphery": lambda seed, core, communities, fringe: core_periphery_graph(
        CorePeripheryConfig(
            core_size=core, community_count=communities, fringe_size=fringe
        ),
        seed=seed,
    ),
    "worst_case": lambda seed, k, d: rolling_cliques_graph(k, d),
    "gnp": lambda seed, n, p: gnp_graph(n, p, seed=seed),
    "weighted_gnp": lambda seed, n, p, low, high: random_weighted(
        gnp_graph(n, p, seed=seed), low, high, seed=seed + 1
    ),
}


@dataclasses.dataclass(frozen=True)
class DifferentialCase:
    """One seeded graph plus the bandwidths to cross-check it at."""

    generator: str
    params: dict
    bandwidths: tuple[int, ...] = (0, 2, 4)

    @property
    def name(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"{self.generator}({inner})"

    def build_graph(self) -> Graph:
        return make_graph(self.generator, **self.params)

    def reproducer(self) -> str:
        """One line of Python that regenerates this exact graph."""
        inner = ", ".join(f"{key}={value!r}" for key, value in self.params.items())
        return (
            "from tests.differential.cases import make_graph; "
            f"graph = make_graph({self.generator!r}, {inner})"
        )


def make_graph(generator: str, **params) -> Graph:
    """Regenerate a case graph from its generator name and parameters."""
    return GENERATORS[generator](**params)


#: The quick sweep: one small graph per family, exercised on every
#: tier-1 run.  Sizes keep the all-pairs ground truth cheap.
FAST_CASES = (
    DifferentialCase("power_law", {"seed": 3, "n": 60, "attach": 2}),
    DifferentialCase(
        "core_periphery", {"seed": 11, "core": 24, "communities": 4, "fringe": 70}
    ),
    DifferentialCase("worst_case", {"seed": 0, "k": 4, "d": 4}, bandwidths=(0, 3)),
    DifferentialCase("gnp", {"seed": 7, "n": 55, "p": 0.09}),
    DifferentialCase(
        "weighted_gnp", {"seed": 13, "n": 45, "p": 0.12, "low": 1, "high": 9}
    ),
)

#: The long randomized sweep (marked ``slow``): more seeds per family
#: and bigger graphs.
SLOW_CASES = tuple(
    DifferentialCase("power_law", {"seed": seed, "n": 110, "attach": 3})
    for seed in (19, 20)
) + tuple(
    DifferentialCase(
        "core_periphery",
        {"seed": seed, "core": 40, "communities": 6, "fringe": 130},
        bandwidths=(0, 3, 6),
    )
    for seed in (29, 30)
) + (
    DifferentialCase("worst_case", {"seed": 0, "k": 5, "d": 6}, bandwidths=(0, 5)),
    DifferentialCase("gnp", {"seed": 37, "n": 120, "p": 0.05}),
    DifferentialCase(
        "weighted_gnp", {"seed": 41, "n": 90, "p": 0.07, "low": 1, "high": 20}
    ),
)
