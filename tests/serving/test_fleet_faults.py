"""Fleet liveness: a worker dying mid-request must fail fast, not hang.

Regression suite for the fleet hardening that shipped with the serving
front-end, covering two distinct hangs:

* ``_collect`` used to block forever on the response queue if the
  owning worker died between dispatch and answer.  It now polls in
  short slices, checks the owner's liveness whenever the queue runs
  dry, and raises a :class:`FleetError` naming the dead worker and its
  exit code — so a server wrapping a fleet surfaces a clear 500
  instead of wedging its worker thread.
* All workers used to share one response queue.  A worker SIGKILLed
  while its queue feeder thread held the shared write lock left the
  lock acquired forever, silencing every *surviving* worker — the
  owner stayed alive, so the liveness check never fired and the parent
  waited forever.  Response queues are now per worker, so a wedged
  channel can only belong to a dead worker
  (``test_surviving_worker_keeps_answering`` kills a worker right
  after startup, the window where its ready-ack write races the kill).

Workers are killed for real (``SIGKILL`` via ``Process.kill``), so
every fleet here is function-scoped; only the snapshot is shared.
"""

from __future__ import annotations

import time

import pytest

from repro.core.ct_index import CTIndex
from repro.core.serialization import save_ct_index_binary
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.serving import FleetError, QueryEngine, ServingFleet
from repro.serving.fleet import LIVENESS_POLL_SECONDS
from repro.storage.binary import load_ct_index_binary

#: A killed worker must surface within a few liveness slices — far
#: below anything a human would call a hang.
FAIL_FAST_SECONDS = max(10 * LIVENESS_POLL_SECONDS, 2.0)


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    cfg = CorePeripheryConfig(core_size=25, community_count=4, fringe_size=75)
    graph = core_periphery_graph(cfg, seed=41)
    index = CTIndex.build(graph, 5, backend="flat")
    path = tmp_path_factory.mktemp("fleet-faults") / "index.ctsnap"
    save_ct_index_binary(index, path)
    return graph, path


@pytest.fixture()
def fleet(snapshot):
    _, path = snapshot
    with ServingFleet(path, workers=2) as running:
        yield running


def sources_for(fleet, graph, worker: int, count: int) -> list[int]:
    """Tree-affine vertices whose routing pins them to ``worker``.

    Core sources rotate round-robin across workers, so only vertices
    with a tree position route deterministically — the kind this suite
    needs to aim traffic at a specific (doomed or surviving) worker.
    """
    route = fleet._route
    picked = [
        s
        for s in range(graph.n)
        if route._position[route._representative[s]] is not None
        and route.worker_for(s) == worker
    ]
    assert len(picked) >= count, "routing sent everything to one worker"
    return picked[:count]


class TestWorkerDeath:
    def test_query_raises_instead_of_hanging(self, fleet, snapshot):
        graph, _ = snapshot
        (victim_source,) = sources_for(fleet, graph, worker=0, count=1)
        fleet._processes[0].kill()
        fleet._processes[0].join(timeout=5)

        started = time.monotonic()
        with pytest.raises(FleetError) as caught:
            fleet.query(victim_source, 1)
        elapsed = time.monotonic() - started

        assert elapsed < FAIL_FAST_SECONDS, "dead-worker wait was unbounded"
        message = str(caught.value)
        assert "worker 0" in message
        assert "died" in message

    def test_gather_raises_for_a_mid_batch_death(self, fleet, snapshot):
        graph, _ = snapshot
        doomed = sources_for(fleet, graph, worker=0, count=3)
        survivors = sources_for(fleet, graph, worker=1, count=3)
        pairs = [(s, (s + 1) % graph.n) for s in doomed + survivors]

        ticket = fleet.submit_batch(pairs)
        fleet._processes[0].kill()
        fleet._processes[0].join(timeout=5)

        started = time.monotonic()
        with pytest.raises(FleetError, match="died"):
            fleet.gather(ticket)
        assert time.monotonic() - started < FAIL_FAST_SECONDS

    def test_surviving_worker_keeps_answering(self, fleet, snapshot):
        graph, path = snapshot
        baseline = QueryEngine(load_ct_index_binary(path, mmap=True))
        fleet._processes[0].kill()
        fleet._processes[0].join(timeout=5)

        for s in sources_for(fleet, graph, worker=1, count=5):
            t = (s + 3) % graph.n
            assert fleet.query(s, t) == baseline.query(s, t)

    def test_collect_timeout_is_bounded(self, fleet):
        # A request id that was never dispatched has no owner: the
        # liveness check cannot clear it, so the explicit timeout is
        # the backstop.
        started = time.monotonic()
        with pytest.raises(FleetError, match="timed out"):
            fleet._collect(10_000_000, timeout=0.5)
        assert time.monotonic() - started < FAIL_FAST_SECONDS

    def test_shutdown_after_death_does_not_hang(self, snapshot):
        _, path = snapshot
        fleet = ServingFleet(path, workers=2)
        try:
            fleet._processes[0].kill()
            fleet._processes[0].join(timeout=5)
        finally:
            started = time.monotonic()
            fleet.shutdown()
            assert time.monotonic() - started < 30
        assert all(not p.is_alive() for p in fleet._processes)

    def test_fleet_error_is_a_serving_error(self):
        from repro.serving import ServingError

        assert issubclass(FleetError, ServingError)
