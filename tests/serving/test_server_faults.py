"""Fault injection against the serving front-end.

Two failure families, per the serving hardening plan:

* **engine faults** — a ``FlakyEngine`` doubles as chaos monkey,
  raising (or stalling) on the Nth ``query_batch`` call.  The server
  must isolate the failing batch (500s for *its* requests only), stay
  up for everyone else, and count the failure in both the plain
  ``batch_failures`` counter and the registry metric;
* **backpressure** — with a tiny admission bound and a deliberately
  slow engine, excess requests are refused *promptly* with HTTP 429
  ``overloaded`` envelopes (not queued behind the stall), and once the
  stall clears the queue drains and service resumes.

All scenarios run against a live socket via ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time

import pytest

from repro.core.ct_index import CTIndex
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.obs.registry import MetricsRegistry
from repro.serving import (
    DistanceServer,
    QueryEngine,
    ServeClient,
    ServeResponseError,
    ServerConfig,
)
from repro.serving.server import (
    BATCH_FAILURES_METRIC,
    REASON_OVERLOADED,
    STATE_SERVING,
)


@pytest.fixture(scope="module")
def setup():
    cfg = CorePeripheryConfig(core_size=25, community_count=4, fringe_size=75)
    graph = core_periphery_graph(cfg, seed=41)
    index = CTIndex.build(graph, 5, backend="flat")
    return graph, index


class FlakyEngine:
    """QueryEngine wrapper that fails or stalls on chosen batch calls.

    ``fail_on`` holds 1-based ``query_batch`` call numbers that raise;
    ``delay_on`` maps call numbers to a blocking sleep (seconds) before
    answering — the engine runs on the server's worker thread, so the
    sleep models a genuinely slow index, not a blocked event loop.
    """

    def __init__(self, inner, fail_on=(), delay_on=None):
        self.inner = inner
        self.fail_on = set(fail_on)
        self.delay_on = dict(delay_on or {})
        self.calls = 0

    def query_batch(self, pairs):
        self.calls += 1
        if self.calls in self.delay_on:
            time.sleep(self.delay_on[self.calls])
        if self.calls in self.fail_on:
            raise RuntimeError(f"injected fault on batch #{self.calls}")
        return self.inner.query_batch(pairs)

    def query_from(self, s, targets):
        return self.inner.query_from(s, targets)


class GateEngine:
    """Engine that blocks every batch until the test opens the gate."""

    def __init__(self, inner):
        self.inner = inner
        self.gate = threading.Event()

    def query_batch(self, pairs):
        assert self.gate.wait(timeout=30), "test never opened the gate"
        return self.inner.query_batch(pairs)

    def query_from(self, s, targets):
        assert self.gate.wait(timeout=30), "test never opened the gate"
        return self.inner.query_from(s, targets)


def make_server(engine, graph, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("batch_window_ms", 1.0)
    return DistanceServer(
        engine,
        n=graph.n,
        config=ServerConfig(**config_kwargs),
        registry=MetricsRegistry(),
    )


class TestEngineFaults:
    def test_failing_batch_is_isolated(self, setup):
        graph, index = setup
        flaky = FlakyEngine(QueryEngine(index), fail_on={1})

        async def main():
            server = make_server(flaky, graph, batch_window_ms=20.0)
            async with server:
                host, port = server.address
                # First wave rides the poisoned batch #1 together.
                first = [ServeClient(host, port) for _ in range(4)]

                async def one(client, t):
                    async with client:
                        try:
                            return await client.query(0, t)
                        except ServeResponseError as exc:
                            return exc

                outcomes = await asyncio.gather(
                    *(one(c, t) for t, c in enumerate(first))
                )
                # The server survived; later requests succeed normally.
                async with ServeClient(host, port) as client:
                    survivor = await client.query(1, 2)
                    status, _ = await client.healthz()
                failures = server.batch_failures
                metric = server.metrics_registry.counter(
                    BATCH_FAILURES_METRIC, server=server.server_id
                ).value
                state = server.state
            return outcomes, survivor, status, failures, metric, state

        outcomes, survivor, status, failures, metric, state = asyncio.run(
            main()
        )
        errors = [o for o in outcomes if isinstance(o, ServeResponseError)]
        assert errors, "the poisoned batch produced no client-visible error"
        assert all(e.status == 500 and e.error == "internal" for e in errors)
        assert "injected fault" in errors[0].detail
        assert isinstance(survivor, (int, float))
        assert status == 200
        assert state == STATE_SERVING
        assert failures == 1
        assert metric == 1

    def test_failure_does_not_leak_into_next_batch(self, setup):
        graph, index = setup
        engine = QueryEngine(index)
        flaky = FlakyEngine(engine, fail_on={1})
        rng = random.Random(3)
        pairs = [
            (rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(20)
        ]
        expected = engine.query_batch(pairs)

        async def main():
            server = make_server(flaky, graph)
            async with server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    with pytest.raises(ServeResponseError):
                        await client.query(0, 1)  # batch #1: injected fault
                    return [await client.query(s, t) for s, t in pairs]

        assert asyncio.run(main()) == expected

    def test_direct_batch_failure_is_isolated_too(self, setup):
        graph, index = setup

        class AlwaysFails:
            def query_batch(self, pairs):
                raise ValueError("broken index")

            def query_from(self, s, targets):
                raise ValueError("broken index")

        async def main():
            server = make_server(AlwaysFails(), graph)
            async with server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    status, body = await client.request(
                        "POST", "/query/batch", payload={"pairs": [[0, 1]]}
                    )
                    health, _ = await client.healthz()
                failures = server.batch_failures
            return status, body, health, failures

        status, body, health, failures = asyncio.run(main())
        assert status == 500
        assert body["error"] == "internal"
        assert health == 200
        assert failures == 1

    def test_slow_batch_delays_but_answers(self, setup):
        graph, index = setup
        flaky = FlakyEngine(QueryEngine(index), delay_on={1: 0.3})

        async def main():
            server = make_server(flaky, graph)
            async with server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    started = time.perf_counter()
                    value = await client.query(0, 1)
                    elapsed = time.perf_counter() - started
            return value, elapsed

        value, elapsed = asyncio.run(main())
        assert isinstance(value, (int, float))
        assert elapsed >= 0.25


class TestBackpressure:
    def test_overload_is_refused_promptly(self, setup):
        graph, index = setup
        gated = GateEngine(QueryEngine(index))
        depth = 4

        async def main():
            server = make_server(
                gated,
                graph,
                batch_window_ms=0.0,
                batch_max_size=2,
                max_queue_depth=depth,
            )
            async with server:
                host, port = server.address
                clients = [ServeClient(host, port) for _ in range(depth)]
                stuck = []

                async def pend(client, t):
                    async with client:
                        return await client.query(0, t)

                # Fill the admission bound with requests parked behind
                # the closed gate.
                for t, client in enumerate(clients):
                    stuck.append(asyncio.ensure_future(pend(client, t)))
                for _ in range(200):
                    if server._batcher.pending >= depth:
                        break
                    await asyncio.sleep(0.01)
                assert server._batcher.pending >= depth

                # The next request must be refused immediately — well
                # under the time the gate stays shut.
                async with ServeClient(host, port) as extra:
                    started = time.perf_counter()
                    status, body = await extra.request(
                        "POST", "/query", payload={"s": 0, "t": 1}
                    )
                    refusal_latency = time.perf_counter() - started
                rejected = dict(server.rejected_counts)

                # Open the gate: every admitted request completes and
                # service returns to normal.
                gated.gate.set()
                answers = await asyncio.gather(*stuck)
                async with ServeClient(host, port) as extra:
                    recovered = await extra.query(0, 1)
                pending_after = server._batcher.pending
            return (
                status,
                body,
                refusal_latency,
                rejected,
                answers,
                recovered,
                pending_after,
            )

        (
            status,
            body,
            refusal_latency,
            rejected,
            answers,
            recovered,
            pending_after,
        ) = asyncio.run(main())
        assert status == 429
        assert body["error"] == REASON_OVERLOADED
        assert refusal_latency < 1.0, "refusal waited behind the stall"
        assert rejected.get(REASON_OVERLOADED, 0) >= 1
        assert len(answers) == 4
        assert all(isinstance(a, (int, float)) for a in answers)
        assert isinstance(recovered, (int, float))
        assert pending_after == 0

    def test_direct_batches_count_against_the_bound(self, setup):
        graph, index = setup
        gated = GateEngine(QueryEngine(index))

        async def main():
            server = make_server(
                gated, graph, batch_window_ms=0.0, max_queue_depth=8
            )
            async with server:
                host, port = server.address

                async def big_batch():
                    async with ServeClient(host, port) as client:
                        pairs = [(0, t) for t in range(8)]
                        return await client.query_batch(pairs)

                parked = asyncio.ensure_future(big_batch())
                for _ in range(200):
                    if server._batcher.pending >= 8:
                        break
                    await asyncio.sleep(0.01)

                async with ServeClient(host, port) as extra:
                    status, body = await extra.request(
                        "POST", "/query", payload={"s": 0, "t": 1}
                    )
                gated.gate.set()
                batch_answers = await parked
            return status, body, batch_answers

        status, body, batch_answers = asyncio.run(main())
        assert status == 429
        assert body["error"] == REASON_OVERLOADED
        assert len(batch_answers) == 8

    def test_oversized_direct_batch_is_refused_not_wedged(self, setup):
        graph, index = setup

        async def main():
            server = make_server(
                QueryEngine(index), graph, max_queue_depth=4
            )
            async with server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    pairs = [(0, t % graph.n) for t in range(32)]
                    status, body = await client.request(
                        "POST", "/query/batch", payload={"pairs": pairs}
                    )
                    follow_up = await client.query(0, 1)
            return status, body, follow_up

        status, body, follow_up = asyncio.run(main())
        assert status == 429
        assert body["error"] == REASON_OVERLOADED
        assert isinstance(follow_up, (int, float))
