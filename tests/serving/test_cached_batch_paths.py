"""Pair-cached engines on the batch request paths.

The pair cache must be transparent on ``query_batch``/``query_from``:
a cached engine answers exactly like an uncached one both cold (first
pass populates) and warm (second pass served from the cache), its
hit/miss counters follow the hand-computable trace, and none of this
depends on which query kernel the underlying index runs.
"""

from __future__ import annotations

import random

import pytest

from repro.caching import CachedDistanceIndex
from repro.core.ct_index import CTIndex
from repro.exceptions import ConfigurationError
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.kernels import numpy_available
from repro.labeling.pll import build_pll
from repro.graphs.generators.random_graphs import gnp_graph
from repro.serving import QueryEngine

KERNELS = ["python"] + (["numpy"] if numpy_available() else [])


@pytest.fixture(scope="module")
def flat_setup():
    cfg = CorePeripheryConfig(core_size=25, community_count=4, fringe_size=75)
    graph = core_periphery_graph(cfg, seed=23)
    return graph, CTIndex.build(graph, 5, backend="flat")


@pytest.fixture(params=KERNELS)
def kernel(request):
    return request.param


class TestBatchPathsMatchUncached:
    def test_query_batch_cold_and_warm(self, flat_setup, kernel):
        graph, index = flat_setup
        cached = QueryEngine(index, cache_capacity=4096, kernel=kernel)
        plain = QueryEngine(index, kernel=kernel)
        rng = random.Random(7)
        pairs = [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(250)]
        expected = plain.query_batch(pairs)
        assert cached.query_batch(pairs) == expected  # cold: all fetched
        assert cached.query_batch(pairs) == expected  # warm: all cached
        assert cached.pair_cache.misses <= len(pairs)
        assert cached.pair_cache.hits >= len(pairs)

    def test_query_from_cold_and_warm(self, flat_setup, kernel):
        graph, index = flat_setup
        cached = QueryEngine(index, cache_capacity=4096, kernel=kernel)
        plain = QueryEngine(index, kernel=kernel)
        for s in (0, graph.n // 2, graph.n - 1):
            expected = plain.query_from(s, range(graph.n))
            assert cached.query_from(s, range(graph.n)) == expected
            assert cached.query_from(s, range(graph.n)) == expected
        # Warm passes hit every target (3n hits); cold passes miss every
        # target except the symmetric pairs among the three sources
        # themselves — the 2nd source finds (s1, s2) cached, the 3rd
        # finds (s1, s3) and (s2, s3).
        assert cached.pair_cache.misses == 3 * graph.n - 3
        assert cached.pair_cache.hits == 3 * graph.n + 3

    def test_batch_counter_trace(self, flat_setup, kernel):
        _, index = flat_setup
        engine = QueryEngine(index, cache_capacity=64, kernel=kernel)
        cache = engine.pair_cache
        # (1,2) miss; (2,1) in-batch hit via the symmetric key;
        # (1,2) in-batch hit; (3,4) miss.
        engine.query_batch([(1, 2), (2, 1), (1, 2), (3, 4)])
        assert (cache.hits, cache.misses) == (2, 2)
        # Warm replay: four cache hits, no inner work.
        engine.query_batch([(1, 2), (2, 1), (1, 2), (3, 4)])
        assert (cache.hits, cache.misses) == (6, 2)
        # One new pair among known ones.
        engine.query_batch([(3, 4), (5, 6)])
        assert (cache.hits, cache.misses) == (7, 3)

    def test_from_counter_trace(self, flat_setup, kernel):
        _, index = flat_setup
        engine = QueryEngine(index, cache_capacity=64, kernel=kernel)
        cache = engine.pair_cache
        # Targets [1, 2, 1]: miss, miss, in-batch duplicate hit.
        engine.query_from(0, [1, 2, 1])
        assert (cache.hits, cache.misses) == (1, 2)
        # (1, 0) warms via the symmetric key written by query_from(0, [1...]).
        assert engine.query(1, 0) == engine.query(0, 1)
        assert (cache.hits, cache.misses) == (3, 2)

    def test_stats_snapshot_reports_cache(self, flat_setup):
        _, index = flat_setup
        engine = QueryEngine(index, cache_capacity=32)
        engine.query_batch([(0, 1), (0, 1)])
        stats = engine.stats_snapshot()["pair_cache"]
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["capacity"] == 32


class TestKernelSelectionUnwrapsCaches:
    """The engine applies ``kernel=`` to the innermost index (bugfix)."""

    def test_pre_wrapped_cache_accepts_kernel(self, flat_setup, kernel):
        _, index = flat_setup
        wrapped = CachedDistanceIndex(index, 128)
        engine = QueryEngine(wrapped, kernel=kernel)
        # Selection reached through the wrapper to the CT-Index.
        assert index.kernel == kernel
        assert engine.query(0, 1) == index.distance(0, 1)

    def test_doubly_wrapped_cache_accepts_kernel(self, flat_setup, kernel):
        _, index = flat_setup
        wrapped = CachedDistanceIndex(CachedDistanceIndex(index, 64), 64)
        QueryEngine(wrapped, kernel=kernel)
        assert index.kernel == kernel

    def test_kernelless_index_still_rejects_numpy(self):
        if not numpy_available():
            pytest.skip("numpy not installed")
        g = gnp_graph(20, 0.2, seed=3)
        wrapped = CachedDistanceIndex(build_pll(g), 64)
        with pytest.raises(ConfigurationError, match="kernel"):
            QueryEngine(wrapped, kernel="numpy")
