"""Multi-process serving fleet over one mapped snapshot.

A 2-worker fleet must be answer-identical and fingerprint-identical to
single-process serving: the workers each map the same snapshot, so any
divergence is a routing or serialization bug.  Spawned processes are
slow to start, so the suite builds one small snapshot and one fleet per
module and drives every request shape through it.
"""

from __future__ import annotations

import random

import pytest

from repro.core.ct_index import CTIndex
from repro.core.serialization import save_ct_index_binary
from repro.exceptions import ConfigurationError
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.serving import FleetError, QueryEngine, ServingFleet
from repro.serving.fleet import BatchTicket
from repro.storage.binary import load_ct_index_binary


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    cfg = CorePeripheryConfig(core_size=25, community_count=4, fringe_size=75)
    graph = core_periphery_graph(cfg, seed=41)
    index = CTIndex.build(graph, 5, backend="flat")
    path = tmp_path_factory.mktemp("fleet") / "index.ctsnap"
    save_ct_index_binary(index, path)
    return graph, path


@pytest.fixture(scope="module")
def fleet(snapshot):
    _, path = snapshot
    with ServingFleet(path, workers=2) as running:
        yield running


@pytest.fixture(scope="module")
def baseline(snapshot):
    _, path = snapshot
    return QueryEngine(load_ct_index_binary(path, mmap=True))


class TestIdentity:
    def test_verify_matches_parent_fingerprint(self, fleet):
        digest = fleet.verify()
        assert isinstance(digest, str) and len(digest) == 64
        assert set(fleet.fingerprints()) == {digest}

    def test_single_queries_match_baseline(self, fleet, baseline, snapshot):
        graph, _ = snapshot
        rng = random.Random(1)
        for _ in range(60):
            s, t = rng.randrange(graph.n), rng.randrange(graph.n)
            assert fleet.query(s, t) == baseline.query(s, t), (s, t)

    def test_batch_matches_baseline(self, fleet, baseline, snapshot):
        graph, _ = snapshot
        rng = random.Random(2)
        pairs = [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(300)]
        assert fleet.query_batch(pairs) == baseline.query_batch(pairs)

    def test_from_matches_baseline(self, fleet, baseline, snapshot):
        graph, _ = snapshot
        for s in (0, graph.n // 2, graph.n - 1):
            assert fleet.query_from(s, range(graph.n)) == baseline.query_from(
                s, range(graph.n)
            )

    def test_pipelined_batches_preserve_order(self, fleet, baseline, snapshot):
        graph, _ = snapshot
        rng = random.Random(3)
        batches = [
            [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(50)]
            for _ in range(6)
        ]
        tickets = [fleet.submit_batch(batch) for batch in batches]
        assert all(isinstance(t, BatchTicket) for t in tickets)
        for batch, ticket in zip(batches, tickets):
            assert fleet.gather(ticket) == baseline.query_batch(batch)


class TestTopology:
    def test_both_workers_receive_traffic(self, fleet, snapshot):
        graph, _ = snapshot
        rng = random.Random(4)
        fleet.query_batch(
            [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(400)]
        )
        per_worker = [stats["queries"] for stats in fleet.stats()]
        assert len(per_worker) == 2
        assert all(count > 0 for count in per_worker)

    def test_resident_kb_per_worker(self, fleet):
        rss = fleet.resident_kb()
        assert len(rss) == 2
        assert all(kb > 0 for kb in rss)

    def test_parent_keeps_routing_index(self, fleet, snapshot):
        graph, _ = snapshot
        assert fleet.index.graph.n == graph.n


class TestLifecycle:
    def test_workers_must_be_positive(self, snapshot):
        _, path = snapshot
        with pytest.raises(ConfigurationError, match="worker"):
            ServingFleet(path, workers=0)

    def test_missing_snapshot_fails_before_spawning(self, tmp_path):
        from repro.exceptions import SerializationError

        with pytest.raises(SerializationError):
            ServingFleet(tmp_path / "missing.ctsnap", workers=1)

    def test_shutdown_is_graceful_and_idempotent(self, snapshot):
        _, path = snapshot
        fleet = ServingFleet(path, workers=1)
        assert fleet.query(0, 1) == fleet.query(0, 1)
        processes = list(fleet._processes)
        fleet.shutdown()
        assert all(not p.is_alive() for p in processes)
        assert all(p.exitcode == 0 for p in processes)
        fleet.shutdown()  # second call is a no-op

    def test_queries_after_shutdown_raise(self, snapshot):
        _, path = snapshot
        fleet = ServingFleet(path, workers=1)
        fleet.shutdown()
        with pytest.raises(FleetError):
            fleet.query(0, 1)
