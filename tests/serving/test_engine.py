"""Unit tests for the batch-aware query engine."""

from __future__ import annotations

import random

import pytest

from repro.caching import CachedDistanceIndex
from repro.core.ct_index import CTIndex
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.traversal import all_pairs_distances
from repro.labeling.pll import build_pll
from repro.serving import QueryEngine
from repro.serving.bench import serve_bench_rows


@pytest.fixture(scope="module")
def cp_setup():
    cfg = CorePeripheryConfig(core_size=40, community_count=6, fringe_size=140)
    graph = core_periphery_graph(cfg, seed=31)
    index = CTIndex.build(graph, 5, use_equivalence_reduction=False)
    return graph, index, all_pairs_distances(graph)


class TestAnswers:
    def test_all_request_shapes_agree_with_truth(self, cp_setup):
        graph, index, truth = cp_setup
        engine = QueryEngine(index, cache_capacity=512)
        rng = random.Random(4)
        pairs = [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(150)]
        for s, t in pairs[:40]:
            assert engine.query(s, t) == truth[s][t]
        assert engine.query_batch(pairs) == [truth[s][t] for s, t in pairs]
        for s in (0, graph.n // 2, graph.n - 1):
            assert engine.query_from(s, range(graph.n)) == truth[s]

    def test_uncached_engine_same_answers(self, cp_setup):
        graph, index, truth = cp_setup
        engine = QueryEngine(index)
        assert engine.pair_cache is None
        assert engine.query_from(3, range(graph.n)) == truth[3]

    def test_works_over_non_ct_index(self):
        g = gnp_graph(25, 0.15, seed=6)
        engine = QueryEngine(build_pll(g), cache_capacity=64)
        truth = all_pairs_distances(g)
        assert engine.query_batch([(0, 1), (2, 3)]) == [truth[0][1], truth[2][3]]
        snap = engine.stats_snapshot()
        assert snap["index"]["method"] == "PLL"
        assert "case_counts" not in snap["index"]

    def test_serves_flat_backend_index(self, cp_setup):
        # The engine reads through the index's query protocol, so CSR
        # flat storage must be invisible to every request shape.
        graph, _, truth = cp_setup
        flat = CTIndex.build(
            graph, 5, use_equivalence_reduction=False, backend="flat"
        )
        engine = QueryEngine(flat, cache_capacity=256)
        rng = random.Random(9)
        pairs = [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(80)]
        assert engine.query_batch(pairs) == [truth[s][t] for s, t in pairs]
        assert engine.query_from(1, range(graph.n)) == truth[1]
        assert engine.stats_snapshot()["index"]["method"].startswith("CT")

    def test_pre_wrapped_cache_is_detected(self, cp_setup):
        _, index, truth = cp_setup
        engine = QueryEngine(CachedDistanceIndex(index, 128))
        assert engine.pair_cache is not None
        assert engine.query(0, 1) == truth[0][1]
        # Case tracking unwraps to the CT-Index underneath.
        assert "case_counts" in engine.stats_snapshot()["index"]


class TestInstrumentation:
    def test_request_and_query_counters(self, cp_setup):
        graph, index, _ = cp_setup
        engine = QueryEngine(index, cache_capacity=256)
        engine.query(0, 1)
        engine.query(0, 1)
        engine.query_batch([(1, 2), (3, 4), (5, 6)])
        engine.query_from(2, [0, 1, 2, 3])
        snap = engine.stats_snapshot()
        assert snap["requests"] == {"single": 2, "batch_pairs": 1, "batch_from": 1}
        assert snap["queries"] == 2 + 3 + 4
        assert snap["latency"]["single"]["count"] == 2
        assert snap["latency"]["batch_pairs"]["count"] == 1
        assert snap["latency"]["batch_from"]["count"] == 1

    def test_per_case_histograms(self, cp_setup):
        graph, index, _ = cp_setup
        engine = QueryEngine(index)
        engine.reset_stats()
        rng = random.Random(9)
        for _ in range(250):
            engine.query(rng.randrange(graph.n), rng.randrange(graph.n))
        snap = engine.stats_snapshot()
        # Histogram totals per case match the index's own case counters;
        # "local" covers self/twin queries that dispatched no case.
        cases = snap["cases"]
        for case, count in snap["index"]["case_counts"].items():
            assert cases[case]["count"] == count
        assert sum(h["count"] for h in cases.values()) == 250

    def test_cache_hit_appears_as_local_case(self, cp_setup):
        _, index, _ = cp_setup
        engine = QueryEngine(index, cache_capacity=64)
        engine.reset_stats()
        engine.query(0, 5)
        engine.query(0, 5)  # served by the pair cache: no case dispatch
        snap = engine.stats_snapshot()
        assert snap["pair_cache"]["hits"] == 1
        assert snap["cases"]["local"]["count"] >= 1

    def test_reset_stats(self, cp_setup):
        _, index, _ = cp_setup
        engine = QueryEngine(index, cache_capacity=64)
        engine.query(0, 1)
        engine.reset_stats()
        snap = engine.stats_snapshot()
        assert snap["queries"] == 0
        assert snap["requests"] == {}
        assert snap["pair_cache"]["hits"] == 0
        assert snap["index"]["core_probes"] == 0


class TestExtensionCacheEffect:
    def test_cache_reduces_core_probes_on_repeat_heavy_stream(self, cp_setup):
        """The acceptance-criteria demo: same answers, fewer core probes."""
        graph, index, _ = cp_setup
        rng = random.Random(13)
        hot = [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(8)]
        stream = [hot[rng.randrange(len(hot))] for _ in range(400)]
        rows = serve_bench_rows(index, stream, cache_capacity=512)
        by_config = {row["config"]: row for row in rows}
        uncached = by_config["uncached"]
        ext = by_config["ext-cache"]
        both = by_config["ext+pair-cache"]
        assert ext["core_probes"] < uncached["core_probes"]
        assert both["core_probes"] <= ext["core_probes"]
        assert ext["ext_hit_rate"] > 0.5
        assert both["pair_hit_rate"] > 0.9
        # serve_bench_rows itself raises if any config changed an answer.

    def test_restores_extension_cache_size(self, cp_setup):
        _, index, _ = cp_setup
        before = index.extension_cache_size
        serve_bench_rows(index, [(0, 1), (2, 3)], cache_capacity=8)
        assert index.extension_cache_size == before
