"""Protocol-level tests for the HTTP serving front-end.

Every test drives a *live* in-process :class:`DistanceServer` over a
real socket with :class:`ServeClient` — no handler functions are called
directly, so the hand-rolled HTTP parsing, micro-batching, and error
envelopes are all on the hook.  The suite has no pytest-asyncio
dependency: each test owns its event loop via ``asyncio.run``.

The invariants:

* answers through the wire are *identical* to a direct
  :class:`QueryEngine` over the same index, for all three request
  shapes (single pair, pairwise batch, one-to-many);
* malformed requests come back as structured JSON errors (400/404/405)
  and never crash the server or poison the connection;
* ``/healthz`` and ``/metrics`` expose the documented fields;
* concurrent single-pair requests actually coalesce into shared
  ``query_batch`` calls.
"""

from __future__ import annotations

import asyncio
import json
import math
import random

import pytest

from repro.core.ct_index import CTIndex
from repro.exceptions import ConfigurationError
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.obs.registry import MetricsRegistry
from repro.serving import (
    DistanceServer,
    QueryEngine,
    ServeClient,
    ServeResponseError,
    ServerConfig,
)
from repro.serving.audit import fingerprint_sha256
from repro.serving.server import (
    REQUEST_LATENCY_METRIC,
    STATE_SERVING,
)


@pytest.fixture(scope="module")
def setup():
    cfg = CorePeripheryConfig(core_size=25, community_count=4, fringe_size=75)
    graph = core_periphery_graph(cfg, seed=41)
    index = CTIndex.build(graph, 5, backend="flat")
    return graph, index


def make_server(index, graph, **config_kwargs):
    """Fresh server on an ephemeral port with an isolated registry."""
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("batch_window_ms", 1.0)
    return DistanceServer(
        QueryEngine(index),
        n=graph.n,
        config=ServerConfig(**config_kwargs),
        fingerprint=fingerprint_sha256(index),
        registry=MetricsRegistry(),
    )


def run_with_server(setup, scenario, **config_kwargs):
    """asyncio.run a ``scenario(server, client)`` against a live server."""
    graph, index = setup

    async def main():
        server = make_server(index, graph, **config_kwargs)
        async with server:
            host, port = server.address
            async with ServeClient(host, port) as client:
                return await scenario(server, client)

    return asyncio.run(main())


class TestAnswerIdentity:
    def test_single_pair_round_trips_match_engine(self, setup):
        graph, index = setup
        engine = QueryEngine(index)
        rng = random.Random(7)
        pairs = [
            (rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(80)
        ]
        expected = engine.query_batch(pairs)

        async def scenario(server, client):
            return [await client.query(s, t) for s, t in pairs]

        assert run_with_server(setup, scenario) == expected

    def test_batch_endpoint_matches_engine(self, setup):
        graph, index = setup
        engine = QueryEngine(index)
        rng = random.Random(11)
        pairs = [
            (rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(50)
        ]
        expected = engine.query_batch(pairs)

        async def scenario(server, client):
            return await client.query_batch(pairs)

        assert run_with_server(setup, scenario) == expected

    def test_one_to_many_matches_engine(self, setup):
        graph, index = setup
        engine = QueryEngine(index)
        targets = list(range(0, graph.n, 7))
        expected = engine.query_from(3, targets)

        async def scenario(server, client):
            return await client.query_from(3, targets)

        assert run_with_server(setup, scenario) == expected

    def test_self_distance_is_zero(self, setup):
        async def scenario(server, client):
            return await client.query(5, 5)

        assert run_with_server(setup, scenario) == 0

    def test_infinity_survives_the_wire(self, setup):
        # encode_weight maps math.inf to the "inf" JSON sentinel; the
        # client decodes it back.  Exercised through a stub engine so
        # the test does not depend on the fixture graph being
        # disconnected.
        graph, index = setup

        class InfEngine:
            def query_batch(self, pairs):
                return [math.inf for _ in pairs]

            def query_from(self, s, targets):
                return [math.inf for _ in targets]

        async def main():
            server = DistanceServer(
                InfEngine(),
                n=graph.n,
                config=ServerConfig(port=0, batch_window_ms=0.5),
                registry=MetricsRegistry(),
            )
            async with server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    single = await client.query(0, 1)
                    batch = await client.query_batch([(0, 1)])
            return single, batch

        single, batch = asyncio.run(main())
        assert single == math.inf
        assert batch == [math.inf]


class TestMalformedRequests:
    """Bad input is a structured error envelope, never a dead server."""

    def test_invalid_json_is_400_bad_request(self, setup):
        async def scenario(server, client):
            status, body = await client.request(
                "POST", "/query", raw_body=b"{not json"
            )
            # The connection (and the server) must still work afterwards.
            survivor = await client.query(1, 2)
            return status, body, survivor, server.state

        status, body, survivor, state = run_with_server(setup, scenario)
        assert status == 400
        assert body["error"] == "bad_request"
        assert "JSON" in body["detail"]
        assert isinstance(survivor, (int, float))
        assert state == STATE_SERVING

    def test_non_object_body_is_400(self, setup):
        async def scenario(server, client):
            return await client.request("POST", "/query", raw_body=b"[1, 2]")

        status, body = run_with_server(setup, scenario)
        assert status == 400
        assert body["error"] == "bad_request"

    def test_missing_fields_are_400(self, setup):
        async def scenario(server, client):
            return await client.request("POST", "/query", payload={"s": 1})

        status, body = run_with_server(setup, scenario)
        assert status == 400
        assert body["error"] == "bad_request"

    def test_out_of_range_vertex_is_400(self, setup):
        graph, _ = setup

        async def scenario(server, client):
            with pytest.raises(ServeResponseError) as caught:
                await client.query(0, graph.n + 50)
            return caught.value

        error = run_with_server(setup, scenario)
        assert error.status == 400
        assert error.error == "bad_request"

    def test_bool_vertex_is_rejected(self, setup):
        # True would quietly alias vertex 1 if the type check used
        # isinstance(int) alone.
        async def scenario(server, client):
            return await client.request(
                "POST", "/query", payload={"s": True, "t": 2}
            )

        status, body = run_with_server(setup, scenario)
        assert status == 400

    def test_bad_batch_shape_is_400(self, setup):
        async def scenario(server, client):
            return await client.request(
                "POST", "/query/batch", payload={"pairs": [[1, 2, 3]]}
            )

        status, body = run_with_server(setup, scenario)
        assert status == 400
        assert "pairs[0]" in body["detail"]

    def test_unknown_route_is_404(self, setup):
        async def scenario(server, client):
            return await client.request("GET", "/nope")

        status, body = run_with_server(setup, scenario)
        assert status == 404
        assert body["error"] == "not_found"

    def test_wrong_method_is_405(self, setup):
        async def scenario(server, client):
            return await client.request("GET", "/query")

        status, body = run_with_server(setup, scenario)
        assert status == 405
        assert body["error"] == "method_not_allowed"

    def test_bad_request_counted_in_rejections(self, setup):
        async def scenario(server, client):
            await client.request("POST", "/query", raw_body=b"???")
            return dict(server.rejected_counts)

        rejected = run_with_server(setup, scenario)
        assert rejected.get("bad_request", 0) >= 1


class TestIntrospection:
    def test_healthz_reports_serving(self, setup):
        graph, index = setup

        async def scenario(server, client):
            status, payload = await client.healthz()
            return status, payload, server.run_id

        status, payload, run_id = run_with_server(setup, scenario)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["state"] == STATE_SERVING
        assert payload["run_id"] == run_id
        assert payload["n"] == graph.n
        assert payload["snapshot_sha256"] == fingerprint_sha256(index)

    def test_metrics_exposes_request_latency(self, setup):
        async def scenario(server, client):
            await client.query(0, 1)
            return await client.metrics()

        text = run_with_server(setup, scenario)
        flat = REQUEST_LATENCY_METRIC.replace(".", "_")
        assert flat in text
        assert 'endpoint="query"' in text

    def test_stats_merges_engine_snapshot(self, setup):
        async def scenario(server, client):
            await client.query_batch([(0, 1), (2, 3)])
            return await client.stats()

        stats = run_with_server(setup, scenario)
        assert stats["queries_answered"] >= 2
        assert stats["state"] == STATE_SERVING
        assert "engine" in stats

    def test_responses_declare_json_content_type(self, setup):
        async def scenario(server, client):
            reader, writer = await asyncio.open_connection(*server.address)
            body = json.dumps({"s": 0, "t": 1}).encode()
            writer.write(
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            await writer.drain()
            status_line = await reader.readline()
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                key, _, value = line.decode().partition(":")
                headers[key.strip().lower()] = value.strip()
            payload = await reader.readexactly(int(headers["content-length"]))
            writer.close()
            await writer.wait_closed()
            return status_line, headers, json.loads(payload)

        status_line, headers, payload = run_with_server(setup, scenario)
        assert status_line.startswith(b"HTTP/1.1 200")
        assert headers["content-type"].startswith("application/json")
        assert "distance" in payload


class TestMicroBatching:
    def test_concurrent_singles_share_batches(self, setup):
        graph, index = setup
        engine = QueryEngine(index)
        rng = random.Random(23)
        pairs = [
            (rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(40)
        ]
        expected = engine.query_batch(pairs)

        async def scenario(server, client):
            host, port = server.address
            clients = [ServeClient(host, port) for _ in range(8)]

            async def worker(client, offset):
                async with client:
                    out = []
                    for i in range(offset, len(pairs), 8):
                        out.append((i, await client.query(*pairs[i])))
                    return out

            chunks = await asyncio.gather(
                *(worker(c, i) for i, c in enumerate(clients))
            )
            answers = [None] * len(pairs)
            for chunk in chunks:
                for i, value in chunk:
                    answers[i] = value
            return answers, server.batches, server.batched_queries

        # A generous window forces aggregation: 40 queries must ride in
        # strictly fewer than 40 engine calls, with identical answers.
        answers, batches, batched = run_with_server(
            setup, scenario, batch_window_ms=50.0
        )
        assert answers == expected
        assert batched == len(pairs)
        assert 0 < batches < len(pairs)

    def test_batch_max_size_flushes_early(self, setup):
        async def scenario(server, client):
            host, port = server.address

            async def one(t):
                async with ServeClient(host, port) as extra:
                    return await extra.query(0, t)

            await asyncio.gather(*(one(t) for t in range(12)))
            return server.max_batch_size

        max_batch = run_with_server(
            setup, scenario, batch_window_ms=200.0, batch_max_size=4
        )
        assert 0 < max_batch <= 4


class TestConfigValidation:
    def test_negative_window_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(batch_window_ms=-1.0)

    def test_zero_queue_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(max_queue_depth=0)

    def test_engine_without_batch_protocol_rejected(self, setup):
        graph, _ = setup
        with pytest.raises(ConfigurationError):
            DistanceServer(object(), n=graph.n)
