"""Unit tests for the serving-layer latency histogram."""

from __future__ import annotations

import pytest

from repro.serving.metrics import BUCKET_EDGES, LatencyHistogram


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.mean_seconds == 0.0
        assert h.percentile(0.5) == 0.0
        assert h.snapshot() == {"count": 0}

    def test_count_mean_min_max_exact(self):
        h = LatencyHistogram()
        for us in (1, 3, 10, 100):
            h.record(us * 1e-6)
        assert h.count == 4
        assert h.mean_seconds == pytest.approx(28.5e-6)
        assert h.min_seconds == pytest.approx(1e-6)
        assert h.max_seconds == pytest.approx(100e-6)

    def test_bucketing_is_log2(self):
        h = LatencyHistogram()
        h.record(1.5e-6)  # (1µs, 2µs]
        h.record(3e-6)  # (2µs, 4µs]
        h.record(3.5e-6)  # (2µs, 4µs]
        nonzero = [(i, c) for i, c in enumerate(h.counts) if c]
        assert nonzero == [(1, 1), (2, 2)]

    def test_percentile_upper_edge(self):
        h = LatencyHistogram()
        for _ in range(99):
            h.record(1.5e-6)
        h.record(0.9e-3)
        assert h.percentile(0.5) == BUCKET_EDGES[1]  # 2µs bucket edge
        assert h.percentile(0.99) == BUCKET_EDGES[1]
        assert h.percentile(1.0) >= 0.5e-3

    def test_percentile_validation(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.percentile(0.0)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_overflow_bucket(self):
        h = LatencyHistogram()
        h.record(10.0)  # beyond the ~1s last edge
        assert h.counts[-1] == 1
        assert h.percentile(1.0) == 10.0

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(1e-6)
        b.record(5e-6)
        b.record(9e-3)
        a.merge(b)
        assert a.count == 3
        assert a.max_seconds == pytest.approx(9e-3)
        assert a.total_seconds == pytest.approx(1e-6 + 5e-6 + 9e-3)

    def test_snapshot_shape(self):
        h = LatencyHistogram()
        for us in (2, 2, 50):
            h.record(us * 1e-6)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["mean_us"] == pytest.approx(18.0)
        assert snap["p50_us"] >= snap["min_us"]
        assert snap["p99_us"] <= snap["max_us"] * 2  # bucket resolution
        assert sum(snap["buckets"].values()) == 3
