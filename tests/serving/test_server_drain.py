"""Graceful drain and the per-run audit record.

The shutdown contract: once a drain starts (``close()`` or SIGTERM),
every *admitted* request still completes and is answered — zero request
loss — while *late* requests are refused with HTTP 503 ``draining``.
After the drain the server leaves behind ``artifact.json`` and an
``eval_history.jsonl`` line, both validating against the checked-in
schemas in :mod:`repro.serving.audit`, with the snapshot SHA-256
matching the served index's own fingerprint.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time

import pytest

from repro.core.ct_index import CTIndex
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.obs.registry import MetricsRegistry
from repro.serving import (
    AuditError,
    DistanceServer,
    QueryEngine,
    ServeClient,
    ServerConfig,
    serve_forever,
)
from repro.serving.audit import (
    fingerprint_sha256,
    read_eval_history,
    validate_artifact,
    validate_document,
    validate_eval_entry,
)
from repro.serving.server import REASON_DRAINING, STATE_STOPPED


@pytest.fixture(scope="module")
def setup():
    cfg = CorePeripheryConfig(core_size=25, community_count=4, fringe_size=75)
    graph = core_periphery_graph(cfg, seed=41)
    index = CTIndex.build(graph, 5, backend="flat")
    return graph, index


class SlowEngine:
    """Holds every batch on the worker thread for ``delay_s`` seconds."""

    def __init__(self, inner, delay_s: float):
        self.inner = inner
        self.delay_s = delay_s

    def query_batch(self, pairs):
        time.sleep(self.delay_s)
        return self.inner.query_batch(pairs)

    def query_from(self, s, targets):
        time.sleep(self.delay_s)
        return self.inner.query_from(s, targets)


def make_server(engine, graph, index, audit_dir=None, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("batch_window_ms", 1.0)
    config_kwargs.setdefault("audit_dir", audit_dir)
    return DistanceServer(
        engine,
        n=graph.n,
        config=ServerConfig(**config_kwargs),
        snapshot_path="memory://test-index",
        fingerprint=fingerprint_sha256(index),
        registry=MetricsRegistry(),
    )


class TestGracefulDrain:
    def test_inflight_completes_and_late_requests_refused(self, setup):
        graph, index = setup
        engine = SlowEngine(QueryEngine(index), delay_s=0.3)

        async def main():
            server = make_server(engine, graph, index)
            await server.start()
            host, port = server.address

            async def inflight():
                async with ServeClient(host, port) as client:
                    return await client.query(0, 1)

            pending = asyncio.ensure_future(inflight())
            # Let the request get admitted (parked in the slow engine),
            # and open the late client's keep-alive connection while the
            # listener still accepts (close() stops the listener, so a
            # post-drain late arrival sees a TCP refusal instead of the
            # structured 503).
            late = await ServeClient(host, port).connect()
            await asyncio.sleep(0.1)

            closer = asyncio.ensure_future(server.close())
            await asyncio.sleep(0.05)

            # Late request during the drain: refused, not queued.
            try:
                status, body = await late.request(
                    "POST", "/query", payload={"s": 0, "t": 1}
                )
            finally:
                await late.close()

            answer = await pending
            report = await closer
            return answer, status, body, report, server.state

        answer, status, body, report, state = asyncio.run(main())
        assert isinstance(answer, (int, float)), "in-flight request was lost"
        assert status == 503
        assert body["error"] == REASON_DRAINING
        assert report["clean"] is True
        # inflight_at_close is the admitted work counted at drain start
        # (the parked request), all of which completed.
        assert report["inflight_at_close"] >= 1
        assert state == STATE_STOPPED

    def test_zero_request_loss_under_concurrent_drain(self, setup):
        graph, index = setup
        engine = SlowEngine(QueryEngine(index), delay_s=0.05)
        expected = QueryEngine(index).query_batch(
            [(0, t) for t in range(10)]
        )

        async def main():
            server = make_server(
                engine, graph, index, batch_window_ms=10.0
            )
            await server.start()
            host, port = server.address

            async def one(t):
                async with ServeClient(host, port) as client:
                    return await client.query(0, t)

            tasks = [asyncio.ensure_future(one(t)) for t in range(10)]
            # Wait until every request is admitted, then drain while
            # they are still being answered.
            for _ in range(200):
                if server._batcher.pending + server.queries_answered >= 10:
                    break
                await asyncio.sleep(0.005)
            report = await server.close()
            answers = await asyncio.gather(*tasks)
            return answers, report

        answers, report = asyncio.run(main())
        assert answers == expected, "a drained request lost or corrupted data"
        assert report["clean"] is True

    def test_close_is_idempotent(self, setup):
        graph, index = setup

        async def main():
            server = make_server(QueryEngine(index), graph, index)
            await server.start()
            first = await server.close()
            second = await server.close()
            return first, second

        first, second = asyncio.run(main())
        assert first["clean"] is True
        assert second == first

    def test_sigterm_triggers_the_same_drain(self, setup):
        graph, index = setup
        engine = SlowEngine(QueryEngine(index), delay_s=0.2)

        async def main():
            server = make_server(engine, graph, index)
            runner = asyncio.ensure_future(
                serve_forever(server, install_signals=True)
            )
            for _ in range(100):
                if server.port is not None:
                    break
                await asyncio.sleep(0.01)
            host, port = server.address

            async def inflight():
                async with ServeClient(host, port) as client:
                    return await client.query(0, 1)

            pending = asyncio.ensure_future(inflight())
            await asyncio.sleep(0.05)

            os.kill(os.getpid(), signal.SIGTERM)
            # A second SIGTERM mid-drain must not kill the process
            # (handlers stay installed until the drain finishes).
            await asyncio.sleep(0.05)
            os.kill(os.getpid(), signal.SIGTERM)

            report = await asyncio.wait_for(runner, timeout=10)
            answer = await pending
            return answer, report, server.state

        answer, report, state = asyncio.run(main())
        assert isinstance(answer, (int, float))
        assert report["clean"] is True
        assert state == STATE_STOPPED

    def test_stop_event_requests_shutdown_without_signals(self, setup):
        graph, index = setup

        async def main():
            server = make_server(QueryEngine(index), graph, index)
            stop = asyncio.Event()
            seen = []
            runner = asyncio.ensure_future(
                serve_forever(
                    server,
                    install_signals=False,
                    stop_event=stop,
                    ready=seen.append,
                )
            )
            for _ in range(100):
                if seen:
                    break
                await asyncio.sleep(0.01)
            host, port = server.address
            async with ServeClient(host, port) as client:
                answer = await client.query(0, 1)
            stop.set()
            report = await asyncio.wait_for(runner, timeout=10)
            return answer, report, seen

        answer, report, seen = asyncio.run(main())
        assert isinstance(answer, (int, float))
        assert report["clean"] is True
        assert seen and seen[0].port is not None

    def test_drain_timeout_reports_unclean(self, setup):
        graph, index = setup
        engine = SlowEngine(QueryEngine(index), delay_s=1.5)

        async def main():
            server = make_server(
                engine, graph, index, drain_timeout_s=0.1
            )
            await server.start()
            host, port = server.address

            async def inflight():
                try:
                    async with ServeClient(host, port) as client:
                        return await client.query(0, 1)
                except Exception as exc:  # noqa: BLE001 - cut off mid-drain
                    return exc

            pending = asyncio.ensure_future(inflight())
            await asyncio.sleep(0.1)
            report = await server.close()
            outcome = await pending
            return report, outcome

        report, outcome = asyncio.run(main())
        assert report["clean"] is False
        assert report["inflight_at_close"] >= 0


class TestAuditRecord:
    def run_and_audit(self, setup, tmp_path):
        graph, index = setup

        async def main():
            server = make_server(
                QueryEngine(index), graph, index, audit_dir=tmp_path
            )
            async with server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    for t in range(5):
                        await client.query(0, t)
                    await client.query_batch([(1, 2), (3, 4)])
                    await client.healthz()
            return server

        return asyncio.run(main())

    def test_artifact_validates_and_fingerprints_the_snapshot(
        self, setup, tmp_path
    ):
        graph, index = setup
        server = self.run_and_audit(setup, tmp_path)
        assert server.artifact_path is not None
        document = json.loads(server.artifact_path.read_text())
        validate_artifact(document)  # raises AuditError on drift
        assert document["snapshot"]["sha256"] == fingerprint_sha256(index)
        assert document["snapshot"]["n"] == graph.n
        assert document["run_id"] == server.run_id
        assert document["counters"]["queries_answered"] == 7
        assert document["counters"]["requests"]["query"] == 5
        assert document["drain"]["clean"] is True
        assert document["config"]["max_queue_depth"] == (
            server.config.max_queue_depth
        )

    def test_eval_history_appends_schema_valid_lines(self, setup, tmp_path):
        server = self.run_and_audit(setup, tmp_path)
        history = read_eval_history(server.eval_history_path)
        assert len(history) == 1
        entry = history[0]
        validate_eval_entry(entry)
        assert entry["run_id"] == server.run_id
        assert entry["queries_answered"] == 7

        # Append-only: a second run adds a line, never truncates.
        second = self.run_and_audit(setup, tmp_path)
        history = read_eval_history(second.eval_history_path)
        assert len(history) == 2
        assert history[0]["run_id"] == server.run_id
        assert history[1]["run_id"] == second.run_id

    def test_no_audit_dir_means_no_files(self, setup, tmp_path):
        graph, index = setup

        async def main():
            server = make_server(
                QueryEngine(index), graph, index, audit_dir=None
            )
            async with server:
                pass
            return server

        server = asyncio.run(main())
        assert server.artifact_path is None
        assert server.eval_history_path is None
        assert list(tmp_path.iterdir()) == []

    def test_artifact_write_is_atomic(self, setup, tmp_path):
        # The temp file is renamed into place: no ``.tmp`` survivors.
        server = self.run_and_audit(setup, tmp_path)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
        assert server.artifact_path.name == "artifact.json"

    def test_schema_rejects_drifted_documents(self, setup, tmp_path):
        server = self.run_and_audit(setup, tmp_path)
        document = json.loads(server.artifact_path.read_text())

        broken = dict(document)
        del broken["snapshot"]
        with pytest.raises(AuditError):
            validate_artifact(broken)

        wrong_type = json.loads(server.artifact_path.read_text())
        wrong_type["counters"]["queries_answered"] = "seven"
        with pytest.raises(AuditError):
            validate_artifact(wrong_type)

    def test_validate_document_reports_the_failing_path(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "properties": {
                "a": {"type": "array", "items": {"type": "integer"}}
            },
        }
        validate_document({"a": [1, 2]}, schema)
        with pytest.raises(AuditError) as caught:
            validate_document({"a": [1, "x"]}, schema)
        assert "$.a[1]" in str(caught.value)
