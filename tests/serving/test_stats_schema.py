"""Regression: ``stats_snapshot()`` keeps its shape on the shared registry.

The engine's histograms migrated from private ``repro.serving.metrics``
instances onto the process-wide :mod:`repro.obs` registry; downstream
consumers (``serve-bench``, monitoring glue) read the snapshot document,
so its key structure is a compatibility contract.
"""

from __future__ import annotations

import pytest

from repro.core.ct_index import CTIndex
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.obs.registry import MetricsRegistry
from repro.serving.engine import (
    CASE_LATENCY_METRIC,
    REQUEST_LATENCY_METRIC,
    QueryEngine,
)
from repro.serving.metrics import BUCKET_EDGES, LatencyHistogram


@pytest.fixture(scope="module")
def index():
    cfg = CorePeripheryConfig(core_size=30, community_count=5, fringe_size=100)
    graph = core_periphery_graph(cfg, seed=13)
    return CTIndex.build(graph, 4)


class TestSnapshotSchema:
    def test_top_level_keys_and_types(self, index):
        engine = QueryEngine(index, cache_capacity=64)
        engine.query(0, 50)
        engine.query_batch([(1, 2), (3, 4)])
        engine.query_from(0, [5, 6])
        snap = engine.stats_snapshot()
        assert set(snap) == {"requests", "queries", "latency", "cases", "pair_cache", "index"}
        assert snap["requests"] == {"single": 1, "batch_pairs": 1, "batch_from": 1}
        assert snap["queries"] == 5
        assert set(snap["latency"]) == {"single", "batch_pairs", "batch_from"}
        for histogram in snap["latency"].values():
            assert {"count", "mean_us", "min_us", "max_us", "p50_us", "p95_us", "p99_us", "buckets"} <= set(histogram)
        for case_snapshot in snap["cases"].values():
            assert case_snapshot["count"] >= 1
        assert set(snap["pair_cache"]) == {"hits", "misses", "hit_rate", "capacity", "invalidations"}
        assert snap["index"]["method"].startswith("CT")
        assert {"case_counts", "core_probes", "extension_cache"} <= set(snap["index"])

    def test_index_block_reports_the_resolved_kernel(self, index):
        # Regression: the ``kernel`` field joined the index block when
        # the vectorized kernels landed; serve-bench and monitoring glue
        # read it to attribute latency numbers to one code path.
        snap = QueryEngine(index).stats_snapshot()
        assert snap["index"]["kernel"] in ("numpy", "python")
        assert snap["index"]["kernel"] == index.kernel

    def test_kernel_field_follows_the_engine_kernel_argument(self, index):
        engine = QueryEngine(index, kernel="python")
        snap = engine.stats_snapshot()
        assert snap["index"]["kernel"] == "python"

    def test_kernel_field_defaults_to_python_for_plain_indexes(self, index):
        from repro.caching import CachedDistanceIndex

        wrapped = QueryEngine(CachedDistanceIndex(index, capacity=8))
        assert wrapped.stats_snapshot()["index"]["kernel"] == "python"

    def test_empty_engine_snapshot_shape(self, index):
        snap = QueryEngine(index).stats_snapshot()
        assert snap["requests"] == {}
        assert snap["queries"] == 0
        assert snap["latency"] == {}
        assert "cases" not in snap
        assert "pair_cache" not in snap
        assert snap["index"]["method"].startswith("CT")

    def test_histograms_live_in_the_registry(self, index):
        registry = MetricsRegistry()
        engine = QueryEngine(index, registry=registry)
        engine.query(0, 30)
        assert REQUEST_LATENCY_METRIC in registry
        assert CASE_LATENCY_METRIC in registry
        single = registry.histogram(
            REQUEST_LATENCY_METRIC, engine=engine.engine_id, kind="single"
        )
        assert single is engine.request_histograms["single"]
        assert single.count == 1

    def test_two_engines_share_a_registry_without_clashing(self, index):
        registry = MetricsRegistry()
        first = QueryEngine(index, registry=registry)
        second = QueryEngine(index, registry=registry)
        first.query(0, 10)
        assert first.request_histograms["single"].count == 1
        assert second.request_histograms["single"].count == 0

    def test_reset_stats_preserves_registry_identity(self, index):
        registry = MetricsRegistry()
        engine = QueryEngine(index, registry=registry)
        engine.query(0, 10)
        handle = engine.request_histograms["single"]
        engine.reset_stats()
        assert engine.request_histograms["single"] is handle
        assert handle.count == 0
        assert engine.stats_snapshot()["queries"] == 0

    def test_serving_metrics_shim_reexports_the_primitives(self):
        from repro.obs import metrics as obs_metrics

        assert LatencyHistogram is obs_metrics.LatencyHistogram
        assert BUCKET_EDGES is obs_metrics.BUCKET_EDGES
