"""A zero-query stream must degrade to zeros, never to ZeroDivisionError.

Serving dashboards and benchmark drivers see empty streams in practice
(a fresh engine polled before traffic, ``--queries 0`` smoke runs, an
empty graph handed to a workload generator).  Every averaged statistic
on those paths must report 0.0 instead of dividing by the query count.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import distinct_random_pairs, random_pairs, skewed_pairs
from repro.cli.main import main
from repro.core.ct_index import CTIndex
from repro.graphs.builder import GraphBuilder
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.io import write_edge_list
from repro.serving.bench import serve_bench_rows
from repro.serving.engine import QueryEngine
from repro.serving.metrics import LatencyHistogram


@pytest.fixture(scope="module")
def small_index():
    return CTIndex.build(gnp_graph(30, 0.15, seed=2), 4)


class TestHistogramEmpty:
    def test_empty_histogram_reports_zeros(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean_seconds == 0.0
        assert histogram.percentile(0.95) == 0.0
        assert histogram.snapshot() == {"count": 0}

    def test_merge_of_empty_histograms_stays_empty(self):
        left, right = LatencyHistogram(), LatencyHistogram()
        left.merge(right)
        assert left.snapshot() == {"count": 0}


class TestEngineZeroQueries:
    def test_stats_snapshot_before_any_query(self, small_index):
        engine = QueryEngine(small_index, cache_capacity=16)
        snapshot = engine.stats_snapshot()
        assert snapshot["queries"] == 0
        assert snapshot["latency"] == {}
        assert snapshot["pair_cache"]["hit_rate"] == 0.0
        assert snapshot["index"]["extension_cache"]["hit_rate"] == 0.0

    def test_empty_batches_are_legal(self, small_index):
        engine = QueryEngine(small_index)
        assert engine.query_batch([]) == []
        assert engine.query_from(0, []) == []
        snapshot = engine.stats_snapshot()
        assert snapshot["queries"] == 0


class TestServeBenchZeroQueries:
    def test_serve_bench_rows_empty_stream(self, small_index):
        rows = serve_bench_rows(small_index, [])
        assert [row["config"] for row in rows] == [
            "uncached",
            "ext-cache",
            "ext+pair-cache",
        ]
        for row in rows:
            assert row["queries"] == 0
            assert row["mean_us"] == 0.0
            assert row["p95_us"] == 0.0
            assert row["ext_hit_rate"] == 0.0
            assert row["pair_hit_rate"] == 0.0

    def test_cli_serve_bench_queries_zero(self, tmp_path, capsys):
        path = tmp_path / "tiny.txt"
        write_edge_list(gnp_graph(20, 0.2, seed=4), path)
        assert main(["serve-bench", str(path), "-d", "3", "--queries", "0"]) == 0
        out = capsys.readouterr().out
        assert "serve-bench" in out


class TestWorkloadGenerators:
    def test_zero_count_workloads(self):
        graph = gnp_graph(10, 0.3, seed=1)
        assert len(random_pairs(graph, 0, seed=0)) == 0
        assert len(distinct_random_pairs(graph, 0, seed=0)) == 0
        assert len(skewed_pairs(graph, 0, seed=0)) == 0

    def test_empty_graph_workloads(self):
        """Regression: randrange(0) used to raise ValueError here."""
        empty = GraphBuilder(0).build()
        assert skewed_pairs(empty, 100, seed=0).pairs == ()
        assert random_pairs(empty, 100, seed=0).pairs == ()
        assert distinct_random_pairs(empty, 100, seed=0).pairs == ()

    def test_single_node_graph_workloads(self):
        lonely = GraphBuilder(1).build()
        assert random_pairs(lonely, 5, seed=0).pairs == ((0, 0),) * 5
        assert distinct_random_pairs(lonely, 5, seed=0).pairs == ()
        assert len(skewed_pairs(lonely, 5, seed=0)) == 5
