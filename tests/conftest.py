"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs.builder import GraphBuilder
from repro.graphs.generators.primitives import (
    clique_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.generators.random_graphs import gnp_graph, random_weighted
from repro.graphs.graph import Graph
from repro.graphs.traversal import single_source_distances


@pytest.fixture
def paper_graph() -> Graph:
    """The 12-node running example of Figure 1(a).

    Reconstructed from the paper's worked examples: deg(v10) = 4 with
    N(v10) = {v7, v9, v11, v12}; the MDE trace of Examples 3-5 and the
    tree decomposition of Figure 2 pin down the edge set.  Nodes are
    0-based here (paper's v1 is node 0).
    """
    edges_1based = [
        (1, 2),
        (2, 3),
        (3, 4),
        (3, 12),
        (4, 11),
        (5, 8),
        (5, 12),
        (6, 7),
        (6, 8),
        (7, 10),
        (9, 10),
        (9, 11),
        (9, 12),
        (10, 11),
        (10, 12),
        (11, 12),
    ]
    builder = GraphBuilder(12)
    for u, v in edges_1based:
        builder.add_edge(u - 1, v - 1)
    return builder.build()


@pytest.fixture
def small_graphs() -> dict[str, Graph]:
    """A zoo of named small graphs used across suites."""
    return {
        "path10": path_graph(10),
        "cycle8": cycle_graph(8),
        "clique6": clique_graph(6),
        "star7": star_graph(7),
        "grid4x5": grid_graph(4, 5),
        "gnp30": gnp_graph(30, 0.15, seed=3),
        "gnp_disconnected": gnp_graph(40, 0.03, seed=4),
        "weighted20": random_weighted(gnp_graph(20, 0.25, seed=5), 1, 9, seed=6),
    }


def exact_distances(graph: Graph) -> list[list]:
    """Ground-truth all-pairs matrix via BFS/Dijkstra."""
    return [single_source_distances(graph, v) for v in graph.nodes()]


def random_connected_graph(n: int, seed: int) -> Graph:
    """A connected-ish random graph (largest component may be used)."""
    from repro.graphs.generators.random_graphs import connected_gnp_graph

    rng = random.Random(seed)
    p = rng.uniform(0.05, 0.3)
    return connected_gnp_graph(n, p, seed)
