"""The stable ``repro.api`` facade: parity, round-trips, shims, surface."""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

import repro
from repro.core.ct_index import CTIndex, build_ct_index
from repro.core.construction import build_core_index, construct
from repro.core.serialization import index_fingerprint
from repro.exceptions import ConfigurationError
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.graphs.traversal import all_pairs_distances
from repro.treedec.core_tree import core_tree_decomposition


@pytest.fixture(scope="module")
def setup():
    cfg = CorePeripheryConfig(
        core_size=30,
        community_count=6,
        community_size_min=4,
        community_size_max=20,
        fringe_size=120,
    )
    graph = core_periphery_graph(cfg, seed=7)
    return graph, all_pairs_distances(graph)


class TestFacadeParity:
    def test_build_matches_ctindex_build_on_both_backends(self, setup):
        graph, truth = setup
        reference = index_fingerprint(CTIndex.build(graph, 4))
        for backend in ("dict", "flat"):
            index = repro.build(graph, bandwidth=4, backend=backend)
            assert index.storage_backend == backend
            assert index_fingerprint(index) == reference
            assert repro.query(index, 0, graph.n - 1) == truth[0][graph.n - 1]

    def test_workers_do_not_change_the_fingerprint(self, setup):
        graph, _ = setup
        serial = repro.build(graph, bandwidth=4)
        parallel = repro.build(graph, bandwidth=4, workers=2)
        assert index_fingerprint(parallel) == index_fingerprint(serial)

    def test_query_shapes_agree_with_truth(self, setup):
        graph, truth = setup
        index = repro.build(graph, bandwidth=4, backend="flat")
        pairs = [(0, 5), (17, 99), (42, 42)]
        assert repro.query_batch(index, pairs) == [truth[s][t] for s, t in pairs]
        assert repro.query_from(index, 3, range(40)) == truth[3][:40]


class TestRoundTrip:
    @pytest.mark.parametrize("backend", ["dict", "flat"])
    def test_save_load_both_formats_byte_identical(self, setup, tmp_path, backend):
        graph, _ = setup
        index = repro.build(graph, bandwidth=4, backend=backend)
        reference = index_fingerprint(index)
        json_path = tmp_path / "index.json"
        bin_path = tmp_path / "index.bin"
        repro.save(index, json_path)
        repro.save(index, bin_path, format="binary")
        for path in (json_path, bin_path):
            loaded = repro.load(path)
            assert index_fingerprint(loaded) == reference
            assert repro.query(loaded, 0, 10) == repro.query(index, 0, 10)

    def test_load_honors_backend_override(self, setup, tmp_path):
        graph, _ = setup
        index = repro.build(graph, bandwidth=4)
        path = tmp_path / "index.bin"
        repro.save(index, path, format="binary")
        assert repro.load(path, backend="dict").storage_backend == "dict"
        assert repro.load(path, backend="flat").storage_backend == "flat"

    def test_unknown_format_raises_configuration_error(self, setup, tmp_path):
        graph, _ = setup
        index = repro.build(graph, bandwidth=4)
        with pytest.raises(ConfigurationError):
            repro.save(index, tmp_path / "x", format="pickle")
        # Also catchable as ValueError (the pre-facade discipline).
        with pytest.raises(ValueError):
            repro.save(index, tmp_path / "x", format="pickle")


class TestDeprecatedKwargs:
    def test_core_order_still_works_with_a_warning(self, setup):
        graph, _ = setup
        reference = index_fingerprint(CTIndex.build(graph, 4, order="elimination"))
        with pytest.warns(DeprecationWarning, match="core_order"):
            index = CTIndex.build(graph, 4, core_order="elimination")
        assert index_fingerprint(index) == reference

    def test_build_ct_index_alias_shim(self, setup):
        graph, _ = setup
        with pytest.warns(DeprecationWarning, match="core_order"):
            index = build_ct_index(graph, 4, core_order="degree")
        assert index_fingerprint(index) == index_fingerprint(
            build_ct_index(graph, 4, order="degree")
        )

    def test_construct_and_build_core_index_shims(self, setup):
        graph, _ = setup
        with pytest.warns(DeprecationWarning, match="core_order"):
            construct(graph, 4, core_order="degree")
        decomposition = core_tree_decomposition(graph, 4)
        with pytest.warns(DeprecationWarning, match="core_order"):
            core_new = build_core_index(decomposition, core_order="degree")
        assert core_new is not None

    def test_conflicting_spellings_raise(self, setup):
        graph, _ = setup
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                CTIndex.build(graph, 4, order="degree", core_order="elimination")

    def test_new_spelling_does_not_warn(self, setup):
        graph, _ = setup
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            CTIndex.build(graph, 4, order="degree")


class TestSurface:
    def test_manifest_matches_the_exported_surface(self):
        manifest_path = (
            Path(__file__).resolve().parents[2] / "docs" / "api_surface.txt"
        )
        names = [
            line.strip()
            for line in manifest_path.read_text().splitlines()
            if line.strip() and not line.startswith("#")
        ]
        assert names == sorted(repro.__all__)

    def test_facade_verbs_are_exported(self):
        for verb in ("build", "save", "load", "query", "query_batch", "query_from"):
            assert verb in repro.__all__
            assert callable(getattr(repro, verb))

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_obs_package_declares_all(self):
        import importlib

        for module_name in (
            "repro.obs",
            "repro.obs.export",
            "repro.obs.metrics",
            "repro.obs.profiling",
            "repro.obs.registry",
            "repro.obs.tracing",
            "repro.api",
        ):
            module = importlib.import_module(module_name)
            assert hasattr(module, "__all__"), module_name
            for name in module.__all__:
                assert hasattr(module, name), (module_name, name)
