"""BuildConfig: validation, round-trips, and conflict semantics."""

from __future__ import annotations

import json

import pytest

import repro
from repro.api import BuildConfig
from repro.core.ct_index import CTIndex, build_ct_index
from repro.core.serialization import index_fingerprint
from repro.exceptions import ConfigurationError
from repro.graphs.generators.random_graphs import connected_gnp_graph


@pytest.fixture(scope="module")
def graph():
    return connected_gnp_graph(120, 0.05, seed=11)


class TestValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            {"bandwidth": -1},
            {"bandwidth": "20"},
            {"bandwidth": True},
            {"workers": -2},
            {"workers": 1.5},
            {"backend": "csr"},
            {"order": "random"},
            {"core_backend": "bfs"},
            {"use_equivalence_reduction": 1},
            {"extension_cache_size": -1},
            {"kernel": "gpu"},
            {"hopdb_order": "random"},
            {"hopdb_order": "psl-rank"},  # requires core_backend="hopdb"
            {"hopdb_order": "psl-rank", "core_backend": "psl"},
        ],
    )
    def test_bad_values_raise_eagerly(self, bad):
        with pytest.raises(ConfigurationError):
            BuildConfig(**bad)

    def test_defaults_are_valid_and_match_the_loose_kwargs(self):
        config = BuildConfig()
        assert config.bandwidth == 20
        assert config.backend == "dict"
        assert config.core_backend == "pll"
        assert config.kernel == "auto"
        assert config.hopdb_order == "degree"

    def test_psl_rank_valid_with_hopdb_backend(self):
        config = BuildConfig(core_backend="hopdb", hopdb_order="psl-rank")
        assert config.hopdb_order == "psl-rank"

    def test_replace_revalidates(self):
        config = BuildConfig()
        assert config.replace(bandwidth=7).bandwidth == 7
        with pytest.raises(ConfigurationError):
            config.replace(backend="nope")
        with pytest.raises(ConfigurationError):
            config.replace(not_a_field=1)

    def test_frozen(self):
        with pytest.raises(Exception):
            BuildConfig().bandwidth = 3


class TestRoundTrip:
    def test_to_dict_is_canonical_and_json_ready(self):
        config = BuildConfig(bandwidth=4, backend="flat", core_backend="psl")
        doc = config.to_dict()
        assert list(doc) == [
            "bandwidth",
            "workers",
            "backend",
            "order",
            "core_backend",
            "use_equivalence_reduction",
            "extension_cache_size",
            "kernel",
            "hopdb_order",
        ]
        assert BuildConfig.from_dict(json.loads(json.dumps(doc))) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown BuildConfig keys"):
            BuildConfig.from_dict({"bandwidth": 4, "bandwith": 5})

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ConfigurationError):
            BuildConfig.from_dict([("bandwidth", 4)])

    def test_partial_dict_fills_defaults(self):
        config = BuildConfig.from_dict({"bandwidth": 3})
        assert config == BuildConfig(bandwidth=3)


class TestBuildMerge:
    def test_config_spelling_equals_kwargs_spelling(self, graph):
        config = BuildConfig(bandwidth=4, backend="flat", core_backend="psl")
        by_kwargs = repro.build(graph, 4, backend="flat", core_backend="psl")
        by_config = repro.build(graph, config=config)
        by_method = CTIndex.build(graph, config=config)
        by_alias = build_ct_index(graph, config=config)
        reference = index_fingerprint(by_kwargs)
        assert index_fingerprint(by_config) == reference
        assert index_fingerprint(by_method) == reference
        assert index_fingerprint(by_alias) == reference

    def test_agreeing_redundant_spellings_are_fine(self, graph):
        config = BuildConfig(bandwidth=4, backend="flat")
        index = repro.build(graph, 4, config=config, backend="flat")
        assert index.storage_backend == "flat"

    def test_conflicting_spellings_raise(self, graph):
        config = BuildConfig(bandwidth=4, backend="flat")
        with pytest.raises(ConfigurationError, match="conflict"):
            repro.build(graph, 5, config=config)
        with pytest.raises(ConfigurationError, match="conflict"):
            repro.build(graph, config=config, backend="dict")
        with pytest.raises(ConfigurationError, match="conflict"):
            CTIndex.build(graph, 5, config=config)
        with pytest.raises(ConfigurationError, match="conflict"):
            CTIndex.build(graph, config=config, core_backend="hopdb")

    def test_bandwidth_required_without_config(self, graph):
        with pytest.raises(ConfigurationError, match="bandwidth"):
            repro.build(graph)
        with pytest.raises(ConfigurationError, match="bandwidth"):
            CTIndex.build(graph)

    def test_config_must_be_a_build_config(self, graph):
        with pytest.raises(ConfigurationError):
            repro.build(graph, config={"bandwidth": 4})

    def test_exported_from_the_facade(self):
        assert repro.BuildConfig is BuildConfig
        assert "BuildConfig" in repro.__all__
