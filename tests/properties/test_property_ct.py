"""Property-based tests of the CT-Index core invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ct_index import CTIndex
from repro.graphs.traversal import single_source_distances
from tests.properties.strategies import bandwidths, graphs

SETTINGS = settings(max_examples=60, deadline=None)


@SETTINGS
@given(graph=graphs(), bandwidth=bandwidths, use_reduction=st.booleans())
def test_ct_distance_matches_bfs(graph, bandwidth, use_reduction):
    """The fundamental contract: CT answers every pair exactly."""
    index = CTIndex.build(graph, bandwidth, use_equivalence_reduction=use_reduction)
    for s in graph.nodes():
        truth = single_source_distances(graph, s)
        for t in graph.nodes():
            assert index.distance(s, t) == truth[t], (s, t)


@SETTINGS
@given(graph=graphs(weighted=True), bandwidth=bandwidths)
def test_ct_distance_matches_dijkstra_weighted(graph, bandwidth):
    index = CTIndex.build(graph, bandwidth)
    for s in graph.nodes():
        truth = single_source_distances(graph, s)
        for t in graph.nodes():
            assert index.distance(s, t) == truth[t], (s, t)


@SETTINGS
@given(graph=graphs(max_nodes=18), bandwidth=st.integers(1, 8))
def test_extension_equals_naive_4hop(graph, bandwidth):
    """Lemma 9: extended-label queries equal the Equation 1 enumeration."""
    index = CTIndex.build(graph, bandwidth, use_equivalence_reduction=False)
    for s in graph.nodes():
        for t in graph.nodes():
            assert index.distance(s, t) == index.distance_naive_4hop(s, t), (s, t)


@SETTINGS
@given(graph=graphs(min_nodes=2), bandwidth=bandwidths)
def test_symmetry(graph, bandwidth):
    """dist(s, t) == dist(t, s) on undirected graphs."""
    index = CTIndex.build(graph, bandwidth)
    nodes = list(graph.nodes())
    for s in nodes[:6]:
        for t in nodes[-6:]:
            assert index.distance(s, t) == index.distance(t, s)


@SETTINGS
@given(graph=graphs(min_nodes=3), bandwidth=bandwidths)
def test_triangle_inequality(graph, bandwidth):
    index = CTIndex.build(graph, bandwidth)
    nodes = list(graph.nodes())[:8]
    for a in nodes:
        for b in nodes:
            for c in nodes:
                ab = index.distance(a, b)
                bc = index.distance(b, c)
                ac = index.distance(a, c)
                if ab != float("inf") and bc != float("inf"):
                    assert ac <= ab + bc


@SETTINGS
@given(graph=graphs(), bandwidth=bandwidths)
def test_size_accounting_consistent(graph, bandwidth):
    index = CTIndex.build(graph, bandwidth)
    assert index.size_entries() == (
        index.tree_index.size_entries() + index.core_index.size_entries()
    )
    assert index.size_bytes() == 8 * index.size_entries()


@SETTINGS
@given(graph=graphs(min_nodes=1, max_nodes=16), bandwidth=bandwidths)
def test_serialization_roundtrip_property(graph, bandwidth, tmp_path_factory):
    from repro.core.serialization import load_ct_index, save_ct_index

    index = CTIndex.build(graph, bandwidth)
    path = tmp_path_factory.mktemp("idx") / "index.json"
    save_ct_index(index, path)
    loaded = load_ct_index(path)
    for s in graph.nodes():
        truth = single_source_distances(graph, s)
        for t in graph.nodes():
            assert loaded.distance(s, t) == truth[t]
