"""Metamorphic properties of dynamic updates.

Mirrors :class:`tests.differential.test_metamorphic.
TestEdgeDeletionMonotonicity` on the insertion side, and adds the two
identities that pin the overlay's semantics without any ground truth:

* *edge-insertion monotonicity* — adding an edge can only shorten (or
  connect) shortest paths, never lengthen them;
* *insert-then-delete round trip* — undoing a mutation restores every
  distance (and drains the overlay patch);
* *overlay-vs-fresh-rebuild equality* — an overlay over a stale base
  answers exactly like an index rebuilt from scratch on the mutated
  graph, for every hypothesis-generated graph and mutation.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ct_index import CTIndex
from repro.dynamic import DeltaOverlayIndex
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import INF, Graph
from tests.differential.cases import FAST_CASES, DifferentialCase
from tests.properties.strategies import connected_graphs, graphs


def _missing_pairs(graph: Graph, count: int, seed: int) -> list[tuple[int, int]]:
    """Up to ``count`` vertex pairs with no edge between them."""
    rng = random.Random(seed)
    found: list[tuple[int, int]] = []
    attempts = 0
    while len(found) < count and attempts < 50 * count:
        attempts += 1
        u, v = rng.randrange(graph.n), rng.randrange(graph.n)
        if u != v and not graph.has_edge(u, v):
            found.append((u, v))
    return found


def _sample_nodes(graph: Graph, count: int, seed: int) -> list[int]:
    rng = random.Random(seed)
    return [rng.randrange(graph.n) for _ in range(count)]


class TestEdgeInsertionMonotonicity:
    @pytest.mark.parametrize("case", FAST_CASES[:3], ids=lambda c: c.name)
    def test_distances_never_increase(self, case: DifferentialCase):
        graph = case.build_graph()
        bandwidth = case.bandwidths[-1]
        before = CTIndex.build(graph, bandwidth)
        overlay = DeltaOverlayIndex(CTIndex.build(graph, bandwidth))
        pairs = _missing_pairs(graph, 1, seed=case.params.get("seed", 0))
        if not pairs:
            pytest.skip("graph is complete")
        u, v = pairs[0]
        assert overlay.add_edge(u, v) is True
        nodes = _sample_nodes(graph, 30, seed=17)
        for s in nodes:
            for t in nodes:
                d_before = before.distance(s, t)
                d_after = overlay.distance(s, t)
                assert d_after <= d_before, (
                    f"inserting edge ({u}, {v}) lengthened dist({s}, {t}) "
                    f"from {d_before} to {d_after}; {case.reproducer()}"
                )

    def test_inserting_a_bridge_connects(self):
        # Two disjoint paths: the inserted edge is the only crossing, so
        # cross distances drop from INF to the exact bridged length.
        builder = GraphBuilder(6)
        for i in (0, 1, 3, 4):
            builder.add_edge(i, i + 1)
        overlay = DeltaOverlayIndex(CTIndex.build(builder.build(), 2))
        assert overlay.distance(0, 5) == INF
        overlay.add_edge(2, 3)
        assert overlay.distance(0, 5) == 5
        assert overlay.distance(2, 3) == 1


class TestInsertDeleteRoundTrip:
    @pytest.mark.parametrize("case", FAST_CASES[:3], ids=lambda c: c.name)
    def test_round_trip_restores_every_distance(self, case: DifferentialCase):
        graph = case.build_graph()
        bandwidth = case.bandwidths[-1]
        overlay = DeltaOverlayIndex(CTIndex.build(graph, bandwidth))
        nodes = _sample_nodes(graph, 25, seed=19)
        baseline = {
            (s, t): overlay.distance(s, t) for s in nodes for t in nodes
        }
        pairs = _missing_pairs(graph, 3, seed=case.params.get("seed", 0) + 1)
        for u, v in pairs:
            overlay.add_edge(u, v)
        for u, v in reversed(pairs):
            overlay.remove_edge(u, v)
        assert overlay.patch_size == 0, case.reproducer()
        for (s, t), expected in baseline.items():
            assert overlay.distance(s, t) == expected, (
                f"round trip changed dist({s}, {t}); {case.reproducer()}"
            )

    def test_delete_then_reinsert_restores_too(self):
        case = FAST_CASES[3]
        graph = case.build_graph()
        overlay = DeltaOverlayIndex(CTIndex.build(graph, case.bandwidths[-1]))
        rng = random.Random(case.params["seed"])
        edges = sorted((u, v) for u, v, _ in graph.edges())
        victims = [edges[rng.randrange(len(edges))] for _ in range(3)]
        baseline = [overlay.distance(s, t) for s in range(graph.n) for t in range(graph.n)]
        applied = []
        for u, v in victims:
            if (u, v) not in applied:
                overlay.remove_edge(u, v)
                applied.append((u, v))
        for u, v in applied:
            overlay.add_edge(u, v)
        assert overlay.patch_size == 0
        got = [overlay.distance(s, t) for s in range(graph.n) for t in range(graph.n)]
        assert got == baseline


class TestOverlayMatchesFreshRebuild:
    @given(graph=graphs(max_nodes=14, weighted=True), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_overlay_equals_rebuild_after_mutations(self, graph: Graph, data):
        bandwidth = data.draw(st.integers(0, 4), label="bandwidth")
        overlay = DeltaOverlayIndex(CTIndex.build(graph, bandwidth))
        n = graph.n

        count = data.draw(st.integers(1, 6), label="mutations")
        for _ in range(count):
            live = sorted((u, v) for u, v, _ in overlay.materialize_current().edges())
            if live and data.draw(st.booleans(), label="remove?"):
                overlay.remove_edge(*data.draw(st.sampled_from(live)))
            elif n >= 2:
                u = data.draw(st.integers(0, n - 1), label="u")
                v = data.draw(st.integers(0, n - 1), label="v")
                if u != v:
                    overlay.add_edge(u, v, data.draw(st.integers(1, 5), label="w"))

        fresh = CTIndex.build(overlay.materialize_current(), bandwidth)
        for s in range(n):
            assert overlay.distances_from(s, range(n)) == fresh.distances_from(
                s, range(n)
            )

    @given(graph=connected_graphs(max_nodes=12), data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_equality_survives_a_swap(self, graph: Graph, data):
        bandwidth = data.draw(st.integers(0, 3), label="bandwidth")
        overlay = DeltaOverlayIndex(CTIndex.build(graph, bandwidth))
        n = graph.n
        u = data.draw(st.integers(0, n - 1), label="u")
        v = data.draw(st.integers(0, n - 1), label="v")
        if u != v and not graph.has_edge(u, v):
            overlay.add_edge(u, v)
        snap = overlay.snapshot()
        overlay.swap_base(CTIndex.build(snap.graph, bandwidth), snap)
        fresh = CTIndex.build(overlay.materialize_current(), bandwidth)
        for s in range(n):
            assert overlay.distances_from(s, range(n)) == fresh.distances_from(
                s, range(n)
            )
