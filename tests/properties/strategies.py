"""Hypothesis strategies for random graphs."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph


@st.composite
def graphs(
    draw,
    min_nodes: int = 1,
    max_nodes: int = 24,
    weighted: bool = False,
    max_weight: int = 9,
) -> Graph:
    """A random simple graph with 0..max possible edges.

    Edge presence is drawn per pair, which lets hypothesis shrink toward
    small sparse counterexamples.
    """
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    builder = GraphBuilder(n)
    if n >= 2:
        pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        density = draw(st.floats(min_value=0.0, max_value=0.6))
        chooser = st.floats(min_value=0.0, max_value=1.0)
        for u, v in pairs:
            if draw(chooser) < density:
                weight = draw(st.integers(1, max_weight)) if weighted else 1
                builder.add_edge(u, v, weight)
    return builder.build()


@st.composite
def connected_graphs(draw, min_nodes: int = 2, max_nodes: int = 20) -> Graph:
    """A connected random graph (random spanning tree + extra edges)."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    builder = GraphBuilder(n)
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        builder.add_edge(v, parent)
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            builder.add_edge(u, v)
    return builder.build()


bandwidths = st.integers(min_value=0, max_value=12)
