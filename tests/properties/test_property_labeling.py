"""Property-based tests for the 2-hop labelings and baselines."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.traversal import single_source_distances
from repro.labeling.cd import build_cd
from repro.labeling.h2h import build_h2h
from repro.labeling.pll import build_pll
from repro.labeling.psl import build_psl
from repro.labeling.psl_variants import build_psl_plus, build_psl_star
from tests.properties.strategies import graphs

SETTINGS = settings(max_examples=50, deadline=None)


def assert_matches_search(index, graph):
    for s in graph.nodes():
        truth = single_source_distances(graph, s)
        for t in graph.nodes():
            assert index.distance(s, t) == truth[t], (s, t)


@SETTINGS
@given(graph=graphs())
def test_pll_exact(graph):
    assert_matches_search(build_pll(graph), graph)


@SETTINGS
@given(graph=graphs(weighted=True))
def test_pll_weighted_exact(graph):
    assert_matches_search(build_pll(graph), graph)


@SETTINGS
@given(graph=graphs())
def test_pll_two_hop_cover(graph):
    """Definition 1, checked directly on the label sets."""
    from repro.graphs.traversal import all_pairs_distances

    pll = build_pll(graph)
    pll.labels.verify_two_hop_cover(graph, all_pairs_distances(graph))


@SETTINGS
@given(graph=graphs())
def test_psl_exact(graph):
    assert_matches_search(build_psl(graph), graph)


@SETTINGS
@given(graph=graphs())
def test_psl_equals_pll_labels(graph):
    pll = build_pll(graph)
    psl = build_psl(graph, order=pll.order)
    for v in graph.nodes():
        assert sorted(pll.labels.label_entries(v)) == sorted(psl.labels.label_entries(v))


@SETTINGS
@given(graph=graphs())
def test_psl_plus_exact(graph):
    assert_matches_search(build_psl_plus(graph), graph)


@SETTINGS
@given(graph=graphs())
def test_psl_star_exact(graph):
    assert_matches_search(build_psl_star(graph), graph)


@SETTINGS
@given(graph=graphs())
def test_psl_star_never_larger_than_psl_plus(graph):
    assert build_psl_star(graph).size_entries() <= build_psl_plus(graph).size_entries()


@SETTINGS
@given(graph=graphs(max_nodes=18))
def test_h2h_exact(graph):
    assert_matches_search(build_h2h(graph), graph)


@SETTINGS
@given(graph=graphs(max_nodes=16, weighted=True))
def test_h2h_weighted_exact(graph):
    assert_matches_search(build_h2h(graph), graph)


@SETTINGS
@given(graph=graphs(max_nodes=16), bandwidth=st.integers(0, 8))
def test_cd_exact(graph, bandwidth):
    assert_matches_search(build_cd(graph, bandwidth), graph)
