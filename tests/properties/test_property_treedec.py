"""Property-based tests for decompositions and graph substrate invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.reductions import eliminate_equivalent_nodes, verify_reduction_distances
from repro.graphs.statistics import degeneracy
from repro.treedec.core_tree import core_tree_decomposition
from repro.treedec.decomposition import mde_tree_decomposition
from repro.treedec.elimination import minimum_degree_elimination
from tests.properties.strategies import bandwidths, connected_graphs, graphs

SETTINGS = settings(max_examples=60, deadline=None)


@SETTINGS
@given(graph=graphs())
def test_mde_decomposition_always_valid(graph):
    """Definition 2 + Lemma 2, for arbitrary graphs."""
    mde_tree_decomposition(graph).validate()


@SETTINGS
@given(graph=graphs(weighted=True))
def test_mde_decomposition_valid_weighted(graph):
    mde_tree_decomposition(graph).validate()


@SETTINGS
@given(graph=graphs())
def test_mde_width_at_least_degeneracy(graph):
    """MDE width upper-bounds treewidth, which >= degeneracy."""
    result = minimum_degree_elimination(graph)
    assert result.width >= degeneracy(graph) or graph.m == 0


@SETTINGS
@given(graph=graphs(), bandwidth=bandwidths)
def test_core_tree_always_valid(graph, bandwidth):
    core_tree_decomposition(graph, bandwidth).validate()


@SETTINGS
@given(graph=graphs(), bandwidth=bandwidths)
def test_core_tree_partition(graph, bandwidth):
    """Forest nodes + core nodes partition V."""
    ctd = core_tree_decomposition(graph, bandwidth)
    forest = {ctd.node_at(pos) for pos in range(ctd.boundary)}
    core = set(ctd.core_nodes)
    assert forest | core == set(graph.nodes())
    assert not forest & core


@SETTINGS
@given(graph=connected_graphs(), bandwidth=bandwidths)
def test_core_distances_preserved(graph, bandwidth):
    """Lemma 7 as a property: G_{λ+1} preserves core-pair distances."""
    from repro.graphs.traversal import single_source_distances

    result = minimum_degree_elimination(graph, bandwidth=bandwidth)
    core, originals = result.core_graph()
    for i, orig in enumerate(originals):
        truth = single_source_distances(graph, orig)
        reduced = single_source_distances(core, i)
        for j, other in enumerate(originals):
            assert reduced[j] == truth[other]


@SETTINGS
@given(graph=graphs())
def test_equivalence_reduction_preserves_distances(graph):
    reduction = eliminate_equivalent_nodes(graph)
    verify_reduction_distances(reduction, samples=40)


@SETTINGS
@given(graph=graphs())
def test_elimination_covers_or_stops_consistently(graph):
    """With bandwidth=None every node is eliminated exactly once."""
    result = minimum_degree_elimination(graph)
    assert sorted(result.eliminated_order()) == list(graph.nodes())
    assert result.core_nodes == []


@SETTINGS
@given(graph=graphs(), bandwidth=bandwidths)
def test_interfaces_bounded(graph, bandwidth):
    ctd = core_tree_decomposition(graph, bandwidth)
    assert all(len(v) <= bandwidth for v in ctd.interface.values())


@SETTINGS
@given(
    graph=graphs(min_nodes=2),
    data=st.data(),
)
def test_induced_subgraph_distances_never_shrink(graph, data):
    """Removing nodes can only lengthen (or disconnect) shortest paths."""
    from repro.graphs.traversal import single_source_distances

    keep = data.draw(
        st.lists(st.integers(0, graph.n - 1), min_size=1, max_size=graph.n, unique=True)
    )
    sub, originals = graph.induced_subgraph(keep)
    for i, orig in enumerate(originals[:5]):
        truth = single_source_distances(graph, orig)
        sub_dist = single_source_distances(sub, i)
        for j, other in enumerate(originals):
            assert sub_dist[j] >= truth[other]
