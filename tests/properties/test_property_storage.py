"""Property-based tests for the CSR storage layer (``repro.storage``).

Three invariants, each pitted against randomly generated inputs:

* **Lossless round-trip** — packing any hub labeling (or tree-label
  list) into the flat backend and unpacking it again reproduces the
  exact entries; fingerprints never move under conversion.
* **Sorted runs** — every packed node's hub run is strictly ascending
  in rank (the precondition of the merge kernel), and violating inputs
  are rejected with :class:`~repro.exceptions.StorageError`.
* **Merge = dict intersection** — the two-pointer
  :func:`~repro.storage.flat_labels.merge_intersection` agrees with the
  naive dict-based intersection on arbitrary rank-sorted runs.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StorageError
from repro.graphs.graph import INF
from repro.labeling.hub_labels import HubLabeling
from repro.labeling.pll import build_pll
from repro.storage.flat_labels import FlatLabelStore, merge_intersection
from repro.storage.flat_tree import FlatTreeLabelStore
from tests.properties.strategies import graphs

SETTINGS = settings(max_examples=50, deadline=None)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def hub_labelings(draw, max_nodes: int = 12, weighted: bool = False):
    """A random valid HubLabeling: random order, sorted random runs."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    order = draw(st.permutations(list(range(n))))
    labels = HubLabeling(list(order))
    dist = (
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False, width=32)
        if weighted
        else st.integers(min_value=0, max_value=50)
    )
    for v in range(n):
        hubs = sorted(
            draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n))
        )
        for hub_rank in hubs:
            labels.append_entry(v, hub_rank, draw(dist))
    return labels


@st.composite
def sorted_runs(draw, max_len: int = 12, universe: int = 30):
    """One rank-sorted label run: (ranks ascending, parallel dists)."""
    ranks = sorted(
        draw(st.sets(st.integers(0, universe - 1), max_size=max_len))
    )
    dists = [draw(st.integers(0, 40)) for _ in ranks]
    return ranks, dists


@st.composite
def tree_label_lists(draw, max_positions: int = 8):
    """A random ``list[dict]`` of tree labels, INF values included."""
    positions = draw(st.integers(min_value=0, max_value=max_positions))
    value = st.one_of(st.integers(0, 30), st.just(INF))
    out = []
    for _ in range(positions):
        targets = draw(st.sets(st.integers(0, 40), max_size=6))
        out.append({t: draw(value) for t in targets})
    return out


# ----------------------------------------------------------------------
# Lossless round-trip
# ----------------------------------------------------------------------


@SETTINGS
@given(labels=hub_labelings())
def test_hub_pack_unpack_round_trip(labels):
    flat = FlatLabelStore.from_store(labels)
    back = flat.to_hub_labeling()
    assert back.n == labels.n
    for v in range(labels.n):
        assert list(back.iter_rank_entries(v)) == list(labels.iter_rank_entries(v))
        assert back.node_of_rank(labels.rank_of(v)) == v


@SETTINGS
@given(labels=hub_labelings(weighted=True))
def test_hub_pack_unpack_round_trip_float(labels):
    flat = FlatLabelStore.from_store(labels)
    back = flat.to_hub_labeling()
    for v in range(labels.n):
        assert list(back.iter_rank_entries(v)) == list(labels.iter_rank_entries(v))


@SETTINGS
@given(labels=hub_labelings())
def test_flat_read_protocol_matches_dict(labels):
    """Every read-protocol method answers exactly like the dict store."""
    flat = FlatLabelStore.from_store(labels)
    assert flat.n == labels.n
    assert flat.total_entries() == labels.total_entries()
    assert flat.max_label_size() == labels.max_label_size()
    for v in range(labels.n):
        assert flat.rank_of(v) == labels.rank_of(v)
        assert flat.label_size(v) == labels.label_size(v)
        assert flat.label_entries(v) == labels.label_entries(v)
        assert flat.label_rank_map(v) == labels.label_rank_map(v)
    for s in range(labels.n):
        for t in range(labels.n):
            assert flat.query(s, t) == labels.query(s, t), (s, t)


@SETTINGS
@given(tree_labels=tree_label_lists())
def test_tree_pack_unpack_round_trip(tree_labels):
    flat = FlatTreeLabelStore.from_labels(tree_labels)
    assert len(flat) == len(tree_labels)
    assert flat.to_dicts() == tree_labels
    for pos, label in enumerate(tree_labels):
        assert flat.run_size(pos) == len(label)
        assert dict(flat[pos]) == label
        for target, expected in label.items():
            got = flat.local_get(pos, target, None)
            assert got == expected or (
                math.isinf(got) and math.isinf(expected)
            ), (pos, target)
        assert flat.local_get(pos, 10_000, "missing") == "missing"


@SETTINGS
@given(graph=graphs(max_nodes=16))
def test_pll_fingerprint_stable_under_conversion(graph):
    """A built index's labels survive flat→dict→flat unchanged."""
    index = build_pll(graph)
    before = [list(index.labels.iter_rank_entries(v)) for v in graph.nodes()]
    index.compact()
    index.to_dict_backend()
    after = [list(index.labels.iter_rank_entries(v)) for v in graph.nodes()]
    assert before == after


# ----------------------------------------------------------------------
# Sorted runs
# ----------------------------------------------------------------------


@SETTINGS
@given(labels=hub_labelings())
def test_packed_runs_are_strictly_ascending(labels):
    flat = FlatLabelStore.from_store(labels)
    _, offsets, hub_ranks, _ = flat.csr_arrays()
    assert offsets[0] == 0 and offsets[-1] == len(hub_ranks)
    for v in range(flat.n):
        run = list(hub_ranks[offsets[v] : offsets[v + 1]])
        assert run == sorted(set(run)), v
        assert all(hub < flat.n for hub in run)


def test_unsorted_run_rejected():
    with pytest.raises(StorageError, match="ascending"):
        FlatLabelStore.from_arrays([0, 1], [0, 2, 2], [1, 0], [0, 0])


def test_non_permutation_order_rejected():
    with pytest.raises(StorageError, match="permutation"):
        FlatLabelStore.from_arrays([0, 0], [0, 0, 0], [], [])


def test_ragged_offsets_rejected():
    with pytest.raises(StorageError):
        FlatLabelStore.from_arrays([0, 1], [0, 5], [0], [1])


def test_tree_unsorted_targets_rejected():
    from array import array

    with pytest.raises(StorageError, match="ascending"):
        FlatTreeLabelStore(
            array("q", [0, 2]), array("q", [5, 3]), array("q", [1, 1])
        )


@SETTINGS
@given(labels=hub_labelings())
def test_flat_store_is_immutable(labels):
    flat = FlatLabelStore.from_store(labels)
    with pytest.raises(StorageError, match="immutable"):
        flat.append_entry(0, 0, 1)
    with pytest.raises(StorageError, match="immutable"):
        flat.drop_label(0)


# ----------------------------------------------------------------------
# Merge intersection = dict intersection
# ----------------------------------------------------------------------


def _dict_intersection(ranks_a, dists_a, ranks_b, dists_b):
    map_a = dict(zip(ranks_a, dists_a))
    best = INF
    for rank, db in zip(ranks_b, dists_b):
        da = map_a.get(rank)
        if da is not None and da + db < best:
            best = da + db
    return best


@SETTINGS
@given(run_a=sorted_runs(), run_b=sorted_runs())
def test_merge_intersection_matches_dict(run_a, run_b):
    ranks_a, dists_a = run_a
    ranks_b, dists_b = run_b
    merged = merge_intersection(ranks_a, dists_a, ranks_b, dists_b)
    assert merged == _dict_intersection(ranks_a, dists_a, ranks_b, dists_b)


@SETTINGS
@given(run_a=sorted_runs(), run_b=sorted_runs())
def test_merge_intersection_symmetric(run_a, run_b):
    ranks_a, dists_a = run_a
    ranks_b, dists_b = run_b
    assert merge_intersection(
        ranks_a, dists_a, ranks_b, dists_b
    ) == merge_intersection(ranks_b, dists_b, ranks_a, dists_a)


@SETTINGS
@given(run=sorted_runs())
def test_merge_intersection_empty_run_is_unreachable(run):
    """Either side empty (or both) intersects to INF, never raises."""
    ranks, dists = run
    assert merge_intersection([], [], ranks, dists) == INF
    assert merge_intersection(ranks, dists, [], []) == INF
    assert merge_intersection([], [], [], []) == INF


@SETTINGS
@given(
    run=sorted_runs(max_len=8, universe=20),
    hub=st.integers(0, 29),
    da=st.integers(0, 40),
    db=st.integers(0, 40),
)
def test_merge_intersection_single_boundary_hub(run, hub, da, db):
    """One shared hub — wherever it falls in either run — is found.

    Exercises the boundary positions the two-pointer merge is most
    likely to get wrong: the shared hub first, last, or alone in a run.
    """
    ranks, dists = run
    if hub in ranks:
        slot = ranks.index(hub)
        ranks, dists = ranks[:slot] + ranks[slot + 1 :], dists[:slot] + dists[slot + 1 :]
    slot = sum(1 for r in ranks if r < hub)
    merged_ranks = ranks[:slot] + [hub] + ranks[slot:]
    merged_dists = dists[:slot] + [da] + dists[slot:]
    other = ([hub], [db])
    assert merge_intersection(merged_ranks, merged_dists, *other) == da + db
    assert merge_intersection(*other, merged_ranks, merged_dists) == da + db


@SETTINGS
@given(
    run_a=sorted_runs(),
    dists_b=st.lists(
        st.floats(min_value=0.0, max_value=40.0, allow_nan=False, width=32),
        max_size=10,
    ),
)
def test_merge_intersection_mixed_int_float_runs(run_a, dists_b):
    """An integer run against a float run answers like the dict merge.

    This is the shape a weighted flat store produces when intersected
    with an unweighted one's run (and what the kernels must preserve
    when widening to float64).
    """
    ranks_a, dists_a = run_a
    ranks_b = sorted(range(len(dists_b)))
    merged = merge_intersection(ranks_a, dists_a, ranks_b, dists_b)
    assert merged == _dict_intersection(ranks_a, dists_a, ranks_b, dists_b)


@SETTINGS
@given(run=sorted_runs(max_len=8, universe=12), position=st.integers(0, 7))
def test_duplicate_hub_in_a_run_is_rejected(run, position):
    """Duplicating any hub of a valid run breaks the strictly-ascending
    store invariant, and ``from_arrays`` refuses the payload."""
    ranks, dists = run
    if not ranks:
        ranks, dists = [0], [1]
    position = position % len(ranks)
    bad_ranks = ranks[: position + 1] + ranks[position:]
    bad_dists = dists[: position + 1] + dists[position:]
    n = max(12, max(bad_ranks) + 1)
    order = list(range(n))
    offsets = [0, len(bad_ranks)] + [len(bad_ranks)] * (n - 1)
    with pytest.raises(StorageError, match="ascending"):
        FlatLabelStore.from_arrays(order, offsets, bad_ranks, bad_dists)


@SETTINGS
@given(graph=graphs(max_nodes=14))
def test_flat_query_equals_dict_query(graph):
    """End to end: the packed store's merge answers like HubLabeling."""
    index = build_pll(graph)
    flat = FlatLabelStore.from_store(index.labels)
    for s in graph.nodes():
        for t in graph.nodes():
            assert flat.query(s, t) == index.labels.query(s, t), (s, t)
