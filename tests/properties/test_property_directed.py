"""Property-based tests for the directed substrate and labeling."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.digraph import DiGraph, backward_distances, forward_distances
from repro.labeling.directed_pll import build_directed_pll

SETTINGS = settings(max_examples=50, deadline=None)


@st.composite
def digraphs(draw, max_nodes: int = 18, weighted: bool = False) -> DiGraph:
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    arcs = []
    if n >= 2:
        density = draw(st.floats(min_value=0.0, max_value=0.5))
        chooser = st.floats(min_value=0.0, max_value=1.0)
        for u in range(n):
            for v in range(n):
                if u != v and draw(chooser) < density:
                    if weighted:
                        arcs.append((u, v, draw(st.integers(1, 9))))
                    else:
                        arcs.append((u, v))
    return DiGraph.from_arcs(n, arcs)


@SETTINGS
@given(graph=digraphs())
def test_directed_pll_exact(graph):
    index = build_directed_pll(graph)
    for s in graph.nodes():
        truth = forward_distances(graph, s)
        for t in graph.nodes():
            assert index.distance(s, t) == truth[t], (s, t)


@SETTINGS
@given(graph=digraphs(weighted=True))
def test_directed_pll_weighted_exact(graph):
    index = build_directed_pll(graph)
    for s in graph.nodes():
        truth = forward_distances(graph, s)
        for t in graph.nodes():
            assert index.distance(s, t) == truth[t], (s, t)


@SETTINGS
@given(graph=digraphs())
def test_backward_forward_duality(graph):
    """backward_distances(v) equals forward on the reversed graph."""
    reversed_graph = graph.reversed()
    for v in graph.nodes():
        assert backward_distances(graph, v) == forward_distances(reversed_graph, v)


@SETTINGS
@given(graph=digraphs())
def test_reversed_involution(graph):
    """Reversing twice restores the arc set."""
    twice = graph.reversed().reversed()
    assert sorted(twice.arcs()) == sorted(graph.arcs())


@SETTINGS
@given(graph=digraphs(), bandwidth=st.integers(0, 8))
def test_directed_ct_exact(graph, bandwidth):
    """The directed CT-Index answers every ordered pair exactly."""
    from repro.directed.ct import build_directed_ct_index

    index = build_directed_ct_index(graph, bandwidth)
    for s in graph.nodes():
        truth = forward_distances(graph, s)
        for t in graph.nodes():
            assert index.distance(s, t) == truth[t], (s, t)


@SETTINGS
@given(graph=digraphs(weighted=True), bandwidth=st.integers(0, 6))
def test_directed_ct_weighted_exact(graph, bandwidth):
    from repro.directed.ct import build_directed_ct_index

    index = build_directed_ct_index(graph, bandwidth)
    for s in graph.nodes():
        truth = forward_distances(graph, s)
        for t in graph.nodes():
            assert index.distance(s, t) == truth[t], (s, t)


@SETTINGS
@given(graph=digraphs())
def test_directed_triangle_inequality(graph):
    index = build_directed_pll(graph)
    nodes = list(graph.nodes())[:6]
    for a in nodes:
        for b in nodes:
            for c in nodes:
                ab = index.distance(a, b)
                bc = index.distance(b, c)
                if ab != float("inf") and bc != float("inf"):
                    assert index.distance(a, c) <= ab + bc
