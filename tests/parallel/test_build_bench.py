"""build-bench driver: speedup rows, identity verification, JSON history."""

from __future__ import annotations

import json

import pytest

from repro.bench.build_bench import (
    BuildBenchResult,
    build_bench_rows,
    record_entry,
    run_build_bench,
)
from repro.exceptions import ReproError
from repro.graphs.generators.random_graphs import gnp_graph


@pytest.fixture(scope="module")
def graph():
    return gnp_graph(60, 0.08, seed=41)


def test_rows_and_identity(graph):
    result = build_bench_rows(graph, 3, worker_counts=(1, 2), name="gnp60")
    assert [row["workers"] for row in result.rows] == [1, 2]
    assert all(row["identical"] for row in result.rows)
    assert result.rows[0]["speedup"] == 1.0
    assert result.rows[0]["entries"] == result.rows[1]["entries"]
    assert result.best_speedup == result.rows[1]["speedup"]


def test_empty_worker_counts_rejected(graph):
    with pytest.raises(ReproError):
        build_bench_rows(graph, 3, worker_counts=())


def test_record_entry_appends_history(tmp_path, graph):
    path = tmp_path / "BENCH_build.json"
    result = build_bench_rows(graph, 3, worker_counts=(1,), name="gnp60")
    record_entry(result, path)
    record_entry(result, path)
    document = json.loads(path.read_text())
    assert document["schema"] == 1
    assert len(document["entries"]) == 2
    entry = document["entries"][0]
    assert entry["dataset"] == "gnp60"
    assert entry["rows"][0]["workers"] == 1
    assert "recorded_at" in entry


def test_record_entry_survives_corrupt_history(tmp_path, graph):
    path = tmp_path / "BENCH_build.json"
    path.write_text("{not json")
    result = build_bench_rows(graph, 3, worker_counts=(1,), name="gnp60")
    record_entry(result, path)
    document = json.loads(path.read_text())
    assert len(document["entries"]) == 1


def test_run_build_bench_writes_entries(tmp_path):
    path = tmp_path / "BENCH_build.json"
    rows, text = run_build_bench(
        ["talk"], bandwidth=5, worker_counts=(1, 2), output=path
    )
    assert [row["workers"] for row in rows] == [1, 2]
    assert "build-bench" in text
    document = json.loads(path.read_text())
    assert document["entries"][0]["dataset"] == "talk"


def test_best_speedup_with_single_row():
    result = BuildBenchResult(
        name="x", n=1, m=0, bandwidth=0,
        rows=[{"workers": 1, "build_s": 0.0, "speedup": 1.0, "entries": 0, "identical": True}],
    )
    assert result.best_speedup == 1.0
