"""Unit tests for the deterministic work-partitioning helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import IndexConstructionError
from repro.parallel.chunking import balanced_tasks, vertex_chunks
from repro.parallel.pool import resolve_workers


class TestVertexChunks:
    def test_covers_every_vertex_once_in_order(self):
        for n in (0, 1, 7, 100, 101):
            for chunks in (1, 2, 3, 8):
                ranges = vertex_chunks(n, chunks)
                flat = [v for r in ranges for v in r]
                assert flat == list(range(n)), (n, chunks)

    def test_sizes_differ_by_at_most_one(self):
        ranges = vertex_chunks(103, 4)
        sizes = [len(r) for r in ranges]
        assert max(sizes) - min(sizes) <= 1
        assert len(ranges) == 4

    def test_more_chunks_than_vertices(self):
        ranges = vertex_chunks(3, 10)
        assert [list(r) for r in ranges] == [[0], [1], [2]]

    def test_zero_vertices(self):
        assert vertex_chunks(0, 4) == []

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError):
            vertex_chunks(10, 0)


class TestBalancedTasks:
    def test_every_item_assigned_exactly_once(self):
        sized = [(i, (i * 7) % 13 + 1) for i in range(50)]
        tasks = balanced_tasks(sized, workers=3)
        flat = sorted(item for task in tasks for item in task)
        assert flat == list(range(50))

    def test_skewed_sizes_are_spread(self):
        # One giant item plus many small ones: the giant must sit alone
        # in the heaviest task, not drag small items with it.
        sized = [("giant", 1000)] + [(f"s{i}", 1) for i in range(20)]
        tasks = balanced_tasks(sized, workers=4)
        heaviest = tasks[0]
        assert heaviest == ["giant"]

    def test_deterministic(self):
        sized = [(i, (i * 31) % 17 + 1) for i in range(40)]
        assert balanced_tasks(sized, 4) == balanced_tasks(sized, 4)

    def test_task_count_bounded(self):
        sized = [(i, 1) for i in range(1000)]
        tasks = balanced_tasks(sized, workers=2, tasks_per_worker=4)
        assert len(tasks) <= 8

    def test_empty(self):
        assert balanced_tasks([], 4) == []


class TestResolveWorkers:
    def test_none_and_one_mean_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1

    def test_zero_means_cpu_count(self):
        assert resolve_workers(0) >= 1

    def test_literal_counts(self):
        assert resolve_workers(5) == 5

    def test_negative_rejected(self):
        with pytest.raises(IndexConstructionError):
            resolve_workers(-2)
