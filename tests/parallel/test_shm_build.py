"""Shared-memory construction engine: identity, fallback, and cleanup.

Three contracts pin :mod:`repro.parallel.shm`:

* **identity** — any worker count, under either start method, commits
  exactly the serial labels (fingerprint-identical indexes);
* **fallback** — without NumPy the build silently takes the PR 2
  pickled-snapshot path and still matches the serial bytes;
* **cleanup** — no ``/dev/shm`` block survives a build, whether it
  finishes, fails on a budget, or loses a worker mid-round.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

import pytest

pytest.importorskip("numpy")

import repro.kernels
from repro.bench.memory import child_peak_rss_mb, reset_child_peak_rss
from repro.core.ct_index import CTIndex
from repro.core.serialization import index_fingerprint
from repro.exceptions import IndexConstructionError, OverMemoryError
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.graphs.generators.power_law import barabasi_albert_graph
from repro.labeling.base import MemoryBudget
from repro.labeling.psl import build_psl
from repro.parallel.pool import START_METHOD_ENV
from repro.parallel.shm import SHM_PREFIX, ShmBuildPool


def _shm_blocks() -> list[str]:
    try:
        return [f for f in os.listdir("/dev/shm") if f.startswith(SHM_PREFIX)]
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


@pytest.fixture(scope="module")
def scale_free():
    """Unweighted scale-free graph, large enough to vectorize (n >= 64)."""
    return barabasi_albert_graph(220, 3, seed=41)


@pytest.fixture(scope="module")
def cp_graph():
    cfg = CorePeripheryConfig(core_size=40, community_count=6, fringe_size=160)
    return core_periphery_graph(cfg, seed=31)


@pytest.fixture(autouse=True)
def no_leaked_blocks():
    assert _shm_blocks() == []
    yield
    assert _shm_blocks() == [], "a test leaked /dev/shm blocks"


def _entries(result):
    return [result.labels.label_entries(v) for v in range(result.labels.n)]


class TestPSLRoundIdentity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_match_serial_under_fork(self, scale_free, workers, monkeypatch):
        monkeypatch.setenv(START_METHOD_ENV, "fork")
        serial = build_psl(scale_free, kernel="numpy", backend="flat")
        parallel = build_psl(
            scale_free, workers=workers, kernel="numpy", backend="flat"
        )
        assert parallel.rounds == serial.rounds
        assert _entries(parallel) == _entries(serial)

    def test_workers_match_serial_under_spawn(self, scale_free, monkeypatch):
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn unavailable")
        monkeypatch.setenv(START_METHOD_ENV, "spawn")
        serial = build_psl(scale_free, kernel="numpy", backend="flat")
        parallel = build_psl(scale_free, workers=2, kernel="numpy", backend="flat")
        assert _entries(parallel) == _entries(serial)

    def test_matches_python_rounds(self, scale_free):
        vectorized = build_psl(scale_free, workers=2, kernel="numpy", backend="flat")
        python = build_psl(scale_free, kernel="python")
        assert _entries(vectorized) == _entries(python)


class TestCTIndexIdentity:
    def test_fingerprint_identical_across_worker_counts(self, cp_graph):
        reference = None
        for workers in (1, 2, 4):
            index = CTIndex.build(
                cp_graph,
                bandwidth=4,
                workers=workers,
                backend="flat",
                core_backend="psl",
            )
            fingerprint = index_fingerprint(index)
            if reference is None:
                reference = fingerprint
            assert fingerprint == reference

    def test_shared_pool_covers_forest_fanout(self, cp_graph):
        # workers=2 routes the tree labels through the shm pool; the
        # dict-backend serial build is the audit baseline.
        serial = CTIndex.build(cp_graph, bandwidth=4)
        parallel = CTIndex.build(cp_graph, bandwidth=4, workers=2)
        assert index_fingerprint(parallel) == index_fingerprint(serial)


class TestNumpyAbsentFallback:
    def test_falls_back_to_snapshot_pool(self, cp_graph, monkeypatch):
        expected = index_fingerprint(CTIndex.build(cp_graph, bandwidth=4))
        monkeypatch.setattr(repro.kernels, "_NUMPY_STATE", False)
        assert not repro.kernels.numpy_available()
        degraded = CTIndex.build(cp_graph, bandwidth=4, workers=2)
        assert index_fingerprint(degraded) == expected


class TestCleanup:
    def test_normal_exit_leaves_nothing(self, scale_free):
        build_psl(scale_free, workers=2, kernel="numpy", backend="flat")
        assert _shm_blocks() == []

    def test_build_failure_leaves_nothing(self, scale_free):
        with pytest.raises(OverMemoryError):
            build_psl(
                scale_free,
                workers=2,
                kernel="numpy",
                backend="flat",
                budget=MemoryBudget(limit_bytes=64),
            )
        assert _shm_blocks() == []

    def test_worker_death_mid_round_raises_and_cleans(self, scale_free):
        pool = ShmBuildPool(2)
        try:
            os.kill(pool._procs[1].pid, signal.SIGKILL)
            pool._procs[1].join(timeout=5.0)
            with pytest.raises(IndexConstructionError, match="died|exited"):
                build_psl(
                    scale_free, workers=2, kernel="numpy", backend="flat", pool=pool
                )
        finally:
            pool.shutdown()
        assert _shm_blocks() == []


class TestChildRSSAccounting:
    def test_exit_reports_feed_child_peak(self, scale_free):
        reset_child_peak_rss()
        assert child_peak_rss_mb() == 0.0
        with ShmBuildPool(2) as pool:
            build_psl(
                scale_free, workers=2, kernel="numpy", backend="flat", pool=pool
            )
        assert child_peak_rss_mb() > 0.0
        reset_child_peak_rss()
        assert child_peak_rss_mb() == 0.0
