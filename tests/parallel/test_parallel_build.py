"""Parallel builds must be byte-identical to serial builds.

The determinism contract (same graph, same parameters, any worker
count ⇒ same index bytes) is what makes the multiprocess path safe to
enable by default in production: a parallel build can always be audited
against a serial one.
"""

from __future__ import annotations

import pytest

from repro.core.construction import build_tree_index
from repro.core.ct_index import CTIndex, build_ct_index
from repro.core.serialization import index_fingerprint
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.graphs.generators.power_law import barabasi_albert_graph
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.traversal import all_pairs_distances
from repro.labeling.psl import build_psl
from repro.parallel.forest import forest_tasks
from repro.treedec.core_tree import core_tree_decomposition


@pytest.fixture(scope="module")
def cp_graph():
    cfg = CorePeripheryConfig(core_size=30, community_count=5, fringe_size=90)
    return core_periphery_graph(cfg, seed=23)


class TestParallelPSL:
    def test_labels_match_serial(self, cp_graph):
        serial = build_psl(cp_graph)
        parallel = build_psl(cp_graph, workers=2)
        assert parallel.rounds == serial.rounds
        for v in cp_graph.nodes():
            assert parallel.labels.label_entries(v) == serial.labels.label_entries(v)

    def test_answers_exact(self):
        graph = barabasi_albert_graph(60, 2, seed=9)
        index = build_psl(graph, workers=2)
        truth = all_pairs_distances(graph)
        for s in range(0, graph.n, 5):
            for t in range(graph.n):
                assert index.distance(s, t) == truth[s][t]

    def test_worker_count_does_not_matter(self, cp_graph):
        two = build_psl(cp_graph, workers=2)
        three = build_psl(cp_graph, workers=3)
        for v in cp_graph.nodes():
            assert two.labels.label_entries(v) == three.labels.label_entries(v)


class TestParallelForest:
    def test_tree_labels_match_serial(self, cp_graph):
        decomposition = core_tree_decomposition(cp_graph, 4)
        serial = build_tree_index(decomposition)
        parallel = build_tree_index(decomposition, workers=2)
        assert len(serial.labels) == len(parallel.labels)
        for pos in range(len(serial.labels)):
            # Same entries *and* same insertion order — serialization
            # preserves dict order, so order is part of byte-identity.
            assert list(serial.labels[pos].items()) == list(
                parallel.labels[pos].items()
            ), pos

    def test_tasks_cover_forest(self, cp_graph):
        decomposition = core_tree_decomposition(cp_graph, 4)
        tasks = forest_tasks(decomposition, workers=3)
        flat = sorted(pos for task in tasks for pos in task)
        assert flat == list(range(decomposition.boundary))
        # Within a task every tree's positions must be descending.
        for task in tasks:
            by_root: dict[int, list[int]] = {}
            for pos in task:
                by_root.setdefault(decomposition.root[pos], []).append(pos)
            for positions in by_root.values():
                assert positions == sorted(positions, reverse=True)


class TestParallelCTIndex:
    def test_byte_identical_index(self, cp_graph):
        serial = CTIndex.build(cp_graph, 4)
        parallel = CTIndex.build(cp_graph, 4, workers=2)
        assert index_fingerprint(parallel) == index_fingerprint(serial)

    def test_byte_identical_with_psl_core(self, cp_graph):
        serial = build_ct_index(cp_graph, 0, core_backend="psl")
        parallel = build_ct_index(cp_graph, 0, core_backend="psl", workers=2)
        assert index_fingerprint(parallel) == index_fingerprint(serial)

    def test_parallel_answers_exact(self):
        graph = gnp_graph(50, 0.1, seed=31)
        index = build_ct_index(graph, 3, workers=2)
        truth = all_pairs_distances(graph)
        for s in range(graph.n):
            for t in range(graph.n):
                assert index.distance(s, t) == truth[s][t]
