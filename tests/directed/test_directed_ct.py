"""Unit tests for the directed CT-Index."""

from __future__ import annotations

import pytest

from repro.directed.ct import build_directed_ct_index
from repro.exceptions import OverMemoryError, QueryError
from repro.graphs.digraph import DiGraph, forward_distances
from repro.graphs.graph import INF
from repro.labeling.base import MemoryBudget
from tests.graphs.test_digraph import random_digraph


def assert_exact(index, graph):
    for s in graph.nodes():
        truth = forward_distances(graph, s)
        for t in graph.nodes():
            assert index.distance(s, t) == truth[t], (s, t)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("bandwidth", [0, 2, 4, 100])
    def test_random_unweighted(self, seed, bandwidth):
        g = random_digraph(28, 0.1, seed=seed)
        assert_exact(build_directed_ct_index(g, bandwidth), g)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_weighted(self, seed):
        g = random_digraph(22, 0.12, seed=seed + 50, weighted=True)
        assert_exact(build_directed_ct_index(g, 3), g)

    def test_directed_cycle(self):
        n = 9
        g = DiGraph.from_arcs(n, [(i, (i + 1) % n) for i in range(n)])
        index = build_directed_ct_index(g, 2)
        for s in range(n):
            for t in range(n):
                assert index.distance(s, t) == (t - s) % n

    def test_dag_with_fringe(self):
        arcs = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (5, 0), (4, 6), (7, 5)]
        g = DiGraph.from_arcs(8, arcs)
        assert_exact(build_directed_ct_index(g, 2), g)

    def test_asymmetric(self):
        g = DiGraph.from_arcs(4, [(0, 1), (1, 2), (2, 3)])
        index = build_directed_ct_index(g, 2)
        assert index.distance(0, 3) == 3
        assert index.distance(3, 0) == INF

    def test_denser_digraph(self):
        g = random_digraph(35, 0.2, seed=77)
        assert_exact(build_directed_ct_index(g, 5), g)

    def test_one_way_communities(self):
        # A "follows"-style digraph: dense mutual core, one-way fringe.
        import random

        rng = random.Random(5)
        arcs = []
        for u in range(12):
            for v in range(12):
                if u != v and rng.random() < 0.5:
                    arcs.append((u, v))
        for v in range(12, 80):
            target = rng.randrange(v)
            arcs.append((v, target))
            if rng.random() < 0.3:
                arcs.append((target, v))
        g = DiGraph.from_arcs(80, arcs)
        assert_exact(build_directed_ct_index(g, 3), g)


class TestApi:
    def test_out_of_range(self):
        g = DiGraph.from_arcs(3, [(0, 1)])
        index = build_directed_ct_index(g, 2)
        with pytest.raises(QueryError):
            index.distance(0, 3)

    def test_method_name(self):
        g = DiGraph.from_arcs(3, [(0, 1)])
        index = build_directed_ct_index(g, 7)
        assert index.method_name == "CT-directed-7"

    def test_size_entries_counts_both_sides(self):
        g = random_digraph(25, 0.12, seed=6)
        index = build_directed_ct_index(g, 3)
        tree = sum(len(lbl) for lbl in index.out_labels)
        tree += sum(len(lbl) for lbl in index.in_labels)
        assert index.size_entries() == tree + index.core_index.size_entries()

    def test_budget(self):
        g = random_digraph(40, 0.2, seed=7)
        with pytest.raises(OverMemoryError):
            build_directed_ct_index(g, 3, budget=MemoryBudget(limit_bytes=64))

    def test_bandwidth_trade_off_visible(self):
        # Dense mutual core + one-way fringe: growing d moves the fringe
        # out of the directed core.
        import random

        rng = random.Random(8)
        arcs = []
        for u in range(15):
            for v in range(15):
                if u != v and rng.random() < 0.6:
                    arcs.append((u, v))
        for v in range(15, 120):
            arcs.append((v, rng.randrange(15)))
        g = DiGraph.from_arcs(120, arcs)
        ct0 = build_directed_ct_index(g, 0)
        ct2 = build_directed_ct_index(g, 2)
        assert ct2.boundary > ct0.boundary
        assert ct2.core_size < ct0.core_size
        assert_exact(ct2, g)
