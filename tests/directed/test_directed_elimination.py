"""Unit tests for directed MDE."""

from __future__ import annotations

import pytest

from repro.directed.elimination import directed_minimum_degree_elimination
from repro.exceptions import DecompositionError
from repro.graphs.digraph import DiGraph, forward_distances
from tests.graphs.test_digraph import random_digraph


class TestDirectedElimination:
    def test_negative_bandwidth_rejected(self):
        g = DiGraph.from_arcs(2, [(0, 1)])
        with pytest.raises(DecompositionError):
            directed_minimum_degree_elimination(g, -1)

    def test_partition(self):
        g = random_digraph(40, 0.08, seed=1)
        result = directed_minimum_degree_elimination(g, 3)
        forest = {step.node for step in result.steps}
        core = set(result.core_nodes)
        assert forest | core == set(g.nodes())
        assert not forest & core

    def test_bag_sizes_bounded(self):
        g = random_digraph(40, 0.1, seed=2)
        for d in (1, 2, 4):
            result = directed_minimum_degree_elimination(g, d)
            assert all(len(step.neighbors) <= d for step in result.steps)

    def test_local_maps_subsets_of_neighbors(self):
        # The skeleton bag is a superset of the directed adjacency:
        # fill-in can create undirected bag membership without any
        # directed shortcut between the pair.
        g = random_digraph(30, 0.12, seed=3)
        result = directed_minimum_degree_elimination(g, 4)
        for step in result.steps:
            members = set(step.neighbors)
            assert set(step.local_in) <= members
            assert set(step.local_out) <= members

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("d", [2, 4])
    def test_directed_lemma7_core_distances_preserved(self, seed, d):
        # The reduced core digraph preserves directed distances between
        # core nodes (the directed Lemma 7).
        g = random_digraph(30, 0.12, seed=seed)
        result = directed_minimum_degree_elimination(g, d)
        core, originals = result.core_digraph()
        for i, orig in enumerate(originals):
            truth = forward_distances(g, orig)
            reduced = forward_distances(core, i)
            for j, other in enumerate(originals):
                assert reduced[j] == truth[other], (orig, other)

    def test_weighted_digraph(self):
        g = random_digraph(25, 0.15, seed=9, weighted=True)
        result = directed_minimum_degree_elimination(g, 3)
        core, originals = result.core_digraph()
        for i, orig in enumerate(originals[:5]):
            truth = forward_distances(g, orig)
            reduced = forward_distances(core, i)
            for j, other in enumerate(originals):
                assert reduced[j] == truth[other]

    def test_bandwidth_huge_eliminates_all(self):
        g = random_digraph(20, 0.15, seed=4)
        result = directed_minimum_degree_elimination(g, 1000)
        assert result.core_nodes == []
        assert result.boundary == 20
