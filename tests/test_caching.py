"""Unit tests for the LRU distance cache."""

from __future__ import annotations

import pytest

from repro.caching import CachedDistanceIndex
from repro.core.ct_index import CTIndex
from repro.exceptions import ReproError
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.traversal import all_pairs_distances
from repro.labeling.pll import build_pll


@pytest.fixture(scope="module")
def inner():
    g = gnp_graph(30, 0.15, seed=1)
    return g, build_pll(g)


class TestCachedDistanceIndex:
    def test_answers_match_inner(self, inner):
        g, index = inner
        cached = CachedDistanceIndex(index)
        truth = all_pairs_distances(g)
        for s in range(g.n):
            for t in range(g.n):
                assert cached.distance(s, t) == truth[s][t]

    def test_hits_on_repeats_and_symmetry(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index)
        cached.distance(1, 2)
        cached.distance(1, 2)
        cached.distance(2, 1)  # symmetric key
        assert cached.hits == 2
        assert cached.misses == 1
        assert cached.hit_rate == pytest.approx(2 / 3)

    def test_asymmetric_mode(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index, symmetric=False)
        cached.distance(1, 2)
        cached.distance(2, 1)
        assert cached.misses == 2

    def test_capacity_eviction(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index, capacity=2)
        cached.distance(0, 1)
        cached.distance(0, 2)
        cached.distance(0, 3)  # evicts (0, 1)
        cached.distance(0, 1)
        assert cached.misses == 4

    def test_lru_recency(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index, capacity=2)
        cached.distance(0, 1)
        cached.distance(0, 2)
        cached.distance(0, 1)  # refresh (0, 1)
        cached.distance(0, 3)  # evicts (0, 2)
        cached.distance(0, 1)
        assert cached.hits == 2

    def test_clear(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index)
        cached.distance(0, 1)
        cached.clear()
        assert cached.hits == 0 and cached.misses == 0
        cached.distance(0, 1)
        assert cached.misses == 1

    def test_size_delegates(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index)
        assert cached.size_entries() == index.size_entries()
        assert "PLL" in cached.method_name

    def test_bad_capacity(self, inner):
        _, index = inner
        with pytest.raises(ReproError):
            CachedDistanceIndex(index, capacity=0)

    def test_wraps_ct_and_paths(self):
        from repro.paths import shortest_path

        g = gnp_graph(25, 0.15, seed=2)
        cached = CachedDistanceIndex(CTIndex.build(g, 3))
        path = shortest_path(cached, g, 0, g.n - 1)
        if path is not None:
            assert path[0] == 0 and path[-1] == g.n - 1
        assert cached.hits + cached.misses > 0


class TestBatchDelegation:
    """Regression: wrapping an index must not lose the batch protocol."""

    def test_distances_from_matches_per_pair_distance(self):
        # The original bug: CachedDistanceIndex(CTIndex...).distances_from
        # raised AttributeError and batch callers bypassed the cache.
        g = gnp_graph(35, 0.12, seed=3)
        index = CTIndex.build(g, 4)
        cached = CachedDistanceIndex(index)
        for s in range(0, g.n, 5):
            batch = cached.distances_from(s, list(g.nodes()))
            assert batch == [index.distance(s, t) for t in g.nodes()]

    def test_batch_populates_and_serves_cache(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index)
        cached.distances_from(0, [1, 2, 3])
        assert (cached.hits, cached.misses) == (0, 3)
        cached.distances_from(0, [1, 2, 3])  # fully cached now
        assert (cached.hits, cached.misses) == (3, 3)
        cached.distance(2, 0)  # symmetric single query hits the batch entry
        assert cached.hits == 4

    def test_repeated_targets_in_one_batch_count_as_hits(self, inner):
        g, index = inner
        cached = CachedDistanceIndex(index)
        values = cached.distances_from(0, [5, 5, 6, 5])
        assert values[0] == values[1] == values[3] == index.distance(0, 5)
        assert (cached.hits, cached.misses) == (2, 2)

    def test_symmetric_dedup_within_batch(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index)
        # distances_from(5, [0]) then distance(0, 5) share one key.
        cached.distances_from(5, [0])
        cached.distance(0, 5)
        assert (cached.hits, cached.misses) == (1, 1)

    def test_distances_batch_goes_through_cache(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index)
        pairs = [(0, 1), (1, 2), (0, 1)]
        values = cached.distances_batch(pairs)
        assert values == [index.distance(s, t) for s, t in pairs]
        assert (cached.hits, cached.misses) == (1, 2)

    def test_distances_batch_symmetric_dedup_within_batch(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index)
        # (2, 1) shares (1, 2)'s key: one miss, one in-batch hit.
        values = cached.distances_batch([(1, 2), (2, 1)])
        assert values[0] == values[1] == index.distance(1, 2)
        assert (cached.hits, cached.misses) == (1, 1)

    def test_distances_batch_forwards_misses_as_one_inner_batch(self, inner):
        # The bugfix contract: residual misses reach the inner index via
        # a single distances_batch call (its fast path), never per-pair
        # distance calls.
        _, index = inner

        class Spy:
            method_name = "spy"

            def __init__(self, wrapped):
                self.wrapped = wrapped
                self.batch_calls: list[list] = []

            def distance(self, s, t):
                raise AssertionError("cache must not fall back to distance()")

            def distances_batch(self, pairs):
                self.batch_calls.append(list(pairs))
                return [self.wrapped.distance(s, t) for s, t in pairs]

        spy = Spy(index)
        cached = CachedDistanceIndex(spy)
        cached.distance = None  # ensure nothing routes through singles
        pairs = [(0, 1), (1, 2), (0, 1), (2, 1), (3, 4)]
        values = cached.distances_batch(pairs)
        assert values == [index.distance(s, t) for s, t in pairs]
        # One inner call, holding only the three unique missed keys.
        assert len(spy.batch_calls) == 1
        assert spy.batch_calls[0] == [(0, 1), (1, 2), (3, 4)]
        assert (cached.hits, cached.misses) == (2, 3)
        # Warm replay: fully served from the cache, no inner traffic.
        assert cached.distances_batch(pairs) == values
        assert len(spy.batch_calls) == 1

    def test_eviction_respected_in_batches(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index, capacity=2)
        cached.distances_from(0, [1, 2, 3])  # inserts in order; (0,1) evicted
        assert len(cached._cache) == 2
        cached.distance(0, 3)
        assert cached.hits == 1  # most recent entries survived


class TestEpochInvalidation:
    """The cache watches the inner index's ``mutation_epoch``."""

    def _mutable(self):
        from repro.dynamic import DeltaOverlayIndex

        g = gnp_graph(25, 0.15, seed=4)
        return g, DeltaOverlayIndex(CTIndex.build(g, 3))

    def test_stale_entries_are_dropped_after_mutation(self):
        g, overlay = self._mutable()
        cached = CachedDistanceIndex(overlay)
        before = cached.distance(0, 1)
        # Toggle edge {0, 1}: in a unit-weight graph d(0, 1) == 1 exactly
        # when the edge exists, so the toggle must change the answer.
        if g.has_edge(0, 1):
            overlay.remove_edge(0, 1)
        else:
            overlay.add_edge(0, 1)
        after = cached.distance(0, 1)
        assert after == overlay.distance(0, 1)
        assert after != before
        assert cached.invalidations == 1

    def test_every_entry_point_checks_the_epoch(self):
        g, overlay = self._mutable()
        for call in (
            lambda c: c.distance(0, 1),
            lambda c: c.distances_from(0, [1, 2]),
            lambda c: c.distances_batch([(0, 1), (1, 2)]),
        ):
            cached = CachedDistanceIndex(overlay)
            call(cached)
            u, v, _ = next(iter(overlay.materialize_current().edges()))
            overlay.remove_edge(u, v)
            call(cached)
            assert cached.invalidations == 1
            overlay.add_edge(u, v)  # restore for the next loop iteration

    def test_counters_survive_invalidation(self):
        _, overlay = self._mutable()
        cached = CachedDistanceIndex(overlay)
        cached.distance(0, 1)
        cached.distance(0, 1)
        assert (cached.hits, cached.misses) == (1, 1)
        u, v, _ = next(iter(overlay.materialize_current().edges()))
        overlay.remove_edge(u, v)
        cached.distance(0, 1)
        # hits/misses keep accumulating; only the entries were dropped.
        assert (cached.hits, cached.misses) == (1, 2)
        assert len(cached._cache) == 1

    def test_static_inner_never_invalidates(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index)
        cached.distance(0, 1)
        cached.distance(0, 1)
        assert cached.invalidations == 0

    def test_empty_cache_invalidation_is_silent(self):
        _, overlay = self._mutable()
        cached = CachedDistanceIndex(overlay)
        u, v, _ = next(iter(overlay.materialize_current().edges()))
        overlay.remove_edge(u, v)
        cached.distance(0, 1)  # first touch after the mutation
        assert cached.invalidations == 0  # nothing was dropped
