"""Unit tests for the LRU distance cache."""

from __future__ import annotations

import pytest

from repro.caching import CachedDistanceIndex
from repro.core.ct_index import CTIndex
from repro.exceptions import ReproError
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.traversal import all_pairs_distances
from repro.labeling.pll import build_pll


@pytest.fixture(scope="module")
def inner():
    g = gnp_graph(30, 0.15, seed=1)
    return g, build_pll(g)


class TestCachedDistanceIndex:
    def test_answers_match_inner(self, inner):
        g, index = inner
        cached = CachedDistanceIndex(index)
        truth = all_pairs_distances(g)
        for s in range(g.n):
            for t in range(g.n):
                assert cached.distance(s, t) == truth[s][t]

    def test_hits_on_repeats_and_symmetry(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index)
        cached.distance(1, 2)
        cached.distance(1, 2)
        cached.distance(2, 1)  # symmetric key
        assert cached.hits == 2
        assert cached.misses == 1
        assert cached.hit_rate == pytest.approx(2 / 3)

    def test_asymmetric_mode(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index, symmetric=False)
        cached.distance(1, 2)
        cached.distance(2, 1)
        assert cached.misses == 2

    def test_capacity_eviction(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index, capacity=2)
        cached.distance(0, 1)
        cached.distance(0, 2)
        cached.distance(0, 3)  # evicts (0, 1)
        cached.distance(0, 1)
        assert cached.misses == 4

    def test_lru_recency(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index, capacity=2)
        cached.distance(0, 1)
        cached.distance(0, 2)
        cached.distance(0, 1)  # refresh (0, 1)
        cached.distance(0, 3)  # evicts (0, 2)
        cached.distance(0, 1)
        assert cached.hits == 2

    def test_clear(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index)
        cached.distance(0, 1)
        cached.clear()
        assert cached.hits == 0 and cached.misses == 0
        cached.distance(0, 1)
        assert cached.misses == 1

    def test_size_delegates(self, inner):
        _, index = inner
        cached = CachedDistanceIndex(index)
        assert cached.size_entries() == index.size_entries()
        assert "PLL" in cached.method_name

    def test_bad_capacity(self, inner):
        _, index = inner
        with pytest.raises(ReproError):
            CachedDistanceIndex(index, capacity=0)

    def test_wraps_ct_and_paths(self):
        from repro.paths import shortest_path

        g = gnp_graph(25, 0.15, seed=2)
        cached = CachedDistanceIndex(CTIndex.build(g, 3))
        path = shortest_path(cached, g, 0, g.n - 1)
        if path is not None:
            assert path[0] == 0 and path[-1] == g.n - 1
        assert cached.hits + cached.misses > 0
