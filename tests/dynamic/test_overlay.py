"""Unit semantics of :class:`~repro.dynamic.DeltaOverlayIndex`.

The differential/fuzz suites establish that the overlay answers ground
truth under arbitrary mutation streams; this file pins the *contract*
around those answers — validation errors, no-op detection, patch
bookkeeping, epoch/swap accounting, kernel passthrough, and the
snapshot/swap protocol's failure modes.
"""

from __future__ import annotations

import pytest

from repro.caching import CachedDistanceIndex
from repro.core.ct_index import CTIndex
from repro.dynamic import DeltaOverlayIndex, OverlaySnapshot
from repro.exceptions import DynamicUpdateError, GraphError, QueryError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import INF, Graph


def path_graph(n: int) -> Graph:
    builder = GraphBuilder(n)
    for i in range(n - 1):
        builder.add_edge(i, i + 1)
    return builder.build()


@pytest.fixture()
def overlay() -> DeltaOverlayIndex:
    graph = path_graph(6)
    return DeltaOverlayIndex(CTIndex.build(graph, 2))


class TestMutationContract:
    def test_add_edge_shortens_distance(self, overlay):
        assert overlay.distance(0, 5) == 5
        assert overlay.add_edge(0, 5) is True
        assert overlay.distance(0, 5) == 1
        assert overlay.distance(1, 4) == 3  # shortcut 1-0-5-4

    def test_remove_edge_disconnects(self, overlay):
        overlay.remove_edge(2, 3)
        assert overlay.distance(0, 5) == INF
        assert overlay.distance(3, 5) == 2

    def test_duplicate_add_is_a_noop(self, overlay):
        assert overlay.add_edge(0, 3) is True
        epoch = overlay.mutation_epoch
        assert overlay.add_edge(0, 3) is False
        assert overlay.add_edge(3, 0) is False  # orientation-insensitive
        assert overlay.mutation_epoch == epoch
        assert overlay.log_length == 1

    def test_adding_an_existing_base_edge_is_a_noop(self, overlay):
        assert overlay.add_edge(1, 2) is False
        assert overlay.patch_size == 0

    def test_weight_change_is_effective(self, overlay):
        # On a path graph the direct edge is the only 1-2 route, so the
        # new weight is the new distance.
        assert overlay.add_edge(1, 2, 7) is True
        assert overlay.distance(1, 2) == 7
        assert overlay.distance(0, 5) == 11
        # Re-weighting back to the base weight must also take effect.
        assert overlay.add_edge(1, 2, 1) is True
        assert overlay.distance(0, 5) == 5

    def test_remove_missing_edge_raises(self, overlay):
        with pytest.raises(GraphError):
            overlay.remove_edge(0, 5)
        overlay.remove_edge(2, 3)
        with pytest.raises(GraphError):
            overlay.remove_edge(2, 3)

    def test_validation_errors(self, overlay):
        with pytest.raises(GraphError):
            overlay.add_edge(0, 6)
        with pytest.raises(GraphError):
            overlay.add_edge(-1, 0)
        with pytest.raises(GraphError):
            overlay.add_edge(2, 2)
        with pytest.raises(GraphError):
            overlay.add_edge(0, 3, 0)
        with pytest.raises(GraphError):
            overlay.remove_edge(0, 99)
        assert overlay.patch_size == 0
        assert overlay.log_length == 0

    def test_revert_to_base_weight_drains_patch(self, overlay):
        base_epoch = overlay.mutation_epoch
        overlay.add_edge(1, 2, 5)
        assert overlay.patch_size == 2  # weight change = added + removed
        overlay.add_edge(1, 2, 1)  # back to the base weight
        assert overlay.patch_size == 0
        assert overlay.overlay_stats()["touched_vertices"] == 0
        assert overlay.mutation_epoch == base_epoch + 2

    def test_insert_then_delete_round_trip_drains_patch(self, overlay):
        overlay.add_edge(0, 4)
        overlay.remove_edge(0, 4)
        assert overlay.patch_size == 0
        assert overlay.distance(0, 4) == 4

    def test_query_validation(self, overlay):
        with pytest.raises(QueryError):
            overlay.distance(0, 6)
        with pytest.raises(QueryError):
            overlay.distance(-1, 0)

    def test_self_distance_is_zero_even_when_patched(self, overlay):
        overlay.add_edge(0, 5)
        assert overlay.distance(3, 3) == 0


class TestIndexProtocol:
    def test_method_name_and_size(self, overlay):
        assert overlay.method_name.startswith("overlay(CT-")
        base_entries = overlay.base.size_entries()
        overlay.add_edge(0, 5)
        assert overlay.size_entries() == base_entries + 1
        overlay.remove_edge(1, 2)
        assert overlay.size_entries() == base_entries + 2

    def test_batch_paths_match_distance(self, overlay):
        overlay.add_edge(0, 5)
        overlay.remove_edge(2, 3)
        pairs = [(s, t) for s in range(6) for t in range(6)]
        expected = [overlay.distance(s, t) for s, t in pairs]
        assert overlay.distances_batch(pairs) == expected
        for s in range(6):
            assert overlay.distances_from(s, range(6)) == [
                overlay.distance(s, t) for t in range(6)
            ]

    def test_empty_patch_delegates_to_base(self, overlay):
        pairs = [(0, 5), (1, 3)]
        assert overlay.distances_batch(pairs) == overlay.base.distances_batch(pairs)
        stats = overlay.overlay_stats()
        assert stats["answers"]["through"] == 0
        assert stats["answers"]["fallback"] == 0

    def test_set_kernel_passthrough(self):
        graph = path_graph(6)
        overlay = DeltaOverlayIndex(CTIndex.build(graph, 2, backend="flat"))
        assert overlay.set_kernel("python") is overlay
        assert overlay.kernel == "python"

    def test_base_without_graph_is_rejected(self):
        class Bare:
            method_name = "bare"

        with pytest.raises(DynamicUpdateError):
            DeltaOverlayIndex(Bare())


class TestSnapshotAndSwap:
    def test_swap_preserves_answers_and_epoch(self, overlay):
        overlay.add_edge(0, 5)
        overlay.remove_edge(2, 3)
        snap = overlay.snapshot()
        before = [overlay.distance(s, t) for s in range(6) for t in range(6)]
        epoch = overlay.mutation_epoch
        fresh = CTIndex.build(snap.graph, 2)
        replayed = overlay.swap_base(fresh, snap)
        assert replayed == 0
        assert overlay.patch_size == 0
        assert overlay.swap_count == 1
        assert overlay.mutation_epoch == epoch  # swaps do not bump the epoch
        after = [overlay.distance(s, t) for s in range(6) for t in range(6)]
        assert after == before

    def test_swap_replays_mutations_landed_mid_build(self, overlay):
        overlay.add_edge(0, 5)
        snap = overlay.snapshot()
        fresh = CTIndex.build(snap.graph, 2)
        # These land "during the rebuild":
        overlay.remove_edge(0, 1)
        overlay.add_edge(1, 4)
        expected = [overlay.distance(s, t) for s in range(6) for t in range(6)]
        assert overlay.swap_base(fresh, snap) == 2
        assert overlay.patch_size > 0  # the tail is still an overlay patch
        got = [overlay.distance(s, t) for s in range(6) for t in range(6)]
        assert got == expected

    def test_stale_snapshot_is_rejected(self, overlay):
        overlay.add_edge(0, 5)
        snap = overlay.snapshot()
        fresh = CTIndex.build(snap.graph, 2)
        overlay.swap_base(fresh, snap)
        with pytest.raises(DynamicUpdateError):
            overlay.swap_base(CTIndex.build(snap.graph, 2), snap)

    def test_wrong_graph_is_rejected(self, overlay):
        overlay.add_edge(0, 5)
        snap = overlay.snapshot()
        wrong = CTIndex.build(path_graph(6), 2)  # base graph, not snapshot
        with pytest.raises(DynamicUpdateError):
            overlay.swap_base(wrong, snap)

    def test_snapshot_materializes_the_patched_graph(self, overlay):
        overlay.add_edge(0, 5, 3)
        overlay.remove_edge(1, 2)
        snap = overlay.snapshot()
        assert isinstance(snap, OverlaySnapshot)
        assert snap.graph.has_edge(0, 5)
        assert snap.graph.edge_weight(0, 5) == 3
        assert not snap.graph.has_edge(1, 2)
        assert snap.graph == overlay.materialize_current()


class TestCacheIntegration:
    def test_mutation_invalidates_wrapping_cache(self, overlay):
        cached = CachedDistanceIndex(overlay, capacity=64)
        assert cached.distance(0, 5) == 5
        assert cached.distance(0, 5) == 5
        assert cached.hits == 1
        overlay.add_edge(0, 5)
        assert cached.distance(0, 5) == 1  # not the stale cached 5
        assert cached.invalidations == 1

    def test_swap_does_not_invalidate_wrapping_cache(self, overlay):
        cached = CachedDistanceIndex(overlay, capacity=64)
        overlay.add_edge(0, 5)
        assert cached.distance(0, 5) == 1
        snap = overlay.snapshot()
        overlay.swap_base(CTIndex.build(snap.graph, 2), snap)
        invalidations = cached.invalidations
        assert cached.distance(0, 5) == 1
        assert cached.invalidations == invalidations
        assert cached.hits >= 1
