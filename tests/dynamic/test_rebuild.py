"""Rebuild-verify-swap cycle of :class:`~repro.dynamic.BackgroundReindexer`.

The differential suite proves swapped overlays keep answering ground
truth; this file pins the *gatekeeping*: a rebuild that fails
fingerprint or answer verification must abort without touching the live
overlay, and the background thread must drain patches on demand and at
the auto threshold.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core.ct_index import CTIndex
from repro.core.serialization import index_fingerprint
from repro.dynamic import BackgroundReindexer, DeltaOverlayIndex
from repro.exceptions import ConfigurationError, DynamicUpdateError
from repro.graphs.generators.random_graphs import gnp_graph


def make_overlay(seed: int = 5, n: int = 40, bandwidth: int = 3) -> DeltaOverlayIndex:
    graph = gnp_graph(n, 0.12, seed=seed)
    return DeltaOverlayIndex(CTIndex.build(graph, bandwidth))


def churn(overlay: DeltaOverlayIndex, count: int = 8) -> None:
    ops = []
    u = 0
    while len(ops) < count:
        v = (u * 7 + 3) % overlay.n
        if u != v and not overlay.materialize_current().has_edge(u, v):
            ops.append(("add", u, v, 1))
        u += 1
    overlay.apply(ops)


class TestSynchronousCycle:
    def test_empty_patch_is_skipped(self):
        overlay = make_overlay()
        reindexer = BackgroundReindexer(overlay)
        result = reindexer.rebuild_once()
        assert result.swapped is False
        assert result.reason == "empty_patch"
        assert reindexer.status()["rebuilds_skipped"] == 1

    def test_force_rebuilds_an_empty_patch(self):
        overlay = make_overlay()
        before = index_fingerprint(overlay.base)
        result = BackgroundReindexer(overlay).rebuild_once(force=True)
        assert result.swapped is True
        assert result.replayed_ops == 0
        assert result.verified_pairs == 48
        assert index_fingerprint(overlay.base) == before

    def test_swap_drains_the_patch_and_records_fingerprint(self):
        overlay = make_overlay()
        churn(overlay)
        reindexer = BackgroundReindexer(overlay)
        result = reindexer.rebuild_once()
        assert result.swapped is True
        assert overlay.patch_size == 0
        assert overlay.swap_count == 1
        expected = hashlib.sha256(index_fingerprint(overlay.base)).hexdigest()
        assert result.fingerprint_sha256 == expected
        assert result.n == overlay.n
        summary = result.summary()
        assert summary["swapped"] is True
        assert summary["verified_pairs"] == result.verified_pairs

    def test_expected_fingerprint_mismatch_aborts_before_swap(self):
        overlay = make_overlay()
        churn(overlay)
        reindexer = BackgroundReindexer(
            overlay, expected_fingerprint="0" * 64
        )
        with pytest.raises(DynamicUpdateError, match="does not match"):
            reindexer.rebuild_once()
        # Overlay untouched: the patch is still live and still exact.
        assert overlay.patch_size > 0
        assert overlay.swap_count == 0

    def test_expected_fingerprint_match_allows_swap(self):
        overlay = make_overlay()
        churn(overlay)
        # Authority fingerprint = independent build of the same snapshot.
        snap_graph = overlay.materialize_current()
        authority = hashlib.sha256(
            index_fingerprint(CTIndex.build(snap_graph, overlay.base.bandwidth))
        ).hexdigest()
        reindexer = BackgroundReindexer(overlay, expected_fingerprint=authority)
        assert reindexer.rebuild_once().swapped is True

    def test_answer_verification_failure_aborts_swap(self, monkeypatch):
        overlay = make_overlay()
        churn(overlay)

        class LyingIndex:
            """Delegates everything except ``distance``, which lies."""

            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def distance(self, s, t):
                real = self._inner.distance(s, t)
                return real + 1 if s != t else real

        real_build = CTIndex.build
        monkeypatch.setattr(
            "repro.dynamic.rebuild.CTIndex",
            type(
                "FakeCTIndex",
                (),
                {"build": staticmethod(lambda *a, **kw: LyingIndex(real_build(*a, **kw)))},
            ),
        )
        reindexer = BackgroundReindexer(overlay)
        with pytest.raises(DynamicUpdateError, match="verification failed"):
            reindexer.rebuild_once()
        assert overlay.swap_count == 0
        assert overlay.patch_size > 0

    def test_verify_samples_zero_disables_the_sample_check(self):
        overlay = make_overlay()
        churn(overlay)
        result = BackgroundReindexer(overlay, verify_samples=0).rebuild_once()
        assert result.swapped is True
        assert result.verified_pairs == 0

    def test_configuration_validation(self):
        overlay = make_overlay()
        with pytest.raises(ConfigurationError):
            BackgroundReindexer(overlay, verify_samples=-1)
        with pytest.raises(ConfigurationError):
            BackgroundReindexer(overlay, auto_threshold=0)

    def test_bandwidth_required_without_base_default(self):
        overlay = make_overlay()

        class NoBandwidth:
            def __init__(self, inner):
                self._inner = inner
                self.graph = inner.graph

            def __getattr__(self, name):
                if name == "bandwidth":
                    raise AttributeError(name)
                return getattr(self._inner, name)

        overlay2 = DeltaOverlayIndex(NoBandwidth(overlay.base))
        with pytest.raises(ConfigurationError, match="bandwidth"):
            BackgroundReindexer(overlay2)
        assert BackgroundReindexer(overlay2, bandwidth=3).bandwidth == 3


class TestBackgroundThread:
    def test_request_rebuild_drains_patch(self):
        overlay = make_overlay()
        churn(overlay)
        reindexer = BackgroundReindexer(overlay, poll_interval=0.01).start()
        try:
            baseline = reindexer.cycles()
            reindexer.request_rebuild()
            assert reindexer.wait_for_cycle(baseline, timeout=30)
            assert overlay.patch_size == 0
            status = reindexer.status()
            assert status["rebuilds_completed"] == 1
            assert status["running"] is True
            assert status["last_result"]["swapped"] is True
        finally:
            reindexer.stop()
        assert reindexer.status()["running"] is False

    def test_auto_threshold_triggers_without_request(self):
        overlay = make_overlay()
        reindexer = BackgroundReindexer(
            overlay, auto_threshold=4, poll_interval=0.01
        ).start()
        try:
            baseline = reindexer.cycles()
            churn(overlay, count=6)  # over the threshold
            assert reindexer.wait_for_cycle(baseline, timeout=30)
            assert overlay.patch_size == 0
            assert reindexer.status()["rebuilds_completed"] >= 1
        finally:
            reindexer.stop()

    def test_maybe_trigger_respects_threshold(self):
        overlay = make_overlay()
        reindexer = BackgroundReindexer(overlay, auto_threshold=5)
        assert reindexer.maybe_trigger() is False
        churn(overlay, count=5)
        assert reindexer.maybe_trigger() is True
        # Without a threshold maybe_trigger is inert.
        assert BackgroundReindexer(overlay).maybe_trigger() is False

    def test_error_cycles_are_counted_and_reported(self):
        overlay = make_overlay()
        churn(overlay)
        reindexer = BackgroundReindexer(
            overlay, expected_fingerprint="f" * 64, poll_interval=0.01
        ).start()
        try:
            baseline = reindexer.cycles()
            reindexer.request_rebuild()
            assert reindexer.wait_for_cycle(baseline, timeout=30)
            status = reindexer.status()
            assert status["rebuild_errors"] == 1
            assert "DynamicUpdateError" in status["last_error"]
            assert overlay.swap_count == 0  # the bad build never landed
        finally:
            reindexer.stop()

    def test_start_is_idempotent(self):
        overlay = make_overlay()
        reindexer = BackgroundReindexer(overlay, poll_interval=0.01)
        try:
            assert reindexer.start() is reindexer
            thread = reindexer._thread
            reindexer.start()
            assert reindexer._thread is thread
        finally:
            reindexer.stop()
