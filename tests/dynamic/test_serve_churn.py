"""Serving under churn: the dynamic endpoints of a live DistanceServer.

Protocol-level, like :mod:`tests.serving.test_server` — every test
drives a real socket against an in-process server whose engine fronts a
:class:`~repro.dynamic.DeltaOverlayIndex`.  The headline invariants:

* every answer streamed over the wire during churn equals BFS/Dijkstra
  ground truth on the materialized current graph — zero wrong answers;
* a ``/reindex`` hot-swap racing in-flight query traffic changes *no*
  answer and drops *no* request;
* mutation/reindex misuse comes back as structured 400s, never a crash.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.ct_index import CTIndex
from repro.dynamic import BackgroundReindexer, DeltaOverlayIndex
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.traversal import single_source_distances
from repro.obs.registry import MetricsRegistry
from repro.serving import DistanceServer, QueryEngine, ServeClient, ServerConfig
from repro.serving.audit import fingerprint_sha256
from tests.dynamic.test_differential_updates import MutationStream

BANDWIDTH = 3


def make_setup(seed: int = 23, n: int = 40):
    graph = gnp_graph(n, 0.12, seed=seed)
    base = CTIndex.build(graph, BANDWIDTH)
    overlay = DeltaOverlayIndex(base)
    return graph, base, overlay


def make_dynamic_server(overlay, *, reindexer=None, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("batch_window_ms", 1.0)
    return DistanceServer(
        QueryEngine(overlay),
        n=overlay.n,
        config=ServerConfig(**config_kwargs),
        fingerprint=fingerprint_sha256(overlay.base),
        registry=MetricsRegistry(),
        reindexer=reindexer,
    )


def run_dynamic(overlay, scenario, *, reindexer=None, **config_kwargs):
    async def main():
        server = make_dynamic_server(
            overlay, reindexer=reindexer, **config_kwargs
        )
        async with server:
            host, port = server.address
            async with ServeClient(host, port) as client:
                return await scenario(server, client)

    return asyncio.run(main())


def wire_ops(ops):
    """Mutation tuples -> the JSON objects ``POST /mutate`` expects."""
    payload = []
    for kind, u, v, w in ops:
        item = {"op": kind, "u": u, "v": v}
        if kind == "add":
            item["w"] = w
        payload.append(item)
    return payload


def all_pairs_truth(graph):
    return {s: single_source_distances(graph, s) for s in range(graph.n)}


class TestMutateEndpoint:
    def test_churn_stream_answers_stay_exact(self):
        graph, _, overlay = make_setup()
        stream = MutationStream(graph, seed=1, weights=None)
        rng = random.Random(2)

        async def scenario(server, client):
            wrong = 0
            for _ in range(4):
                ops = stream.batch(8)
                status, body = await client.request(
                    "POST", "/mutate", {"ops": wire_ops(ops)}
                )
                assert status == 200
                assert body["applied"] == len(ops)
                assert body["requested"] == len(ops)
                assert body["mutation_epoch"] == overlay.mutation_epoch
                assert body["patch_size"] == overlay.patch_size

                current = overlay.materialize_current()
                pairs = [
                    (rng.randrange(graph.n), rng.randrange(graph.n))
                    for _ in range(60)
                ]
                answers = await client.query_batch(pairs)
                truth = {}
                for (s, t), got in zip(pairs, answers):
                    if s not in truth:
                        truth[s] = single_source_distances(current, s)
                    if got != truth[s][t]:
                        wrong += 1
            return wrong

        assert run_dynamic(overlay, scenario) == 0
        assert overlay.patch_size > 0  # the churn really landed

    def test_invalid_op_shapes_are_structured_400s(self):
        _, _, overlay = make_setup()

        async def scenario(server, client):
            bad_bodies = [
                {"ops": "not-a-list"},
                {"ops": [{"op": "frobnicate", "u": 0, "v": 1}]},
                {"ops": [{"op": "add", "u": 0, "v": 999}]},
                {"ops": [{"op": "add", "u": 0, "v": 1, "w": "heavy"}]},
                {"ops": [{"op": "add", "u": 0, "v": 1, "w": True}]},
            ]
            statuses = []
            for body in bad_bodies:
                status, payload = await client.request("POST", "/mutate", body)
                statuses.append((status, payload["error"]))
            return statuses

        epoch = overlay.mutation_epoch
        results = run_dynamic(overlay, scenario)
        assert all(status == 400 for status, _ in results)
        assert all(error == "bad_request" for _, error in results)
        assert overlay.mutation_epoch == epoch  # nothing was applied

    def test_midstream_failure_reports_applied_prefix(self):
        graph, _, overlay = make_setup()
        u, v, _ = next(iter(graph.edges()))

        async def scenario(server, client):
            # Second op removes an edge that does not exist -> GraphError
            # after the first op already landed.
            ops = [
                {"op": "remove", "u": u, "v": v},
                {"op": "remove", "u": u, "v": v},
            ]
            return await client.request("POST", "/mutate", {"ops": ops})

        status, body = run_dynamic(overlay, scenario)
        assert status == 400
        assert "prefix may already be applied" in body["detail"]
        assert not overlay.materialize_current().has_edge(u, v)

    def test_static_engine_rejects_mutations(self):
        graph = gnp_graph(20, 0.2, seed=9)
        index = CTIndex.build(graph, 2)

        async def main():
            server = DistanceServer(
                QueryEngine(index),
                n=graph.n,
                config=ServerConfig(port=0, batch_window_ms=1.0),
                fingerprint=fingerprint_sha256(index),
                registry=MetricsRegistry(),
            )
            async with server:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    return await client.request(
                        "POST",
                        "/mutate",
                        {"ops": [{"op": "add", "u": 0, "v": 1}]},
                    )

        status, body = asyncio.run(main())
        assert status == 400
        assert "static" in body["detail"]


class TestReindexEndpoint:
    def test_wait_true_swaps_and_keeps_answers(self):
        graph, _, overlay = make_setup()
        reindexer = BackgroundReindexer(overlay)
        stream = MutationStream(graph, seed=3, weights=None)

        async def scenario(server, client):
            ops = stream.batch(10)
            await client.request("POST", "/mutate", {"ops": wire_ops(ops)})
            current = overlay.materialize_current()
            truth = all_pairs_truth(current)
            pairs = [(s, t) for s in range(graph.n) for t in range(graph.n)]
            before = await client.query_batch(pairs)

            status, body = await client.request(
                "POST", "/reindex", {"wait": True}
            )
            assert status == 200
            result = body["result"]
            assert result["swapped"] is True
            assert result["verified_pairs"] > 0
            assert len(result["fingerprint_sha256"]) == 64

            after = await client.query_batch(pairs)
            wrong = sum(
                1
                for (s, t), a, b in zip(pairs, before, after)
                if not (a == b == truth[s][t])
            )
            hstatus, health = await client.healthz()
            return wrong, hstatus, health

        wrong, hstatus, health = run_dynamic(
            overlay, scenario, reindexer=reindexer, max_queue_depth=4096
        )
        assert wrong == 0
        assert overlay.patch_size == 0
        assert hstatus == 200
        assert health["dynamic"]["swap_count"] == 1
        assert health["dynamic"]["patch_size"] == 0

    def test_inflight_queries_race_the_swap_without_wrong_answers(self):
        graph, _, overlay = make_setup()
        reindexer = BackgroundReindexer(overlay, verify_samples=8)
        stream = MutationStream(graph, seed=5, weights=None)

        async def scenario(server, client):
            ops = stream.batch(12)
            await client.request("POST", "/mutate", {"ops": wire_ops(ops)})
            truth = all_pairs_truth(overlay.materialize_current())
            pairs = [(s, t) for s in range(graph.n) for t in range(graph.n)]

            async def hammer():
                answers = []
                async with ServeClient(*server.address) as side:
                    for _ in range(6):
                        answers.append(await side.query_batch(pairs))
                return answers

            swap_task = asyncio.create_task(
                client.request("POST", "/reindex", {"wait": True})
            )
            rounds, (status, body) = await asyncio.gather(
                hammer(), swap_task
            )
            assert status == 200 and body["result"]["swapped"] is True
            wrong = sum(
                1
                for answers in rounds
                for (s, t), got in zip(pairs, answers)
                if got != truth[s][t]
            )
            return wrong, len(rounds)

        wrong, rounds = run_dynamic(
            overlay, scenario, reindexer=reindexer, max_queue_depth=4096
        )
        assert rounds == 6
        assert wrong == 0  # zero wrong answers during the in-flight swap
        assert overlay.swap_count == 1

    def test_async_request_nudges_background_thread(self):
        graph, _, overlay = make_setup()
        reindexer = BackgroundReindexer(overlay, poll_interval=0.01).start()
        stream = MutationStream(graph, seed=7, weights=None)
        try:

            async def scenario(server, client):
                ops = stream.batch(6)
                await client.request("POST", "/mutate", {"ops": wire_ops(ops)})
                baseline = reindexer.cycles()
                status, body = await client.request(
                    "POST", "/reindex", {}
                )
                assert status == 200 and body["requested"] is True
                loop = asyncio.get_running_loop()
                drained = await loop.run_in_executor(
                    None, lambda: reindexer.wait_for_cycle(baseline, 30)
                )
                assert drained
                gstatus, gbody = await client.request("GET", "/reindex")
                return gstatus, gbody

            gstatus, gbody = run_dynamic(overlay, scenario, reindexer=reindexer)
            assert gstatus == 200
            assert gbody["rebuilds_completed"] >= 1
            assert overlay.patch_size == 0
        finally:
            reindexer.stop()

    def test_reindex_without_reindexer_is_a_400(self):
        _, _, overlay = make_setup()

        async def scenario(server, client):
            results = [
                await client.request("POST", "/reindex", {"wait": True}),
                await client.request("GET", "/reindex"),
                await client.request("POST", "/reindex", {"wait": "yes"}),
            ]
            return results

        results = run_dynamic(overlay, scenario)
        for status, body in results:
            assert status == 400
            assert body["error"] == "bad_request"
        assert "no background reindexer" in results[0][1]["detail"]

    def test_stats_expose_mutations_and_reindexer(self):
        graph, _, overlay = make_setup()
        reindexer = BackgroundReindexer(overlay)
        stream = MutationStream(graph, seed=11, weights=None)

        async def scenario(server, client):
            ops = stream.batch(5)
            await client.request("POST", "/mutate", {"ops": wire_ops(ops)})
            await client.request("POST", "/reindex", {"wait": True})
            return server.stats_snapshot()

        snapshot = run_dynamic(overlay, scenario, reindexer=reindexer)
        assert snapshot["mutations_applied"] == 5
        assert snapshot["reindex"]["rebuilds_completed"] == 1
        engine_stats = snapshot["engine"]
        assert engine_stats["overlay"]["swap_count"] == 1
