"""Differential suite for dynamic updates (satellite of the overlay work).

Replays seeded random insert/delete streams over the PR-2 graph
families (:mod:`tests.differential.cases`) on top of a
:class:`~repro.dynamic.DeltaOverlayIndex`, and after **every** mutation
batch cross-checks every issued query against BFS/Dijkstra ground truth
recomputed on the materialized current graph.  A mismatch prints a
one-line reproducer that regenerates the graph *and* the exact mutation
prefix, mirroring the static differential suite's debugging workflow::

    from tests.differential.cases import make_graph; graph = make_graph(...)
    from repro.core.ct_index import CTIndex
    from repro.dynamic import DeltaOverlayIndex
    overlay = DeltaOverlayIndex(CTIndex.build(graph, B)); overlay.apply([...])
"""

from __future__ import annotations

import random

import pytest

from repro.core.ct_index import CTIndex
from repro.dynamic import BackgroundReindexer, DeltaOverlayIndex
from repro.graphs.graph import Graph
from repro.graphs.traversal import single_source_distances
from tests.differential.cases import FAST_CASES, SLOW_CASES, DifferentialCase

#: Mutation stream shape for the tier-1 sweep; the slow sweep scales up.
FAST_BATCHES = 4
FAST_BATCH_SIZE = 10
SLOW_BATCHES = 6
SLOW_BATCH_SIZE = 25

#: Sources sampled per verification pass (every target is checked for
#: each sampled source, so each pass verifies ``sources * n`` queries).
SOURCE_SAMPLE = 12


class MutationStream:
    """Seeded random insert/delete stream over a live edge set.

    Removals and insertions stay near 50/50, removals are only drawn
    from edges that currently exist, and insertions never duplicate a
    live edge — every emitted op is effective by construction, so the
    reproducer prefix replays without errors.
    """

    def __init__(self, graph: Graph, seed: int, weights: tuple[int, int] | None):
        self.rng = random.Random(seed)
        self.n = graph.n
        self.weights = weights
        self.edges = {(u, v) for u, v, _ in graph.edges()}

    def next_op(self):
        rng = self.rng
        if self.edges and rng.random() < 0.5:
            u, v = rng.choice(sorted(self.edges))
            self.edges.discard((u, v))
            return ("remove", u, v, None)
        while True:
            u, v = rng.randrange(self.n), rng.randrange(self.n)
            if u == v:
                continue
            key = (u, v) if u < v else (v, u)
            if key not in self.edges:
                self.edges.add(key)
                weight = 1 if self.weights is None else rng.randint(*self.weights)
                return ("add", key[0], key[1], weight)

    def batch(self, size: int):
        return [self.next_op() for _ in range(size)]


def _case_weights(case: DifferentialCase) -> tuple[int, int] | None:
    if "low" in case.params and "high" in case.params:
        return (case.params["low"], case.params["high"])
    return None


def _reproducer(case: DifferentialCase, bandwidth: int, applied) -> str:
    return (
        case.reproducer()
        + "; from repro.core.ct_index import CTIndex"
        + "; from repro.dynamic import DeltaOverlayIndex"
        + f"; overlay = DeltaOverlayIndex(CTIndex.build(graph, {bandwidth}))"
        + f"; overlay.apply({list(applied)!r})"
    )


def _verify_all_sampled(
    overlay: DeltaOverlayIndex,
    case: DifferentialCase,
    bandwidth: int,
    applied,
    rng: random.Random,
) -> int:
    """Check every query from SOURCE_SAMPLE sources against fresh truth."""
    current = overlay.materialize_current()
    n = current.n
    sources = rng.sample(range(n), min(SOURCE_SAMPLE, n))
    verified = 0
    for source in sources:
        truth = single_source_distances(current, source)
        got = overlay.distances_from(source, range(n))
        for target in range(n):
            assert got[target] == truth[target], (
                f"{case.name} @ CT-{bandwidth}: distance({source}, {target}) "
                f"= {got[target]!r} after {len(applied)} mutations, ground "
                f"truth says {truth[target]!r}.  Reproducer: "
                f"{_reproducer(case, bandwidth, applied)}"
            )
            verified += 1
    return verified


def _run_stream(
    case: DifferentialCase,
    *,
    batches: int,
    batch_size: int,
    rebuild_midway: bool = False,
) -> None:
    graph = case.build_graph()
    bandwidth = max(case.bandwidths)
    overlay = DeltaOverlayIndex(CTIndex.build(graph, bandwidth))
    stream = MutationStream(graph, seed=case.params.get("seed", 0), weights=_case_weights(case))
    query_rng = random.Random(0xD1F + case.params.get("seed", 0))

    applied: list = []
    verified = 0
    for batch_no in range(batches):
        ops = stream.batch(batch_size)
        assert overlay.apply(ops) == len(ops)
        applied.extend(ops)
        verified += _verify_all_sampled(overlay, case, bandwidth, applied, query_rng)
        if rebuild_midway and batch_no == batches // 2:
            result = BackgroundReindexer(overlay).rebuild_once()
            assert result.swapped, result
            # The swap must be invisible to answers.
            verified += _verify_all_sampled(
                overlay, case, bandwidth, applied, query_rng
            )
    assert verified > 0


@pytest.mark.parametrize("case", FAST_CASES, ids=lambda c: c.name)
def test_mutation_stream_matches_truth(case: DifferentialCase) -> None:
    _run_stream(case, batches=FAST_BATCHES, batch_size=FAST_BATCH_SIZE)


@pytest.mark.parametrize(
    "case", [FAST_CASES[0], FAST_CASES[3]], ids=lambda c: c.name
)
def test_mutation_stream_with_midway_rebuild(case: DifferentialCase) -> None:
    """Same stream, but a verified rebuild+swap lands mid-churn."""
    _run_stream(
        case, batches=FAST_BATCHES, batch_size=FAST_BATCH_SIZE, rebuild_midway=True
    )


@pytest.mark.slow
@pytest.mark.parametrize("case", SLOW_CASES, ids=lambda c: c.name)
def test_mutation_stream_matches_truth_slow(case: DifferentialCase) -> None:
    _run_stream(
        case,
        batches=SLOW_BATCHES,
        batch_size=SLOW_BATCH_SIZE,
        rebuild_midway=True,
    )
