"""The ``repro dynamic-bench`` driver and its recording contract.

The driver's promise is that **no number reaches BENCH_dynamic.json
unless every answer behind it matched BFS ground truth** — so the tests
cover both directions: a clean run records a schema-1 entry with
``answers_verified: true``, and an injected divergence raises before
anything is written.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.dynamic_bench import (
    BENCH_DYNAMIC_SCHEMA,
    DynamicBenchResult,
    dynamic_bench_result,
    record_dynamic_entry,
)
from repro.cli.main import main
from repro.exceptions import ReproError
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.io import write_edge_list


@pytest.fixture
def small_graph():
    return gnp_graph(30, 0.15, seed=23)


@pytest.fixture
def edge_file(tmp_path, small_graph):
    path = tmp_path / "graph.edges"
    write_edge_list(small_graph, path)
    return path


class TestBenchDriver:
    def test_clean_run_is_fully_verified(self, small_graph):
        result = dynamic_bench_result(
            small_graph,
            2,
            name="unit",
            batches=2,
            batch_size=6,
            queries_per_batch=40,
            seed=1,
        )
        assert result.mutations_applied == 12
        assert result.updates_per_second > 0
        # 2 batches x 40 queries + 64 post-swap checks, all verified.
        assert result.verified_answers == 2 * 40 + 64
        assert result.rebuild["swapped"] is True
        assert len(result.rebuild["fingerprint_sha256"]) == 64
        entry = result.entry()
        assert entry["schema"] == BENCH_DYNAMIC_SCHEMA
        assert entry["answers_verified"] is True
        assert set(entry["query_latency_us"]) == {"p50", "p95", "p99", "max"}

    def test_divergence_raises_before_recording(self, small_graph, monkeypatch):
        from repro.bench import dynamic_bench as module

        real = module.single_source_distances

        def lying(graph, source):
            truth = real(graph, source)
            return [d + 1 if i != source else d for i, d in enumerate(truth)]

        monkeypatch.setattr(module, "single_source_distances", lying)
        with pytest.raises(ReproError, match="refusing to record"):
            dynamic_bench_result(
                small_graph, 2, batches=1, batch_size=4, queries_per_batch=10
            )

    def test_record_appends_and_survives_corrupt_history(self, tmp_path):
        result = DynamicBenchResult(
            name="x",
            n=5,
            m=4,
            bandwidth=2,
            batches=1,
            batch_size=1,
            queries_per_batch=1,
            seed=0,
            mutations_applied=1,
            update_seconds=0.5,
            query_latency_us={"p50": 1.0, "p95": 1.0, "p99": 1.0, "max": 1.0},
            rebuild={"swapped": True},
            verified_answers=1,
        )
        path = tmp_path / "BENCH_dynamic.json"
        record_dynamic_entry(result, path)
        record_dynamic_entry(result, path)
        document = json.loads(path.read_text())
        assert document["schema"] == BENCH_DYNAMIC_SCHEMA
        assert len(document["entries"]) == 2
        assert result.updates_per_second == 2.0

        path.write_text("{ not json")
        record_dynamic_entry(result, path)
        assert len(json.loads(path.read_text())["entries"]) == 1


class TestCli:
    def test_dynamic_bench_records_verified_entry(
        self, edge_file, tmp_path, capsys
    ):
        out_path = tmp_path / "BENCH_dynamic.json"
        code = main(
            [
                "dynamic-bench",
                str(edge_file),
                "-d",
                "2",
                "--batches",
                "2",
                "--batch-size",
                "5",
                "--queries",
                "30",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dynamic-bench" in out
        assert "verified" in out
        document = json.loads(out_path.read_text())
        assert document["entries"][0]["answers_verified"] is True
        assert document["entries"][0]["mutations_applied"] == 10

    def test_dynamic_bench_skip_output(self, edge_file, capsys):
        code = main(
            [
                "dynamic-bench",
                str(edge_file),
                "-d",
                "2",
                "--batches",
                "1",
                "--batch-size",
                "4",
                "--queries",
                "20",
                "--output",
                "-",
            ]
        )
        assert code == 0
        assert "verified" in capsys.readouterr().out

    def test_serve_dynamic_rejects_worker_fleets(self, tmp_path, capsys):
        graph = gnp_graph(15, 0.2, seed=3)
        path = tmp_path / "g.edges"
        write_edge_list(graph, path)
        index_path = tmp_path / "idx.json"
        assert main(["build", str(path), "-d", "2", "-o", str(index_path)]) == 0
        capsys.readouterr()
        code = main(
            ["serve", str(index_path), "--dynamic", "--workers", "2"]
        )
        assert code == 1
        assert "--dynamic" in capsys.readouterr().err
