"""Hypothesis fuzz of interleaved update/query/swap sequences.

The overlay is checked against an independent *model* oracle — a plain
``{(u, v): weight}`` edge dict with its own textbook Dijkstra — so a
bug shared between the overlay and :mod:`repro.graphs.traversal` cannot
mask itself.  Sequences interleave edge insertions, deletions, weight
changes, point/batch queries, and full rebuild-swap cycles; hypothesis
shrinks any divergence to a minimal action script.

The deterministic swap-race tests pin the sharpest interleaving: a
base hot-swap landing *in the middle of an in-flight batch* must be
invisible in the answers, both when injected at an exact query index
and when real threads race swaps against a hammering
:class:`~repro.serving.engine.QueryEngine`.
"""

from __future__ import annotations

import heapq
import threading
from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ct_index import CTIndex
from repro.dynamic import BackgroundReindexer, DeltaOverlayIndex
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import INF
from repro.obs.registry import MetricsRegistry
from repro.serving.engine import QueryEngine


def oracle_sssp(n: int, edges: dict, source: int) -> list:
    """Independent Dijkstra over a plain ``{(u, v): w}`` edge dict."""
    adjacency = defaultdict(list)
    for (u, v), w in edges.items():
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))
    dist = [INF] * n
    dist[source] = 0
    heap = [(0, source)]
    while heap:
        d, vertex = heapq.heappop(heap)
        if d > dist[vertex]:
            continue
        for neighbor, weight in adjacency[vertex]:
            candidate = d + weight
            if candidate < dist[neighbor]:
                dist[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return dist


def build_overlay(n: int, edges: dict, bandwidth: int) -> DeltaOverlayIndex:
    builder = GraphBuilder(n)
    for (u, v), w in edges.items():
        builder.add_edge(u, v, w)
    return DeltaOverlayIndex(CTIndex.build(builder.build(), bandwidth))


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_interleaved_sequences_match_model_oracle(data) -> None:
    n = data.draw(st.integers(2, 12), label="n")
    bandwidth = data.draw(st.integers(0, 4), label="bandwidth")

    # Initial graph: random spanning structure is not required — sparse
    # and even empty starts are valid (and shrink targets).
    model: dict = {}
    initial = data.draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1), st.integers(1, 5)),
            max_size=2 * n,
        ),
        label="initial_edges",
    )
    for u, v, w in initial:
        if u != v:
            model[(min(u, v), max(u, v))] = w
    overlay = build_overlay(n, model, bandwidth)

    steps = data.draw(st.integers(1, 30), label="steps")
    swaps_left = 2
    for _ in range(steps):
        action = data.draw(
            st.sampled_from(["add", "remove", "query", "batch", "swap"]),
            label="action",
        )
        if action == "add":
            u = data.draw(st.integers(0, n - 1), label="u")
            v = data.draw(st.integers(0, n - 1), label="v")
            w = data.draw(st.integers(1, 5), label="w")
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            effective = overlay.add_edge(u, v, w)
            assert effective == (model.get(key) != w)
            model[key] = w
        elif action == "remove":
            if not model:
                continue
            key = data.draw(
                st.sampled_from(sorted(model)), label="removed_edge"
            )
            del model[key]
            overlay.remove_edge(*key)
        elif action == "query":
            s = data.draw(st.integers(0, n - 1), label="s")
            t = data.draw(st.integers(0, n - 1), label="t")
            assert overlay.distance(s, t) == oracle_sssp(n, model, s)[t]
        elif action == "batch":
            pairs = [(s, t) for s in range(n) for t in range(n)]
            got = overlay.distances_batch(pairs)
            truth = [oracle_sssp(n, model, s) for s in range(n)]
            assert got == [truth[s][t] for s, t in pairs]
        elif action == "swap" and swaps_left > 0:
            swaps_left -= 1
            result = BackgroundReindexer(
                overlay, verify_samples=8
            ).rebuild_once(force=True)
            assert result.swapped
            assert overlay.patch_size == 0

    # Final sweep: every pair, every request shape, against the model.
    truth = [oracle_sssp(n, model, s) for s in range(n)]
    for s in range(n):
        assert overlay.distances_from(s, range(n)) == truth[s]


class _SwapInjectingOverlay(DeltaOverlayIndex):
    """Overlay that performs an armed hot-swap after N distance calls.

    Deterministically reproduces the worst interleaving a threaded race
    can produce: half a batch answered against the old base, half
    against the swapped-in one.
    """

    def __init__(self, base):
        super().__init__(base)
        self._armed = None
        self._swap_after = 0
        self._distance_calls = 0

    def arm_swap(self, new_index, snapshot, after_calls: int) -> None:
        self._armed = (new_index, snapshot)
        self._swap_after = after_calls
        self._distance_calls = 0

    def distance(self, s, t):
        self._distance_calls += 1
        if self._armed is not None and self._distance_calls == self._swap_after:
            new_index, snapshot = self._armed
            self._armed = None
            self.swap_base(new_index, snapshot)
        return super().distance(s, t)


def _churned_overlay(cls=DeltaOverlayIndex, n: int = 24, bandwidth: int = 3):
    builder = GraphBuilder(n)
    for v in range(1, n):
        builder.add_edge(v, (v * 5 + 1) % v if v > 1 else 0)
    graph = builder.build()
    overlay = cls(CTIndex.build(graph, bandwidth))
    overlay.apply(
        [("add", u, (u + n // 2) % n, 1) for u in range(0, n // 2, 2)]
    )
    return overlay


def test_swap_midway_through_a_batch_is_invisible() -> None:
    probe = _churned_overlay()
    n = probe.n
    pairs = [(s, t) for s in range(n) for t in range(n)]
    expected = [probe.distance(s, t) for s, t in pairs]

    for split in (1, len(pairs) // 2, len(pairs) - 1):
        overlay = _churned_overlay(_SwapInjectingOverlay)
        snap = overlay.snapshot()
        fresh = CTIndex.build(snap.graph, overlay.base.bandwidth)
        overlay.arm_swap(fresh, snap, after_calls=split)
        engine = QueryEngine(overlay, registry=MetricsRegistry())
        got = engine.query_batch(pairs)
        assert overlay.swap_count == 1  # it really fired mid-batch
        assert got == expected
        # After the batch, the drained overlay still agrees.
        assert engine.query_batch(pairs) == expected


def test_threaded_swaps_never_corrupt_engine_answers() -> None:
    """Real-thread race: rebuild-swap cycles vs a hammering engine.

    Swaps are answer-neutral, so *every* answer must equal the static
    truth no matter how the two threads interleave.
    """
    overlay = _churned_overlay()
    n = overlay.n
    engine = QueryEngine(overlay, cache_capacity=64, registry=MetricsRegistry())
    pairs = [(s, t) for s in range(n) for t in range(n)]
    expected = {pair: overlay.distance(*pair) for pair in pairs}
    expected_rows = {s: overlay.distances_from(s, range(n)) for s in range(n)}

    stop = threading.Event()
    errors: list = []

    def swapper() -> None:
        reindexer = BackgroundReindexer(overlay, verify_samples=0)
        try:
            while not stop.is_set():
                reindexer.rebuild_once(force=True)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    thread = threading.Thread(target=swapper)
    thread.start()
    try:
        for _ in range(40):
            for pair in pairs[:: n // 2]:
                assert engine.query(*pair) == expected[pair]
            assert engine.query_batch(pairs) == [expected[p] for p in pairs]
            source = len(expected) % n
            assert engine.query_from(source, range(n)) == expected_rows[source]
    finally:
        stop.set()
        thread.join(timeout=30)
    assert not errors, errors
    assert overlay.swap_count >= 1  # the race actually exercised swaps
