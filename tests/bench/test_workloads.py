"""Unit tests for workload generation."""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    distinct_random_pairs,
    node_fractions,
    random_pairs,
    skewed_pairs,
    stratified_pairs,
)
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.graph import Graph


class TestRandomPairs:
    def test_count_and_range(self):
        g = gnp_graph(20, 0.2, seed=1)
        workload = random_pairs(g, 100, seed=2)
        assert len(workload) == 100
        assert all(0 <= s < 20 and 0 <= t < 20 for s, t in workload.pairs)

    def test_deterministic(self):
        g = gnp_graph(20, 0.2, seed=1)
        assert random_pairs(g, 50, seed=3).pairs == random_pairs(g, 50, seed=3).pairs
        assert random_pairs(g, 50, seed=3).pairs != random_pairs(g, 50, seed=4).pairs

    def test_distinct_pairs(self):
        g = gnp_graph(10, 0.3, seed=1)
        workload = distinct_random_pairs(g, 80, seed=5)
        assert all(s != t for s, t in workload.pairs)

    def test_distinct_pairs_tiny_graph(self):
        assert distinct_random_pairs(Graph.empty(1), 10, seed=1).pairs == ()


class TestSkewedPairs:
    def test_count_range_and_determinism(self):
        g = gnp_graph(30, 0.2, seed=1)
        workload = skewed_pairs(g, 200, seed=2)
        assert len(workload) == 200
        assert all(0 <= s < 30 and 0 <= t < 30 for s, t in workload.pairs)
        assert workload.pairs == skewed_pairs(g, 200, seed=2).pairs

    def test_hot_set_dominates(self):
        g = gnp_graph(50, 0.2, seed=1)
        workload = skewed_pairs(g, 500, seed=3, hot_fraction=0.9, hot_pairs=4)
        from collections import Counter

        counts = Counter(workload.pairs)
        top4 = sum(c for _, c in counts.most_common(4))
        assert top4 >= 0.8 * len(workload)

    def test_no_skew_extreme(self):
        g = gnp_graph(50, 0.2, seed=1)
        workload = skewed_pairs(g, 300, seed=4, hot_fraction=0.0)
        from collections import Counter

        assert Counter(workload.pairs).most_common(1)[0][1] < 30

    def test_validation(self):
        g = gnp_graph(10, 0.3, seed=1)
        with pytest.raises(ValueError):
            skewed_pairs(g, 10, seed=1, hot_fraction=1.5)
        with pytest.raises(ValueError):
            skewed_pairs(g, 10, seed=1, hot_pairs=0)


class TestStratified:
    def test_groups_respected(self):
        g = gnp_graph(20, 0.2, seed=1)
        workload = stratified_pairs(g, [0, 1, 2], [10, 11], 50, seed=6)
        assert all(s in (0, 1, 2) and t in (10, 11) for s, t in workload.pairs)

    def test_empty_group(self):
        g = gnp_graph(5, 0.5, seed=1)
        assert stratified_pairs(g, [], [1], 10, seed=1).pairs == ()


class TestNodeFractions:
    def test_cumulative_prefixes(self):
        g = gnp_graph(100, 0.05, seed=1)
        groups = node_fractions(g, [0.2, 0.4, 1.0], seed=7)
        assert len(groups[0]) == 20
        assert len(groups[1]) == 40
        assert len(groups[2]) == 100
        assert set(groups[0]) <= set(groups[1]) <= set(groups[2])

    def test_sorted_output(self):
        g = gnp_graph(30, 0.1, seed=1)
        groups = node_fractions(g, [0.5], seed=8)
        assert groups[0] == sorted(groups[0])

    def test_bad_fraction(self):
        g = gnp_graph(10, 0.1, seed=1)
        with pytest.raises(ValueError):
            node_fractions(g, [1.5], seed=9)
        with pytest.raises(ValueError):
            node_fractions(g, [0.0], seed=9)
