"""Unit tests for the bench runner (method dispatch, OM handling)."""

from __future__ import annotations

import pytest

from repro.bench.runner import MethodResult, build_method, measure_query_seconds, run_method
from repro.bench.workloads import random_pairs
from repro.exceptions import OverMemoryError, ReproError
from repro.graphs.generators.random_graphs import gnp_graph
from repro.graphs.traversal import all_pairs_distances


@pytest.fixture(scope="module")
def graph():
    return gnp_graph(40, 0.12, seed=17)


class TestBuildMethod:
    @pytest.mark.parametrize(
        "method",
        ["PLL", "PSL", "PSL+", "PSL*", "PSL+ (CT-0)", "CT-0", "CT-5", "CD-3", "H2H"],
    )
    def test_dispatch_builds_exact_index(self, graph, method):
        index = build_method(method, graph)
        truth = all_pairs_distances(graph)
        for s in range(0, graph.n, 7):
            for t in range(0, graph.n, 5):
                assert index.distance(s, t) == truth[s][t], (method, s, t)

    def test_unknown_method(self, graph):
        with pytest.raises(ReproError):
            build_method("Dijkstra", graph)

    def test_budget_propagates(self, graph):
        with pytest.raises(OverMemoryError):
            build_method("PLL", graph, limit_mb=0.0001)


class TestRunMethod:
    def test_ok_result(self, graph):
        workload = random_pairs(graph, 50, seed=1)
        result = run_method("toy", graph, "CT-5", workload, limit_mb=None)
        assert result.ok
        assert result.entries > 0
        assert result.size_mb > 0
        assert result.query_seconds > 0
        assert result.cell("size") != "OM"

    def test_om_result(self, graph):
        workload = random_pairs(graph, 10, seed=2)
        result = run_method("toy", graph, "PLL", workload, limit_mb=0.0001)
        assert not result.ok
        assert result.cell("size") == "OM"
        assert result.cell("query") == "OM"
        assert "modeled_bytes_at_abort" in result.extra

    def test_cell_unknown_metric(self):
        result = MethodResult(dataset="d", method="m", status="ok")
        with pytest.raises(ReproError):
            result.cell("altitude")


class TestMeasure:
    def test_empty_workload(self, graph):
        index = build_method("CT-3", graph)
        from repro.bench.workloads import QueryWorkload

        assert measure_query_seconds(index, QueryWorkload("empty", ())) == 0.0

    def test_positive_time(self, graph):
        index = build_method("CT-3", graph)
        workload = random_pairs(graph, 100, seed=3)
        assert measure_query_seconds(index, workload) > 0
