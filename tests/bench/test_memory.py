"""Unit tests for actual-memory measurement."""

from __future__ import annotations

from repro.bench.memory import deep_size_of, memory_report
from repro.core.ct_index import CTIndex
from repro.graphs.generators.random_graphs import gnp_graph
from repro.labeling.pll import build_pll


class TestDeepSizeOf:
    def test_containers(self):
        assert deep_size_of([1, 2, 3]) > deep_size_of([])
        assert deep_size_of({"a": [1, 2]}) > deep_size_of({})

    def test_shared_objects_counted_once(self):
        shared = list(range(100))
        assert deep_size_of([shared, shared]) < 2 * deep_size_of([shared])

    def test_slots_objects(self):
        g = gnp_graph(20, 0.2, seed=1)  # Graph uses __slots__
        assert deep_size_of(g) > 1000

    def test_grows_with_index_size(self):
        small = build_pll(gnp_graph(15, 0.2, seed=2))
        large = build_pll(gnp_graph(60, 0.2, seed=2))
        assert deep_size_of(large) > deep_size_of(small)


class TestMemoryReport:
    def test_report_fields(self):
        g = gnp_graph(40, 0.15, seed=3)
        report = memory_report(CTIndex.build(g, 3))
        assert report["modeled_mb"] > 0
        assert report["actual_python_mb"] > report["modeled_mb"]
        assert report["overhead_factor"] > 1

    def test_documents_python_overhead(self):
        # The rationale of the modeled-bytes accounting: CPython's boxed
        # representation costs several times the C layout.
        g = gnp_graph(50, 0.15, seed=4)
        report = memory_report(build_pll(g))
        assert report["overhead_factor"] >= 2
