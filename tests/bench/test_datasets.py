"""Unit tests for the dataset registry."""

from __future__ import annotations

import pytest

from repro.bench.datasets import (
    EXP4_DATASETS,
    EXP6_DATASETS,
    EXP7_DATASETS,
    dataset_names,
    dataset_spec,
    load_dataset,
)
from repro.exceptions import GraphError
from repro.graphs.traversal import is_connected


class TestRegistry:
    def test_fifteen_entries(self):
        assert len(dataset_names()) == 15

    def test_ordering_smallest_first(self):
        names = dataset_names()
        assert names[0] == "talk"
        assert names[-1] == "uk07"

    def test_unknown_name(self):
        with pytest.raises(GraphError):
            dataset_spec("imaginary")

    def test_experiment_subsets_exist(self):
        names = set(dataset_names())
        assert set(EXP4_DATASETS) <= names
        assert set(EXP6_DATASETS) <= names
        assert set(EXP7_DATASETS) <= names

    def test_specs_carry_paper_scale(self):
        spec = dataset_spec("uk07")
        assert spec.paper_edges > 5e9
        assert spec.kind == "web"


class TestLoading:
    def test_load_is_cached(self):
        assert load_dataset("talk") is load_dataset("talk")

    def test_deterministic_shape(self):
        g = load_dataset("talk")
        assert g.n == 1344
        assert g.m == 14137

    @pytest.mark.parametrize("name", ["talk", "dblp", "epin"])
    def test_small_datasets_connected(self, name):
        assert is_connected(load_dataset(name))

    def test_sizes_grow_along_registry(self):
        names = dataset_names()
        sizes = [load_dataset(n).n for n in (names[0], names[7], names[-1])]
        assert sizes[0] < sizes[1] < sizes[2]
