"""Scale-bench: tier generation, correctness gates, and the artifact.

The load-bearing property: **the gate fires before anything is
written** — a build whose fingerprint diverges from the serial
reference must leave ``BENCH_scale.json`` untouched, even for tiers
that had already passed their own gates.
"""

from __future__ import annotations

import json

import pytest

import repro.bench.scale_bench as scale_bench
from repro.api import BuildConfig
from repro.bench.scale_bench import (
    DEFAULT_TIERS,
    FINGERPRINT_MAX_N,
    run_scale_bench,
    scale_bench_entry,
)
from repro.exceptions import ReproError


def _tier(name):
    return next(tier for tier in DEFAULT_TIERS if tier.name == name)


class TestTiers:
    def test_default_tiers_span_the_scales(self):
        targets = sorted(tier.target_n for tier in DEFAULT_TIERS)
        assert targets[0] <= 10**3
        assert targets[-1] >= 10**6
        assert {tier.family for tier in DEFAULT_TIERS} == {"cp", "rmat"}

    def test_generation_is_deterministic(self):
        tier = _tier("cp-1k")
        a, b = tier.generate(), tier.generate()
        assert a.n == b.n and a.m == b.m
        assert list(a.neighbors(0)) == list(b.neighbors(0))

    def test_unknown_tier_name_rejected(self):
        with pytest.raises(ReproError, match="unknown scale tiers"):
            run_scale_bench(["cp-1k", "nope"], output=None)

    def test_empty_selection_rejected(self):
        with pytest.raises(ReproError, match="no tiers"):
            run_scale_bench(max_n=1, output=None)


class TestSmallTierSmoke:
    def test_smallest_tier_records_a_verified_entry(self, tmp_path):
        out = tmp_path / "BENCH_scale.json"
        entries, text = run_scale_bench(["cp-1k"], output=out)
        assert len(entries) == 1
        entry = entries[0]
        assert entry["n"] <= FINGERPRINT_MAX_N
        assert entry["verify"]["mode"] == "fingerprint"
        assert entry["verify"]["identical"] is True
        assert entry["config"] == scale_bench.DEFAULT_CONFIG.to_dict()
        assert entry["build_s"] >= 0 and entry["peak_rss_mb"] > 0
        document = json.loads(out.read_text())
        assert document["schema"] == 2
        assert document["entries"][0]["tier"] == "cp-1k"
        assert "recorded_at" in document["entries"][0]
        assert "cp-1k" in text
        assert entry["workers"] == 1
        assert entry["speedup_vs_serial"] is None
        assert "round_split" in entry

    def test_custom_config_is_embedded(self, tmp_path):
        config = BuildConfig(bandwidth=8, backend="flat", core_backend="psl")
        entries, _ = run_scale_bench(["cp-1k"], config=config, output=None)
        assert entries[0]["config"]["bandwidth"] == 8

    def test_appends_to_existing_history(self, tmp_path):
        out = tmp_path / "BENCH_scale.json"
        run_scale_bench(["cp-1k"], output=out)
        run_scale_bench(["cp-1k"], output=out)
        assert len(json.loads(out.read_text())["entries"]) == 2


class TestSchema2:
    def test_workers_sweep_records_speedup(self, tmp_path):
        out = tmp_path / "BENCH_scale.json"
        entries, text = run_scale_bench(["cp-1k"], workers=[1, 2], output=out)
        assert [e["workers"] for e in entries] == [1, 2]
        assert entries[0]["speedup_vs_serial"] is None
        assert isinstance(entries[1]["speedup_vs_serial"], float)
        assert entries[1]["config"]["workers"] == 2
        assert "speedup" in text

    def test_hopdb_ablation_appends_gated_pair(self):
        entries, _ = run_scale_bench(["cp-1k"], hopdb_ablation=True, output=None)
        ablation = [e for e in entries if e.get("ablation") == "hopdb_order"]
        assert len(ablation) == 2
        degree, psl_rank = ablation
        assert degree["config"]["hopdb_order"] == "degree"
        assert degree["verify"]["mode"] == "fingerprint"
        assert psl_rank["config"]["hopdb_order"] == "psl-rank"
        # A non-degree hub order legitimately changes the bytes, so the
        # gate must be exactness (BFS), never fingerprint identity.
        assert psl_rank["verify"]["mode"] == "bfs"
        assert psl_rank["verify"]["identical"] is True

    def test_schema1_history_upgrades_on_append(self, tmp_path):
        out = tmp_path / "BENCH_scale.json"
        legacy_entry = {
            "tier": "cp-1k",
            "config": {"workers": None},
            "verify": {"mode": "fingerprint"},
        }
        out.write_text(
            json.dumps({"schema": 1, "entries": [legacy_entry]}), encoding="utf-8"
        )
        run_scale_bench(["cp-1k"], output=out)
        document = json.loads(out.read_text())
        assert document["schema"] == 2
        upgraded = document["entries"][0]
        assert upgraded["workers"] == 1
        assert upgraded["round_split"] is None
        assert upgraded["speedup_vs_serial"] is None
        assert len(document["entries"]) == 2

    def test_peak_rss_uses_combined_accounting(self, monkeypatch):
        import repro.bench.memory as memory

        monkeypatch.setattr(memory, "peak_rss_mb", lambda: 100.0)
        memory.reset_child_peak_rss()
        memory.record_child_peak_rss(2048)  # 2 MB child
        assert scale_bench._peak_rss_mb() == pytest.approx(102.0)
        memory.reset_child_peak_rss()


class TestGateFiresBeforeWriting:
    def test_fingerprint_mismatch_writes_nothing(self, tmp_path, monkeypatch):
        out = tmp_path / "BENCH_scale.json"
        real = scale_bench.index_fingerprint
        # Corrupt the reference side only: the gate must trip.
        calls = []

        def skewed(index):
            calls.append(index)
            print_ = real(index)
            return print_ if len(calls) % 2 else print_ + b"x"

        monkeypatch.setattr(scale_bench, "index_fingerprint", skewed)
        with pytest.raises(ReproError, match="fingerprint gate"):
            run_scale_bench(["cp-1k"], output=out)
        assert not out.exists()

    def test_late_failure_discards_passed_tiers(self, tmp_path, monkeypatch):
        out = tmp_path / "BENCH_scale.json"
        seen = []

        def failing_verify(graph, index, config):
            seen.append(graph.n)
            if len(seen) > 1:
                raise ReproError("scale-bench fingerprint gate: forced")
            return {"mode": "fingerprint", "reference_s": 0.0, "identical": True}

        monkeypatch.setattr(scale_bench, "_verify_fingerprint", failing_verify)
        with pytest.raises(ReproError):
            run_scale_bench(["cp-1k", "rmat-10"], output=out)
        assert len(seen) == 2  # first tier passed, second tripped
        assert not out.exists()

    def test_bfs_gate_trips_on_a_wrong_distance(self):
        tier = _tier("cp-1k")
        graph = tier.generate()
        from repro.core.ct_index import CTIndex

        index = CTIndex.build(graph, config=scale_bench.DEFAULT_CONFIG)

        class Lying:
            n = graph.n

            def distance(self, s, t):
                return index.distance(s, t) + (1 if s != t else 0)

        with pytest.raises(ReproError, match="BFS gate"):
            scale_bench._verify_bfs(graph, Lying(), sources=1, targets=5)


@pytest.mark.slow
class TestLargeTiers:
    def test_hundred_thousand_node_tier_passes_its_gate(self, tmp_path):
        out = tmp_path / "BENCH_scale.json"
        entries, _ = run_scale_bench(["cp-100k"], output=out)
        assert entries[0]["n"] >= 90_000
        assert entries[0]["verify"]["mode"] == "bfs"
        assert entries[0]["verify"]["identical"] is True
        assert out.exists()
