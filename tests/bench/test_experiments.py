"""Smoke tests for the experiment drivers on minimal inputs.

The full-size versions run under ``benchmarks/``; these cover driver
plumbing (row schemas, OM propagation, catalog dispatch) quickly inside
the unit suite.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.bench.experiments import (
    ExperimentCatalog,
    ablation_ct_core_order,
    exp1_index_size,
    exp4_bandwidth_effect,
    exp7_bandwidth_search,
    lemma3_lower_bound,
    run_experiment,
    table1_complexity,
)


class TestDrivers:
    def test_exp1_subset(self):
        rows, text = exp1_index_size(datasets=("talk",))
        assert len(rows) == 1
        assert rows[0]["dataset"] == "talk"
        assert "CT-100" in rows[0]
        assert "Exp 1" in text

    def test_exp4_subset(self):
        rows, text = exp4_bandwidth_effect(datasets=("talk",), bandwidths=(0, 5))
        assert len(rows) == 2
        assert {r["d"] for r in rows} == {0, 5}
        assert "size_mb" in rows[0]

    def test_exp7_subset(self):
        rows, _ = exp7_bandwidth_search(datasets=("talk",), memory_limits_mb=(0.3, 5.0))
        assert len(rows) == 2
        tight, generous = rows
        assert int(str(generous["chosen_d"])) <= int(str(tight["chosen_d"]))

    def test_exp5_subset(self):
        from repro.bench.experiments import exp5_scalability

        rows, _ = exp5_scalability(
            datasets=("talk",), fractions=(0.3, 1.0), methods=("CT-20",)
        )
        assert len(rows) == 2
        small, full = rows
        assert int(str(small["n"])) < int(str(full["n"]))
        assert float(str(small["size_mb"])) <= float(str(full["size_mb"]))

    def test_exp6_subset(self):
        from repro.bench.experiments import exp6_cd_comparison

        rows, _ = exp6_cd_comparison(datasets=("talk",), bandwidth=50)
        methods = {str(r["method"]) for r in rows if r["dataset"] == "talk"}
        assert methods == {"CD-50", "CT-50"}

    def test_structure_profile_subset(self):
        from repro.bench.experiments import structure_profile

        rows, _ = structure_profile(datasets=("talk",), bandwidths=(0, 5))
        assert len(rows) == 2
        assert int(str(rows[1]["lambda"])) > 0

    def test_directed_extension_small(self):
        from repro.bench.experiments import directed_extension

        rows, _ = directed_extension(seed=1, bandwidths=(2,))
        assert any(str(r["method"]).startswith("directed CT") for r in rows)

    def test_serving_small(self):
        from repro.bench.experiments import serving_benchmark

        rows, text = serving_benchmark(
            dataset="talk", bandwidth=5, queries=300, hot_pairs=6, cache_capacity=256
        )
        by_config = {str(r["config"]): r for r in rows}
        assert set(by_config) == {"uncached", "ext-cache", "ext+pair-cache"}
        assert by_config["ext-cache"]["core_probes"] <= by_config["uncached"]["core_probes"]
        assert "Serving" in text

    def test_table1_small(self):
        rows, _ = table1_complexity(scales=(0.08,), bandwidth=10)
        methods = {str(r["method"]) for r in rows}
        assert methods == {"H2H", "CD-10", "CT-10"}

    def test_lemma3_small(self):
        rows, _ = lemma3_lower_bound(k_values=(3,), d_values=(6,))
        assert len(rows) == 1
        assert float(str(rows[0]["entries_per_nd"])) > 0

    def test_ablation_ct_core_order(self):
        rows, _ = ablation_ct_core_order(dataset="talk", bandwidth=10)
        assert {str(r["core_order"]) for r in rows} == {"degree", "elimination"}


class TestCatalog:
    def test_catalog_names(self):
        drivers = ExperimentCatalog.drivers
        for name in ("exp1", "exp4", "exp7", "table1", "lemma3"):
            assert name in drivers

    def test_run_experiment_unknown(self):
        with pytest.raises(ConfigurationError):
            run_experiment("exp42")
