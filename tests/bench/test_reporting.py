"""Unit tests for table rendering."""

from __future__ import annotations

from repro.bench.reporting import format_table, pivot


class TestFormatTable:
    def test_basic_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "222" in lines[3]

    def test_title(self):
        text = format_table([{"a": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        assert format_table([]) == ""
        assert format_table([], title="T") == "T\n"

    def test_missing_cells_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows, ["a", "b"])
        assert "3" in text

    def test_float_formatting(self):
        text = format_table([{"x": 0.000012}, {"x": 1.5}])
        assert "1.20e-05" in text
        assert "1.500" in text

    def test_explicit_columns_order(self):
        text = format_table([{"b": 1, "a": 2}], columns=["a", "b"])
        header = text.splitlines()[0]
        assert header.index("a") < header.index("b")


class TestPivot:
    def test_pivot_long_to_wide(self):
        rows = [
            {"dataset": "x", "method": "A", "size": 1},
            {"dataset": "x", "method": "B", "size": 2},
            {"dataset": "y", "method": "A", "size": 3},
        ]
        wide = pivot(rows, "dataset", "method", "size")
        assert wide == [{"dataset": "x", "A": 1, "B": 2}, {"dataset": "y", "A": 3}]

    def test_pivot_preserves_row_order(self):
        rows = [
            {"k": "second", "c": "m", "v": 1},
            {"k": "first", "c": "m", "v": 2},
        ]
        wide = pivot(rows, "k", "c", "v")
        assert [r["k"] for r in wide] == ["second", "first"]
