"""Unit tests for ASCII chart rendering."""

from __future__ import annotations

from repro.bench.charts import horizontal_bar_chart


class TestBarChart:
    ROWS = [
        {"dataset": "a", "X": "1.0", "Y": "10.0"},
        {"dataset": "b", "X": "100.0", "Y": "OM"},
    ]

    def test_renders_bars(self):
        text = horizontal_bar_chart(self.ROWS, label="dataset", series=["X", "Y"])
        assert "#" in text
        assert "OM" in text

    def test_log_scale_lengths(self):
        text = horizontal_bar_chart(
            self.ROWS, label="dataset", series=["X", "Y"], width=21, log_scale=True
        )
        lines = [line for line in text.splitlines() if "#" in line]
        lengths = sorted(line.count("#") for line in lines)
        # Values 1, 10, 100 on a log axis: min bar, midpoint, full width.
        assert lengths[0] == 1
        assert lengths[-1] == 21
        assert 8 <= lengths[1] <= 14

    def test_title_and_scale_note(self):
        text = horizontal_bar_chart(
            self.ROWS, label="dataset", series=["X"], title="My Figure"
        )
        assert text.startswith("My Figure")
        assert "log scale" in text

    def test_linear_scale(self):
        text = horizontal_bar_chart(
            self.ROWS, label="dataset", series=["X"], log_scale=False
        )
        assert "linear scale" in text

    def test_all_missing(self):
        rows = [{"dataset": "a", "X": "OM"}]
        assert horizontal_bar_chart(rows, label="dataset", series=["X"], title="T") == "T\n"

    def test_equal_values(self):
        rows = [{"dataset": "a", "X": "5"}, {"dataset": "b", "X": "5"}]
        text = horizontal_bar_chart(rows, label="dataset", series=["X"], width=10)
        lines = [line for line in text.splitlines() if "#" in line]
        assert all(line.count("#") == 10 for line in lines)

    def test_group_shown_once(self):
        text = horizontal_bar_chart(self.ROWS, label="dataset", series=["X", "Y"])
        # Group label appears on the first series row only.
        assert text.count("a  X") == 1
