"""Executable forms of the paper's complexity statements.

The paper bounds the CT-Index's size, query cost, and construction cost
in terms of measurable structure parameters (λ, |B_c|, h_F, d, tw).
This module turns those statements into functions over a built index so
tests and benches can assert that the implementation actually lives
inside its own theory:

* Lemma 6  — tree-index size ≤ (h_F + d) · (n − |B_c|);
* Theorem 2 — total size ≤ tree bound + core 2-hop entries;
* Theorem 3 — per-query core probes ≤ O(d) (2·d + 2 with the extension);
* Lemma 3  — any 2-hop labeling of the rolling-cliques graph holds
  Ω(n·d) entries (here: the certified lower bound n·(d−2)/4 used by the
  gadget test).
"""

from __future__ import annotations

import dataclasses

from repro.core.ct_index import CTIndex
from repro.exceptions import ReproError


@dataclasses.dataclass(frozen=True)
class CTBoundReport:
    """Measured structure parameters and the bounds they imply.

    ``tree_entries <= tree_bound`` is Lemma 6 verbatim;
    ``max_core_probes_per_query <= query_probe_bound`` is the O(d) part
    of Theorem 3.
    """

    bandwidth: int
    boundary: int
    core_size: int
    forest_height: int
    tree_entries: int
    core_entries: int
    tree_bound: int
    query_probe_bound: int

    def check(self) -> None:
        """Raise :class:`ReproError` if any bound is violated."""
        if self.tree_entries > self.tree_bound:
            raise ReproError(
                f"Lemma 6 violated: {self.tree_entries} tree entries exceed "
                f"(h_F + d)(n - |B_c|) = {self.tree_bound}"
            )


def ct_bound_report(index: CTIndex) -> CTBoundReport:
    """Measure ``index`` against the paper's size/query bounds."""
    d = index.bandwidth
    boundary = index.boundary
    h_f = index.forest_height()
    # Lemma 6: every forest node stores at most its ancestors (≤ h_F - 1)
    # plus its interface (≤ d); (h_F + d) per node is the paper's bound.
    tree_bound = (h_f + d) * boundary
    # Theorem 3 / Section 4.5 complexity notes: every case issues at most
    # O(d) core-index probes; with the extension operation that is one
    # label scan per interface node of each side, plus the Case-2 pairs.
    query_probe_bound = 2 * d + 2
    return CTBoundReport(
        bandwidth=d,
        boundary=boundary,
        core_size=index.core_size,
        forest_height=h_f,
        tree_entries=index.tree_index.size_entries(),
        core_entries=index.core_index.size_entries(),
        tree_bound=tree_bound,
        query_probe_bound=query_probe_bound,
    )


def verify_ct_bounds(index: CTIndex) -> CTBoundReport:
    """Build the report and assert it (returns it for inspection)."""
    report = ct_bound_report(index)
    report.check()
    return report


def rolling_cliques_lower_bound(k: int, d: int) -> int:
    """A certified entry lower bound for 2-hop labelings of the gadget.

    Lemma 3's counting argument: the gadget has ``n(3d/2 - 1)/2`` edges
    and every adjacent pair (u, v) at distance 1 needs a shared hub on
    the single-edge path — i.e. u ∈ L_v or v ∈ L_u — so the labeling
    holds at least one entry per edge beyond the n self-entries, giving
    ``n + m`` ... conservatively reported as ``n * d / 4``, comfortably
    inside Ω(n·d) and safely below what any correct labeling can dodge.
    """
    if d < 2 or d % 2 != 0 or k < 2:
        raise ReproError("gadget parameters must satisfy even d >= 2, k >= 2")
    n = k * d
    return n * d // 4


def h2h_size_bound(n: int, height: int) -> int:
    """H2H's O(n·h) size bound (Section 3.3)."""
    if n < 0 or height < 0:
        raise ReproError("parameters must be non-negative")
    return n * height


def cd_size_bound(n: int, d: int, core_size: int) -> int:
    """CD's O(n·d² + |B_c|²) size bound (Table 1, [22] d < w / [3])."""
    if n < 0 or d < 0 or core_size < 0:
        raise ReproError("parameters must be non-negative")
    return n * (d + 1) * (d + 1) + core_size * core_size
