"""Observability overhead benchmark (the ``repro obs-bench`` driver).

Instrumentation that changes what it measures is worse than none, so
this driver quantifies the cost of :mod:`repro.obs` on the serving hot
path:

1. build one CT-Index and replay the same seeded query stream through a
   :class:`~repro.serving.engine.QueryEngine` twice — once with
   observability disabled (the production default: every ``span()``
   call returns the shared no-op) and once under
   :func:`repro.obs.observe` (per-query spans recorded, counters live);
2. verify the two passes return **identical answers** — observability
   must never change a distance;
3. run one fully traced build and fold its spans into the per-phase
   breakdown (MDE, core labeling, forest labeling, compaction, ...).

``record_obs_entry`` appends the measurement to ``BENCH_obs.json``
(same ``{"schema": 1, "entries": [...]}`` shape as the build and
storage artifacts), so the overhead has a history — a regression that
makes the disabled path expensive shows up as a trend break, not a
vibe.

Timing uses the best of ``repeats`` passes per configuration, which
discards scheduler noise; the enabled pass re-installs a fresh tracer
every repeat so span accumulation does not grow the working set across
repeats.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

import repro.obs as obs
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table
from repro.bench.workloads import random_pairs
from repro.core.ct_index import CTIndex
from repro.exceptions import ReproError
from repro.graphs.graph import Graph
from repro.obs.export import summarize_trace
from repro.obs.tracing import Tracer
from repro.serving.engine import QueryEngine

#: Default artifact path, relative to the working directory.
BENCH_OBS_PATH = "BENCH_obs.json"

#: Overhead (fractional) the disabled-vs-enabled comparison is allowed
#: before :func:`obs_bench_result` flags the row; the acceptance bar for
#: the *disabled* path is the CI smoke step, which compares against a
#: build with the instrumentation short-circuited.
OVERHEAD_BUDGET = 0.05


@dataclasses.dataclass
class ObsBenchResult:
    """One graph's observability-overhead measurement."""

    name: str
    n: int
    m: int
    bandwidth: int
    #: One row per configuration (``disabled`` / ``enabled``).
    rows: list[dict]
    #: Per-phase breakdown of one traced build (name, count, total_ms).
    phases: list[dict]
    #: Both query passes returned the same answers.
    identical: bool
    #: The query kernel the measured index resolved to.
    kernel: str = "python"

    @property
    def overhead(self) -> float:
        """Fractional slowdown of the enabled pass over the disabled one."""
        disabled = next(r for r in self.rows if r["config"] == "disabled")
        enabled = next(r for r in self.rows if r["config"] == "enabled")
        if not disabled["mean_us"]:
            return 0.0
        return enabled["mean_us"] / disabled["mean_us"] - 1.0

    def entry(self) -> dict:
        """JSON-ready record for ``BENCH_obs.json``."""
        return {
            "dataset": self.name,
            "n": self.n,
            "m": self.m,
            "bandwidth": self.bandwidth,
            "rows": self.rows,
            "phases": self.phases,
            "overhead_pct": round(self.overhead * 100, 2),
            "identical": self.identical,
            "kernel": self.kernel,
        }


def _time_stream(engine: QueryEngine, pairs, repeats: int) -> tuple[float, list]:
    """Best-of-``repeats`` wall time for the stream; returns answers too."""
    answers = [engine.query(s, t) for s, t in pairs]  # warm caches once
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for s, t in pairs:
            engine.query(s, t)
        best = min(best, time.perf_counter() - started)
    return best, answers


def obs_bench_result(
    graph: Graph,
    bandwidth: int,
    *,
    name: str = "graph",
    queries: int = 2000,
    seed: int = 12345,
    repeats: int = 3,
    kernel: str = "auto",
) -> ObsBenchResult:
    """Measure observability overhead on ``graph``'s serving hot path.

    ``kernel`` pins the query kernel of the measured index
    (``"auto"`` | ``"numpy"`` | ``"python"``, see :mod:`repro.kernels`)
    so overhead numbers are attributable to one code path.

    Raises :class:`ReproError` if the instrumented pass returns a
    different answer than the plain pass for any query — that would be
    an observability bug, not a benchmark data point.
    """
    index = CTIndex.build(graph, bandwidth, backend="flat", kernel=kernel)
    workload = random_pairs(graph, queries, seed=seed)
    pairs = workload.pairs

    engine = QueryEngine(index, cache_capacity=None)
    disabled_s, answers_plain = _time_stream(engine, pairs, repeats)

    engine.reset_stats()
    best_enabled = float("inf")
    answers_traced: list = []
    for _ in range(repeats):
        with obs.observe(Tracer()):
            started = time.perf_counter()
            answers_traced = [engine.query(s, t) for s, t in pairs]
            best_enabled = min(best_enabled, time.perf_counter() - started)
    enabled_s = best_enabled

    identical = answers_plain == answers_traced
    if not identical:
        raise ReproError(
            f"observability changed answers on {name!r}: the traced query "
            "pass disagrees with the plain pass"
        )

    per_query = 1e6 / max(len(pairs), 1)
    rows = [
        {
            "config": "disabled",
            "queries": len(pairs),
            "total_ms": round(disabled_s * 1e3, 3),
            "mean_us": round(disabled_s * per_query, 3),
        },
        {
            "config": "enabled",
            "queries": len(pairs),
            "total_ms": round(enabled_s * 1e3, 3),
            "mean_us": round(enabled_s * per_query, 3),
        },
    ]

    with obs.observe(Tracer()) as tracer:
        CTIndex.build(graph, bandwidth, backend="flat")
    phases = summarize_trace([span.as_record() for span in tracer.finished])

    return ObsBenchResult(
        name=name,
        n=graph.n,
        m=graph.m,
        bandwidth=bandwidth,
        rows=rows,
        phases=phases,
        identical=identical,
        kernel=index.kernel,
    )


def record_obs_entry(result: ObsBenchResult, path=BENCH_OBS_PATH) -> dict:
    """Append ``result`` to the ``BENCH_obs.json`` history document.

    Same contract as :func:`repro.bench.build_bench.record_entry`: a
    missing or corrupt file starts a fresh history.
    """
    path = Path(path)
    document = {"schema": 1, "entries": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(loaded, dict) and isinstance(loaded.get("entries"), list):
                document = loaded
        except (OSError, json.JSONDecodeError):
            pass
    entry = result.entry()
    entry["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    document["entries"].append(entry)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return entry


def run_obs_bench(
    datasets=None,
    bandwidth: int = 20,
    *,
    queries: int = 2000,
    output=BENCH_OBS_PATH,
) -> tuple[list[dict], str]:
    """Sweep ``datasets`` (default: the smallest registry graph) and record.

    Returns ``(rows, text)`` like the other experiment drivers.
    """
    names = list(datasets) if datasets is not None else ["talk"]
    rows: list[dict] = []
    for name in names:
        graph = load_dataset(name)
        result = obs_bench_result(
            graph, bandwidth, name=name, queries=queries
        )
        if output is not None:
            record_obs_entry(result, output)
        for row in result.rows:
            rows.append(
                {
                    "dataset": name,
                    **row,
                    "overhead_pct": round(result.overhead * 100, 2),
                    "identical": result.identical,
                }
            )
    text = format_table(
        rows,
        ["dataset", "config", "queries", "total_ms", "mean_us", "overhead_pct", "identical"],
        title=f"obs-bench — tracing disabled vs enabled on the CT-{bandwidth} serving path",
    )
    return rows, text


__all__ = [
    "BENCH_OBS_PATH",
    "OVERHEAD_BUDGET",
    "ObsBenchResult",
    "obs_bench_result",
    "record_obs_entry",
    "run_obs_bench",
]
