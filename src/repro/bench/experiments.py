"""Drivers for every table and figure of the paper's evaluation section.

Each ``expN_*`` function regenerates one artifact (DESIGN.md §4 maps
them) and returns ``(rows, text)``: the raw rows for programmatic
checks, and the rendered table that mirrors what the paper plots.

Absolute numbers differ from the paper (pure Python on synthetic
analogues, see DESIGN.md §3); the *shapes* — who wins, roughly by what
factor, where OM hits — are the reproduction target and are recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
import time
import zlib

from repro.exceptions import ConfigurationError, OverMemoryError
from repro.bench.datasets import (
    EXP4_DATASETS,
    EXP6_DATASETS,
    EXP7_DATASETS,
    dataset_spec,
    load_dataset,
)
from repro.bench.reporting import format_table
from repro.bench.runner import (
    BENCH_QUERY_COUNT,
    MAIN_METHODS,
    build_method,
    main_sweep,
    measure_query_seconds,
    run_method,
)
from repro.bench.workloads import node_fractions, random_pairs
from repro.core.bandwidth import find_bandwidth
from repro.core.ct_index import CTIndex
from repro.graphs.generators.core_periphery import scaled_config, core_periphery_graph
from repro.graphs.generators.worst_case import rolling_cliques_graph
from repro.labeling.pll import build_pll
from repro.labeling.ordering import degree_order, degeneracy_based_order, random_order

Row = dict[str, object]

#: Bandwidths of the Exp 4 sweep (Figure 10).
EXP4_BANDWIDTHS = (0, 2, 5, 10, 20, 50, 100)

#: Cumulative node fractions of the Exp 5 scalability test (Figures 11-13).
EXP5_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


def _workload_seed(name: str) -> int:
    return zlib.crc32(name.encode())


# ----------------------------------------------------------------------
# Exps 1-3: Figures 7, 8, 9 (shared sweep)
# ----------------------------------------------------------------------


def _main_metric_table(metric: str, title: str, datasets=None) -> tuple[list[Row], str]:
    results = main_sweep(datasets)
    rows: list[Row] = []
    by_dataset: dict[str, Row] = {}
    for result in results:
        row = by_dataset.setdefault(result.dataset, {"dataset": result.dataset})
        row[result.method] = result.cell(metric)
    rows = list(by_dataset.values())
    return rows, format_table(rows, ["dataset", *MAIN_METHODS], title=title)


def exp1_index_size(datasets=None) -> tuple[list[Row], str]:
    """Figure 7: index size (modeled MB) per dataset and method."""
    return _main_metric_table("size", "Exp 1 / Figure 7 — index size (MB)", datasets)


def exp2_index_time(datasets=None) -> tuple[list[Row], str]:
    """Figure 8: index construction time (seconds)."""
    return _main_metric_table("build", "Exp 2 / Figure 8 — index time (s)", datasets)


def exp3_query_time(datasets=None) -> tuple[list[Row], str]:
    """Figure 9: average query time (seconds) over random workloads."""
    return _main_metric_table("query", "Exp 3 / Figure 9 — query time (s)", datasets)


# ----------------------------------------------------------------------
# Exp 4: Figure 10 (effect of the bandwidth d)
# ----------------------------------------------------------------------


def exp4_bandwidth_effect(
    datasets=EXP4_DATASETS, bandwidths=EXP4_BANDWIDTHS
) -> tuple[list[Row], str]:
    """Figure 10(a-c): index size / index time / query time vs ``d``."""
    rows: list[Row] = []
    for name in datasets:
        graph = load_dataset(name)
        workload = random_pairs(graph, BENCH_QUERY_COUNT, seed=_workload_seed(name))
        for d in bandwidths:
            result = run_method(name, graph, f"CT-{d}", workload)
            rows.append(
                {
                    "dataset": name,
                    "d": d,
                    "size_mb": result.cell("size"),
                    "index_s": result.cell("build"),
                    "query_s": result.cell("query"),
                }
            )
    text = format_table(
        rows,
        ["dataset", "d", "size_mb", "index_s", "query_s"],
        title="Exp 4 / Figure 10 — effect of bandwidth d",
    )
    return rows, text


# ----------------------------------------------------------------------
# Exp 5: Figures 11-13 (scalability over induced subgraphs)
# ----------------------------------------------------------------------


def exp5_scalability(
    datasets=EXP4_DATASETS,
    fractions=EXP5_FRACTIONS,
    methods=MAIN_METHODS,
) -> tuple[list[Row], str]:
    """Figures 11-13: size / index time / query time on 20%..100% subgraphs."""
    rows: list[Row] = []
    for name in datasets:
        graph = load_dataset(name)
        groups = node_fractions(graph, fractions, seed=_workload_seed(name) ^ 0x5CA1)
        for fraction, nodes in zip(fractions, groups):
            subgraph, _ = graph.induced_subgraph(nodes)
            workload = random_pairs(
                subgraph, BENCH_QUERY_COUNT // 2, seed=_workload_seed(f"{name}:{fraction}")
            )
            for method in methods:
                result = run_method(name, subgraph, method, workload)
                rows.append(
                    {
                        "dataset": name,
                        "fraction": f"{int(fraction * 100)}%",
                        "method": method,
                        "n": subgraph.n,
                        "size_mb": result.cell("size"),
                        "index_s": result.cell("build"),
                        "query_s": result.cell("query"),
                    }
                )
    text = format_table(
        rows,
        ["dataset", "fraction", "method", "n", "size_mb", "index_s", "query_s"],
        title="Exp 5 / Figures 11-13 — scalability over induced subgraphs",
    )
    return rows, text


# ----------------------------------------------------------------------
# Exp 6: Table 3 (CT vs CD)
# ----------------------------------------------------------------------


#: Budget used for Exp 6's OM demonstration row: tight enough that CD's
#: quadratic core matrix overflows while CT fits comfortably (the paper:
#: CD ran out of memory on 28 of 30 graphs, CT on none).
EXP6_OM_LIMIT_MB = 0.5


def exp6_cd_comparison(
    datasets=EXP6_DATASETS, bandwidth: int = 100
) -> tuple[list[Row], str]:
    """Table 3: CD vs CT-Index (index time / size / query time).

    Following the paper, CD is also attempted on the next-larger dataset
    under a tighter budget to demonstrate its "OM" behaviour (CD ran
    out of memory on 28 of the paper's 30 graphs).
    """
    rows: list[Row] = []
    cd_targets = list(datasets) + ["dblp"]
    for name in cd_targets:
        graph = load_dataset(name)
        workload = random_pairs(graph, BENCH_QUERY_COUNT // 4, seed=_workload_seed(name))
        for method in (f"CD-{bandwidth}", f"CT-{bandwidth}"):
            limit = EXP6_OM_LIMIT_MB if name not in datasets else None
            result = run_method(name, graph, method, workload, limit_mb=limit)
            rows.append(
                {
                    "dataset": name,
                    "method": method,
                    "index_s": result.cell("build"),
                    "size_mb": result.cell("size"),
                    "query_s": result.cell("query"),
                }
            )
    text = format_table(
        rows,
        ["dataset", "method", "index_s", "size_mb", "query_s"],
        title="Exp 6 / Table 3 — CT-Index vs CD",
    )
    return rows, text


# ----------------------------------------------------------------------
# Exp 7: Figure 14 (determining d under a memory limit)
# ----------------------------------------------------------------------


def exp7_bandwidth_search(
    datasets=EXP7_DATASETS,
    memory_limits_mb=(0.5, 1.0, 2.0, 4.0, 8.0),
) -> tuple[list[Row], str]:
    """Figure 14: binary search of the smallest feasible bandwidth.

    Larger memory limits must yield smaller chosen ``d`` (down to 0 once
    the full 2-hop labeling fits).
    """
    rows: list[Row] = []
    for name in datasets:
        graph = load_dataset(name)
        for limit_mb in memory_limits_mb:
            result = find_bandwidth(graph, int(limit_mb * 1e6))
            rows.append(
                {
                    "dataset": name,
                    "memory_mb": limit_mb,
                    "chosen_d": result.bandwidth,
                    "search_s": round(result.seconds, 2),
                    "probes": len(result.probes),
                    "final_size_mb": round(result.index.size_bytes() / 1e6, 3),
                }
            )
    text = format_table(
        rows,
        ["dataset", "memory_mb", "chosen_d", "search_s", "probes", "final_size_mb"],
        title="Exp 7 / Figure 14 — bandwidth determination under memory limits",
    )
    return rows, text


# ----------------------------------------------------------------------
# Table 1: complexity comparison of tree-decomposition labelings
# ----------------------------------------------------------------------


def table1_complexity(scales=(0.1, 0.2, 0.3), bandwidth: int = 20) -> tuple[list[Row], str]:
    """Table 1: hops / index size / index time for H2H, CD, CT.

    Measured on a family of small core-periphery graphs (H2H and CD are
    the quadratic baselines the table exists to indict, so the family is
    kept small enough for them to finish).
    """
    base = dataset_spec("dblp").config
    rows: list[Row] = []
    for scale in scales:
        graph = core_periphery_graph(scaled_config(base, scale), seed=777)
        workload = random_pairs(graph, 300, seed=_workload_seed(f"table1:{scale}"))
        for method in ("H2H", f"CD-{bandwidth}", f"CT-{bandwidth}"):
            try:
                index = build_method(method, graph)
            except OverMemoryError:
                rows.append({"n": graph.n, "m": graph.m, "method": method, "status": "OM"})
                continue
            query_seconds = measure_query_seconds(index, workload)
            row: Row = {
                "n": graph.n,
                "m": graph.m,
                "method": method,
                "entries": index.size_entries(),
                "index_s": round(index.build_seconds, 3),
                "query_s": f"{query_seconds:.2e}",
            }
            if isinstance(index, CTIndex):
                row["core_probes_per_query"] = round(index.core_probes / max(1, len(workload)), 1)
            rows.append(row)
    text = format_table(
        rows,
        ["n", "m", "method", "entries", "index_s", "query_s", "core_probes_per_query"],
        title="Table 1 — labeling with tree decomposition (measured)",
    )
    return rows, text


# ----------------------------------------------------------------------
# Lemma 3: the Ω(n·d) lower bound gadget
# ----------------------------------------------------------------------


def lemma3_lower_bound(
    k_values=(4, 6, 8), d_values=(8, 16, 24)
) -> tuple[list[Row], str]:
    """Figure 3 / Lemma 3: PLL index entries grow ∝ n·d on rolling cliques."""
    rows: list[Row] = []
    for d in d_values:
        for k in k_values:
            graph = rolling_cliques_graph(k, d)
            pll = build_pll(graph)
            entries = pll.size_entries()
            rows.append(
                {
                    "k": k,
                    "d": d,
                    "n": graph.n,
                    "m": graph.m,
                    "pll_entries": entries,
                    "entries_per_nd": round(entries / (graph.n * d), 3),
                }
            )
    text = format_table(
        rows,
        ["k", "d", "n", "m", "pll_entries", "entries_per_nd"],
        title="Lemma 3 — PLL size on the rolling-cliques gadget (Ω(n·d))",
    )
    return rows, text


# ----------------------------------------------------------------------
# Ablations (DESIGN.md §5)
# ----------------------------------------------------------------------


def ablation_extension(dataset: str = "epin", bandwidth: int = 50) -> tuple[list[Row], str]:
    """Lemma 9 ablation: extension-based query vs naive interface product."""
    graph = load_dataset(dataset)
    # Extension caching would mask the O(d) vs O(d²) probe gap this
    # ablation measures; disable it so the comparison stays algorithmic.
    index = CTIndex.build(graph, bandwidth, extension_cache_size=0)
    workload = random_pairs(graph, 1000, seed=_workload_seed(dataset))
    rows: list[Row] = []
    for variant, query in (
        ("extension (Lemma 9)", index.distance),
        ("naive 4-hop product", index.distance_naive_4hop),
    ):
        index.reset_counters()
        started = time.perf_counter()
        for s, t in workload.pairs:
            query(s, t)
        elapsed = time.perf_counter() - started
        queries = len(workload) or 1  # survive a zero-query workload
        rows.append(
            {
                "variant": variant,
                "query_s": f"{elapsed / queries:.2e}",
                "core_probes_per_query": round(index.core_probes / queries, 1),
            }
        )
    text = format_table(
        rows,
        ["variant", "query_s", "core_probes_per_query"],
        title=f"Ablation — extension operation on {dataset} (CT-{bandwidth})",
    )
    return rows, text


def ablation_equivalence(dataset: str = "fb", bandwidth: int = 20) -> tuple[list[Row], str]:
    """Equivalence-reduction ablation: CT with vs without twin folding."""
    graph = load_dataset(dataset)
    rows: list[Row] = []
    for label, use_reduction in (("with twin reduction", True), ("without", False)):
        index = CTIndex.build(graph, bandwidth, use_equivalence_reduction=use_reduction)
        workload = random_pairs(graph, 1000, seed=_workload_seed(dataset))
        query_seconds = measure_query_seconds(index, workload)
        rows.append(
            {
                "variant": label,
                "indexed_nodes": index.reduction.reduced.n,
                "entries": index.size_entries(),
                "size_mb": round(index.size_bytes() / 1e6, 3),
                "index_s": round(index.build_seconds, 2),
                "query_s": f"{query_seconds:.2e}",
            }
        )
    text = format_table(
        rows,
        ["variant", "indexed_nodes", "entries", "size_mb", "index_s", "query_s"],
        title=f"Ablation — equivalence relation elimination on {dataset} (CT-{bandwidth})",
    )
    return rows, text


def ablation_core_order(dataset: str = "epin") -> tuple[list[Row], str]:
    """Vertex-order ablation for the 2-hop labeling (degree vs alternatives)."""
    graph = load_dataset(dataset)
    rows: list[Row] = []
    strategies = (
        ("degree", degree_order(graph)),
        ("degeneracy", degeneracy_based_order(graph)),
        ("random", random_order(graph, seed=99)),
    )
    for label, order in strategies:
        pll = build_pll(graph, order)
        rows.append(
            {
                "order": label,
                "entries": pll.size_entries(),
                "max_label": pll.max_label_size(),
                "index_s": round(pll.build_seconds, 2),
            }
        )
    text = format_table(
        rows,
        ["order", "entries", "max_label", "index_s"],
        title=f"Ablation — vertex order for 2-hop labeling on {dataset}",
    )
    return rows, text


def structure_profile(
    datasets=("fb", "uk02"), bandwidths=EXP4_BANDWIDTHS
) -> tuple[list[Row], str]:
    """Supplementary: the core/forest anatomy behind the trade-off.

    Checks the paper's structural footnotes: the forest height ``h_F``
    stays modest across the whole bandwidth range (footnote 3: average
    below 600 at d <= 100 on the real graphs), the boundary λ moves with
    ``d``, and interfaces respect the ≤ d bound.
    """
    from repro.treedec.core_tree import core_tree_decomposition
    from repro.graphs.reductions import eliminate_equivalent_nodes

    rows: list[Row] = []
    for name in datasets:
        graph = load_dataset(name)
        reduced = eliminate_equivalent_nodes(graph).reduced
        for d in bandwidths:
            decomposition = core_tree_decomposition(reduced, d)
            interfaces = [len(v) for v in decomposition.interface.values()]
            rows.append(
                {
                    "dataset": name,
                    "d": d,
                    "lambda": decomposition.boundary,
                    "core": len(decomposition.core_nodes),
                    "h_F": decomposition.forest_height(),
                    "trees": len(decomposition.interface),
                    "max_interface": max(interfaces, default=0),
                }
            )
    text = format_table(
        rows,
        ["dataset", "d", "lambda", "core", "h_F", "trees", "max_interface"],
        title="Supplementary — core/forest structure vs bandwidth",
    )
    return rows, text


def directed_extension(seed: int = 2026, bandwidths=(0, 2, 5)) -> tuple[list[Row], str]:
    """Supplementary: the directed CT-Index on a follows-style digraph.

    The paper's Section 2 claims its techniques extend to directed
    graphs; this driver measures that extension (``repro.directed``)
    against the plain directed 2-hop labeling on a synthetic directed
    social network (dense mutual core, mostly one-way fringe).
    """
    import random

    from repro.directed.ct import build_directed_ct_index
    from repro.graphs.digraph import DiGraph
    from repro.labeling.directed_pll import build_directed_pll

    rng = random.Random(seed)
    arcs = []
    core_n = 120
    for u in range(core_n):
        for v in range(core_n):
            if u != v and rng.random() < 0.25:
                arcs.append((u, v))
    n = 1500
    for v in range(core_n, n):
        for _ in range(rng.randint(1, 2)):
            target = rng.randrange(v)
            arcs.append((v, target))
            if rng.random() < 0.3:
                arcs.append((target, v))
    digraph = DiGraph.from_arcs(n, arcs)

    workload = [(rng.randrange(n), rng.randrange(n)) for _ in range(BENCH_QUERY_COUNT // 2)]
    rows: list[Row] = []

    def measure(name, index):
        started = time.perf_counter()
        for s, t in workload:
            index.distance(s, t)
        per_query = (time.perf_counter() - started) / (len(workload) or 1)
        rows.append(
            {
                "method": name,
                "entries": index.size_entries(),
                "size_mb": round(index.size_bytes() / 1e6, 3),
                "index_s": round(index.build_seconds, 2),
                "query_s": f"{per_query:.2e}",
            }
        )
        return index

    measure("directed PLL", build_directed_pll(digraph))
    for d in bandwidths:
        if d == 0:
            continue
        measure(f"directed CT-{d}", build_directed_ct_index(digraph, d))
    text = format_table(
        rows,
        ["method", "entries", "size_mb", "index_s", "query_s"],
        title=f"Supplementary — directed extension (n={digraph.n}, m={digraph.m})",
    )
    return rows, text


def label_anatomy(dataset: str = "fb", bandwidths=(0, 20, 100)) -> tuple[list[Row], str]:
    """Supplementary: where the entries live as ``d`` grows.

    Theorem 2's three size terms made visible: the core 2-hop labels
    shrink as ``d`` grows while the ancestor-chain and interface terms
    of the tree-index pick up the periphery.
    """
    from repro.labeling.analysis import analyze_ct_index, analyze_labels

    graph = load_dataset(dataset)
    rows: list[Row] = []
    for d in bandwidths:
        index = CTIndex.build(graph, d)
        anatomy = analyze_ct_index(index)
        core_stats = analyze_labels(index.core_index.labels)
        row: Row = {"d": d}
        row.update(anatomy.as_row())
        row["core_max_label"] = core_stats.max_label
        row["core_top10_share"] = round(core_stats.top_hub_share, 3)
        rows.append(row)
    text = format_table(
        rows,
        [
            "d",
            "core_entries",
            "ancestor_entries",
            "interface_entries",
            "core_share",
            "core_max_label",
            "core_top10_share",
        ],
        title=f"Supplementary — label anatomy on {dataset} (Theorem 2's terms)",
    )
    return rows, text


def ablation_psl_backend(dataset: str = "talk") -> tuple[list[Row], str]:
    """PLL vs PSL construction schedules for the same label sets.

    The paper's line 33 ("PLL or PSL equivalently") and its PSL lineage
    [17]: the round-synchronous schedule parallelizes but, executed
    sequentially, pays a coordination overhead.  Verifies the labels
    coincide and compares build times.
    """
    from repro.labeling.pll import build_pll
    from repro.labeling.psl import build_psl

    graph = load_dataset(dataset)
    from repro.graphs.reductions import eliminate_equivalent_nodes

    reduced = eliminate_equivalent_nodes(graph).reduced
    pll = build_pll(reduced)
    psl = build_psl(reduced, order=pll.order)
    rows: list[Row] = [
        {
            "backend": "PLL (sequential pruned searches)",
            "entries": pll.size_entries(),
            "index_s": round(pll.build_seconds, 2),
        },
        {
            "backend": "PSL (round-synchronous, simulated)",
            "entries": psl.size_entries(),
            "index_s": round(psl.build_seconds, 2),
            "rounds": psl.rounds,
        },
    ]
    text = format_table(
        rows,
        ["backend", "entries", "index_s", "rounds"],
        title=f"Ablation — labeling schedule on {dataset} (same vertex order)",
    )
    return rows, text


def ablation_ct_core_order(dataset: str = "talk", bandwidth: int = 20) -> tuple[list[Row], str]:
    """Core hub-order ablation: practical degree order vs Theorem 4.4's
    elimination-based order for the CT core labeling."""
    graph = load_dataset(dataset)
    workload = random_pairs(graph, 1000, seed=_workload_seed(dataset))
    rows: list[Row] = []
    for core_order in ("degree", "elimination"):
        index = CTIndex.build(graph, bandwidth, order=core_order)
        query_seconds = measure_query_seconds(index, workload)
        rows.append(
            {
                "core_order": core_order,
                "core_entries": index.core_index.size_entries(),
                "max_core_label": index.core_index.max_label_size(),
                "index_s": round(index.build_seconds, 2),
                "query_s": f"{query_seconds:.2e}",
            }
        )
    text = format_table(
        rows,
        ["core_order", "core_entries", "max_core_label", "index_s", "query_s"],
        title=f"Ablation — CT core hub order on {dataset} (CT-{bandwidth})",
    )
    return rows, text


def serving_benchmark(
    dataset: str = "epin",
    bandwidth: int = 20,
    queries: int = 2000,
    hot_fraction: float = 0.9,
    hot_pairs: int = 16,
    cache_capacity: int = 4096,
) -> tuple[list[Row], str]:
    """Serving layer on a skewed stream: uncached vs cached engines.

    Replays one repeat-heavy workload through the three standard
    :data:`~repro.serving.bench.SERVE_CONFIGS`; the interesting columns
    are ``core_probes`` (the extension cache should collapse it) and the
    cache hit rates.
    """
    from repro.bench.workloads import skewed_pairs
    from repro.serving.bench import serve_bench_rows

    graph = load_dataset(dataset)
    index = CTIndex.build(graph, bandwidth)
    workload = skewed_pairs(
        graph,
        queries,
        seed=_workload_seed(dataset),
        hot_fraction=hot_fraction,
        hot_pairs=hot_pairs,
    )
    rows = serve_bench_rows(index, workload.pairs, cache_capacity=cache_capacity)
    text = format_table(
        rows,
        [
            "config",
            "queries",
            "mean_us",
            "p95_us",
            "core_probes",
            "ext_hit_rate",
            "pair_hit_rate",
        ],
        title=f"Serving — skewed workload on {dataset} (CT-{bandwidth})",
    )
    return rows, text


def build_benchmark(
    datasets=None, bandwidth: int = 20, worker_counts=(1, 2, 4)
) -> tuple[list[Row], str]:
    """Serial vs parallel construction on representative registry graphs.

    Verifies byte-identity across worker counts and appends the measured
    speedups to ``BENCH_build.json`` (see :mod:`repro.bench.build_bench`).
    """
    from repro.bench.build_bench import run_build_bench

    return run_build_bench(datasets, bandwidth, worker_counts=worker_counts)


def storage_benchmark(datasets=None, bandwidth: int = 20) -> tuple[list[Row], str]:
    """Dict-vs-flat label residency and JSON-vs-binary load comparison.

    Verifies answer and fingerprint identity between backends before
    recording, and appends the measured reductions to
    ``BENCH_storage.json`` (see :mod:`repro.bench.storage_bench`).
    """
    from repro.bench.storage_bench import run_storage_bench

    return run_storage_bench(datasets, bandwidth)


@dataclasses.dataclass(frozen=True)
class ExperimentCatalog:
    """Name -> driver mapping for the CLI and docs."""

    drivers = {
        "exp1": exp1_index_size,
        "exp2": exp2_index_time,
        "exp3": exp3_query_time,
        "exp4": exp4_bandwidth_effect,
        "exp5": exp5_scalability,
        "exp6": exp6_cd_comparison,
        "exp7": exp7_bandwidth_search,
        "table1": table1_complexity,
        "lemma3": lemma3_lower_bound,
        "ablation-extension": ablation_extension,
        "ablation-equivalence": ablation_equivalence,
        "ablation-order": ablation_core_order,
        "ablation-ct-core-order": ablation_ct_core_order,
        "ablation-psl-backend": ablation_psl_backend,
        "anatomy": label_anatomy,
        "directed": directed_extension,
        "structure": structure_profile,
        "serving": serving_benchmark,
        "build": build_benchmark,
        "storage": storage_benchmark,
    }


def run_experiment(name: str) -> tuple[list[Row], str]:
    """Run one catalog entry by name."""
    drivers = ExperimentCatalog.drivers
    if name not in drivers:
        known = ", ".join(sorted(drivers))
        raise ConfigurationError(f"unknown experiment {name!r}; known: {known}")
    return drivers[name]()
