"""Plain-text chart rendering for the experiment figures.

The paper's figures are (mostly log-scale) grouped bar charts over
datasets; this module renders the same data as horizontal ASCII bars so
the benches can persist a figure-shaped artifact next to each table
without any plotting dependency.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence


def horizontal_bar_chart(
    rows: Sequence[Mapping[str, object]],
    *,
    label: str,
    series: Sequence[str],
    title: str | None = None,
    width: int = 46,
    log_scale: bool = True,
    missing: str = "OM",
) -> str:
    """Render grouped horizontal bars.

    ``rows`` are dict rows; ``label`` names the group column (e.g.
    ``dataset``) and ``series`` the value columns (e.g. methods).  Cells
    equal to ``missing`` (or absent / non-numeric) render as the marker
    instead of a bar.  With ``log_scale`` the bar length is proportional
    to the log of the value, matching the paper's axes.
    """
    values: list[tuple[str, str, float | None]] = []
    for row in rows:
        group = str(row.get(label, ""))
        for name in series:
            raw = row.get(name)
            values.append((group, name, _as_number(raw, missing)))
    finite = [v for _, _, v in values if v is not None and v > 0]
    if not finite:
        return (title + "\n") if title else ""
    low, high = min(finite), max(finite)

    def bar_length(value: float) -> int:
        if high == low:
            return width
        if log_scale:
            span = math.log10(high) - math.log10(low)
            if span == 0:
                return width
            fraction = (math.log10(value) - math.log10(low)) / span
        else:
            fraction = (value - low) / (high - low)
        return max(1, round(1 + fraction * (width - 1)))

    name_width = max(len(name) for _, name, _ in values)
    group_width = max(len(group) for group, _, _ in values)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("")
    previous_group: str | None = None
    for group, name, value in values:
        prefix = group.ljust(group_width) if group != previous_group else " " * group_width
        previous_group = group
        if value is None:
            lines.append(f"{prefix}  {name.ljust(name_width)}  {missing}")
        else:
            bar = "#" * bar_length(value)
            lines.append(f"{prefix}  {name.ljust(name_width)}  {bar} {_format(value)}")
    scale = "log" if log_scale else "linear"
    lines.append("")
    lines.append(f"({scale} scale; range {_format(low)} .. {_format(high)})")
    return "\n".join(lines) + "\n"


def _as_number(raw: object, missing: str) -> float | None:
    if raw is None:
        return None
    text = str(raw)
    if text == missing:
        return None
    try:
        value = float(text)
    except ValueError:
        return None
    if value <= 0:
        return None
    return value


def _format(value: float) -> str:
    if value >= 1000 or value < 0.01:
        return f"{value:.2e}"
    return f"{value:.3g}"
