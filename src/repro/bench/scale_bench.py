"""Scale trajectory benchmark: construction from 10³ to 10⁶ nodes.

``repro scale-bench`` builds a CT-Index per scale tier — synthetic
core-periphery graphs from 10³ to 10⁶ nodes plus an R-MAT family for the
scale-free regime — and records the construction-cost trajectory
(build seconds, combined parent+children peak RSS, label entries,
modeled megabytes) into ``BENCH_scale.json``.

Schema 2 additions: each entry names its ``workers`` count, carries the
per-build ``round_split`` (the PSL rounds' kernel vs merge seconds, when
the vectorized core path ran), and — when ``--workers`` sweeps several
counts over one tier — ``speedup_vs_serial`` relative to that tier's
``workers=1`` build in the same run.  ``--hopdb-ablation`` appends, per
tier, a ``core_backend="hopdb"`` pair comparing ``hopdb_order="degree"``
(fingerprint-gated: same canonical labels) against
``hopdb_order="psl-rank"`` (BFS-gated: a different hub order builds a
different, still exact, label set).

Every tier is **gated on correctness before anything is written**:

* tiers up to :data:`FINGERPRINT_MAX_N` nodes rebuild the same graph
  with the serial pure-Python reference configuration
  (``kernel="python"``, ``core_backend="pll"``, dict backend, no
  workers) and require :func:`~repro.core.serialization.
  index_fingerprint` identity — the vectorized PSL rounds, flat
  backend, and any scheduling must be invisible in the built labels;
* larger tiers, where a second full build would dominate the bench,
  are spot-checked differentially against BFS from sampled sources.

A tier that fails its gate raises :class:`~repro.exceptions.ReproError`
and the run records nothing: a fast wrong build must never become a
benchmark data point.  The artifact embeds the full
:meth:`~repro.api.BuildConfig.to_dict` document per entry, so every
recorded number names the exact configuration that produced it.

The community size ceilings in the core-periphery tiers sit near the
bandwidth on purpose: near-cliques wider than ``d + 1`` cannot be
eliminated and fold into the core (the paper's footnote 2), so the
ceilings keep the core a small multiple of ``core_size`` while the
fringe carries the node count — the paper's core-periphery shape.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.api import BuildConfig
from repro.bench.reporting import format_table
from repro.core.ct_index import CTIndex
from repro.core.serialization import index_fingerprint
from repro.exceptions import ReproError
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.graphs.generators.rmat import rmat_graph
from repro.graphs.graph import INF, Graph
from repro.graphs.traversal import bfs_distances

#: Default artifact path, relative to the working directory.
BENCH_SCALE_PATH = "BENCH_scale.json"

#: Largest tier that is re-built with the serial pure-Python reference
#: configuration for an index_fingerprint identity check; larger tiers
#: fall back to differential BFS spot-checks.
FINGERPRINT_MAX_N = 20_000

#: BFS spot-check sampling: sources spread over the node range, and
#: targets spread over each source's BFS frontier.
SPOT_SOURCES = 5
SPOT_TARGETS = 50


@dataclasses.dataclass(frozen=True)
class ScaleTier:
    """One point on the scale trajectory."""

    name: str
    family: str  #: ``"cp"`` (core-periphery) or ``"rmat"``
    target_n: int  #: nominal node count (generation is approximate)
    seed: int
    params: dict

    def generate(self) -> Graph:
        if self.family == "cp":
            return core_periphery_graph(
                CorePeripheryConfig(**self.params), self.seed
            )
        if self.family == "rmat":
            return rmat_graph(
                self.params["scale"], self.params["edge_factor"], self.seed
            )
        raise ReproError(f"unknown tier family {self.family!r}")


def _cp(core, density, communities, fringe, *, max_comm):
    return {
        "core_size": core,
        "core_density": density,
        "community_count": communities,
        "community_size_min": 5,
        "community_size_max": max_comm,
        "community_size_exponent": 2.0,
        "community_density": 0.75,
        "community_anchors": 3,
        "fringe_size": fringe,
        "fringe_core_bias": 0.85,
        "fringe_extra_edge_prob": 0.15,
    }


#: The default trajectory, ascending by target size.  Core sizes grow
#: sub-linearly (dense cores of real graphs do); the fringe carries the
#: scale.  R-MAT tiers probe the scale-free regime where elimination
#: stalls early and the core stays a large fraction of the graph.
DEFAULT_TIERS: tuple[ScaleTier, ...] = (
    ScaleTier("cp-1k", "cp", 10**3, 1301, _cp(80, 0.45, 8, 700, max_comm=40)),
    ScaleTier("cp-10k", "cp", 10**4, 1302, _cp(150, 0.25, 25, 9_200, max_comm=50)),
    ScaleTier("cp-100k", "cp", 10**5, 1303, _cp(300, 0.12, 120, 96_000, max_comm=60)),
    ScaleTier("cp-1m", "cp", 10**6, 1304, _cp(600, 0.06, 1_200, 975_000, max_comm=60)),
    ScaleTier("rmat-10", "rmat", 2**10, 1305, {"scale": 10, "edge_factor": 4}),
    ScaleTier("rmat-13", "rmat", 2**13, 1306, {"scale": 13, "edge_factor": 4}),
    ScaleTier("rmat-16", "rmat", 2**16, 1307, {"scale": 16, "edge_factor": 4}),
)

#: The configuration the trajectory measures by default: the scale
#: pipeline (vectorized PSL rounds where NumPy is available, CSR flat
#: storage).  The reference gate strips all of it back to the serial
#: pure-Python build.
DEFAULT_CONFIG = BuildConfig(backend="flat", core_backend="psl", kernel="auto")

_REFERENCE_OVERRIDES = {
    "backend": "dict",
    "core_backend": "pll",
    "kernel": "python",
    "workers": None,
}


def _peak_rss_mb() -> float:
    """Parent + worker-children peak RSS in MB (see repro.bench.memory)."""
    from repro.bench.memory import combined_peak_rss_mb

    return combined_peak_rss_mb()


def _verify_fingerprint(graph: Graph, index: CTIndex, config: BuildConfig) -> dict:
    """Gate: the measured build must equal the serial reference's bytes."""
    reference_config = config.replace(**_REFERENCE_OVERRIDES)
    started = time.perf_counter()
    reference = CTIndex.build(graph, config=reference_config)
    built = index_fingerprint(index)
    expected = index_fingerprint(reference)
    if built != expected:
        raise ReproError(
            "scale-bench fingerprint gate: the measured build differs from "
            f"the serial pure-Python reference (config {config.to_dict()!r})"
        )
    return {
        "mode": "fingerprint",
        "reference_s": round(time.perf_counter() - started, 3),
        "identical": True,
    }


def _verify_bfs(graph: Graph, index: CTIndex, *, sources=SPOT_SOURCES, targets=SPOT_TARGETS) -> dict:
    """Gate: sampled distances must match BFS exactly."""
    started = time.perf_counter()
    n = graph.n
    checked = 0
    for i in range(sources):
        s = (i * n) // sources
        dist = bfs_distances(graph, s)
        reached = [v for v in range(n) if dist[v] != INF]
        step = max(1, len(reached) // targets)
        for t in reached[::step][:targets]:
            got = index.distance(s, t)
            if got != dist[t]:
                raise ReproError(
                    f"scale-bench BFS gate: dist({s}, {t}) = {got}, "
                    f"BFS says {dist[t]}"
                )
            checked += 1
    return {
        "mode": "bfs",
        "sources": sources,
        "pairs": checked,
        "reference_s": round(time.perf_counter() - started, 3),
        "identical": True,
    }


def _round_split(index: CTIndex) -> dict | None:
    """Kernel/merge seconds of the vectorized PSL rounds, when they ran."""
    stats = getattr(index.core_index, "round_stats", None)
    if not stats:
        return None
    return {
        "rounds": stats["rounds"],
        "kernel_s": round(stats["kernel_s"], 3),
        "merge_s": round(stats["merge_s"], 3),
    }


def scale_bench_entry(
    tier: ScaleTier,
    *,
    config: BuildConfig = DEFAULT_CONFIG,
    graph: Graph | None = None,
    force_bfs_gate: bool = False,
) -> dict:
    """Generate, build, verify, and measure one tier.

    Raises :class:`ReproError` (and returns nothing) when the
    correctness gate fails; callers must not record anything for a tier
    that did not pass.  ``graph`` reuses an already-generated graph
    (worker sweeps rebuild the same tier several times);
    ``force_bfs_gate`` swaps the fingerprint gate for the BFS gate even
    on small tiers — required for configurations (a non-degree
    ``hopdb_order``) whose labels are exact but legitimately differ
    from the serial reference's bytes.
    """
    gen_started = time.perf_counter()
    if graph is None:
        graph = tier.generate()
    gen_seconds = time.perf_counter() - gen_started

    build_started = time.perf_counter()
    index = CTIndex.build(graph, config=config)
    build_seconds = time.perf_counter() - build_started

    if graph.n <= FINGERPRINT_MAX_N and not force_bfs_gate:
        verify = _verify_fingerprint(graph, index, config)
    else:
        verify = _verify_bfs(graph, index)

    from repro.parallel.pool import resolve_workers

    stats = index.stats()
    return {
        "tier": tier.name,
        "family": tier.family,
        "n": graph.n,
        "m": graph.m,
        "workers": resolve_workers(config.workers),
        "gen_s": round(gen_seconds, 3),
        "build_s": round(build_seconds, 3),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "entries": stats.entries,
        "modeled_mb": round(stats.megabytes, 3),
        "round_split": _round_split(index),
        "speedup_vs_serial": None,
        "verify": verify,
        "config": config.to_dict(),
    }


def _upgrade_document(document: dict) -> dict:
    """Bring a loaded artifact up to schema 2 in place.

    Schema-1 entries predate the workers sweep: they were all serial
    builds, so ``workers`` is read out of their embedded config and the
    sweep-only fields are explicit nulls.
    """
    if document.get("schema") == 2:
        return document
    for entry in document.get("entries", ()):
        entry.setdefault(
            "workers", (entry.get("config") or {}).get("workers") or 1
        )
        entry.setdefault("round_split", None)
        entry.setdefault("speedup_vs_serial", None)
    document["schema"] = 2
    return document


def run_scale_bench(
    tiers=None,
    *,
    config: BuildConfig = DEFAULT_CONFIG,
    workers=None,
    hopdb_ablation: bool = False,
    max_n: int | None = None,
    output=BENCH_SCALE_PATH,
) -> tuple[list[dict], str]:
    """Run the trajectory and append one artifact entry per tier.

    ``tiers`` selects by name (default: every tier); ``max_n`` drops
    tiers whose target size exceeds it.  ``workers`` sweeps a list of
    worker counts over every tier (each count is one entry; counts
    beyond the first reuse the generated graph, and entries record
    ``speedup_vs_serial`` against the sweep's ``workers=1`` build when
    one is present).  ``hopdb_ablation`` appends, per tier, a
    ``core_backend="hopdb"`` pair with ``hopdb_order`` ``"degree"``
    vs ``"psl-rank"`` (the latter BFS-gated — its labels are exact but
    not byte-identical to the serial reference).

    Every tier's correctness gate runs **before** anything is written:
    a failing gate raises and leaves ``output`` untouched, even for
    tiers that had already passed.  ``peak_rss_mb`` is the combined
    parent+children high-water mark, so tiers are run smallest-first
    and the column is monotone by construction — read it as "the
    trajectory up to here fit in this much memory".

    Returns ``(entries, text)`` like the other experiment drivers.
    """
    from repro.bench.memory import reset_child_peak_rss

    selected = list(DEFAULT_TIERS)
    if tiers is not None:
        by_name = {tier.name: tier for tier in DEFAULT_TIERS}
        unknown = [name for name in tiers if name not in by_name]
        if unknown:
            raise ReproError(
                f"unknown scale tiers {unknown}; known: {sorted(by_name)}"
            )
        selected = [by_name[name] for name in tiers]
    if max_n is not None:
        selected = [tier for tier in selected if tier.target_n <= max_n]
    if not selected:
        raise ReproError("scale-bench: no tiers selected")
    selected.sort(key=lambda tier: tier.target_n)

    worker_counts = list(workers) if workers else [config.workers]
    reset_child_peak_rss()

    entries = []
    for tier in selected:
        graph = tier.generate()
        serial_build_s = None
        for count in worker_counts:
            entry = scale_bench_entry(
                tier, config=config.replace(workers=count), graph=graph
            )
            if entry["workers"] == 1:
                serial_build_s = entry["build_s"]
            elif serial_build_s:
                entry["speedup_vs_serial"] = round(
                    serial_build_s / max(entry["build_s"], 1e-9), 2
                )
            entries.append(entry)
        if hopdb_ablation:
            for hopdb_order in ("degree", "psl-rank"):
                ablation_config = config.replace(
                    core_backend="hopdb", hopdb_order=hopdb_order, workers=None
                )
                entry = scale_bench_entry(
                    tier,
                    config=ablation_config,
                    graph=graph,
                    force_bfs_gate=hopdb_order != "degree",
                )
                entry["ablation"] = "hopdb_order"
                entries.append(entry)

    if output is not None:
        path = Path(output)
        document = {"schema": 2, "entries": []}
        if path.exists():
            try:
                loaded = json.loads(path.read_text(encoding="utf-8"))
                if isinstance(loaded, dict) and isinstance(loaded.get("entries"), list):
                    document = _upgrade_document(loaded)
            except (OSError, json.JSONDecodeError):
                pass
        recorded_at = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        for entry in entries:
            document["entries"].append({**entry, "recorded_at": recorded_at})
        path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    rows = [
        {
            "tier": entry["tier"],
            "n": entry["n"],
            "m": entry["m"],
            "workers": entry["workers"],
            "build_s": entry["build_s"],
            "speedup": entry["speedup_vs_serial"] or "",
            "peak_rss_mb": entry["peak_rss_mb"],
            "entries": entry["entries"],
            "modeled_mb": entry["modeled_mb"],
            "verify": entry["verify"]["mode"],
        }
        for entry in entries
    ]
    text = format_table(
        rows,
        [
            "tier",
            "n",
            "m",
            "workers",
            "build_s",
            "speedup",
            "peak_rss_mb",
            "entries",
            "modeled_mb",
            "verify",
        ],
        title=f"scale-bench — CT-{config.bandwidth} construction trajectory",
    )
    return entries, text
