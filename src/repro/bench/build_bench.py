"""Construction benchmark: serial vs parallel build of the same index.

``build_bench_rows`` builds one graph's CT-Index once per worker count,
verifies every parallel build is byte-identical to the serial one
(:func:`repro.core.serialization.index_fingerprint`), and reports build
time and speedup per configuration.  ``run_build_bench`` sweeps the
registry datasets and appends one entry to ``BENCH_build.json`` so
successive runs accumulate a build-performance history next to the
repo's other bench artifacts.

Speedups are hardware-bound: on a single-core container the parallel
rows mostly measure pool overhead, which is exactly what the recorded
entry should show.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table
from repro.core.ct_index import CTIndex
from repro.core.serialization import index_fingerprint
from repro.exceptions import ReproError
from repro.graphs.graph import Graph

#: Worker counts measured by default: serial baseline plus two fan-outs.
DEFAULT_WORKER_COUNTS = (1, 2, 4)

#: Default sweep: smallest, mid-sized, and largest registry graphs —
#: enough to see how pool overhead amortizes as the build grows.
DEFAULT_DATASETS = ("talk", "fb", "uk07")

#: Default artifact path, relative to the working directory.
BENCH_BUILD_PATH = "BENCH_build.json"


@dataclasses.dataclass
class BuildBenchResult:
    """One graph's serial-vs-parallel build comparison."""

    name: str
    n: int
    m: int
    bandwidth: int
    rows: list[dict]

    @property
    def best_speedup(self) -> float:
        """Largest speedup over serial among the parallel rows."""
        return max((row["speedup"] for row in self.rows[1:]), default=1.0)

    def entry(self) -> dict:
        """JSON-ready record for ``BENCH_build.json``."""
        return {
            "dataset": self.name,
            "n": self.n,
            "m": self.m,
            "bandwidth": self.bandwidth,
            "rows": self.rows,
            "best_speedup": round(self.best_speedup, 3),
        }


def build_bench_rows(
    graph: Graph,
    bandwidth: int,
    *,
    worker_counts=DEFAULT_WORKER_COUNTS,
    name: str = "graph",
    core_backend: str = "pll",
) -> BuildBenchResult:
    """Time one build per worker count and verify byte-identity.

    The first worker count is the baseline (use 1 for serial-vs-parallel
    speedups).  Raises :class:`ReproError` if any configuration's index
    fingerprint differs from the baseline's — a parallel build that
    changes even one label is a bug, not a benchmark data point.
    """
    if not worker_counts:
        raise ReproError("build-bench needs at least one worker count")
    rows: list[dict] = []
    baseline_seconds: float | None = None
    baseline_print: bytes | None = None
    for workers in worker_counts:
        started = time.perf_counter()
        index = CTIndex.build(
            graph, bandwidth, workers=workers, core_backend=core_backend
        )
        elapsed = time.perf_counter() - started
        fingerprint = index_fingerprint(index)
        if baseline_print is None:
            baseline_seconds = elapsed
            baseline_print = fingerprint
        elif fingerprint != baseline_print:
            raise ReproError(
                f"workers={workers} build of {name!r} differs from the "
                f"workers={worker_counts[0]} build — parallel construction "
                "must be byte-identical"
            )
        assert baseline_seconds is not None
        rows.append(
            {
                "workers": workers,
                "build_s": round(elapsed, 3),
                "speedup": round(baseline_seconds / elapsed, 3) if elapsed else 1.0,
                "entries": index.size_entries(),
                "identical": fingerprint == baseline_print,
            }
        )
    return BuildBenchResult(
        name=name, n=graph.n, m=graph.m, bandwidth=bandwidth, rows=rows
    )


def record_entry(result: BuildBenchResult, path=BENCH_BUILD_PATH) -> dict:
    """Append ``result`` to the ``BENCH_build.json`` history document.

    The document is ``{"schema": 1, "entries": [...]}``; a missing or
    corrupt file starts a fresh history rather than failing the bench.
    Returns the appended entry.
    """
    path = Path(path)
    document = {"schema": 1, "entries": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(loaded, dict) and isinstance(loaded.get("entries"), list):
                document = loaded
        except (OSError, json.JSONDecodeError):
            pass
    entry = result.entry()
    entry["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    document["entries"].append(entry)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return entry


def run_build_bench(
    datasets=None,
    bandwidth: int = 20,
    *,
    worker_counts=DEFAULT_WORKER_COUNTS,
    output=BENCH_BUILD_PATH,
) -> tuple[list[dict], str]:
    """Sweep ``datasets`` (default: :data:`DEFAULT_DATASETS`) and record entries.

    Returns ``(rows, text)`` like the other experiment drivers: one row
    per (dataset, worker count), plus the rendered table.
    """
    names = list(datasets) if datasets is not None else list(DEFAULT_DATASETS)
    rows: list[dict] = []
    for name in names:
        graph = load_dataset(name)
        result = build_bench_rows(
            graph, bandwidth, worker_counts=worker_counts, name=name
        )
        if output is not None:
            record_entry(result, output)
        for row in result.rows:
            rows.append({"dataset": name, "n": graph.n, "m": graph.m, **row})
    text = format_table(
        rows,
        ["dataset", "n", "m", "workers", "build_s", "speedup", "identical"],
        title=f"build-bench — CT-{bandwidth} construction, serial vs parallel",
    )
    return rows, text
