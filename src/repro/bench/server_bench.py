"""Server benchmark: sustained RPS + tail latency through the HTTP front-end.

``repro server-bench`` is the load generator for
:class:`~repro.serving.server.DistanceServer`: it builds (or accepts)
a CT-Index, starts the server in-process, and replays a random-pair
workload as concurrent single-pair ``POST /query`` requests over N
keep-alive client connections — the shape that exercises the
micro-batcher, since every request arrives independently and leaves
as part of a shared ``query_batch`` call.

Measurement discipline matches the other BENCH artifacts:

* **identity first** — every answer the server returns is compared to
  a direct :class:`~repro.serving.QueryEngine` replay of the same
  workload; any mismatch raises and *nothing is recorded*;
* **audit second** — the server's shutdown ``artifact.json`` must
  validate against the checked-in schema and its snapshot SHA-256 must
  match the served index's own digest;
* only then does one schema-1 entry (client-side p50/p99/p999, RPS,
  server-side batching shape) append to ``BENCH_serve.json``.

Latency is measured client-side (request write to response parse), so
the recorded percentiles include the batching window — the latency a
network caller actually observes.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
import zlib
from pathlib import Path

from repro.bench.datasets import load_dataset
from repro.bench.workloads import random_pairs
from repro.core.ct_index import CTIndex
from repro.exceptions import ReproError
from repro.graphs.graph import Graph
from repro.obs.metrics import LatencyHistogram
from repro.serving.audit import (
    fingerprint_sha256,
    latency_summary,
    read_eval_history,
    validate_artifact,
)
from repro.serving.client import ServeClient
from repro.serving.engine import QueryEngine
from repro.serving.server import DistanceServer, ServerConfig

#: Default artifact path, relative to the working directory.
BENCH_SERVE_PATH = "BENCH_serve.json"

#: Version of the ``BENCH_serve.json`` document this module writes.
BENCH_SERVE_SCHEMA = 1

#: Requests in the replayed workload.
DEFAULT_REQUEST_COUNT = 2000

#: Concurrent keep-alive client connections.
DEFAULT_CONCURRENCY = 8

#: Micro-batch window the benched server runs with (milliseconds).
DEFAULT_BATCH_WINDOW_MS = 1.0


@dataclasses.dataclass
class ServerBenchResult:
    """One load-generator run against an in-process server."""

    name: str
    n: int
    m: int
    bandwidth: int
    requests: int
    concurrency: int
    batch_window_ms: float
    duration_s: float
    rps: float
    latency: dict
    batches: int
    mean_batch_size: float
    max_batch_size: int
    artifact: dict
    verified: bool
    artifact_valid: bool

    def entry(self) -> dict:
        """JSON-ready record for ``BENCH_serve.json`` (schema 1)."""
        return {
            "schema": BENCH_SERVE_SCHEMA,
            "dataset": self.name,
            "n": self.n,
            "m": self.m,
            "bandwidth": self.bandwidth,
            "requests": self.requests,
            "concurrency": self.concurrency,
            "batch_window_ms": self.batch_window_ms,
            "duration_s": round(self.duration_s, 4),
            "rps": round(self.rps, 1),
            "p50_us": self.latency["p50_us"],
            "p99_us": self.latency["p99_us"],
            "p999_us": self.latency["p999_us"],
            "mean_us": self.latency["mean_us"],
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "max_batch_size": self.max_batch_size,
            "answers_verified": self.verified,
            "artifact_valid": self.artifact_valid,
        }

    def row(self) -> dict:
        """Flat row for table rendering."""
        return {
            "dataset": self.name,
            "requests": self.requests,
            "conc": self.concurrency,
            "rps": round(self.rps, 1),
            "p50_us": round(self.latency["p50_us"], 1),
            "p99_us": round(self.latency["p99_us"], 1),
            "p999_us": round(self.latency["p999_us"], 1),
            "mean_batch": round(self.mean_batch_size, 2),
            "verified": self.verified,
        }


async def _drive_load(
    server: DistanceServer,
    pairs: list,
    concurrency: int,
    histogram: LatencyHistogram,
) -> tuple[list, float]:
    """Replay ``pairs`` through ``concurrency`` clients; answers in order."""
    host, port = server.address
    answers: list = [None] * len(pairs)
    clients = [ServeClient(host, port) for _ in range(concurrency)]

    async def worker(client: ServeClient, offset: int) -> None:
        async with client:
            for index in range(offset, len(pairs), concurrency):
                s, t = pairs[index]
                started = time.perf_counter()
                answers[index] = await client.query(s, t)
                histogram.record(time.perf_counter() - started)

    started = time.perf_counter()
    await asyncio.gather(
        *(worker(client, offset) for offset, client in enumerate(clients))
    )
    elapsed = time.perf_counter() - started
    return answers, elapsed


def server_bench_result(
    graph: Graph,
    bandwidth: int,
    *,
    name: str = "graph",
    requests: int = DEFAULT_REQUEST_COUNT,
    concurrency: int = DEFAULT_CONCURRENCY,
    batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS,
    kernel: str | None = None,
    audit_dir=None,
) -> ServerBenchResult:
    """Measure one graph; raises :class:`ReproError` on any divergence.

    ``audit_dir`` (when given) keeps the run's ``artifact.json`` /
    ``eval_history.jsonl`` around after the bench — the CI smoke uses
    it to upload the audit record as a workflow artifact.
    """
    import tempfile

    index = CTIndex.build(graph, bandwidth, backend="flat", kernel=kernel or "auto")
    digest = fingerprint_sha256(index)
    workload = random_pairs(graph, requests, seed=zlib.crc32(name.encode()))
    pairs = list(workload.pairs)
    expected = QueryEngine(index).query_batch(pairs)
    histogram = LatencyHistogram()

    async def run(directory: str):
        config = ServerConfig(
            port=0,
            batch_window_ms=batch_window_ms,
            batch_max_size=max(concurrency * 4, 16),
            max_queue_depth=max(concurrency * 64, 256),
            audit_dir=directory,
        )
        server = DistanceServer(
            QueryEngine(index),
            n=graph.n,
            config=config,
            fingerprint=digest,
        )
        async with server:
            answers, elapsed = await _drive_load(
                server, pairs, concurrency, histogram
            )
            batches = server.batches
            batched = server.batched_queries
            max_batch = server.max_batch_size
        artifact = json.loads(server.artifact_path.read_text(encoding="utf-8"))
        history = read_eval_history(server.eval_history_path)
        return answers, elapsed, batches, batched, max_batch, artifact, history

    if audit_dir is not None:
        outcome = asyncio.run(run(str(audit_dir)))
    else:
        with tempfile.TemporaryDirectory(prefix="repro-server-bench-") as tmp:
            outcome = asyncio.run(run(tmp))
    answers, elapsed, batches, batched, max_batch, artifact, history = outcome

    diverging = sum(a != b for a, b in zip(answers, expected))
    if diverging:
        raise ReproError(
            f"served answers diverge from direct QueryEngine on {name!r}: "
            f"{diverging} of {len(pairs)} differ — refusing to record "
            f"throughput for a wrong server"
        )
    validate_artifact(artifact)
    if artifact["snapshot"]["sha256"] != digest:
        raise ReproError(
            f"audit record fingerprints a different index "
            f"({artifact['snapshot']['sha256']!r} != {digest!r})"
        )
    if not history:
        raise ReproError("server wrote no eval_history.jsonl entry")

    return ServerBenchResult(
        name=name,
        n=graph.n,
        m=graph.m,
        bandwidth=bandwidth,
        requests=len(pairs),
        concurrency=concurrency,
        batch_window_ms=batch_window_ms,
        duration_s=elapsed,
        rps=len(pairs) / (elapsed or 1e-9),
        latency=latency_summary(histogram),
        batches=batches,
        mean_batch_size=(batched / batches) if batches else 0.0,
        max_batch_size=max_batch,
        artifact=artifact,
        verified=True,
        artifact_valid=True,
    )


def record_server_entry(result: ServerBenchResult, path=BENCH_SERVE_PATH) -> dict:
    """Append ``result`` to the ``BENCH_serve.json`` history document.

    Same contract as the other BENCH artifacts: the document is
    ``{"schema": 1, "entries": [...]}``, a missing or corrupt file
    starts a fresh history, and the appended entry is returned.
    """
    path = Path(path)
    document: dict = {"schema": BENCH_SERVE_SCHEMA, "entries": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(loaded, dict) and isinstance(loaded.get("entries"), list):
                document = loaded
                document["schema"] = BENCH_SERVE_SCHEMA
        except (OSError, json.JSONDecodeError):
            pass
    entry = result.entry()
    entry["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    document["entries"].append(entry)
    path.write_text(
        json.dumps(document, indent=2, allow_nan=False) + "\n", encoding="utf-8"
    )
    return entry


def run_server_bench(
    names=("fb",),
    *,
    bandwidth: int = 20,
    requests: int = DEFAULT_REQUEST_COUNT,
    concurrency: int = DEFAULT_CONCURRENCY,
    output=BENCH_SERVE_PATH,
) -> list[ServerBenchResult]:
    """Dataset-registry driver: one verified entry per name."""
    results = []
    for name in names:
        result = server_bench_result(
            load_dataset(name),
            bandwidth,
            name=name,
            requests=requests,
            concurrency=concurrency,
        )
        if output is not None:
            record_server_entry(result, output)
        results.append(result)
    return results


__all__ = [
    "BENCH_SERVE_PATH",
    "BENCH_SERVE_SCHEMA",
    "DEFAULT_BATCH_WINDOW_MS",
    "DEFAULT_CONCURRENCY",
    "DEFAULT_REQUEST_COUNT",
    "ServerBenchResult",
    "record_server_entry",
    "run_server_bench",
    "server_bench_result",
]
