"""Shared machinery of the experiment drivers.

``run_method`` builds one index (under the benchmark memory budget) and
measures its average query time; ``main_sweep`` runs the paper's method
lineup (PSL+, CT-20, CT-100, PSL*) over a dataset list once and caches
the outcome, because Exps 1-3 are three views (size / index time /
query time) of the same sweep.
"""

from __future__ import annotations

import dataclasses
import functools
import time

from repro.exceptions import OverMemoryError, ReproError
from repro.graphs.graph import Graph
from repro.labeling.base import DistanceIndex, MemoryBudget
from repro.labeling.cd import build_cd
from repro.labeling.h2h import build_h2h
from repro.labeling.pll import build_pll
from repro.labeling.psl import build_psl
from repro.labeling.psl_variants import build_psl_plus, build_psl_star
from repro.core.ct_index import CTIndex
from repro.bench.datasets import load_dataset
from repro.bench.workloads import QueryWorkload, random_pairs

#: Modeled memory budget for the standard benchmark runs, in MB.  Chosen
#: so the largest registry graphs reproduce the paper's "OM" outcomes:
#: PSL+ fails on the biggest entries while CT-100 completes everywhere.
BENCH_MEMORY_LIMIT_MB = 1.85

#: Queries measured per (dataset, method); the paper uses 10^6, scaled
#: down with the graphs (DESIGN.md §3).
BENCH_QUERY_COUNT = 2000

#: The method lineup of Figures 7-9 (Exps 1-3).
MAIN_METHODS = ("PSL+ (CT-0)", "CT-20", "CT-100", "PSL*")


@dataclasses.dataclass
class MethodResult:
    """Outcome of building + querying one method on one dataset."""

    dataset: str
    method: str
    status: str  # "ok" or "OM"
    entries: int = 0
    size_mb: float = 0.0
    build_seconds: float = 0.0
    query_seconds: float = 0.0
    extra: dict = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def cell(self, metric: str) -> str:
        """Human-readable cell for one metric ('size'/'build'/'query')."""
        if not self.ok:
            return "OM"
        if metric == "size":
            return f"{self.size_mb:.3f}"
        if metric == "build":
            return f"{self.build_seconds:.2f}"
        if metric == "query":
            return f"{self.query_seconds:.2e}"
        raise ReproError(f"unknown metric {metric!r}")


def build_method(
    method: str, graph: Graph, *, limit_mb: float | None = None
) -> DistanceIndex:
    """Build the index named by ``method`` ("CT-20", "PSL*", "CD-100", ...).

    Raises :class:`OverMemoryError` when the modeled size exceeds the
    budget.
    """
    budget = (
        MemoryBudget.from_megabytes(limit_mb) if limit_mb is not None else MemoryBudget.unlimited()
    )
    normalized = method.split(" ")[0]  # "PSL+ (CT-0)" -> "PSL+"
    if normalized.startswith("CT-"):
        bandwidth = int(normalized.removeprefix("CT-"))
        return CTIndex.build(graph, bandwidth, budget=budget)
    if normalized.startswith("CD-"):
        bandwidth = int(normalized.removeprefix("CD-"))
        return build_cd(graph, bandwidth, budget=budget)
    if normalized == "PSL+":
        return build_psl_plus(graph, budget=budget)
    if normalized == "PSL*":
        return build_psl_star(graph, budget=budget)
    if normalized == "PLL":
        return build_pll(graph, budget=budget)
    if normalized == "PSL":
        return build_psl(graph, budget=budget)
    if normalized == "H2H":
        return build_h2h(graph, budget=budget)
    raise ReproError(f"unknown method {method!r}")


def measure_query_seconds(index: DistanceIndex, workload: QueryWorkload) -> float:
    """Average seconds per query over the workload."""
    if not workload.pairs:
        return 0.0
    distance = index.distance
    started = time.perf_counter()
    for s, t in workload.pairs:
        distance(s, t)
    return (time.perf_counter() - started) / len(workload.pairs)


def run_method(
    dataset: str,
    graph: Graph,
    method: str,
    workload: QueryWorkload,
    *,
    limit_mb: float | None = BENCH_MEMORY_LIMIT_MB,
) -> MethodResult:
    """Build ``method`` on ``graph`` and measure it; "OM" on budget overflow."""
    try:
        index = build_method(method, graph, limit_mb=limit_mb)
    except OverMemoryError as exc:
        return MethodResult(
            dataset=dataset,
            method=method,
            status="OM",
            extra={"modeled_bytes_at_abort": exc.modeled_bytes},
        )
    stats = index.stats()
    query_seconds = measure_query_seconds(index, workload)
    return MethodResult(
        dataset=dataset,
        method=method,
        status="ok",
        entries=stats.entries,
        size_mb=stats.megabytes,
        build_seconds=stats.build_seconds,
        query_seconds=query_seconds,
        extra=dict(stats.extra),
    )


@functools.lru_cache(maxsize=None)
def _main_sweep_cached(
    datasets: tuple[str, ...],
    methods: tuple[str, ...],
    limit_mb: float,
    query_count: int,
) -> tuple[MethodResult, ...]:
    import zlib

    results: list[MethodResult] = []
    for name in datasets:
        graph = load_dataset(name)
        # crc32 rather than hash(): stable across processes regardless of
        # PYTHONHASHSEED, so workloads are reproducible run-to-run.
        workload = random_pairs(graph, query_count, seed=zlib.crc32(name.encode()))
        for method in methods:
            results.append(
                run_method(name, graph, method, workload, limit_mb=limit_mb)
            )
    return tuple(results)


def main_sweep(
    datasets: tuple[str, ...] | None = None,
    methods: tuple[str, ...] = MAIN_METHODS,
    *,
    limit_mb: float = BENCH_MEMORY_LIMIT_MB,
    query_count: int = BENCH_QUERY_COUNT,
) -> list[MethodResult]:
    """The shared Exp 1-3 sweep (cached per parameter set)."""
    if datasets is None:
        from repro.bench.datasets import dataset_names

        datasets = tuple(dataset_names())
    return list(_main_sweep_cached(tuple(datasets), tuple(methods), limit_mb, query_count))
