"""Plain-text table rendering for the experiment drivers.

The harness prints each figure/table of the paper as an aligned ASCII
table (rows = datasets, columns = methods or parameters), which is what
EXPERIMENTS.md records next to the paper's numbers.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    *,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned text table.

    ``columns`` fixes the column order (defaults to the keys of the
    first row); missing cells render empty.
    """
    if not rows:
        return (title + "\n") if title else ""
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_cell(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines) + "\n"


def pivot(
    rows: Sequence[Mapping[str, object]],
    index: str,
    column: str,
    value: str,
) -> list[dict[str, object]]:
    """Reshape long-form rows into one row per ``index`` value.

    Example: pivot MethodResults into one row per dataset with one
    column per method.
    """
    ordered_index: list[object] = []
    table: dict[object, dict[str, object]] = {}
    for row in rows:
        key = row[index]
        if key not in table:
            table[key] = {index: key}
            ordered_index.append(key)
        table[key][str(row[column])] = row[value]
    return [table[key] for key in ordered_index]


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)
