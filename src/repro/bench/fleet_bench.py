"""Fleet benchmark: workers vs throughput over one mapped snapshot.

``fleet_bench_result`` builds (or accepts) a CT-Index, saves it as a
binary snapshot, and measures three things:

* **load** — copying load vs ``mmap=True`` load of the same snapshot
  (the zero-copy start-up win);
* **serving** — a query workload replayed through a single-process
  :class:`~repro.serving.QueryEngine` baseline, then through
  :class:`~repro.serving.ServingFleet` at each requested worker count
  (throughput in queries/second, per-worker resident KiB);
* **identity** — *before any throughput row is recorded*, every fleet
  answers the entire workload identically to the single-process
  baseline and every worker's index-fingerprint digest matches the
  parent's (:meth:`ServingFleet.verify`).  A fleet that routes to a
  divergent worker is a bug, not a benchmark data point.

``run_fleet_bench`` appends one schema-1 entry per dataset to
``BENCH_fleet.json`` (same accumulating-history shape as the other
BENCH artifacts).  Per-worker RSS is reported raw: because the label
pages are file-backed and shared, fleet workers grow by an interpreter
heap each, not by an index each — the entry records the snapshot size
next to the per-worker RSS so the sharing is visible in the artifact.
"""

from __future__ import annotations

import dataclasses
import json
import tempfile
import time
import zlib
from pathlib import Path

from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table
from repro.bench.workloads import random_pairs
from repro.core.ct_index import CTIndex
from repro.exceptions import ReproError
from repro.graphs.graph import Graph
from repro.serving.engine import QueryEngine
from repro.serving.fleet import ServingFleet, _resident_kb
from repro.storage.binary import load_ct_index_binary, save_ct_index_binary

#: Default sweep dataset (matches storage-bench).
DEFAULT_DATASETS = ("fb",)

#: Default artifact path, relative to the working directory.
BENCH_FLEET_PATH = "BENCH_fleet.json"

#: Version of the ``BENCH_fleet.json`` document this module writes.
BENCH_FLEET_SCHEMA = 1

#: Queries in the replayed workload.
DEFAULT_QUERY_COUNT = 2000

#: Worker counts swept by default (1 included: fleet-of-one vs the
#: in-process baseline isolates the queue/IPC overhead).
DEFAULT_WORKER_COUNTS = (1, 2)

#: Pairs per routed batch — large enough to amortize one IPC round
#: trip, small enough that several batches are in flight per worker.
BATCH_SIZE = 200

#: Load timings take the minimum of this many repeats.
LOAD_REPEATS = 5


@dataclasses.dataclass
class FleetBenchResult:
    """One dataset's load comparison + workers-vs-throughput sweep."""

    name: str
    n: int
    m: int
    bandwidth: int
    queries: int
    snapshot_bytes: int
    load: dict
    baseline_qps: float
    sweep: list[dict]
    verified: bool

    @property
    def load_speedup(self) -> float:
        """Copying load seconds over mapped load seconds."""
        mapped = self.load["mmap_s"]
        return self.load["copy_s"] / mapped if mapped else 0.0

    def entry(self) -> dict:
        """JSON-ready record for ``BENCH_fleet.json`` (schema 1)."""
        return {
            "schema": BENCH_FLEET_SCHEMA,
            "dataset": self.name,
            "n": self.n,
            "m": self.m,
            "bandwidth": self.bandwidth,
            "queries": self.queries,
            "snapshot_bytes": self.snapshot_bytes,
            "load_seconds": self.load,
            "load_speedup": round(self.load_speedup, 3),
            "baseline_qps": round(self.baseline_qps, 1),
            "fleet": self.sweep,
            "answers_verified": self.verified,
        }

    def rows(self) -> list[dict]:
        """Flat rows (one per worker count) for table rendering."""
        return [
            {
                "dataset": self.name,
                "workers": point["workers"],
                "qps": round(point["qps"], 1),
                "speedup_x": round(point["qps"] / self.baseline_qps, 2)
                if self.baseline_qps
                else 0.0,
                "worker_rss_kb": max(point["worker_rss_kb"], default=0),
                "verified": self.verified,
            }
            for point in self.sweep
        ]


def _time_load(path: Path, *, mmap: bool) -> float:
    best = float("inf")
    for _ in range(LOAD_REPEATS):
        started = time.perf_counter()
        load_ct_index_binary(path, mmap=mmap)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def _batches(pairs) -> list[list]:
    return [pairs[i : i + BATCH_SIZE] for i in range(0, len(pairs), BATCH_SIZE)]


def fleet_bench_result(
    graph: Graph,
    bandwidth: int,
    *,
    name: str = "graph",
    queries: int = DEFAULT_QUERY_COUNT,
    worker_counts=DEFAULT_WORKER_COUNTS,
    kernel: str | None = None,
) -> FleetBenchResult:
    """Measure one graph; raises :class:`ReproError` on any divergence."""
    index = CTIndex.build(graph, bandwidth, backend="flat")
    workload = random_pairs(graph, queries, seed=zlib.crc32(name.encode()))
    pairs = list(workload.pairs)
    batches = _batches(pairs)

    with tempfile.TemporaryDirectory(prefix="repro-fleet-bench-") as tmp:
        snapshot = Path(tmp) / "index.ctsnap"
        save_ct_index_binary(index, snapshot)
        snapshot_bytes = snapshot.stat().st_size
        load = {
            "copy_s": round(_time_load(snapshot, mmap=False), 6),
            "mmap_s": round(_time_load(snapshot, mmap=True), 6),
        }

        baseline_engine = QueryEngine(
            load_ct_index_binary(snapshot, mmap=True), kernel=kernel
        )
        started = time.perf_counter()
        baseline_answers: list = []
        for batch in batches:
            baseline_answers.extend(baseline_engine.query_batch(batch))
        baseline_qps = len(pairs) / (time.perf_counter() - started or 1e-9)

        sweep: list[dict] = []
        for workers in worker_counts:
            with ServingFleet(snapshot, workers=workers, kernel=kernel) as fleet:
                # Identity gates measurement: fingerprints first, then
                # the whole workload against the baseline answers.
                fleet.verify()
                # Pipelined replay: every batch is dispatched before
                # the first is gathered, so workers overlap across
                # batch boundaries (the loaded-server shape) instead
                # of idling at each round trip.
                answers: list = []
                started = time.perf_counter()
                tickets = [fleet.submit_batch(batch) for batch in batches]
                for ticket in tickets:
                    answers.extend(fleet.gather(ticket))
                elapsed = time.perf_counter() - started
                if answers != baseline_answers:
                    diverging = sum(
                        a != b for a, b in zip(answers, baseline_answers)
                    )
                    raise ReproError(
                        f"{workers}-worker fleet diverges from single-process "
                        f"serving on {name!r}: {diverging} of {len(pairs)} "
                        f"answers differ — refusing to record throughput for "
                        f"a wrong fleet"
                    )
                sweep.append(
                    {
                        "workers": workers,
                        "qps": len(pairs) / (elapsed or 1e-9),
                        "worker_rss_kb": fleet.resident_kb(),
                        "parent_rss_kb": _resident_kb(),
                    }
                )

    return FleetBenchResult(
        name=name,
        n=graph.n,
        m=graph.m,
        bandwidth=bandwidth,
        queries=len(pairs),
        snapshot_bytes=snapshot_bytes,
        load=load,
        baseline_qps=baseline_qps,
        sweep=sweep,
        verified=True,
    )


def record_fleet_entry(result: FleetBenchResult, path=BENCH_FLEET_PATH) -> dict:
    """Append ``result`` to the ``BENCH_fleet.json`` history document.

    Same contract as the other BENCH artifacts: the document is
    ``{"schema": 1, "entries": [...]}``, a missing or corrupt file
    starts a fresh history, and the appended entry is returned.
    """
    path = Path(path)
    document: dict = {"schema": BENCH_FLEET_SCHEMA, "entries": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(loaded, dict) and isinstance(loaded.get("entries"), list):
                document = loaded
                document["schema"] = BENCH_FLEET_SCHEMA
        except (OSError, json.JSONDecodeError):
            pass
    entry = result.entry()
    entry["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    document["entries"].append(entry)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return entry


def run_fleet_bench(
    datasets=None,
    bandwidth: int = 20,
    *,
    queries: int = DEFAULT_QUERY_COUNT,
    worker_counts=DEFAULT_WORKER_COUNTS,
    kernel: str | None = None,
    output=BENCH_FLEET_PATH,
) -> tuple[list[dict], str]:
    """Sweep ``datasets`` (default :data:`DEFAULT_DATASETS`) and record entries.

    Returns ``(rows, text)`` like the other experiment drivers.
    """
    names = list(datasets) if datasets is not None else list(DEFAULT_DATASETS)
    rows: list[dict] = []
    for dataset in names:
        graph = load_dataset(dataset)
        result = fleet_bench_result(
            graph,
            bandwidth,
            name=dataset,
            queries=queries,
            worker_counts=worker_counts,
            kernel=kernel,
        )
        if output is not None:
            record_fleet_entry(result, output)
        rows.extend(result.rows())
    text = format_table(
        rows,
        ["dataset", "workers", "qps", "speedup_x", "worker_rss_kb", "verified"],
        title=f"fleet-bench — CT-{bandwidth} multi-process serving over one snapshot",
    )
    return rows, text
