"""Query workload generation for the benchmark harness.

The paper measures the average over 10^6 uniform random queries per
graph; at our scale a few thousand seeded pairs give stable means.
Stratified workloads (per CT query case) support the case-coverage
ablations.
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Sequence

from repro.exceptions import ConfigurationError
from repro.graphs.graph import Graph


@dataclasses.dataclass(frozen=True)
class QueryWorkload:
    """A reproducible list of query pairs over one graph."""

    name: str
    pairs: tuple[tuple[int, int], ...]

    def __len__(self) -> int:
        return len(self.pairs)


def random_pairs(graph: Graph, count: int, seed: int) -> QueryWorkload:
    """``count`` uniform random (s, t) pairs (s == t allowed, as in the paper)."""
    rng = random.Random(seed)
    n = graph.n
    if n == 0:
        return QueryWorkload(name=f"random-{count}", pairs=())
    pairs = tuple((rng.randrange(n), rng.randrange(n)) for _ in range(count))
    return QueryWorkload(name=f"random-{count}", pairs=pairs)


def distinct_random_pairs(graph: Graph, count: int, seed: int) -> QueryWorkload:
    """Random pairs with ``s != t`` (for workloads where self-queries are noise)."""
    rng = random.Random(seed)
    n = graph.n
    if n < 2:
        return QueryWorkload(name=f"distinct-{count}", pairs=())
    pairs = []
    while len(pairs) < count:
        s = rng.randrange(n)
        t = rng.randrange(n)
        if s != t:
            pairs.append((s, t))
    return QueryWorkload(name=f"distinct-{count}", pairs=tuple(pairs))


def skewed_pairs(
    graph: Graph,
    count: int,
    seed: int,
    *,
    hot_fraction: float = 0.9,
    hot_pairs: int = 16,
) -> QueryWorkload:
    """A repeat-heavy workload: most queries revisit a small hot set.

    Production query streams are skewed (hot landmark pairs, repeated
    lookups); this draws ``hot_fraction`` of the queries uniformly from
    ``hot_pairs`` fixed random pairs and the rest uniformly at random —
    the regime where the pair cache and the extension-label cache pay
    off.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ConfigurationError(f"hot_fraction {hot_fraction} outside [0, 1]")
    if hot_pairs < 1:
        raise ConfigurationError(f"hot_pairs must be positive, got {hot_pairs}")
    rng = random.Random(seed)
    n = graph.n
    if n == 0:
        return QueryWorkload(name=f"skewed-{count}", pairs=())
    hot = [(rng.randrange(n), rng.randrange(n)) for _ in range(hot_pairs)]
    pairs = tuple(
        hot[rng.randrange(hot_pairs)]
        if rng.random() < hot_fraction
        else (rng.randrange(n), rng.randrange(n))
        for _ in range(count)
    )
    return QueryWorkload(name=f"skewed-{count}", pairs=pairs)


def stratified_pairs(
    graph: Graph,
    group_a: Sequence[int],
    group_b: Sequence[int],
    count: int,
    seed: int,
    name: str = "stratified",
) -> QueryWorkload:
    """Pairs with one endpoint drawn from each group (e.g. core × tree)."""
    rng = random.Random(seed)
    if not group_a or not group_b:
        return QueryWorkload(name=name, pairs=())
    pairs = tuple(
        (group_a[rng.randrange(len(group_a))], group_b[rng.randrange(len(group_b))])
        for _ in range(count)
    )
    return QueryWorkload(name=name, pairs=pairs)


def node_fractions(graph: Graph, fractions: Sequence[float], seed: int) -> list[list[int]]:
    """Exp 5 node groups: random equal split, cumulative prefixes.

    The paper divides nodes into 5 equal random groups and evaluates the
    induced subgraph of the first k groups.  Returns one (sorted) node
    list per requested cumulative fraction.
    """
    rng = random.Random(seed)
    permutation = list(graph.nodes())
    rng.shuffle(permutation)
    result = []
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction {fraction} outside (0, 1]")
        take = max(1, round(fraction * graph.n))
        result.append(sorted(permutation[:take]))
    return result
