"""Synthetic dataset registry mirroring the paper's Table 2.

Every entry is a deterministic core-periphery graph (DESIGN.md §3) named
after one of the paper's datasets.  Sizes grow over the registry the way
the paper's table does — ``talk`` is the smallest, ``uk07`` the largest —
scaled down to what a pure-Python build can index in seconds.  The two
largest entries are sized so that, under the benchmark memory budget,
PSL+ (and for the largest also CT-20) hit the paper's "OM" outcome while
CT-100 completes, reproducing the scalability story of Exp 1.

Graph *kinds* tune the mixture:

* ``social`` — heavy fringe, moderate communities (social networks);
* ``web`` — larger near-clique communities (web graphs contain cliques
  of thousands of nodes, the paper's footnote 2);
* ``coauthor`` — many small cliques (coauthorship).
"""

from __future__ import annotations

import dataclasses
import functools

from repro.exceptions import GraphError
from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
)
from repro.graphs.graph import Graph


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """One registry entry.

    ``paper_nodes`` / ``paper_edges`` record the size of the real
    dataset the entry stands in for (from Table 2), for reporting.
    """

    name: str
    paper_name: str
    kind: str
    config: CorePeripheryConfig
    seed: int
    paper_nodes: int
    paper_edges: int


def _social(core: int, communities: int, fringe: int, max_comm: int = 60) -> CorePeripheryConfig:
    return CorePeripheryConfig(
        core_size=core,
        core_density=0.35,
        community_count=communities,
        community_size_min=5,
        community_size_max=max_comm,
        community_size_exponent=2.0,
        community_density=0.75,
        community_anchors=3,
        fringe_size=fringe,
        fringe_core_bias=0.85,
        fringe_extra_edge_prob=0.15,
    )


def _web(core: int, communities: int, fringe: int, max_comm: int = 110) -> CorePeripheryConfig:
    return CorePeripheryConfig(
        core_size=core,
        core_density=0.4,
        community_count=communities,
        community_size_min=6,
        community_size_max=max_comm,
        community_size_exponent=1.8,
        community_density=0.8,
        community_anchors=3,
        fringe_size=fringe,
        fringe_core_bias=0.8,
        fringe_extra_edge_prob=0.1,
    )


def _coauthor(core: int, communities: int, fringe: int) -> CorePeripheryConfig:
    return CorePeripheryConfig(
        core_size=core,
        core_density=0.3,
        community_count=communities,
        community_size_min=3,
        community_size_max=25,
        community_size_exponent=2.2,
        community_density=0.9,
        community_anchors=2,
        fringe_size=fringe,
        fringe_core_bias=0.9,
        fringe_extra_edge_prob=0.2,
    )


_REGISTRY: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    if spec.name in _REGISTRY:
        raise GraphError(f"duplicate dataset name {spec.name!r}")
    _REGISTRY[spec.name] = spec


_register(DatasetSpec("talk", "TALK (Wikitalk)", "social", _social(250, 12, 900), 101, 2_394_385, 5_021_410))
_register(DatasetSpec("amaz", "AMAZ (Amazon)", "social", _social(260, 15, 1100), 102, 735_323, 5_158_388))
_register(DatasetSpec("yout", "YOUT (Youtube)", "social", _social(280, 16, 1300), 103, 3_223_589, 9_375_374))
_register(DatasetSpec("epin", "EPIN (Epinions)", "social", _social(300, 18, 1500), 104, 755_762, 13_396_320))
_register(DatasetSpec("dblp", "DBLP", "coauthor", _coauthor(320, 40, 1700), 105, 1_314_050, 18_986_618))
_register(DatasetSpec("pok", "POK (Pokec)", "social", _social(340, 20, 2000), 106, 1_632_803, 30_622_564))
_register(DatasetSpec("fb", "FB (Facebook)", "social", _social(360, 24, 2400), 107, 58_790_783, 92_208_195))
_register(DatasetSpec("lj", "LJ (Ljournal)", "social", _social(380, 26, 2800), 108, 5_363_260, 79_023_142))
_register(DatasetSpec("twit", "TWIT (Twitter)", "social", _social(400, 28, 3200, max_comm=80), 109, 21_297_772, 265_025_809))
_register(DatasetSpec("uk02", "UK02 (UK-2002)", "web", _web(400, 26, 3400), 110, 18_520_486, 298_113_762))
_register(DatasetSpec("arab", "ARAB (Arabic)", "web", _web(420, 28, 3800), 111, 22_744_080, 639_999_458))
_register(DatasetSpec("uk05", "UK05 (UK-2005)", "web", _web(440, 30, 4200), 112, 39_459_925, 936_364_282))
_register(DatasetSpec("wb", "WB (Webbase)", "web", _web(460, 32, 4800), 113, 118_142_155, 1_019_903_190))
_register(DatasetSpec("uk0705", "UK0705 (UK-07-05)", "web", _web(530, 72, 11400), 114, 105_896_555, 3_738_733_648))
_register(DatasetSpec("uk07", "UK07 (UK-2007)", "web", _web(550, 68, 13000), 115, 133_633_040, 5_507_679_822))

#: The six datasets of the bandwidth-effect / scalability experiments
#: (Figures 10-13 use DBLP, FB, TWIT, UK02, UK05, WB).
EXP4_DATASETS = ("dblp", "fb", "twit", "uk02", "uk05", "wb")

#: Exp 6 compares CT with CD on the two smallest graphs (Table 3).
EXP6_DATASETS = ("talk", "epin")

#: Exp 7 searches the bandwidth on LJ and ARAB (Figure 14).
EXP7_DATASETS = ("lj", "arab")


def dataset_names() -> list[str]:
    """All registry names, smallest graph first."""
    return list(_REGISTRY)


def dataset_spec(name: str) -> DatasetSpec:
    """Spec for ``name``; raises :class:`GraphError` for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise GraphError(f"unknown dataset {name!r}; known: {known}") from None


@functools.lru_cache(maxsize=None)
def load_dataset(name: str) -> Graph:
    """Generate (and cache) the graph for a registry entry."""
    spec = dataset_spec(name)
    return core_periphery_graph(spec.config, spec.seed)
