"""Actual in-process memory measurement.

The benchmark harness reports *modeled* sizes (8 bytes per entry, the
paper's C++ layout).  This module measures the real CPython footprint of
an index by deep ``sys.getsizeof`` traversal, so EXPERIMENTS.md can
state how far apart the two accountings sit (Python's boxed ints and
dicts cost roughly an order of magnitude more than the model — which is
precisely why the size *model* is used for the paper comparisons).

It also owns the peak-RSS accounting the benches report.  A parallel
build does part of its work in worker processes, whose pages never show
up in the parent's ``ru_maxrss`` — a ``workers=4`` build that "peaked at
400 MB" may really have touched 4× that across the pool.  Worker pools
report each child's ``ru_maxrss`` on exit
(:meth:`repro.parallel.shm.ShmBuildPool.shutdown` calls
:func:`record_child_peak_rss`), and :func:`combined_peak_rss_mb` folds
those into the parent's high-water mark so ``BENCH_scale.json`` does not
under-report parallel builds.  The sum over children is an upper bound
under ``fork`` (inherited pages are counted once per process), which is
the conservative direction for a memory claim.
"""

from __future__ import annotations

import resource
import sys
from collections.abc import Mapping

#: Accumulated ``ru_maxrss`` (in KB, the Linux unit) of every exited
#: worker process since the last :func:`reset_child_peak_rss`.
_CHILD_PEAK_KB: int = 0


def reset_child_peak_rss() -> None:
    """Zero the child-process peak-RSS accumulator (start of a bench run)."""
    global _CHILD_PEAK_KB
    _CHILD_PEAK_KB = 0


def record_child_peak_rss(kb: int) -> None:
    """Add one exited worker's ``ru_maxrss`` (KB) to the accumulator."""
    global _CHILD_PEAK_KB
    _CHILD_PEAK_KB += max(0, int(kb))


def child_peak_rss_mb() -> float:
    """Sum of recorded children's peak RSS, in MB."""
    return _CHILD_PEAK_KB / 1024.0


def peak_rss_mb() -> float:
    """This process's peak RSS in MB (``ru_maxrss`` is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def combined_peak_rss_mb() -> float:
    """Parent peak RSS plus every recorded worker's peak RSS, in MB."""
    return peak_rss_mb() + child_peak_rss_mb()


def deep_size_of(obj: object) -> int:
    """Total bytes of ``obj`` and everything reachable from it.

    Follows containers, instance ``__dict__``/``__slots__``, and
    dataclasses; shared sub-objects are counted once.  Class objects,
    modules, and functions are skipped (they are not index payload).
    """
    seen: set[int] = set()
    stack = [obj]
    total = 0
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        if isinstance(current, (type, sys.__class__)) or callable(current):
            continue
        total += sys.getsizeof(current)
        if isinstance(current, Mapping):
            stack.extend(current.keys())
            stack.extend(current.values())
        elif isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
        if hasattr(current, "__dict__"):
            stack.append(vars(current))
        slots = getattr(type(current), "__slots__", ())
        for name in slots:
            if hasattr(current, name):
                stack.append(getattr(current, name))
    return total


def memory_report(index) -> dict[str, float]:
    """Modeled vs actual footprint of a distance index, in MB."""
    modeled = index.size_bytes() / 1e6
    actual = deep_size_of(index) / 1e6
    return {
        "modeled_mb": round(modeled, 3),
        "actual_python_mb": round(actual, 3),
        "overhead_factor": round(actual / modeled, 1) if modeled else 0.0,
    }
