"""Actual in-process memory measurement.

The benchmark harness reports *modeled* sizes (8 bytes per entry, the
paper's C++ layout).  This module measures the real CPython footprint of
an index by deep ``sys.getsizeof`` traversal, so EXPERIMENTS.md can
state how far apart the two accountings sit (Python's boxed ints and
dicts cost roughly an order of magnitude more than the model — which is
precisely why the size *model* is used for the paper comparisons).
"""

from __future__ import annotations

import sys
from collections.abc import Mapping


def deep_size_of(obj: object) -> int:
    """Total bytes of ``obj`` and everything reachable from it.

    Follows containers, instance ``__dict__``/``__slots__``, and
    dataclasses; shared sub-objects are counted once.  Class objects,
    modules, and functions are skipped (they are not index payload).
    """
    seen: set[int] = set()
    stack = [obj]
    total = 0
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        if isinstance(current, (type, sys.__class__)) or callable(current):
            continue
        total += sys.getsizeof(current)
        if isinstance(current, Mapping):
            stack.extend(current.keys())
            stack.extend(current.values())
        elif isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
        if hasattr(current, "__dict__"):
            stack.append(vars(current))
        slots = getattr(type(current), "__slots__", ())
        for name in slots:
            if hasattr(current, name):
                stack.append(getattr(current, name))
    return total


def memory_report(index) -> dict[str, float]:
    """Modeled vs actual footprint of a distance index, in MB."""
    modeled = index.size_bytes() / 1e6
    actual = deep_size_of(index) / 1e6
    return {
        "modeled_mb": round(modeled, 3),
        "actual_python_mb": round(actual, 3),
        "overhead_factor": round(actual / modeled, 1) if modeled else 0.0,
    }
