"""Dynamic-graph benchmark: update throughput and query latency under churn.

``dynamic_bench_result`` wraps a built CT-Index in a
:class:`~repro.dynamic.DeltaOverlayIndex` and replays seeded batches of
random edge insertions/deletions, timing the mutation stream
(updates/s) and a query workload after every batch (latency under a
growing patch).  **Every answer in every batch is verified against
BFS/Dijkstra ground truth on the materialized current graph before any
number is recorded** — a wrong answer raises
:class:`~repro.exceptions.ReproError` instead of becoming a data point.
The run ends with a rebuild-verify-swap cycle
(:class:`~repro.dynamic.BackgroundReindexer`); the swapped-in base must
answer ground truth *and* match the canonical fingerprint of an
independent serial rebuild of the same snapshot, pinning the
determinism guarantee under churn.

``run_dynamic_bench`` sweeps the registry datasets and appends one
schema-1 entry per graph to ``BENCH_dynamic.json``.
"""

from __future__ import annotations

import dataclasses
import json
import random
import time
from pathlib import Path

from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table
from repro.core.ct_index import CTIndex
from repro.core.serialization import index_fingerprint
from repro.dynamic import BackgroundReindexer, DeltaOverlayIndex
from repro.exceptions import ReproError
from repro.graphs.graph import Graph
from repro.graphs.traversal import single_source_distances

#: Default sweep (matches the other bench drivers' headline graph).
DEFAULT_DATASETS = ("fb",)

#: Default artifact path, relative to the working directory.
BENCH_DYNAMIC_PATH = "BENCH_dynamic.json"

#: Version of the ``BENCH_dynamic.json`` document this module writes.
BENCH_DYNAMIC_SCHEMA = 1

DEFAULT_BATCHES = 6
DEFAULT_BATCH_SIZE = 24
DEFAULT_QUERIES_PER_BATCH = 200


@dataclasses.dataclass
class DynamicBenchResult:
    """One graph's update-throughput / latency-under-churn measurement."""

    name: str
    n: int
    m: int
    bandwidth: int
    batches: int
    batch_size: int
    queries_per_batch: int
    seed: int
    mutations_applied: int
    update_seconds: float
    query_latency_us: dict
    rebuild: dict
    verified_answers: int

    @property
    def updates_per_second(self) -> float:
        if self.update_seconds <= 0:
            return 0.0
        return self.mutations_applied / self.update_seconds

    def entry(self) -> dict:
        """JSON-ready record for ``BENCH_dynamic.json`` (schema 1)."""
        return {
            "schema": BENCH_DYNAMIC_SCHEMA,
            "dataset": self.name,
            "n": self.n,
            "m": self.m,
            "bandwidth": self.bandwidth,
            "batches": self.batches,
            "batch_size": self.batch_size,
            "queries_per_batch": self.queries_per_batch,
            "seed": self.seed,
            "mutations_applied": self.mutations_applied,
            "update_seconds": round(self.update_seconds, 6),
            "updates_per_second": round(self.updates_per_second, 1),
            "query_latency_us": self.query_latency_us,
            "rebuild": self.rebuild,
            "verified_answers": self.verified_answers,
            "answers_verified": True,
        }

    def row(self) -> dict:
        """Flat row for table rendering."""
        return {
            "dataset": self.name,
            "n": self.n,
            "mutations": self.mutations_applied,
            "upd_per_s": round(self.updates_per_second, 1),
            "q_p50_us": self.query_latency_us["p50"],
            "q_p99_us": self.query_latency_us["p99"],
            "rebuild_s": self.rebuild["build_seconds"],
            "replayed": self.rebuild["replayed_ops"],
            "verified": self.verified_answers,
        }


def _percentile(latencies_sorted: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not latencies_sorted:
        return 0.0
    rank = min(len(latencies_sorted) - 1, int(q * len(latencies_sorted)))
    return latencies_sorted[rank]


class _ChurnStream:
    """Seeded random insert/delete generator over a mutable edge set."""

    def __init__(self, graph: Graph, seed: int) -> None:
        self.rng = random.Random(seed)
        self.n = graph.n
        self.edges = {(u, v) for u, v, _ in graph.edges()}

    def next_op(self) -> tuple[str, int, int, int | None]:
        rng = self.rng
        # Removals are only possible while edges remain; keep the mix
        # near 50/50 without ever emitting an invalid op.
        if self.edges and (rng.random() < 0.5 or self._full()):
            u, v = rng.choice(sorted(self.edges))
            self.edges.discard((u, v))
            return ("remove", u, v, None)
        while True:
            u, v = rng.randrange(self.n), rng.randrange(self.n)
            if u == v:
                continue
            key = (u, v) if u < v else (v, u)
            if key not in self.edges:
                self.edges.add(key)
                return ("add", key[0], key[1], 1)

    def _full(self) -> bool:
        return len(self.edges) >= self.n * (self.n - 1) // 2

    def batch(self, size: int) -> list[tuple[str, int, int, int | None]]:
        return [self.next_op() for _ in range(size)]


def dynamic_bench_result(
    graph: Graph,
    bandwidth: int,
    *,
    name: str = "graph",
    batches: int = DEFAULT_BATCHES,
    batch_size: int = DEFAULT_BATCH_SIZE,
    queries_per_batch: int = DEFAULT_QUERIES_PER_BATCH,
    seed: int = 0,
    workers: int | None = None,
) -> DynamicBenchResult:
    """Measure one graph under churn; raises on any wrong answer."""
    base = CTIndex.build(graph, bandwidth, backend="flat", workers=workers)
    overlay = DeltaOverlayIndex(base)
    stream = _ChurnStream(graph, seed)
    rng = random.Random(seed + 1)

    mutations = 0
    update_seconds = 0.0
    latencies: list[float] = []
    verified = 0

    for _ in range(batches):
        ops = stream.batch(batch_size)
        started = time.perf_counter()
        mutations += overlay.apply(ops)
        update_seconds += time.perf_counter() - started

        pairs = [
            (rng.randrange(graph.n), rng.randrange(graph.n))
            for _ in range(queries_per_batch)
        ]
        answers = []
        for s, t in pairs:
            started = time.perf_counter()
            answers.append(overlay.distance(s, t))
            latencies.append(time.perf_counter() - started)

        # Verify this batch's answers against ground truth on the
        # *current* graph before recording anything.
        current = overlay.materialize_current()
        truth_cache: dict[int, list] = {}
        for (s, t), got in zip(pairs, answers):
            truth = truth_cache.get(s)
            if truth is None:
                truth = truth_cache[s] = single_source_distances(current, s)
            if got != truth[t]:
                raise ReproError(
                    f"overlay answer diverges from ground truth on "
                    f"{name!r}: distance({s}, {t}) = {got!r}, expected "
                    f"{truth[t]!r} — refusing to record benchmark numbers"
                )
            verified += 1

    # Rebuild-verify-swap, then pin determinism: an independent serial
    # rebuild of the same snapshot must produce the same fingerprint.
    snapshot_graph = overlay.materialize_current()
    reindexer = BackgroundReindexer(overlay, workers=workers)
    result = reindexer.rebuild_once()
    independent = CTIndex.build(
        snapshot_graph, bandwidth, backend=base.storage_backend
    )
    if index_fingerprint(overlay.base) != index_fingerprint(independent):
        raise ReproError(
            f"swapped-in index fingerprint diverges from an independent "
            f"rebuild on {name!r} — determinism under churn is broken"
        )
    post_pairs = [
        (rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(64)
    ]
    truth_cache = {}
    for s, t in post_pairs:
        truth = truth_cache.get(s)
        if truth is None:
            truth = truth_cache[s] = single_source_distances(snapshot_graph, s)
        got = overlay.distance(s, t)
        if got != truth[t]:
            raise ReproError(
                f"post-swap answer diverges from ground truth on {name!r}: "
                f"distance({s}, {t}) = {got!r}, expected {truth[t]!r}"
            )
        verified += 1

    latencies.sort()
    return DynamicBenchResult(
        name=name,
        n=graph.n,
        m=graph.m,
        bandwidth=bandwidth,
        batches=batches,
        batch_size=batch_size,
        queries_per_batch=queries_per_batch,
        seed=seed,
        mutations_applied=mutations,
        update_seconds=update_seconds,
        query_latency_us={
            "p50": round(_percentile(latencies, 0.50) * 1e6, 2),
            "p95": round(_percentile(latencies, 0.95) * 1e6, 2),
            "p99": round(_percentile(latencies, 0.99) * 1e6, 2),
            "max": round((latencies[-1] if latencies else 0.0) * 1e6, 2),
        },
        rebuild=result.summary(),
        verified_answers=verified,
    )


def record_dynamic_entry(result: DynamicBenchResult, path=BENCH_DYNAMIC_PATH) -> dict:
    """Append ``result`` to the ``BENCH_dynamic.json`` history document.

    The document is ``{"schema": 1, "entries": [...]}``; a missing or
    corrupt file starts a fresh history rather than failing the bench.
    Returns the appended entry.
    """
    path = Path(path)
    document: dict = {"schema": BENCH_DYNAMIC_SCHEMA, "entries": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(loaded, dict) and isinstance(loaded.get("entries"), list):
                document = loaded
                document["schema"] = BENCH_DYNAMIC_SCHEMA
        except (OSError, json.JSONDecodeError):
            pass
    entry = result.entry()
    entry["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    document["entries"].append(entry)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return entry


def run_dynamic_bench(
    datasets=None,
    bandwidth: int = 20,
    *,
    batches: int = DEFAULT_BATCHES,
    batch_size: int = DEFAULT_BATCH_SIZE,
    queries: int = DEFAULT_QUERIES_PER_BATCH,
    seed: int = 0,
    workers: int | None = None,
    output=BENCH_DYNAMIC_PATH,
) -> tuple[list[dict], str]:
    """Sweep ``datasets`` (default :data:`DEFAULT_DATASETS`), record entries.

    Returns ``(rows, text)`` like the other experiment drivers.
    """
    names = list(datasets) if datasets is not None else list(DEFAULT_DATASETS)
    rows: list[dict] = []
    for name in names:
        graph = load_dataset(name)
        result = dynamic_bench_result(
            graph,
            bandwidth,
            name=name,
            batches=batches,
            batch_size=batch_size,
            queries_per_batch=queries,
            seed=seed,
            workers=workers,
        )
        if output is not None:
            record_dynamic_entry(result, output)
        rows.append(result.row())
    text = format_table(
        rows,
        [
            "dataset",
            "n",
            "mutations",
            "upd_per_s",
            "q_p50_us",
            "q_p99_us",
            "rebuild_s",
            "replayed",
            "verified",
        ],
        title=f"dynamic-bench — CT-{bandwidth} updates + queries under churn",
    )
    return rows, text


__all__ = [
    "BENCH_DYNAMIC_PATH",
    "BENCH_DYNAMIC_SCHEMA",
    "DynamicBenchResult",
    "dynamic_bench_result",
    "record_dynamic_entry",
    "run_dynamic_bench",
]
