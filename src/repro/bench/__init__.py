"""Benchmark harness: datasets, workloads, and experiment drivers."""

from repro.bench.charts import horizontal_bar_chart
from repro.bench.datasets import (
    EXP4_DATASETS,
    EXP6_DATASETS,
    EXP7_DATASETS,
    DatasetSpec,
    dataset_names,
    dataset_spec,
    load_dataset,
)
from repro.bench.experiments import run_experiment
from repro.bench.memory import deep_size_of, memory_report
from repro.bench.reporting import format_table, pivot
from repro.bench.runner import (
    BENCH_MEMORY_LIMIT_MB,
    BENCH_QUERY_COUNT,
    MAIN_METHODS,
    MethodResult,
    build_method,
    main_sweep,
    measure_query_seconds,
    run_method,
)
from repro.bench.workloads import (
    QueryWorkload,
    distinct_random_pairs,
    node_fractions,
    random_pairs,
    stratified_pairs,
)

__all__ = [
    "BENCH_MEMORY_LIMIT_MB",
    "BENCH_QUERY_COUNT",
    "EXP4_DATASETS",
    "EXP6_DATASETS",
    "EXP7_DATASETS",
    "DatasetSpec",
    "MAIN_METHODS",
    "MethodResult",
    "QueryWorkload",
    "build_method",
    "dataset_names",
    "deep_size_of",
    "dataset_spec",
    "distinct_random_pairs",
    "format_table",
    "horizontal_bar_chart",
    "load_dataset",
    "main_sweep",
    "measure_query_seconds",
    "memory_report",
    "node_fractions",
    "pivot",
    "random_pairs",
    "run_experiment",
    "run_method",
    "stratified_pairs",
]
