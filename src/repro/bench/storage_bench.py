"""Storage benchmark: dict vs flat label residency, JSON vs binary load.

``storage_bench_result`` builds one graph's CT-Index on the dict
backend, replays a query workload, then packs the same index into the
CSR flat backend and replays the workload under the ``"python"`` query
kernel and — when NumPy is installed — under the ``"numpy"`` kernel
(:mod:`repro.kernels`), *verifying every answer and the index
fingerprint are identical before recording a single number* (a storage
backend or kernel that changes an answer is a bug, not a benchmark data
point).  It then writes the index as a JSON document and as a binary
snapshot and times reloading each.

``run_storage_bench`` sweeps the registry datasets and appends one
schema-2 entry per graph to ``BENCH_storage.json``, so successive runs
accumulate a storage-performance history next to the repo's other
bench artifacts (schema-1 entries from older runs are kept as they
are).  The headline columns:

* ``resident_reduction`` — dict resident label bytes / flat resident
  label bytes (the CSR payoff: no per-entry ``PyObject`` headers);
* ``load_speedup`` — JSON load seconds / binary load seconds (the
  snapshot payoff: ``array.frombytes`` instead of JSON token parsing);
* ``query_us`` — mean point-query microseconds per backend/kernel
  (``dict_us`` / ``flat_python_us`` / ``flat_numpy_us``, the last
  ``None`` when NumPy is absent).
"""

from __future__ import annotations

import dataclasses
import gc
import json
import tempfile
import time
import zlib
from pathlib import Path

from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table
from repro.bench.workloads import random_pairs
from repro.core.ct_index import CTIndex
from repro.core.serialization import (
    index_fingerprint,
    load_ct_index,
    save_ct_index,
    save_ct_index_binary,
)
from repro.exceptions import ReproError
from repro.graphs.graph import Graph
from repro.kernels import numpy_available
from repro.storage.sizing import ct_resident_label_bytes

#: Default sweep: the core-periphery benchmark graph of the acceptance
#: criteria plus the smallest registry graph as a sanity row.
DEFAULT_DATASETS = ("fb",)

#: Default artifact path, relative to the working directory.
BENCH_STORAGE_PATH = "BENCH_storage.json"

#: Queries replayed per backend.
DEFAULT_QUERY_COUNT = 2000

#: Version of the ``BENCH_storage.json`` document this module writes.
#: Schema 1 entries had one ``flat_us`` timing; schema 2 splits it into
#: per-kernel ``flat_python_us`` / ``flat_numpy_us``.  Readers must
#: accept both entry shapes.
BENCH_STORAGE_SCHEMA = 2

#: Reloads per format; the minimum is recorded (steady-state load cost,
#: not page-cache warmup).
LOAD_REPEATS = 3

#: Workload replays per backend; the minimum per-query time is
#: recorded, like :data:`LOAD_REPEATS` for loads — the backends are
#: replayed minutes apart (index build and fingerprinting sit between
#: them), so a single timing per backend would fold scheduler noise
#: into the comparison.  Five passes give each backend a fair chance
#: of catching a calm scheduling window on busy machines.
QUERY_REPEATS = 5


@dataclasses.dataclass
class StorageBenchResult:
    """One graph's dict-vs-flat / JSON-vs-binary comparison."""

    name: str
    n: int
    m: int
    bandwidth: int
    entries: int
    resident: dict
    disk: dict
    load: dict
    query: dict
    verified: bool

    @property
    def resident_reduction(self) -> float:
        """Dict resident label bytes over flat resident label bytes."""
        flat = self.resident["flat"]["total"]
        return self.resident["dict"]["total"] / flat if flat else 0.0

    @property
    def load_speedup(self) -> float:
        """JSON load seconds over binary load seconds."""
        binary = self.load["binary_s"]
        return self.load["json_s"] / binary if binary else 0.0

    def entry(self) -> dict:
        """JSON-ready record for ``BENCH_storage.json`` (schema 2)."""
        return {
            "schema": BENCH_STORAGE_SCHEMA,
            "dataset": self.name,
            "n": self.n,
            "m": self.m,
            "bandwidth": self.bandwidth,
            "entries": self.entries,
            "resident_bytes": self.resident,
            "resident_reduction": round(self.resident_reduction, 3),
            "disk_bytes": self.disk,
            "load_seconds": self.load,
            "load_speedup": round(self.load_speedup, 3),
            "query_us": self.query,
            "answers_verified": self.verified,
        }

    def row(self) -> dict:
        """Flat row for table rendering."""
        numpy_us = self.query.get("flat_numpy_us")
        return {
            "dataset": self.name,
            "n": self.n,
            "entries": self.entries,
            "dict_kb": round(self.resident["dict"]["total"] / 1e3, 1),
            "flat_kb": round(self.resident["flat"]["total"] / 1e3, 1),
            "resident_x": round(self.resident_reduction, 2),
            "json_ms": round(self.load["json_s"] * 1e3, 1),
            "bin_ms": round(self.load["binary_s"] * 1e3, 1),
            "load_x": round(self.load_speedup, 2),
            "dict_us": self.query["dict_us"],
            "fpy_us": self.query["flat_python_us"],
            "fnp_us": numpy_us if numpy_us is not None else "-",
            "verified": self.verified,
        }


def _replay(index: CTIndex, pairs, repeats: int = QUERY_REPEATS) -> tuple[list, float]:
    """Answers plus minimum mean seconds per query over ``repeats`` passes.

    Collects garbage before each timed pass so that allocation churn
    from the preceding phase (index build, fingerprinting, backend
    conversion) is not charged to whichever backend happens to be
    replayed next — every backend starts from the same heap state.
    Repeats change nothing semantically (answers are checked to agree
    across passes).  The extension LRU is far smaller than the
    workload's position set, so later passes are not *semantically*
    warmer; what the minimum does drop is the first pass's one-time
    costs (page faults on freshly packed arrays, interpreter
    specialization of the kernel loops) and any pass that caught a
    scheduler or frequency spike — steady-state cost is what the
    column claims to compare.
    """
    distance = index.distance
    answers: list | None = None
    best = float("inf")
    for _ in range(max(1, repeats)):
        gc.collect()
        started = time.perf_counter()
        pass_answers = [distance(s, t) for s, t in pairs]
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        if answers is None:
            answers = pass_answers
        elif pass_answers != answers:
            raise ReproError(
                "query replay is non-deterministic: repeated passes over "
                "the same workload returned different answers"
            )
    return answers or [], best / (len(pairs) or 1)


def _time_load(path: Path, repeats: int = LOAD_REPEATS) -> float:
    """Minimum wall-clock seconds to reload the index at ``path``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        load_ct_index(path)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def storage_bench_result(
    graph: Graph,
    bandwidth: int,
    *,
    name: str = "graph",
    queries: int = DEFAULT_QUERY_COUNT,
) -> StorageBenchResult:
    """Measure one graph; raises :class:`ReproError` on any divergence.

    Verification happens *before* measurement is recorded: the flat
    backend must return the dict backend's exact answers on the whole
    workload, and the fingerprint must not move under conversion.
    """
    index = CTIndex.build(graph, bandwidth)
    workload = random_pairs(graph, queries, seed=zlib.crc32(name.encode()))
    pairs = workload.pairs

    dict_answers, dict_per_query = _replay(index, pairs)
    dict_resident = ct_resident_label_bytes(index)
    dict_print = index_fingerprint(index)

    index.compact()
    index.set_kernel("python")
    flat_answers, flat_per_query = _replay(index, pairs)
    if flat_answers != dict_answers:
        diverging = sum(a != b for a, b in zip(dict_answers, flat_answers))
        raise ReproError(
            f"flat backend diverges from dict backend on {name!r}: "
            f"{diverging} of {len(pairs)} answers differ — refusing to "
            f"record benchmark numbers for a wrong index"
        )
    if index_fingerprint(index) != dict_print:
        raise ReproError(
            f"index fingerprint of {name!r} changed under compact() — "
            f"the fingerprint must be storage-agnostic"
        )
    flat_resident = ct_resident_label_bytes(index)

    numpy_per_query = None
    if numpy_available():
        index.set_kernel("numpy")
        numpy_answers, numpy_per_query = _replay(index, pairs)
        if numpy_answers != dict_answers:
            diverging = sum(a != b for a, b in zip(dict_answers, numpy_answers))
            raise ReproError(
                f"numpy kernel diverges from the python kernel on {name!r}: "
                f"{diverging} of {len(pairs)} answers differ — refusing to "
                f"record benchmark numbers for a wrong kernel"
            )
        if index_fingerprint(index) != dict_print:
            raise ReproError(
                f"index fingerprint of {name!r} changed under set_kernel() — "
                f"the fingerprint must be kernel-agnostic"
            )
        index.set_kernel("python")

    with tempfile.TemporaryDirectory(prefix="repro-storage-bench-") as tmp:
        json_path = Path(tmp) / "index.json"
        binary_path = Path(tmp) / "index.ctsnap"
        save_ct_index(index, json_path)
        save_ct_index_binary(index, binary_path)
        disk = {
            "json": json_path.stat().st_size,
            "binary": binary_path.stat().st_size,
        }
        load = {
            "json_s": round(_time_load(json_path), 6),
            "binary_s": round(_time_load(binary_path), 6),
        }
        reloaded = load_ct_index(binary_path)
        step = max(1, len(pairs) // 50)
        for i in range(0, len(pairs), step):
            s, t = pairs[i]
            if reloaded.distance(s, t) != dict_answers[i]:
                raise ReproError(
                    f"binary snapshot of {name!r} answers ({s}, {t}) wrong "
                    f"after reload"
                )

    return StorageBenchResult(
        name=name,
        n=graph.n,
        m=graph.m,
        bandwidth=bandwidth,
        entries=index.size_entries(),
        resident={"dict": dict_resident, "flat": flat_resident},
        disk=disk,
        load=load,
        query={
            "dict_us": round(dict_per_query * 1e6, 2),
            "flat_python_us": round(flat_per_query * 1e6, 2),
            "flat_numpy_us": (
                round(numpy_per_query * 1e6, 2)
                if numpy_per_query is not None
                else None
            ),
        },
        verified=True,
    )


def record_storage_entry(result: StorageBenchResult, path=BENCH_STORAGE_PATH) -> dict:
    """Append ``result`` to the ``BENCH_storage.json`` history document.

    The document is ``{"schema": 2, "entries": [...]}``; a missing or
    corrupt file starts a fresh history rather than failing the bench.
    A schema-1 document is upgraded in place: its entries are kept
    untouched (each entry carries its own shape — schema-1 entries have
    one ``flat_us``, schema-2 entries per-kernel timings) and the
    document-level schema moves to 2.  Returns the appended entry.
    """
    path = Path(path)
    document: dict = {"schema": BENCH_STORAGE_SCHEMA, "entries": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(loaded, dict) and isinstance(loaded.get("entries"), list):
                document = loaded
                document["schema"] = BENCH_STORAGE_SCHEMA
        except (OSError, json.JSONDecodeError):
            pass
    entry = result.entry()
    entry["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    document["entries"].append(entry)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return entry


def run_storage_bench(
    datasets=None,
    bandwidth: int = 20,
    *,
    queries: int = DEFAULT_QUERY_COUNT,
    output=BENCH_STORAGE_PATH,
) -> tuple[list[dict], str]:
    """Sweep ``datasets`` (default: :data:`DEFAULT_DATASETS`) and record entries.

    Returns ``(rows, text)`` like the other experiment drivers: one row
    per dataset, plus the rendered table.
    """
    names = list(datasets) if datasets is not None else list(DEFAULT_DATASETS)
    rows: list[dict] = []
    for name in names:
        graph = load_dataset(name)
        result = storage_bench_result(graph, bandwidth, name=name, queries=queries)
        if output is not None:
            record_storage_entry(result, output)
        rows.append(result.row())
    text = format_table(
        rows,
        [
            "dataset",
            "n",
            "entries",
            "dict_kb",
            "flat_kb",
            "resident_x",
            "json_ms",
            "bin_ms",
            "load_x",
            "dict_us",
            "fpy_us",
            "fnp_us",
            "verified",
        ],
        title=f"storage-bench — CT-{bandwidth} label storage and snapshots",
    )
    return rows, text
