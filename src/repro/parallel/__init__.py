"""Multiprocess index construction.

The parallel build path fans the two heavy halves of CT-Index
construction out over worker processes while keeping the output
byte-identical to a serial build:

* :mod:`repro.parallel.psl` — level-synchronous PSL rounds, one vertex
  chunk per worker against a read-only snapshot of the previous level;
* :mod:`repro.parallel.forest` — per-tree forest labels, whole trees
  binned into balanced tasks (skew-aware, work-stealing friendly);
* :mod:`repro.parallel.shm` — the shared-memory engine (experimental
  tier): one persistent worker pool per build, CSR label state and
  frontiers in ``multiprocessing.shared_memory``, compact per-range
  deltas instead of pickled snapshots.  Used automatically when
  ``workers > 1`` and NumPy is importable; requires NumPy, so its
  names are re-exported lazily here;
* :mod:`repro.parallel.chunking` / :mod:`repro.parallel.pool` — the
  deterministic partitioning and pool plumbing both share.

Entry points: ``build_ct_index(graph, d, workers=N)``,
``build_psl(graph, workers=N)``, and ``repro build --workers N`` on the
command line.  ``workers=0`` means one worker per CPU.
"""

from repro.parallel.chunking import balanced_tasks, vertex_chunks
from repro.parallel.forest import forest_tasks, parallel_tree_labels
from repro.parallel.pool import START_METHOD_ENV, pool_context, resolve_workers
from repro.parallel.psl import run_parallel_rounds

_SHM_NAMES = (
    "SHM_PREFIX",
    "ShmArena",
    "ShmBuildPool",
    "WorkerAttachments",
    "parallel_tree_labels_shm",
    "run_shm_rounds",
)

__all__ = [
    "START_METHOD_ENV",
    "balanced_tasks",
    "forest_tasks",
    "parallel_tree_labels",
    "pool_context",
    "resolve_workers",
    "run_parallel_rounds",
    "vertex_chunks",
    *_SHM_NAMES,
]


def __getattr__(name):
    # repro.parallel.shm imports NumPy at module import time; deferring
    # its re-exports keeps `import repro.parallel` working without it.
    if name in _SHM_NAMES:
        from repro.parallel import shm

        return getattr(shm, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
