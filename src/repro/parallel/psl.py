"""Multiprocess PSL rounds (the tentpole's core-labeling half).

PSL is level-synchronous: within one round every vertex's candidate
gathering reads only labels committed in strictly earlier rounds, so the
vertex set can be partitioned arbitrarily and evaluated concurrently.
This module runs each round's gather phase
(:func:`repro.labeling.psl.psl_level_additions`) across a
:class:`~concurrent.futures.ProcessPoolExecutor`:

1. the master holds the authoritative ``label_maps`` / ``last_added``;
2. at each level a fresh pool snapshots that state (free under ``fork``
   — workers inherit it copy-on-write; pickled on ``spawn`` platforms)
   and every worker evaluates one contiguous vertex chunk against the
   read-only snapshot;
3. the master concatenates the chunk results in vertex order and commits
   them with the same :func:`~repro.labeling.psl.psl_commit_level` the
   serial builder uses.

Because gather is pure and commit is shared code applied in canonical
vertex order, a ``workers=N`` build commits exactly the labels a serial
build commits — the determinism guarantee ``same order ⇒ same index
bytes`` falls out by construction rather than by reconciliation.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.graphs.graph import Graph
from repro.labeling.base import MemoryBudget
from repro.obs.tracing import span as obs_span, tracing_enabled
from repro.parallel.chunking import vertex_chunks
from repro.parallel.pool import pool_context

#: Snapshot the initializer installed in this worker process:
#: ``(graph, rank, order, label_maps, last_added)``.
_ROUND_STATE: tuple | None = None


def _init_round(state: tuple) -> None:
    global _ROUND_STATE
    _ROUND_STATE = state


def _gather_chunk(task: tuple[int, int, int]) -> list[tuple[int, list[int]]]:
    """Evaluate one vertex chunk of one level against the snapshot."""
    from repro.labeling.psl import psl_level_additions

    level, start, stop = task
    assert _ROUND_STATE is not None, "worker used before initialization"
    graph, rank, order, label_maps, last_added = _ROUND_STATE
    return psl_level_additions(
        graph, rank, order, label_maps, last_added, level, range(start, stop)
    )


def run_parallel_rounds(
    graph: Graph,
    rank: list[int],
    order: list[int],
    label_maps: list[dict[int, int]],
    last_added: list[list[int]],
    *,
    workers: int,
    budget: MemoryBudget,
    budget_exempt: frozenset[int],
) -> int:
    """Run PSL's propagation rounds with ``workers`` processes.

    Mutates ``label_maps``/``last_added`` exactly as the serial loop in
    :func:`repro.labeling.psl.build_psl` would, and returns the number
    of rounds executed (including the final empty one).
    """
    from repro.labeling.psl import psl_commit_level

    context = pool_context()
    chunks = vertex_chunks(graph.n, workers)
    level = 0
    while True:
        level += 1
        # A fresh pool per round pins the snapshot to the previous
        # level's committed state; under fork the fork itself *is* the
        # snapshot, so per-round pool setup is cheap.
        snapshot = (graph, rank, order, label_maps, last_added)
        with obs_span(
            "labeling.psl.level", level=level, workers=workers
        ) as level_span:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(chunks)) or 1,
                mp_context=context,
                initializer=_init_round,
                initargs=(snapshot,),
            ) as pool:
                parts = list(
                    pool.map(_gather_chunk, [(level, c.start, c.stop) for c in chunks])
                )
            additions = [pair for part in parts for pair in part]
            if tracing_enabled():
                level_span.set(additions=sum(len(hubs) for _, hubs in additions))
        if not additions:
            break
        psl_commit_level(
            additions,
            label_maps,
            last_added,
            level,
            budget=budget,
            budget_exempt=budget_exempt,
        )
    return level
