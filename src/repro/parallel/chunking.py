"""Deterministic work partitioning for the parallel builders.

Two shapes of fan-out need chunking:

* the PSL gather phase partitions the vertex set into contiguous,
  near-equal ranges (uniform work per vertex, so equal sizes balance);
* the forest fan-out groups whole trees into tasks.  Tree sizes on
  core-periphery graphs are heavily skewed (a few giant communities,
  many tiny fringes), so trees are binned largest-first onto the
  currently lightest task (LPT), and more tasks than workers are
  produced so the executor's dynamic scheduling absorbs whatever
  imbalance remains — cheap work stealing without shared queues.

Everything here is pure and deterministic: the same inputs always
produce the same partition, which the byte-identical-build guarantee
relies on.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

from repro.exceptions import ConfigurationError

#: Tasks produced per worker by :func:`balanced_tasks`; >1 lets the pool
#: steal work from stragglers instead of waiting on one giant task.
TASKS_PER_WORKER = 4


def vertex_chunks(n: int, chunks: int) -> list[range]:
    """Split ``0 .. n-1`` into at most ``chunks`` contiguous ranges.

    Ranges differ in length by at most one and are returned in ascending
    order, so concatenating per-chunk results restores vertex order.
    """
    if chunks < 1:
        raise ConfigurationError(f"chunk count must be positive, got {chunks}")
    chunks = min(chunks, n) or 1
    base, extra = divmod(n, chunks)
    ranges: list[range] = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return [r for r in ranges if len(r)]


def balanced_tasks(
    sized_items: Sequence[tuple[int, int]], workers: int, *, tasks_per_worker: int = TASKS_PER_WORKER
) -> list[list[int]]:
    """Group ``(item, size)`` pairs into balanced task lists.

    Items are assigned largest-first to the lightest task so far (ties
    broken by task index, so the grouping is deterministic).  At most
    ``workers * tasks_per_worker`` non-empty tasks are returned, ordered
    heaviest-first — submitting them in that order starts the longest
    tasks earliest, which minimizes the tail under dynamic scheduling.
    """
    if workers < 1:
        raise ConfigurationError(f"worker count must be positive, got {workers}")
    if not sized_items:
        return []
    task_count = min(len(sized_items), max(1, workers * tasks_per_worker))
    # (accumulated size, task index) min-heap; stable because the index
    # breaks ties the same way every run.
    heap = [(0, i) for i in range(task_count)]
    heapq.heapify(heap)
    tasks: list[list[int]] = [[] for _ in range(task_count)]
    loads = [0] * task_count
    ordered = sorted(sized_items, key=lambda pair: (-pair[1], pair[0]))
    for item, size in ordered:
        load, index = heapq.heappop(heap)
        tasks[index].append(item)
        loads[index] = load + size
        heapq.heappush(heap, (loads[index], index))
    filled = [(loads[i], tasks[i]) for i in range(task_count) if tasks[i]]
    filled.sort(key=lambda pair: -pair[0])
    return [task for _, task in filled]
