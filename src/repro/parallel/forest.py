"""Per-tree forest label fan-out (the tentpole's periphery half).

Tree-node labels (ancestors plus the ≤ d interface nodes, Theorem 4 /
Lemma 15) never reference positions outside their own tree, so the
forest decomposes into embarrassingly parallel per-tree jobs.  Tree
sizes on core-periphery graphs are heavily skewed, so whole trees are
binned largest-first into more tasks than workers
(:func:`repro.parallel.chunking.balanced_tasks`) and submitted
heaviest-first — the pool's dynamic scheduling then steals the small
tasks around whichever worker drew the giant community.

Workers receive the decomposition through the pool initializer (free
under ``fork``, pickled once per worker under ``spawn``) and run the
same :func:`repro.core.construction.compute_tree_labels` routine the
serial sweep runs, so the merged labels are identical to a serial
build's — byte-for-byte once serialized.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.graphs.graph import Weight
from repro.obs.tracing import span as obs_span
from repro.parallel.chunking import balanced_tasks
from repro.parallel.pool import pool_context
from repro.treedec.core_tree import CoreTreeDecomposition

#: Decomposition installed in this worker process by the initializer.
_FOREST_STATE: CoreTreeDecomposition | None = None


def _init_forest(decomposition: CoreTreeDecomposition) -> None:
    global _FOREST_STATE
    _FOREST_STATE = decomposition


def _label_trees(positions: list[int]) -> dict[int, dict[int, Weight]]:
    """Compute labels for the (descending, tree-closed) ``positions``."""
    from repro.core.construction import compute_tree_labels

    assert _FOREST_STATE is not None, "worker used before initialization"
    labels: dict[int, dict[int, Weight]] = {}
    compute_tree_labels(_FOREST_STATE, positions, labels)
    return labels


def forest_tasks(
    decomposition: CoreTreeDecomposition, workers: int
) -> list[list[int]]:
    """Partition the forest into balanced per-task position lists.

    Each task is the concatenation of whole trees' positions, every
    tree's positions in descending order (the order ``compute_tree_labels``
    requires); tasks are balanced by total tree size.
    """
    members = decomposition.tree_members()
    sized = [(root, len(positions)) for root, positions in sorted(members.items())]
    tasks = balanced_tasks(sized, workers)
    return [
        [pos for root in task for pos in sorted(members[root], reverse=True)]
        for task in tasks
    ]


def parallel_tree_labels(
    decomposition: CoreTreeDecomposition, *, workers: int
) -> list[dict[int, Weight]]:
    """All forest labels, computed one task per tree group.

    Returns the boundary-sized label list in position order, exactly as
    the serial sweep would have produced it.
    """
    tasks = forest_tasks(decomposition, workers)
    labels: list[dict[int, Weight]] = [{} for _ in range(decomposition.boundary)]
    if not tasks:
        return labels
    with obs_span("parallel.forest_fanout", tasks=len(tasks), workers=workers):
        with ProcessPoolExecutor(
            max_workers=min(workers, len(tasks)) or 1,
            mp_context=pool_context(),
            initializer=_init_forest,
            initargs=(decomposition,),
        ) as pool:
            for part in pool.map(_label_trees, tasks):
                for pos, label in part.items():
                    labels[pos] = label
    return labels
