"""Process-pool plumbing shared by the parallel builders.

Both parallel builders follow the same recipe: the master keeps the
authoritative build state, ships read-only snapshots to a
:class:`~concurrent.futures.ProcessPoolExecutor`, and merges worker
results deterministically.  On platforms with the ``fork`` start method
(Linux), pool initializer arguments are inherited by the forked workers
without pickling, so snapshotting even a large graph costs nothing; on
``spawn`` platforms the same arguments are pickled once per worker —
slower, but semantically identical.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.exceptions import IndexConstructionError


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers`` argument to a concrete process count.

    ``None`` or ``1`` mean serial (no pool); ``0`` means one worker per
    CPU; any other positive value is taken literally.  Negative counts
    are rejected.
    """
    if workers is None:
        return 1
    if workers < 0:
        raise IndexConstructionError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


#: Environment override for the start method (``"fork"`` / ``"spawn"``
#: / ``"forkserver"``); the test suite parametrizes spawn-safety of the
#: shared-memory engine through it.
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"


def pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context the parallel builders run under.

    Prefers ``fork`` so worker processes inherit the master's read-only
    build state instead of re-pickling it; falls back to the platform
    default elsewhere.  The :data:`START_METHOD_ENV` environment
    variable forces a specific method (workers of the shared-memory
    engine receive all state through queues and shared blocks, so every
    method is semantically identical — the override exists so tests can
    pin spawn behaviour on fork platforms).
    """
    forced = os.environ.get(START_METHOD_ENV)
    if forced:
        if forced not in multiprocessing.get_all_start_methods():
            raise IndexConstructionError(
                f"{START_METHOD_ENV}={forced!r} is not a start method on "
                f"this platform; known: {multiprocessing.get_all_start_methods()}"
            )
        return multiprocessing.get_context(forced)
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()
