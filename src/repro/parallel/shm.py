"""Shared-memory construction engine (experimental tier).

The PR 2 parallel path predates the flat backend and the vectorized PSL
kernel: it spins a fresh process pool per level, pickles a full label
snapshot into every worker, and runs the per-vertex dict rounds.  This
module replaces that plumbing for NumPy builds with one persistent,
spawn-safe worker pool per build and ``multiprocessing.shared_memory``
blocks for every large input, so ``workers=N`` finally composes with
``kernel="numpy"`` and ``backend="flat"``:

* **PSL rounds** — the committed CSR label arrays and each round's
  frontier live in shared blocks; each worker runs the *existing*
  chunked scratch kernel (:func:`repro.kernels.psl_rounds._run_round`)
  over a contiguous destination-vertex range of the shared adjacency and
  returns only its compact accepted-key delta.  Candidate generation,
  dedup, and pruning for a vertex range are exactly the global
  computation restricted to that range (each round reads only labels of
  strictly earlier rounds), and sorted composite keys are owner-major,
  so concatenating the per-range deltas in ascending range order
  reproduces the serial round's sorted accepted set — the parent then
  commits through the very same :func:`~repro.kernels.psl_rounds.
  commit_level` the serial loop uses.  ``index_fingerprint()`` is
  byte-identical to the serial path for every worker count by
  construction.

* **Forest fan-out** — the decomposition is packed once into flat
  shared arrays (per-position parents/roots, step CSR with wedge
  weights, per-root interfaces) instead of pickling the decomposition
  object into each worker; workers rebuild a lightweight read-only view
  satisfying exactly the attributes
  :func:`repro.core.construction.compute_tree_labels` reads and run
  that same routine, keeping the LPT task balancing of
  :func:`repro.parallel.forest.forest_tasks`.

Shared blocks are named ``repro_shm_<pid>_<seq>`` and always unlinked by
the creating parent (``try/finally``), so a build — successful, failed,
or killed mid-round — leaves nothing in ``/dev/shm`` (CI asserts this).
Workers attach without resource-tracker registration: before Python
3.13, attaching registers the segment with the *child's* tracker, which
unlinks it when the child exits — yanking live state out from under the
parent (python/cpython#82300).  :func:`_attach` passes ``track=False``
where available and suppresses the registration call otherwise.
"""

from __future__ import annotations

import os
import queue
import time
import traceback
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.exceptions import IndexConstructionError
from repro.kernels.psl_rounds import (
    _INF,
    _Scratch,
    _run_round,
    build_csr_adjacency,
    commit_level,
    edge_owners,
    init_label_state,
    record_round_stats,
)
from repro.obs.tracing import span as obs_span, tracing_enabled
from repro.parallel.pool import pool_context

#: Prefix of every shared-memory block this engine creates; the CI leak
#: check greps ``/dev/shm`` for it after the scale job.
SHM_PREFIX = "repro_shm"

#: Per-worker result-poll interval; short enough that a SIGKILLed
#: worker is noticed promptly (lesson from the PR 7 fleet hangs).
_POLL_SECONDS = 0.2

#: Default ceiling on how long the parent waits for one fan-out.
_COLLECT_TIMEOUT = 600.0

#: Monotone per-process sequence for block names and build ids.
_SEQ = 0


def _next_seq() -> int:
    global _SEQ
    _SEQ += 1
    return _SEQ


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker registration.

    The creating parent owns unlink; a tracked attach would let the
    first exiting worker's resource tracker unlink blocks the build is
    still using (fixed upstream by ``track=`` in Python 3.13).  Before
    3.13 the registration call is suppressed outright rather than
    undone after the fact: under ``fork`` the tracker process is shared
    with the parent, so a child-side ``unregister`` would strip the
    *parent's* registration and leave the tracker complaining when the
    parent later unlinks for real.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


class ShmArena:
    """Parent-side owner of a build's shared blocks.

    Every block is created here and unlinked in :meth:`close`; callers
    wrap a build phase in ``try/finally arena.close()`` so no segment
    survives the phase whatever happens inside it.
    """

    def __init__(self) -> None:
        self._blocks: dict[str, shared_memory.SharedMemory] = {}

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        """A fresh zero-filled block of at least ``nbytes`` bytes."""
        while True:
            name = f"{SHM_PREFIX}_{os.getpid()}_{_next_seq()}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, int(nbytes))
                )
            except FileExistsError:  # pragma: no cover - seq collision
                continue
            self._blocks[shm.name] = shm
            return shm

    def put(self, arr: np.ndarray) -> tuple[str, str, int]:
        """Copy ``arr`` into a fresh block; returns its slot spec.

        A spec is ``(block_name, dtype_str, length)`` — everything a
        worker needs to rebuild the view with :meth:`WorkerAttachments.view`.
        """
        arr = np.ascontiguousarray(arr)
        shm = self.create(arr.nbytes)
        np.frombuffer(shm.buf, dtype=arr.dtype, count=arr.size)[:] = arr
        return (shm.name, arr.dtype.str, int(arr.size))

    def release(self, name: str) -> None:
        """Close and unlink one block (channel growth drops the old one)."""
        shm = self._blocks.pop(name, None)
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # pragma: no cover - exported view still alive
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def close(self) -> None:
        """Unlink every block this arena still owns."""
        for name in list(self._blocks):
            self.release(name)


class _Channel:
    """One logical growing array slot backed by an arena block.

    Re-publishing a round's labels or frontier reuses the block while
    the array fits and regrows geometrically when it does not, so the
    steady state is one memcpy per round, zero allocations.
    """

    def __init__(self, arena: ShmArena, dtype: np.dtype) -> None:
        self._arena = arena
        self._dtype = np.dtype(dtype)
        self._shm: shared_memory.SharedMemory | None = None
        self._capacity = 0

    def put(self, arr: np.ndarray) -> tuple[str, str, int]:
        arr = np.ascontiguousarray(arr, dtype=self._dtype)
        if arr.size > self._capacity:
            if self._shm is not None:
                self._arena.release(self._shm.name)
            self._capacity = max(int(arr.size * 3 // 2) + 1, 1024)
            self._shm = self._arena.create(self._capacity * self._dtype.itemsize)
        assert self._shm is not None
        np.frombuffer(self._shm.buf, dtype=self._dtype, count=arr.size)[:] = arr
        return (self._shm.name, self._dtype.str, int(arr.size))


class WorkerAttachments:
    """Worker-side cache of attached blocks, keyed by block name."""

    def __init__(self) -> None:
        self._attached: dict[str, shared_memory.SharedMemory] = {}

    def view(self, spec: tuple[str, str, int]) -> np.ndarray:
        name, dtype_str, length = spec
        shm = self._attached.get(name)
        if shm is None:
            shm = _attach(name)
            self._attached[name] = shm
        return np.frombuffer(shm.buf, dtype=np.dtype(dtype_str), count=length)

    def prune(self, active: set[str]) -> None:
        """Drop attachments to blocks the current task no longer names.

        Called at task start, before any view of this task exists, so
        the previous task's views have been garbage-collected and the
        underlying mmaps can close.
        """
        for name in list(self._attached):
            if name not in active:
                shm = self._attached.pop(name)
                try:
                    shm.close()
                except BufferError:  # pragma: no cover - view still alive
                    self._attached[name] = shm

    def close(self) -> None:
        self.prune(set())


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _psl_round_task(atts: WorkerAttachments, state: dict, payload: dict) -> dict:
    """One round's gather + prune over this worker's vertex range."""
    slots = payload["slots"]
    atts.prune({spec[0] for spec in slots.values()})
    views = {slot: atts.view(spec) for slot, spec in slots.items()}

    n = payload["n"]
    if state.get("psl_build") != payload["build_id"]:
        state["psl_build"] = payload["build_id"]
        state["psl_owners"] = {}
        state["psl_scratch"] = _Scratch()
        state["psl_dist_buf"] = np.full(n, _INF, dtype=np.int64)

    lo, hi = payload["lo"], payload["hi"]
    adj_indptr = views["adj_indptr"]
    owners = state["psl_owners"].get((lo, hi))
    if owners is None:
        owners = edge_owners(adj_indptr, lo, hi)
        state["psl_owners"][(lo, hi)] = owners

    e0, e1 = int(adj_indptr[lo]), int(adj_indptr[hi])
    started = time.perf_counter()
    accepted = _run_round(
        np.int64(n),
        views["adj"][e0:e1],
        owners,
        views["rank"],
        views["order"],
        views["lab_keys"],
        views["lab_dists"],
        views["lab_indptr"],
        views["fr_indptr"],
        views["fr_hubs"],
        state["psl_dist_buf"],
        state["psl_scratch"],
        payload["level"],
    )
    return {
        "accepted": accepted.tobytes(),
        "kernel_s": time.perf_counter() - started,
    }


class _ForestStep:
    """The slice of an elimination step ``compute_tree_labels`` reads."""

    __slots__ = ("node", "neighbors", "local_distance")

    def __init__(self, node, neighbors, local_distance) -> None:
        self.node = node
        self.neighbors = neighbors
        self.local_distance = local_distance


class _LazySteps:
    """Per-position step views over the packed CSR, built on first use."""

    __slots__ = ("_view",)

    def __init__(self, view: "_ForestView") -> None:
        self._view = view

    def __getitem__(self, pos: int) -> _ForestStep:
        v = self._view
        lo, hi = v.step_indptr[pos], v.step_indptr[pos + 1]
        neighbors = tuple(v.step_nbr[lo:hi])
        local = dict(zip(neighbors, v.step_w[lo:hi]))
        return _ForestStep(v.pos_node[pos], neighbors, local)


class _ForestView:
    """Read-only decomposition stand-in rebuilt from shared arrays.

    Exposes exactly the attribute surface
    :func:`repro.core.construction.compute_tree_labels` consumes —
    ``elimination.steps[pos]``, ``position``, ``node_at``, ``root``,
    ``interface``, ``parent``, ``ancestors_of`` — so workers run the
    *same routine* the serial sweep runs, on the same values, which is
    what keeps the forest half byte-identical.
    """

    def __init__(
        self,
        pos_node: list[int],
        parent: list[int | None],
        root: list[int],
        position: list[int | None],
        step_indptr: list[int],
        step_nbr: list[int],
        step_w: list,
        interface: dict[int, tuple[int, ...]],
    ) -> None:
        self.pos_node = pos_node
        self.parent = parent
        self.root = root
        self.position = position
        self.step_indptr = step_indptr
        self.step_nbr = step_nbr
        self.step_w = step_w
        self.interface = interface
        self.elimination = self
        self.steps = _LazySteps(self)

    def node_at(self, pos: int) -> int:
        return self.pos_node[pos]

    def ancestors_of(self, pos: int) -> list[int]:
        chain: list[int] = []
        p = self.parent[pos]
        while p is not None:
            chain.append(p)
            p = self.parent[p]
        return chain


def _forest_view(atts: WorkerAttachments, state: dict, payload: dict) -> _ForestView:
    """Rebuild (or reuse) the decomposition view for this build."""
    if state.get("forest_build") == payload["build_id"]:
        return state["forest_view"]
    slots = payload["slots"]
    views = {slot: atts.view(spec) for slot, spec in slots.items()}
    pos_parent = views["pos_parent"].tolist()
    parent = [p if p >= 0 else None for p in pos_parent]
    position = [p if p >= 0 else None for p in views["position"].tolist()]
    iface_roots = views["iface_roots"].tolist()
    iface_indptr = views["iface_indptr"].tolist()
    iface_nodes = views["iface_nodes"].tolist()
    interface = {
        r: tuple(iface_nodes[iface_indptr[i] : iface_indptr[i + 1]])
        for i, r in enumerate(iface_roots)
    }
    view = _ForestView(
        pos_node=views["pos_node"].tolist(),
        parent=parent,
        root=views["pos_root"].tolist(),
        position=position,
        step_indptr=views["step_indptr"].tolist(),
        step_nbr=views["step_nbr"].tolist(),
        step_w=views["step_w"].tolist(),
        interface=interface,
    )
    state["forest_build"] = payload["build_id"]
    state["forest_view"] = view
    return view


def _forest_task(atts: WorkerAttachments, state: dict, payload: dict) -> dict:
    """Label one balanced group of whole trees."""
    from repro.core.construction import compute_tree_labels

    atts.prune({spec[0] for spec in payload["slots"].values()})
    view = _forest_view(atts, state, payload)
    positions = atts.view(payload["positions"]).tolist()
    labels: dict[int, dict] = {}
    compute_tree_labels(view, positions, labels)
    return {"labels": labels}


def _worker_main(worker_index: int, task_q, result_q) -> None:
    """Persistent worker loop: serve PSL-round and forest tasks until told to stop."""
    import resource

    atts = WorkerAttachments()
    state: dict = {}
    try:
        while True:
            kind, payload = task_q.get()
            if kind == "shutdown":
                break
            try:
                if kind == "psl_round":
                    result = _psl_round_task(atts, state, payload)
                elif kind == "forest":
                    result = _forest_task(atts, state, payload)
                else:
                    raise IndexConstructionError(f"unknown shm task kind {kind!r}")
                result_q.put(("ok", worker_index, payload["task_id"], result))
            except BaseException as exc:
                result_q.put(
                    (
                        "error",
                        worker_index,
                        payload.get("task_id"),
                        repr(exc),
                        traceback.format_exc(),
                    )
                )
    finally:
        maxrss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        try:
            result_q.put(("exit", worker_index, {"maxrss_kb": int(maxrss_kb)}))
        except Exception:  # pragma: no cover - queue torn down already
            pass
        atts.close()


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------


class ShmBuildPool:
    """A persistent worker pool shared by one build's fan-outs.

    Created once per build (``construct`` owns the lifecycle), reused by
    every PSL round and the forest fan-out — no per-round process spawn,
    no snapshot pickling.  Each worker has its own task queue; results
    come back on one shared queue polled with a short timeout plus
    liveness checks, so a worker killed mid-round surfaces as an
    :class:`~repro.exceptions.IndexConstructionError` instead of a hang.
    On shutdown every worker reports its ``ru_maxrss``, which feeds the
    child-aware peak-RSS accounting of :mod:`repro.bench.memory`.
    """

    def __init__(self, workers: int, *, context=None) -> None:
        if workers < 1:
            raise IndexConstructionError(
                f"shm pool needs at least one worker, got {workers}"
            )
        ctx = context if context is not None else pool_context()
        self.workers = workers
        self.start_method = ctx.get_start_method()
        self.exit_reports: list[dict] = []
        self._closed = False
        self._result_q = ctx.Queue()
        self._task_qs = [ctx.Queue() for _ in range(workers)]
        self._procs = []
        for i in range(workers):
            proc = ctx.Process(
                target=_worker_main,
                args=(i, self._task_qs[i], self._result_q),
                daemon=True,
                name=f"repro-shm-worker-{i}",
            )
            proc.start()
            self._procs.append(proc)

    def submit(self, worker_index: int, kind: str, payload: dict) -> None:
        """Enqueue one task on a specific worker's queue."""
        self._task_qs[worker_index].put((kind, payload))

    def _check_alive(self) -> None:
        for i, proc in enumerate(self._procs):
            if not proc.is_alive():
                raise IndexConstructionError(
                    f"shm worker {i} died mid-build (exit code {proc.exitcode})"
                )

    def collect(self, expected: int, *, timeout: float = _COLLECT_TIMEOUT) -> dict:
        """Gather ``expected`` task results, keyed by ``task_id``.

        Raises :class:`IndexConstructionError` when a worker reports an
        error, dies, or the deadline passes — never hangs on a silent
        worker death.
        """
        results: dict = {}
        deadline = time.monotonic() + timeout
        while len(results) < expected:
            try:
                message = self._result_q.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                self._check_alive()
                if time.monotonic() > deadline:
                    raise IndexConstructionError(
                        f"shm pool timed out waiting for {expected - len(results)} "
                        f"of {expected} task results"
                    )
                continue
            kind = message[0]
            if kind == "ok":
                results[message[2]] = message[3]
            elif kind == "error":
                _, worker_index, _, summary, trace = message
                raise IndexConstructionError(
                    f"shm worker {worker_index} failed: {summary}\n{trace}"
                )
            elif kind == "exit":  # pragma: no cover - defensive
                raise IndexConstructionError(
                    f"shm worker {message[1]} exited mid-build"
                )
        return results

    def shutdown(self, *, timeout: float = 10.0) -> list[dict]:
        """Stop every worker, gather exit reports, and record child RSS.

        Idempotent and tolerant of already-dead workers (a failed build
        shuts the pool down after the error surfaced).  Returns the exit
        reports, each ``{"worker": i, "maxrss_kb": ...}``.
        """
        if self._closed:
            return self.exit_reports
        self._closed = True
        for i, proc in enumerate(self._procs):
            if proc.is_alive():
                try:
                    self._task_qs[i].put(("shutdown", {}))
                except Exception:  # pragma: no cover - queue torn down
                    pass
        pending = set(range(self.workers))
        deadline = time.monotonic() + timeout
        while pending and time.monotonic() < deadline:
            try:
                message = self._result_q.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                pending = {i for i in pending if self._procs[i].is_alive()}
                continue
            if message[0] == "exit":
                worker_index = message[1]
                if worker_index in pending:
                    pending.discard(worker_index)
                    self.exit_reports.append(
                        {"worker": worker_index, **message[2]}
                    )
            # stale ok/error results from an aborted round are dropped
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=2.0)
        for q in (*self._task_qs, self._result_q):
            q.cancel_join_thread()
            q.close()
        from repro.bench.memory import record_child_peak_rss

        for report in self.exit_reports:
            record_child_peak_rss(report.get("maxrss_kb", 0))
        return self.exit_reports

    def __enter__(self) -> "ShmBuildPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# PSL round fan-out
# ----------------------------------------------------------------------


def _edge_balanced_ranges(adj_indptr: np.ndarray, parts: int) -> list[tuple[int, int]]:
    """Contiguous destination-vertex ranges of near-equal edge mass.

    Fixed once per build; deterministic in the graph and worker count
    (the *output* is range-independent anyway, this only balances work).
    """
    n = adj_indptr.size - 1
    parts = max(1, min(parts, n))
    total = int(adj_indptr[-1])
    bounds = [0]
    for k in range(1, parts):
        target = (total * k) // parts
        b = int(np.searchsorted(adj_indptr, target, side="left"))
        b = max(b, bounds[-1] + 1)
        b = min(b, n - (parts - k))
        bounds.append(b)
    bounds.append(n)
    return [
        (bounds[i], bounds[i + 1])
        for i in range(len(bounds) - 1)
        if bounds[i + 1] > bounds[i]
    ]


def run_shm_rounds(
    graph,
    rank: list[int],
    order: list[int],
    *,
    pool: ShmBuildPool,
    budget,
    budget_exempt: frozenset[int],
    stats_out: dict | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Run every PSL round fanned out over ``pool``; returns the CSR state.

    Same contract as
    :func:`repro.kernels.psl_rounds.run_numpy_rounds_csr` — identical
    committed labels, identical budget charge order — with each round's
    candidate generation partitioned by destination-vertex range across
    the pool's workers.
    """
    n = graph.n
    adj_indptr, adj = build_csr_adjacency(graph)
    rank_arr = np.asarray(rank, dtype=np.int64)
    order_arr = np.asarray(order, dtype=np.int64)
    lab_keys, lab_dists, lab_indptr, fr_indptr, fr_hubs = init_label_state(rank_arr)

    ranges = _edge_balanced_ranges(adj_indptr, pool.workers)
    build_id = f"{os.getpid()}_{_next_seq()}"
    arena = ShmArena()
    try:
        static = {
            "adj_indptr": arena.put(adj_indptr),
            "adj": arena.put(adj),
            "rank": arena.put(rank_arr),
            "order": arena.put(order_arr),
        }
        channels = {
            slot: _Channel(arena, np.int64)
            for slot in ("lab_keys", "lab_dists", "lab_indptr", "fr_indptr", "fr_hubs")
        }
        level = 0
        while True:
            level += 1
            slots = dict(static)
            slots["lab_keys"] = channels["lab_keys"].put(lab_keys)
            slots["lab_dists"] = channels["lab_dists"].put(lab_dists)
            slots["lab_indptr"] = channels["lab_indptr"].put(lab_indptr)
            slots["fr_indptr"] = channels["fr_indptr"].put(fr_indptr)
            slots["fr_hubs"] = channels["fr_hubs"].put(fr_hubs)
            with obs_span(
                "labeling.psl.level", level=level, workers=len(ranges)
            ) as level_span:
                for task_id, (lo, hi) in enumerate(ranges):
                    pool.submit(
                        task_id % pool.workers,
                        "psl_round",
                        {
                            "task_id": task_id,
                            "build_id": build_id,
                            "n": n,
                            "level": level,
                            "lo": lo,
                            "hi": hi,
                            "slots": slots,
                        },
                    )
                results = pool.collect(len(ranges))
                # Ascending-range concatenation of owner-major sorted keys
                # is globally sorted: the serial accepted set, exactly.
                parts = [
                    np.frombuffer(results[t]["accepted"], dtype=np.int64)
                    for t in range(len(ranges))
                ]
                accepted = np.concatenate(parts)
                kernel_seconds = max(
                    results[t]["kernel_s"] for t in range(len(ranges))
                )
                if tracing_enabled():
                    level_span.set(
                        additions=int(accepted.size),
                        worker_kernel_s=[
                            round(results[t]["kernel_s"], 4)
                            for t in range(len(ranges))
                        ],
                    )
            if accepted.size == 0:
                record_round_stats(stats_out, level, kernel_seconds, 0.0, 0)
                break
            merge_started = time.perf_counter()
            lab_keys, lab_dists, lab_indptr, fr_indptr, fr_hubs = commit_level(
                n,
                lab_keys,
                lab_dists,
                accepted,
                level,
                budget=budget,
                budget_exempt=budget_exempt,
            )
            record_round_stats(
                stats_out,
                level,
                kernel_seconds,
                time.perf_counter() - merge_started,
                int(accepted.size),
            )
    finally:
        arena.close()
    return lab_keys, lab_dists, lab_indptr, level


# ----------------------------------------------------------------------
# Forest fan-out
# ----------------------------------------------------------------------


def _pack_forest(decomposition) -> dict[str, np.ndarray]:
    """Flatten the decomposition into the arrays ``_ForestView`` rebuilds.

    Integer wedge weights stay ``int64`` so workers recover exact Python
    ints; any fractional weight switches the weight array to ``float64``
    (where the serial labels are floats too).
    """
    boundary = decomposition.boundary
    elimination = decomposition.elimination
    pos_node = np.fromiter(
        (elimination.steps[pos].node for pos in range(boundary)),
        dtype=np.int64,
        count=boundary,
    )
    pos_parent = np.fromiter(
        (
            p if p is not None else -1
            for p in (decomposition.parent[pos] for pos in range(boundary))
        ),
        dtype=np.int64,
        count=boundary,
    )
    pos_root = np.asarray(decomposition.root[:boundary], dtype=np.int64)
    position = np.fromiter(
        (p if p is not None else -1 for p in decomposition.position),
        dtype=np.int64,
        count=len(decomposition.position),
    )

    step_indptr = np.zeros(boundary + 1, dtype=np.int64)
    neighbors: list[int] = []
    weights: list = []
    for pos in range(boundary):
        step = elimination.steps[pos]
        for u in step.neighbors:
            neighbors.append(u)
            weights.append(step.local_distance[u])
        step_indptr[pos + 1] = len(neighbors)
    all_int = all(isinstance(w, int) for w in weights)
    step_w = np.asarray(weights, dtype=np.int64 if all_int else np.float64)

    iface_roots = sorted(decomposition.interface)
    iface_indptr = np.zeros(len(iface_roots) + 1, dtype=np.int64)
    iface_nodes: list[int] = []
    for i, r in enumerate(iface_roots):
        iface_nodes.extend(decomposition.interface[r])
        iface_indptr[i + 1] = len(iface_nodes)

    return {
        "pos_node": pos_node,
        "pos_parent": pos_parent,
        "pos_root": pos_root,
        "position": position,
        "step_indptr": step_indptr,
        "step_nbr": np.asarray(neighbors, dtype=np.int64),
        "step_w": step_w,
        "iface_roots": np.asarray(iface_roots, dtype=np.int64),
        "iface_indptr": iface_indptr,
        "iface_nodes": np.asarray(iface_nodes, dtype=np.int64),
    }


def parallel_tree_labels_shm(decomposition, *, pool: ShmBuildPool) -> list[dict]:
    """All forest labels via the shared pool — zero pickled inputs.

    Same output as :func:`repro.parallel.forest.parallel_tree_labels`
    (the boundary-sized label list in position order); the decomposition
    travels as shared arrays instead of a pickled object, and the tasks
    keep the LPT whole-tree balancing.
    """
    from repro.parallel.forest import forest_tasks

    boundary = decomposition.boundary
    labels: list[dict] = [{} for _ in range(boundary)]
    tasks = forest_tasks(decomposition, pool.workers)
    if not tasks:
        return labels

    build_id = f"{os.getpid()}_{_next_seq()}"
    arena = ShmArena()
    try:
        slots = {name: arena.put(arr) for name, arr in _pack_forest(decomposition).items()}
        # Tasks come heaviest-first from forest_tasks; assigning each to
        # the least-loaded worker queue is LPT over the fixed queues.
        loads = [0] * pool.workers
        with obs_span(
            "parallel.forest_fanout", tasks=len(tasks), workers=pool.workers, shm=True
        ):
            for task_id, positions in enumerate(tasks):
                worker_index = min(range(pool.workers), key=lambda i: loads[i])
                loads[worker_index] += len(positions)
                pool.submit(
                    worker_index,
                    "forest",
                    {
                        "task_id": task_id,
                        "build_id": build_id,
                        "slots": slots,
                        "positions": arena.put(
                            np.asarray(positions, dtype=np.int64)
                        ),
                    },
                )
            results = pool.collect(len(tasks))
        for task_id in range(len(tasks)):
            for pos, label in results[task_id]["labels"].items():
                labels[pos] = label
    finally:
        arena.close()
    return labels


__all__ = [
    "SHM_PREFIX",
    "ShmArena",
    "ShmBuildPool",
    "WorkerAttachments",
    "parallel_tree_labels_shm",
    "run_shm_rounds",
]
