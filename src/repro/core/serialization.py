"""Persistent storage of built CT-Indexes.

Indexes are saved as a single JSON document (versioned, self-contained:
it embeds the reduced graph, the decomposition skeleton, the tree
labels, and the core labels), so a saved index can be reloaded and
queried without touching the original graph file.  JSON keeps the format
inspectable and avoids pickle's arbitrary-code-execution hazard.

Infinite weights (disconnected label entries store ``math.inf``) are
serialized as the string sentinel ``"inf"`` — RFC 8259 has no
``Infinity`` literal, and strict parsers reject it — and decoded back
to ``math.inf`` on load.  ``json.dump`` runs with ``allow_nan=False``
so any non-finite float that escapes the sentinel encoding fails the
save loudly instead of emitting a non-standard document.

Integral float weights are canonicalized to ints on encode (``2.0``
becomes ``2``): the flat storage backend may return ``float`` where the
dict backend holds ``int`` (a packed ``array('d')`` has no mixed types),
and the canonical form keeps :func:`index_fingerprint` — and the saved
bytes — a pure function of the index *content*, independent of which
backend stores it.

A second, binary on-disk format (version 4, magic ``RCTINDEX``) lives
in :mod:`repro.storage.binary`; :func:`load_ct_index` auto-detects it
by magic, so one loader reads both formats.  See ``docs/formats.md``.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Union

from repro.exceptions import ReproError, SerializationError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph
from repro.graphs.reductions import EquivalenceReduction
from repro.labeling.hub_labels import HubLabeling
from repro.labeling.pll import PrunedLandmarkLabeling
from repro.core.construction import TreeIndex
from repro.core.ct_index import CTIndex
from repro.treedec.elimination import EliminationResult, EliminationStep
from repro.storage.binary import (  # noqa: F401  (re-exported: one import site for persistence)
    BINARY_FORMAT_VERSION,
    is_binary_snapshot,
    load_ct_index_binary,
    save_ct_index_binary,
)

PathLike = Union[str, os.PathLike]

#: Version 2 introduced the ``"inf"`` sentinel for infinite weights.
#: Version-1 documents (plain ``Infinity`` literals, which Python's
#: lenient parser accepts) still load.
FORMAT_VERSION = 2

SUPPORTED_VERSIONS = frozenset({1, FORMAT_VERSION})


def index_document(index: CTIndex, *, include_timings: bool = True) -> dict:
    """The JSON-ready document describing ``index``.

    With ``include_timings=False`` the (schedule-dependent) build time
    is omitted, leaving only content that is a pure function of the
    graph and the build parameters.
    """
    document = {
        "format": "repro-ct-index",
        "version": FORMAT_VERSION,
        "bandwidth": index.bandwidth,
        "graph": _encode_graph(index.graph),
        "reduction": _encode_reduction(index.reduction),
        "elimination": _encode_elimination(index.decomposition.elimination),
        "tree_labels": [_encode_weight_map(label) for label in index.tree_index.labels],
        "core": _encode_core(index),
    }
    if include_timings:
        document["build_seconds"] = index.build_seconds
    return document


def index_fingerprint(index: CTIndex) -> bytes:
    """Canonical serialized bytes of ``index``, timing excluded.

    Two builds of the same graph with the same parameters produce equal
    fingerprints regardless of the construction schedule (serial or any
    ``workers=N``) — the determinism guarantee the differential suite
    and ``build-bench`` verify.  Keys are sorted so the fingerprint does
    not depend on document-assembly order.
    """
    return json.dumps(
        index_document(index, include_timings=False),
        allow_nan=False,
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")


def save_ct_index(index: CTIndex, path: PathLike) -> None:
    """Write ``index`` to ``path`` as JSON."""
    document = index_document(index)
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, allow_nan=False)


def load_ct_index(
    path: PathLike, *, backend: str | None = None, mmap: bool = False
) -> CTIndex:
    """Reload a CT-Index written by :func:`save_ct_index` or
    :func:`~repro.storage.binary.save_ct_index_binary`.

    The two on-disk formats are distinguished by the binary magic, so
    callers never pass a format flag.  ``backend`` selects the label
    storage of the loaded index (``"dict"`` or ``"flat"``); ``None``
    keeps each format's natural layout — dict for JSON documents, flat
    for binary snapshots.  ``mmap=True`` memory-maps a binary snapshot
    instead of copying it (flat backend only; see
    :func:`~repro.storage.binary.load_ct_index_binary`) and is rejected
    for JSON documents, which have no mappable layout.
    """
    if backend is not None:
        from repro.labeling.base import validate_backend

        validate_backend(backend)
    path = Path(path)
    if is_binary_snapshot(path):
        return load_ct_index_binary(path, backend=backend or "flat", mmap=mmap)
    if mmap:
        raise SerializationError(
            f"mmap=True requires a binary snapshot; {path} is a JSON "
            f"document (re-save it with format='binary' to map it)"
        )
    try:
        with path.open("r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SerializationError(f"cannot read index file {path}: {exc}") from exc
    if not isinstance(document, dict) or document.get("format") != "repro-ct-index":
        raise SerializationError(f"{path} is not a CT-Index file")
    version = document.get("version")
    # bool is an int subclass, so `True in {1, 2}` would slip through.
    if isinstance(version, bool) or version not in SUPPORTED_VERSIONS:
        raise SerializationError(
            f"unsupported index format version {version!r} in {path}: this "
            f"build reads JSON documents of versions "
            f"{sorted(SUPPORTED_VERSIONS)} and binary snapshots of version "
            f"{BINARY_FORMAT_VERSION}; a newer writer probably produced this "
            f"file"
        )

    try:
        graph = _decode_graph(document["graph"])
        reduction = _decode_reduction(document["reduction"], graph)
        elimination = _decode_elimination(document["elimination"], reduction.reduced)
        from repro.treedec.core_tree import core_tree_decomposition

        decomposition = core_tree_decomposition(
            reduction.reduced, document["bandwidth"], elimination=elimination
        )
        tree_labels = [_decode_weight_map(label) for label in document["tree_labels"]]
        tree_index = TreeIndex(decomposition, tree_labels)
        core_index, originals, compact = _decode_core(document["core"])
        index = CTIndex(
            graph=graph,
            bandwidth=document["bandwidth"],
            reduction=reduction,
            tree_index=tree_index,
            core_index=core_index,
            core_originals=originals,
            core_compact=compact,
        )
        index.build_seconds = float(document.get("build_seconds", 0.0))
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError, IndexError, AttributeError, ReproError) as exc:
        # Truncated or hand-edited documents surface as one library error
        # rather than leaking internal decoding exceptions.
        raise SerializationError(f"corrupt CT-Index document in {path}: {exc!r}") from exc
    if backend == "flat":
        index.compact()
    return index


# ----------------------------------------------------------------------
# Encoding helpers
# ----------------------------------------------------------------------


def _encode_weight(weight):
    """JSON-safe canonical weight.

    ``math.inf`` becomes the ``"inf"`` sentinel, and integral floats
    become ints — the flat backend's packed ``array('d')`` hands back
    ``2.0`` where the dict backend holds ``2``, and the document (hence
    the fingerprint) must not depend on the storage backend.
    """
    if weight == math.inf:
        return "inf"
    if isinstance(weight, float) and weight.is_integer():
        return int(weight)
    return weight


def _decode_weight(value):
    return math.inf if value == "inf" else value


def _encode_graph(graph: Graph) -> dict:
    return {
        "n": graph.n,
        "edges": [[u, v, _encode_weight(w)] for u, v, w in graph.edges()],
    }


def _decode_graph(payload: dict) -> Graph:
    builder = GraphBuilder(int(payload["n"]))
    for u, v, w in payload["edges"]:
        builder.add_edge(int(u), int(v), _decode_weight(w))
    return builder.build()


def _encode_reduction(reduction: EquivalenceReduction) -> dict:
    return {
        "reduced_graph": _encode_graph(reduction.reduced),
        "representative": reduction.representative,
        "originals": reduction.originals,
        "twin_kind": reduction.twin_kind,
    }


def _decode_reduction(payload: dict, original: Graph) -> EquivalenceReduction:
    return EquivalenceReduction(
        original=original,
        reduced=_decode_graph(payload["reduced_graph"]),
        representative=[int(v) for v in payload["representative"]],
        originals=[int(v) for v in payload["originals"]],
        twin_kind=list(payload["twin_kind"]),
    )


def _encode_elimination(elimination: EliminationResult) -> dict:
    return {
        "bandwidth": elimination.bandwidth,
        "steps": [
            {
                "node": step.node,
                "neighbors": list(step.neighbors),
                "local_distance": _encode_weight_map(step.local_distance),
            }
            for step in elimination.steps
        ],
        "core_nodes": elimination.core_nodes,
        "core_adjacency": {
            str(v): _encode_weight_map(row) for v, row in elimination.core_adjacency.items()
        },
    }


def _decode_elimination(payload: dict, graph: Graph) -> EliminationResult:
    steps = [
        EliminationStep(
            node=int(raw["node"]),
            neighbors=tuple(int(u) for u in raw["neighbors"]),
            local_distance=_decode_weight_map(raw["local_distance"]),
        )
        for raw in payload["steps"]
    ]
    position: list[int | None] = [None] * graph.n
    for i, step in enumerate(steps):
        position[step.node] = i
    return EliminationResult(
        graph=graph,
        steps=steps,
        position=position,
        core_nodes=[int(v) for v in payload["core_nodes"]],
        core_adjacency={
            int(v): _decode_weight_map(row) for v, row in payload["core_adjacency"].items()
        },
        bandwidth=payload["bandwidth"],
    )


def _encode_core(index: CTIndex) -> dict:
    labels = index.core_index.labels
    per_node = []
    for v in range(labels.n):
        entries = list(labels.iter_rank_entries(v))
        per_node.append([[rank, _encode_weight(dist)] for rank, dist in entries])
    return {
        "originals": index.core_originals,
        "order": index.core_index.order,
        "labels": per_node,
        "graph": _encode_graph(index.core_index.graph),
    }


def _decode_core(payload: dict) -> tuple[PrunedLandmarkLabeling, list[int], dict[int, int]]:
    graph = _decode_graph(payload["graph"])
    order = [int(v) for v in payload["order"]]
    labels = HubLabeling(order)
    for v, entries in enumerate(payload["labels"]):
        for rank, dist in entries:
            labels.append_entry(v, int(rank), _decode_weight(dist))
    originals = [int(v) for v in payload["originals"]]
    compact = {orig: i for i, orig in enumerate(originals)}
    return PrunedLandmarkLabeling(graph, labels, order), originals, compact


def _encode_weight_map(mapping: dict) -> dict:
    return {str(k): _encode_weight(v) for k, v in mapping.items()}


def _decode_weight_map(payload: dict) -> dict:
    return {int(k): _decode_weight(v) for k, v in payload.items()}
