"""Choosing the bandwidth ``d`` under a memory limit (Section 5 / Exp 7).

The paper's guidance: ``d = 0`` gives the best query time, so pick the
*smallest* ``d`` whose index fits in memory.  Each probe actually
attempts the construction under a
:class:`~repro.labeling.base.MemoryBudget`, so an infeasible ``d``
aborts early with the paper's "OM" outcome instead of building a
too-large index to completion.

The search first tries ``d = 0``; failing that, it scans ``d = 1, 2, 4,
8, ...`` (the paper's "double d_ub when a feasible d cannot be found")
until a feasible bandwidth brackets the answer, then binary-searches the
bracketed interval.  Bracketing from below matters in practice: the
index size is not globally monotone in ``d`` (a very large ``d``
eliminates the dense core itself into quadratic chains), so "double a
fixed large upper bound" can overshoot past every feasible region.
"""

from __future__ import annotations

import dataclasses
import logging
import time

from repro.exceptions import IndexConstructionError, OverMemoryError
from repro.graphs.graph import Graph
from repro.labeling.base import MemoryBudget
from repro.core.ct_index import CTIndex

logger = logging.getLogger(__name__)


@dataclasses.dataclass(frozen=True)
class BandwidthProbe:
    """One construction attempt during the search."""

    bandwidth: int
    feasible: bool
    modeled_bytes: int
    seconds: float


@dataclasses.dataclass
class BandwidthSearchResult:
    """Outcome of :func:`find_bandwidth`.

    Attributes
    ----------
    bandwidth:
        The smallest feasible ``d`` found.
    index:
        The CT-Index built at that ``d`` (fits the budget).
    probes:
        Every construction attempt, in order.
    seconds:
        Total wall-clock time of the search.
    """

    bandwidth: int
    index: CTIndex
    probes: list[BandwidthProbe]
    seconds: float


def find_bandwidth(
    graph: Graph,
    memory_limit_bytes: int,
    *,
    max_upper_bound: int = 100_000,
    use_equivalence_reduction: bool = True,
) -> BandwidthSearchResult:
    """Search the smallest bandwidth whose CT-Index fits the memory limit.

    Raises :class:`IndexConstructionError` when no bandwidth up to
    ``max_upper_bound`` fits (the graph simply needs more memory).
    """
    started = time.perf_counter()
    probes: list[BandwidthProbe] = []
    built: dict[int, CTIndex] = {}

    def attempt(d: int) -> bool:
        probe_start = time.perf_counter()
        budget = MemoryBudget(limit_bytes=memory_limit_bytes)
        try:
            index = CTIndex.build(
                graph,
                d,
                use_equivalence_reduction=use_equivalence_reduction,
                budget=budget,
            )
        except OverMemoryError as exc:
            logger.debug(
                "bandwidth probe d=%d OM at %.3f MB (limit %.3f MB)",
                d,
                exc.modeled_bytes / 1e6,
                memory_limit_bytes / 1e6,
            )
            probes.append(
                BandwidthProbe(
                    bandwidth=d,
                    feasible=False,
                    modeled_bytes=exc.modeled_bytes,
                    seconds=time.perf_counter() - probe_start,
                )
            )
            return False
        built[d] = index
        probes.append(
            BandwidthProbe(
                bandwidth=d,
                feasible=True,
                modeled_bytes=index.size_bytes(),
                seconds=time.perf_counter() - probe_start,
            )
        )
        return True

    def finish(best: int) -> BandwidthSearchResult:
        return BandwidthSearchResult(
            bandwidth=best,
            index=built[best],
            probes=probes,
            seconds=time.perf_counter() - started,
        )

    # Fast path: d = 0 (pure 2-hop labeling) already fits.
    if attempt(0):
        return finish(0)

    # Geometric scan: bracket the first feasible d between the last
    # failure and the first success.
    last_failure = 0
    high = 1
    while not attempt(high):
        last_failure = high
        if high >= max_upper_bound:
            raise IndexConstructionError(
                f"no bandwidth up to {high} fits in {memory_limit_bytes} bytes"
            )
        high = min(high * 2, max_upper_bound)

    # Binary search the smallest feasible d in (last_failure, high].
    low = last_failure + 1
    best = high
    while low < best:
        mid = (low + best) // 2
        if attempt(mid):
            best = mid
        else:
            low = mid + 1
    return finish(best)
