"""The CT-Index: the paper's core contribution (Sections 4.4-4.5).

:class:`CTIndex` answers exact distance queries using the four-case
dispatch of Section 4.5:

* **Case 1** — both nodes in the core: one 2-hop query on the core index.
* **Case 2** — one node in a tree: minimize over the ≤ d interface nodes
  of the tree (tree-label hop + core query).
* **Case 3** — nodes in different trees: build both *extended label
  sets* (Lemma 9) and intersect them — O(d) core-label scans instead of
  the naive O(d²) interface product.
* **Case 4** — nodes in the same tree: the better of the 2-hop local
  answer through the LCA bag (``d2``) and the 4-hop answer through the
  core (``d4``, again via extended labels).

Query-case counters and core-probe counters are kept for the benchmark
harness and the Lemma 9 ablation.

Extension label sets depend only on the queried node's forest position
(and the index is immutable once built), so a bounded LRU keyed by
position memoizes them: repeat-heavy workloads hitting hot trees skip
the O(d) core-label scans entirely.  ``extension_cache_size`` bounds the
cache (0 disables it); ``extension_cache_hits``/``_misses`` instrument
it for the serving layer.
"""

from __future__ import annotations

import time
from collections import Counter, OrderedDict

import repro.obs as obs
from repro.exceptions import ConfigurationError, QueryError
from repro.graphs.graph import INF, Graph, Weight
from repro.kernels import (
    KERNEL_AUTO,
    KERNEL_NUMPY,
    record_kernel_queries,
    resolve_kernel,
)
from repro.obs.tracing import span as obs_span
from repro.graphs.reductions import (
    EquivalenceReduction,
    eliminate_equivalent_nodes,
    reduction_identity,
)
from repro.labeling.base import DistanceIndex, MemoryBudget, validate_backend
from repro.labeling.pll import PrunedLandmarkLabeling
from repro.core.construction import TreeIndex, construct

#: Kernel-state sentinel: "not resolved yet" (distinct from None, which
#: means "resolved to the python kernel").
_UNRESOLVED = object()


class CTIndex(DistanceIndex):
    """Core-Tree distance index over a graph.

    Build with :meth:`CTIndex.build` (or :func:`build_ct_index`)::

        index = CTIndex.build(graph, bandwidth=20)
        index.distance(s, t)

    The ``bandwidth`` is the paper's ``d``: 0 keeps the whole graph in
    the core (CT-0 ≡ PSL+/PLL); larger values move more of the graph
    into the cheap tree-index at a mild query-time cost.
    """

    method_name = "CT"

    #: When the index was loaded with ``mmap=True``, the
    #: :class:`~repro.storage.mapped.MappedSnapshot` whose pages back
    #: the label arrays (``None`` for built or copy-loaded indexes).
    #: Holding the index holds the mapping.
    snapshot_source = None

    def __init__(
        self,
        graph: Graph,
        bandwidth: int,
        reduction: EquivalenceReduction,
        tree_index: TreeIndex,
        core_index: PrunedLandmarkLabeling,
        core_originals: list[int],
        core_compact: dict[int, int],
        extension_cache_size: int = 256,
        kernel: str = KERNEL_AUTO,
    ) -> None:
        self.graph = graph
        self.bandwidth = bandwidth
        self.reduction = reduction
        self.tree_index = tree_index
        self.core_index = core_index
        self._core_originals = core_originals
        self._core_compact = core_compact
        self.method_name = f"CT-{bandwidth}"
        #: Query-case histogram: keys "case1" .. "case4".
        self.case_counts: Counter[str] = Counter()
        #: How many core-label scans the queries performed (Lemma 9 metric).
        self.core_probes = 0
        #: Bound on the per-position extension-label LRU (0 disables it).
        self.extension_cache_size = extension_cache_size
        #: Extension sets served from / missing the LRU.
        self.extension_cache_hits = 0
        self.extension_cache_misses = 0
        self._extension_cache: OrderedDict[int, object] = OrderedDict()
        #: Requested query kernel ("auto" | "numpy" | "python").
        self._kernel_request = kernel
        #: Resolved kernel state: _UNRESOLVED until first use, then a
        #: CTKernelState (numpy) or None (python fallback).
        self._kernel_state: object = _UNRESOLVED

    # ------------------------------------------------------------------
    # Build entry points
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        graph: Graph,
        bandwidth: int | None = None,
        *,
        config: object | None = None,
        use_equivalence_reduction: bool = True,
        budget: MemoryBudget | None = None,
        order: str | None = None,
        core_backend: str = "pll",
        extension_cache_size: int = 256,
        workers: int | None = None,
        backend: str = "dict",
        kernel: str = KERNEL_AUTO,
        core_order: str | None = None,
        hopdb_order: str = "degree",
    ) -> "CTIndex":
        """Construct a CT-Index (Algorithm 1).

        Parameters
        ----------
        graph:
            The graph to index.
        bandwidth:
            The paper's ``d``; trades index size against query time.
            Required unless ``config=`` supplies it.
        config:
            Optional :class:`~repro.api.BuildConfig` bundling every
            build-shaping knob (all parameters here except ``budget``,
            which is a runtime object, not configuration).  Knobs may
            still be passed loose; a loose kwarg that differs from both
            its default and the config raises
            :class:`~repro.exceptions.ConfigurationError` (conflicting
            spellings), while kwargs left at their defaults defer to the
            config.
        use_equivalence_reduction:
            Fold twin nodes before indexing (the paper integrates the
            PSL+ reduction into CT-Index); automatic no-op on weighted
            graphs.
        budget:
            Optional memory budget; exceeding it raises
            :class:`~repro.exceptions.OverMemoryError` mid-build (the
            paper's "OM" outcome).
        order:
            Ordering strategy: ``"degree"`` (PSL's practical hub order,
            the default when ``None``), ``"elimination"`` (the theory
            order of Theorem 4.4 [2]), or ``"is"`` (IS-LABEL-style
            independent-set periphery elimination; core hubs fall back
            to degree order).
        core_backend:
            ``"pll"`` (pruned searches), ``"psl"`` (round-synchronous
            propagation where applicable), or ``"hopdb"`` (hop-doubling
            label composition for scale-free cores) — all build the
            same canonical labels; the paper's line 33 treats the
            backends as interchangeable.
        extension_cache_size:
            Bound on the per-position extension-label LRU used by
            Case-3/4 queries; ``0`` disables the cache (every query
            recomputes its extension sets).
        workers:
            Number of worker processes for the parallel build path
            (``None``/``1`` serial, ``0`` one per CPU).  Any worker
            count builds the same index byte for byte — see
            :mod:`repro.parallel`.  With NumPy installed the workers
            share one shared-memory pool (:mod:`repro.parallel.shm`)
            that drives both the forest fan-out and the vectorized PSL
            rounds; without NumPy the pickled-snapshot forest pool is
            used and PSL rounds fan out per round.
        hopdb_order:
            Hub order of the ``"hopdb"`` core backend: ``"degree"``
            (default) or ``"psl-rank"`` (degree refined by neighbor
            degree mass).  Exact either way, but ``"psl-rank"`` changes
            which canonical label set is built, so it is rejected for
            other backends to keep their fingerprints stable.
        backend:
            Label storage of the returned index: ``"dict"`` (mutable
            per-node containers) or ``"flat"`` (the CSR arrays of
            :mod:`repro.storage`, packed after construction).  Never
            changes an answer.
        kernel:
            Kernel selection for both the query path and the vectorized
            PSL construction rounds (see :mod:`repro.kernels`):
            ``"auto"`` (default — NumPy when installed and the backend
            is flat), ``"numpy"`` (required; raises
            :class:`~repro.exceptions.ConfigurationError` when NumPy is
            missing or ``backend`` is not ``"flat"``), or ``"python"``
            (always the interpreter paths).  Never changes an answer.
        core_order:
            Deprecated spelling of ``order=`` (kept one release; warns
            with :class:`DeprecationWarning`).
        """
        from repro.deprecation import resolve_config_kwargs, resolve_renamed_kwarg

        order = resolve_renamed_kwarg("core_order", "order", core_order, order)
        if bandwidth is None and config is None:
            raise ConfigurationError(
                "bandwidth is required (pass it directly or via config=)"
            )
        if config is not None:
            # Defaults-deferral merge: a kwarg still at its default is
            # "not passed" and defers to the config; one moved off its
            # default is explicit and must agree with the config.
            defaults = {
                "workers": None,
                "backend": "dict",
                "order": None,
                "core_backend": "pll",
                "use_equivalence_reduction": True,
                "extension_cache_size": 256,
                "kernel": KERNEL_AUTO,
                "hopdb_order": "degree",
            }
            passed = {
                "workers": workers,
                "backend": backend,
                "order": order,
                "core_backend": core_backend,
                "use_equivalence_reduction": use_equivalence_reduction,
                "extension_cache_size": extension_cache_size,
                "kernel": kernel,
                "hopdb_order": hopdb_order,
            }
            explicit = {k: v for k, v in passed.items() if v != defaults[k]}
            if bandwidth is not None:
                explicit["bandwidth"] = bandwidth
            resolved = resolve_config_kwargs(config, explicit)
            bandwidth = resolved.bandwidth
            workers = resolved.workers
            backend = resolved.backend
            order = resolved.order
            core_backend = resolved.core_backend
            use_equivalence_reduction = resolved.use_equivalence_reduction
            extension_cache_size = resolved.extension_cache_size
            kernel = resolved.kernel
            hopdb_order = resolved.hopdb_order
        validate_backend(backend)
        # Fail fast on an unsatisfiable kernel request (numpy missing,
        # or kernel='numpy' on the dict backend).
        resolve_kernel(kernel, flat=backend == "flat")
        started = time.perf_counter()
        with obs_span(
            "ct.build",
            n=graph.n,
            m=graph.m,
            bandwidth=bandwidth,
            backend=backend,
            workers=workers,
        ):
            with obs_span("ct.reduction"):
                if use_equivalence_reduction:
                    reduction = eliminate_equivalent_nodes(graph)
                else:
                    reduction = reduction_identity(graph)
            decomposition, tree_index, core_index, originals, compact, _ = construct(
                reduction.reduced,
                bandwidth,
                budget=budget,
                order=order,
                core_backend=core_backend,
                workers=workers,
                kernel=kernel,
                hopdb_order=hopdb_order,
            )
            del decomposition  # reachable through tree_index
            index = cls(
                graph=graph,
                bandwidth=bandwidth,
                reduction=reduction,
                tree_index=tree_index,
                core_index=core_index,
                core_originals=originals,
                core_compact=compact,
                extension_cache_size=extension_cache_size,
                kernel=kernel,
            )
            if backend == "flat":
                index.compact()
        index.build_seconds = time.perf_counter() - started
        return index

    # ------------------------------------------------------------------
    # Storage backends
    # ------------------------------------------------------------------

    @property
    def storage_backend(self) -> str:
        """``"dict"`` or ``"flat"`` — how both label halves are stored.

        The two halves are always converted together, so reading the
        core store's marker is enough.
        """
        return getattr(self.core_index.labels, "storage_backend", "dict")

    def compact(self) -> "CTIndex":
        """Pack both label halves into the CSR flat backend.

        The core 2-hop labels become a
        :class:`~repro.storage.flat_labels.FlatLabelStore` and the tree
        labels a :class:`~repro.storage.flat_tree.FlatTreeLabelStore`;
        every query path reads through the shared protocols, so answers
        are unchanged.  Cached extension sets are dropped (they hold no
        backend state, but this keeps probe counters honest across a
        conversion).  Idempotent; returns ``self``.
        """
        from repro.storage.flat_labels import FlatLabelStore
        from repro.storage.flat_tree import FlatTreeLabelStore

        with obs_span("storage.compact", entries=self.size_entries()):
            if not isinstance(self.core_index.labels, FlatLabelStore):
                self.core_index.compact()
            if not isinstance(self.tree_index.labels, FlatTreeLabelStore):
                flat = FlatTreeLabelStore.from_labels(self.tree_index.labels)
                self.tree_index.labels = flat
                self.tree_index._local_get = flat.local_get
            self.clear_extension_cache()
            self._kernel_state = _UNRESOLVED
        if obs.enabled():
            obs.registry().counter("storage.compactions").inc()
        return self

    def to_dict_backend(self) -> "CTIndex":
        """Unpack both label halves into the mutable dict backend.

        An explicit ``kernel="numpy"`` request is demoted to ``"auto"``
        (the numpy kernels cannot read dict labels); converting back
        with :meth:`compact` re-enables them.
        """
        from repro.storage.flat_tree import FlatTreeLabelStore

        self.core_index.to_dict_backend()
        if isinstance(self.tree_index.labels, FlatTreeLabelStore):
            self.tree_index.labels = self.tree_index.labels.to_dicts()
            self.tree_index._local_get = None
        self.clear_extension_cache()
        if self._kernel_request == KERNEL_NUMPY:
            self._kernel_request = KERNEL_AUTO
        self._kernel_state = _UNRESOLVED
        return self

    # ------------------------------------------------------------------
    # Query kernels
    # ------------------------------------------------------------------

    @property
    def kernel(self) -> str:
        """The resolved query kernel: ``"numpy"`` or ``"python"``."""
        return KERNEL_NUMPY if self._resolved_kernel_state() is not None else "python"

    def set_kernel(self, kernel: str = KERNEL_AUTO) -> "CTIndex":
        """Select the query kernel (``"auto"`` | ``"numpy"`` | ``"python"``).

        An explicit ``"numpy"`` that cannot be honoured raises
        :class:`~repro.exceptions.ConfigurationError` immediately.  The
        extension cache is dropped — the two kernels memoize extension
        sets in different shapes (dicts vs sorted array pairs).
        Returns ``self``.
        """
        resolve_kernel(kernel, flat=self.storage_backend == "flat")
        self._kernel_request = kernel
        self._kernel_state = _UNRESOLVED
        self.clear_extension_cache()
        return self

    def _resolved_kernel_state(self):
        """The CTKernelState to query through, or None (python kernel)."""
        state = self._kernel_state
        if state is _UNRESOLVED:
            resolved = resolve_kernel(
                self._kernel_request, flat=self.storage_backend == "flat"
            )
            if resolved == KERNEL_NUMPY:
                from repro.kernels.ct_kernels import CTKernelState

                state = CTKernelState(self)
            else:
                state = None
            self._kernel_state = state
        return state

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def decomposition(self):
        """The underlying :class:`CoreTreeDecomposition`."""
        return self.tree_index.decomposition

    @property
    def boundary(self) -> int:
        """λ — number of forest nodes (in the reduced graph)."""
        return self.decomposition.boundary

    @property
    def core_size(self) -> int:
        """|B_c| — number of core nodes."""
        return len(self._core_originals)

    @property
    def core_originals(self) -> list[int]:
        """Reduced-graph node id per compact core-graph node."""
        return self._core_originals

    def forest_height(self) -> int:
        """h_F of the forest."""
        return self.decomposition.forest_height()

    def size_entries(self) -> int:
        """Tree labels plus core labels, in entries."""
        return self.tree_index.size_entries() + self.core_index.size_entries()

    def stats(self):
        stats = super().stats()
        extra = dict(stats.extra)
        extra.update(
            boundary=self.boundary,
            core_size=self.core_size,
            forest_height=self.forest_height(),
            tree_entries=self.tree_index.size_entries(),
            core_entries=self.core_index.size_entries(),
        )
        return type(stats)(
            method=stats.method,
            entries=stats.entries,
            bytes=stats.bytes,
            build_seconds=stats.build_seconds,
            extra=extra,
        )

    def reset_counters(self) -> None:
        """Zero the query counters and drop the extension-label cache.

        Dropping the cache keeps probe-count measurements comparable:
        after a reset every query pays its own extension cost again.
        """
        self.case_counts.clear()
        self.core_probes = 0
        self.clear_extension_cache()

    def clear_extension_cache(self) -> None:
        """Drop cached extension sets and zero their hit/miss counters."""
        self._extension_cache.clear()
        self.extension_cache_hits = 0
        self.extension_cache_misses = 0

    @property
    def extension_cache_hit_rate(self) -> float:
        """Fraction of extension-set requests served from the LRU."""
        total = self.extension_cache_hits + self.extension_cache_misses
        return self.extension_cache_hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def distance(self, s: int, t: int) -> Weight:
        """Exact distance between original-graph nodes ``s`` and ``t``."""
        if not 0 <= s < self.graph.n or not 0 <= t < self.graph.n:
            raise QueryError(f"query nodes ({s}, {t}) out of range")
        if s == t:
            return 0
        rs = self.reduction.representative[s]
        rt = self.reduction.representative[t]
        if rs == rt:
            return self.reduction.class_distance(s, t)
        state = self._resolved_kernel_state()
        if state is not None:
            record_kernel_queries(KERNEL_NUMPY)
            return state.reduced_distance(rs, rt)
        record_kernel_queries("python")
        return self._reduced_distance(rs, rt)

    def distances_from(self, s: int, targets) -> list[Weight]:
        """One-to-many queries from ``s``, reusing per-source state.

        For a forest source the extension operation (the O(d) part of
        Cases 3-4) is computed once and shared across the whole batch,
        so large batches cost roughly one label intersection per target.
        """
        if not 0 <= s < self.graph.n:
            raise QueryError(f"source {s} out of range")
        state = self._resolved_kernel_state()
        if state is not None:
            targets = list(targets)
            for t in targets:
                if not 0 <= t < self.graph.n:
                    raise QueryError(f"target {t} out of range")
            record_kernel_queries(KERNEL_NUMPY, len(targets))
            return state.distances_from(s, targets)
        rs = self.reduction.representative[s]
        pos_s = self.decomposition.position[rs]
        ext_s: dict[int, Weight] | None = None
        results: list[Weight] = []
        for t in targets:
            if not 0 <= t < self.graph.n:
                raise QueryError(f"target {t} out of range")
            if t == s:
                results.append(0)
                continue
            rt = self.reduction.representative[t]
            if rs == rt:
                results.append(self.reduction.class_distance(s, t))
                continue
            pos_t = self.decomposition.position[rt]
            if pos_s is None:
                # Core source: the generic dispatch is already cheap.
                results.append(self._reduced_distance(rs, rt))
                continue
            if pos_t is None:
                self.case_counts["case2"] += 1
                results.append(self._tree_to_core(rs, pos_s, rt))
                continue
            if ext_s is None:
                ext_s = self._extended_labels(pos_s)
            if self.decomposition.same_tree(pos_s, pos_t):
                self.case_counts["case4"] += 1
                meet = self.decomposition.lca(pos_s, pos_t)
                d2: Weight = INF
                for u in self.decomposition.bag_members(meet):
                    left = self.tree_index.local_distance(pos_s, u)
                    if left == INF:
                        continue
                    right = self.tree_index.local_distance(pos_t, u)
                    if left + right < d2:
                        d2 = left + right
                d4 = _dict_intersection(ext_s, self._extended_labels(pos_t))
                results.append(min(d2, d4))
            else:
                self.case_counts["case3"] += 1
                results.append(_dict_intersection(ext_s, self._extended_labels(pos_t)))
        record_kernel_queries("python", len(results))
        return results

    def distances_batch(self, pairs) -> list[Weight]:
        """Pairwise batch; the numpy kernel groups pairs by source.

        Grouping lets every source pay its dense scatter / extension
        computation once across all its pairs; answers stay positional
        and identical to the scalar loop.
        """
        state = self._resolved_kernel_state()
        if state is None:
            return super().distances_batch(pairs)
        pairs = list(pairs)
        for s, t in pairs:
            if not 0 <= s < self.graph.n or not 0 <= t < self.graph.n:
                raise QueryError(f"query nodes ({s}, {t}) out of range")
        record_kernel_queries(KERNEL_NUMPY, len(pairs))
        return state.distances_batch(pairs)

    def distance_naive_4hop(self, s: int, t: int) -> Weight:
        """Like :meth:`distance` but evaluating Equation 1 directly.

        Cases 3-4 enumerate the full interface Cartesian product (O(d²)
        core queries) instead of using the extension operation.  Exists
        for the Lemma 9 ablation and its equivalence tests.
        """
        if not 0 <= s < self.graph.n or not 0 <= t < self.graph.n:
            raise QueryError(f"query nodes ({s}, {t}) out of range")
        if s == t:
            return 0
        rs = self.reduction.representative[s]
        rt = self.reduction.representative[t]
        if rs == rt:
            return self.reduction.class_distance(s, t)
        return self._reduced_distance(rs, rt, naive=True)

    def _reduced_distance(self, s: int, t: int, *, naive: bool = False) -> Weight:
        position = self.decomposition.position
        pos_s = position[s]
        pos_t = position[t]
        if pos_s is None and pos_t is None:
            self.case_counts["case1"] += 1
            return self._core_distance(s, t)
        if pos_s is None:
            s, t = t, s
            pos_s, pos_t = pos_t, pos_s
        assert pos_s is not None
        if pos_t is None:
            self.case_counts["case2"] += 1
            return self._tree_to_core(s, pos_s, t)
        if self.decomposition.same_tree(pos_s, pos_t):
            self.case_counts["case4"] += 1
            return self._same_tree(s, pos_s, t, pos_t, naive)
        self.case_counts["case3"] += 1
        return self._cross_tree(s, pos_s, t, pos_t, naive)

    # -- Case helpers ---------------------------------------------------

    def _core_distance(self, u: int, v: int) -> Weight:
        """2-hop query between two core nodes (original ids).

        Goes straight to the label store rather than through
        ``core_index.distance``: these are *internal* probes of the
        CT-Index cases, so they must not re-enter the core index's own
        kernel dispatch (which would double-record them on the
        per-kernel query counters).
        """
        self.core_probes += 1
        if u == v:
            return 0
        return self.core_index.labels.query(
            self._core_compact[u], self._core_compact[v]
        )

    def _tree_to_core(self, s: int, pos_s: int, t: int) -> Weight:
        interface = self.decomposition.interface[self.decomposition.root[pos_s]]
        best: Weight = INF
        for u in interface:
            du = self.tree_index.local_distance(pos_s, u)
            if du == INF:
                continue
            total = du + self._core_distance(u, t)
            if total < best:
                best = total
        return best

    def _cross_tree(self, s: int, pos_s: int, t: int, pos_t: int, naive: bool) -> Weight:
        if naive:
            return self._naive_interface_product(pos_s, pos_t)
        ext_s = self._extended_labels(pos_s)
        ext_t = self._extended_labels(pos_t)
        return _dict_intersection(ext_s, ext_t)

    def _same_tree(self, s: int, pos_s: int, t: int, pos_t: int, naive: bool) -> Weight:
        # d2: the 2-hop local answer through the LCA bag.
        meet = self.decomposition.lca(pos_s, pos_t)
        d2: Weight = INF
        for u in self.decomposition.bag_members(meet):
            left = self.tree_index.local_distance(pos_s, u)
            if left == INF:
                continue
            right = self.tree_index.local_distance(pos_t, u)
            if left + right < d2:
                d2 = left + right
        # d4: detour through the core (both endpoints share one interface).
        if naive:
            d4 = self._naive_interface_product(pos_s, pos_t)
        else:
            ext_s = self._extended_labels(pos_s)
            ext_t = self._extended_labels(pos_t)
            d4 = _dict_intersection(ext_s, ext_t)
        return min(d2, d4)

    def _extended_labels(self, pos: int) -> dict[int, Weight]:
        """Extension set for forest position ``pos``, via the LRU.

        Returns ``hub rank -> extended distance`` (Section 4.5).  A miss
        costs O(d) core-label scans; a hit is a dictionary lookup.
        Callers must not mutate the returned map.
        """
        return self._extension_entry(pos, self._compute_extended_labels)

    def _extension_entry(self, pos: int, compute):
        """LRU discipline shared by both kernels' extension sets.

        The python kernel memoizes ``rank -> dist`` dicts, the numpy
        kernel sorted ``(ranks, dists)`` array pairs; the cache never
        mixes shapes because every kernel switch (:meth:`set_kernel`,
        :meth:`compact`, :meth:`to_dict_backend`) clears it.
        """
        cache = self._extension_cache
        cached = cache.get(pos)
        if cached is not None:
            self.extension_cache_hits += 1
            cache.move_to_end(pos)
            return cached
        self.extension_cache_misses += 1
        extended = compute(pos)
        if self.extension_cache_size > 0:
            cache[pos] = extended
            if len(cache) > self.extension_cache_size:
                cache.popitem(last=False)
        return extended

    def _compute_extended_labels(self, pos: int) -> dict[int, Weight]:
        """Extension operation: union of interface core labels, shifted."""
        interface = self.decomposition.interface[self.decomposition.root[pos]]
        extended: dict[int, Weight] = {}
        labels = self.core_index.labels
        for u in interface:
            du = self.tree_index.local_distance(pos, u)
            if du == INF:
                continue
            self.core_probes += 1
            for hub_rank, dist in labels.iter_rank_entries(self._core_compact[u]):
                total = du + dist
                old = extended.get(hub_rank)
                if old is None or total < old:
                    extended[hub_rank] = total
        return extended

    def _naive_interface_product(self, pos_s: int, pos_t: int) -> Weight:
        """Equation 1 evaluated directly over N_{r(s)} × N_{r(t)}."""
        interface_s = self.decomposition.interface[self.decomposition.root[pos_s]]
        interface_t = self.decomposition.interface[self.decomposition.root[pos_t]]
        best: Weight = INF
        for u in interface_s:
            du = self.tree_index.local_distance(pos_s, u)
            if du == INF:
                continue
            for w in interface_t:
                dw = self.tree_index.local_distance(pos_t, w)
                if dw == INF:
                    continue
                total = du + self._core_distance(u, w) + dw
                if total < best:
                    best = total
        return best


def _dict_intersection(map_a: dict[int, Weight], map_b: dict[int, Weight]) -> Weight:
    """min over shared keys of the two maps' value sums."""
    if len(map_a) > len(map_b):
        map_a, map_b = map_b, map_a
    best: Weight = INF
    for key, da in map_a.items():
        db = map_b.get(key)
        if db is not None and da + db < best:
            best = da + db
    return best


def build_ct_index(
    graph: Graph,
    bandwidth: int | None = None,
    *,
    config: object | None = None,
    use_equivalence_reduction: bool = True,
    budget: MemoryBudget | None = None,
    order: str | None = None,
    core_backend: str = "pll",
    extension_cache_size: int = 256,
    workers: int | None = None,
    backend: str = "dict",
    kernel: str = KERNEL_AUTO,
    core_order: str | None = None,
) -> CTIndex:
    """Functional alias of :meth:`CTIndex.build` (same keywords)."""
    return CTIndex.build(
        graph,
        bandwidth,
        config=config,
        use_equivalence_reduction=use_equivalence_reduction,
        budget=budget,
        order=order,
        core_backend=core_backend,
        extension_cache_size=extension_cache_size,
        workers=workers,
        backend=backend,
        kernel=kernel,
        core_order=core_order,
    )
