"""The CT-Index: the paper's primary contribution."""

from repro.core.bandwidth import (
    BandwidthProbe,
    BandwidthSearchResult,
    find_bandwidth,
)
from repro.core.construction import TreeIndex, build_core_index, build_tree_index
from repro.core.ct_index import CTIndex, build_ct_index
from repro.core.serialization import load_ct_index, save_ct_index
from repro.core.validation import AuditReport, audit_ct_index

__all__ = [
    "AuditReport",
    "BandwidthProbe",
    "BandwidthSearchResult",
    "CTIndex",
    "TreeIndex",
    "build_core_index",
    "build_ct_index",
    "audit_ct_index",
    "build_tree_index",
    "find_bandwidth",
    "load_ct_index",
    "save_ct_index",
]
