"""Self-checks for built CT-Indexes.

A distance index that silently returns wrong answers is worse than no
index; operators of a long-lived deployment want a cheap way to audit
one.  :func:`audit_ct_index` cross-checks a built index against its own
graph (sampled online searches), its own structure (decomposition
invariants), and its own theory (the Lemma 6 size bound), and returns a
machine-readable report.
"""

from __future__ import annotations

import dataclasses
import random
import time

from repro.core.ct_index import CTIndex
from repro.exceptions import ReproError
from repro.graphs.graph import INF
from repro.graphs.traversal import pairwise_distance


@dataclasses.dataclass(frozen=True)
class AuditReport:
    """Outcome of :func:`audit_ct_index`."""

    sampled_queries: int
    mismatches: int
    structure_ok: bool
    bounds_ok: bool
    case_counts: dict[str, int]
    seconds: float

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return self.mismatches == 0 and self.structure_ok and self.bounds_ok

    def summary(self) -> str:
        """One-paragraph human-readable verdict."""
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"{verdict}: {self.sampled_queries} sampled queries, "
            f"{self.mismatches} mismatches; structure "
            f"{'ok' if self.structure_ok else 'BROKEN'}; size bounds "
            f"{'ok' if self.bounds_ok else 'VIOLATED'}; "
            f"case mix {self.case_counts} ({self.seconds:.2f}s)"
        )


def audit_ct_index(
    index: CTIndex,
    *,
    samples: int = 200,
    seed: int = 0,
    raise_on_failure: bool = False,
) -> AuditReport:
    """Audit ``index`` against its graph, structure, and theory.

    Parameters
    ----------
    index:
        The index to audit; its :attr:`CTIndex.graph` is the oracle.
    samples:
        Number of random query pairs cross-checked with bidirectional
        online search.
    seed:
        Workload seed (the audit is deterministic).
    raise_on_failure:
        Raise :class:`ReproError` instead of returning a failing report.
    """
    started = time.perf_counter()
    graph = index.graph
    rng = random.Random(seed)

    index.reset_counters()
    mismatches = 0
    sampled = 0
    if graph.n > 0:
        for _ in range(samples):
            s = rng.randrange(graph.n)
            t = rng.randrange(graph.n)
            sampled += 1
            expected = pairwise_distance(graph, s, t)
            got = index.distance(s, t)
            if got != expected and not (got == INF and expected == INF):
                mismatches += 1

    structure_ok = True
    try:
        index.decomposition.validate()
    except ReproError:
        structure_ok = False

    bounds_ok = True
    try:
        from repro.theory import verify_ct_bounds

        verify_ct_bounds(index)
    except ReproError:
        bounds_ok = False

    report = AuditReport(
        sampled_queries=sampled,
        mismatches=mismatches,
        structure_ok=structure_ok,
        bounds_ok=bounds_ok,
        case_counts=dict(index.case_counts),
        seconds=time.perf_counter() - started,
    )
    if raise_on_failure and not report.ok:
        raise ReproError(f"index audit failed: {report.summary()}")
    return report
