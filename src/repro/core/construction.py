"""CT-Index construction — Algorithm 1 of the paper.

The pipeline:

1. bandwidth-bounded weighted MDE (lines 1-17, in
   :mod:`repro.treedec.elimination`);
2. core-tree structure: parents ``f(i)``, roots ``r(i)``, interfaces
   (lines 18-28, in :mod:`repro.treedec.core_tree`);
3. **tree-index**: λ-local distances from every forest node to its tree
   ancestors and to its tree's interface (lines 19-32, this module);
4. **core-index**: PLL (pruned Dijkstra) on the weighted reduced graph
   ``G_{λ+1}`` (line 33).

The tree labels are computed in *reverse* elimination order, so the
recursion of Lemma 15 always reads already-final values: the λ-local
distance from ``v_i`` to a target ``u`` is either the recorded wedge
weight ``δ⁻(u)`` (when ``u ∈ N_i``) or routes through a tree neighbor
``v_j`` as ``δ⁻(v_j) + δ^T(v_j, u)``.
"""

from __future__ import annotations

import logging
import time

import repro.obs as obs
from repro.exceptions import IndexConstructionError
from repro.graphs.graph import INF, Graph, Weight
from repro.kernels import KERNEL_AUTO
from repro.labeling.base import MemoryBudget
from repro.labeling.ordering import degree_order
from repro.labeling.pll import PrunedLandmarkLabeling, build_pll
from repro.obs.tracing import span as obs_span
from repro.treedec.core_tree import CoreTreeDecomposition, core_tree_decomposition

logger = logging.getLogger(__name__)


class TreeIndex:
    """The forest half of a CT-Index: λ-local distance labels.

    ``labels[pos]`` maps every *target* of the forest node eliminated at
    ``pos`` — its ancestors within its tree plus its tree's interface
    nodes — to the λ-local distance δ^T.  It is either the dict
    backend's ``list[dict]`` or a packed
    :class:`~repro.storage.flat_tree.FlatTreeLabelStore`; both expose
    the same mapping-per-position view.
    """

    def __init__(self, decomposition: CoreTreeDecomposition, labels) -> None:
        self.decomposition = decomposition
        self.labels = labels
        # Flat stores answer point lookups directly (one bisect) instead
        # of materializing a mapping view per probe.
        self._local_get = getattr(labels, "local_get", None)

    @property
    def storage_backend(self) -> str:
        """``"dict"`` or ``"flat"`` — how the labels are stored now."""
        return getattr(self.labels, "storage_backend", "dict")

    def size_entries(self) -> int:
        """Stored (target, distance) pairs."""
        if hasattr(self.labels, "total_entries"):
            return self.labels.total_entries()
        return sum(len(label) for label in self.labels)

    def local_distance(self, pos: int, target: int) -> Weight:
        """δ^T from the node at ``pos`` to ``target`` (0 for itself).

        ``target`` must be one of the node's stored targets (an ancestor
        in its tree, an interface node, or the node itself); anything
        else returns INF, which is safe for the min-combining callers.
        """
        if self.decomposition.node_at(pos) == target:
            return 0
        if self._local_get is not None:
            return self._local_get(pos, target, INF)
        return self.labels[pos].get(target, INF)


def compute_tree_labels(
    decomposition: CoreTreeDecomposition,
    positions,
    labels,
    *,
    budget: MemoryBudget | None = None,
) -> None:
    """Fill ``labels[pos]`` for every ``pos`` in ``positions``.

    ``positions`` must be in descending order and closed under tree
    ancestry (a position's ancestors appear before it), because the
    recursion of Lemma 15 reads ancestor labels; whole trees in reverse
    elimination order satisfy this, which is what makes the per-tree
    fan-out of :mod:`repro.parallel.forest` legal — a tree's labels
    never reference another tree.  ``labels`` may be the full
    boundary-sized list (serial build) or a per-task dict holding just
    the processed trees' positions.

    Serial and parallel builds both run *this* routine, so a forest
    label is computed by the same statements in the same order whichever
    schedule produced it — the byte-identical guarantee for the tree
    half of the index.
    """
    elimination = decomposition.elimination
    position = decomposition.position
    node_at = decomposition.node_at

    def lookup(pos_j: int, target: int) -> Weight:
        """δ^T(v_j, target), reading whichever endpoint stores the pair.

        Targets on the ancestor chain of the node being processed are
        comparable with ``v_j``: one of the two is the other's ancestor
        and therefore stores the distance (interface targets are always
        stored at ``v_j``).
        """
        node_j = node_at(pos_j)
        if node_j == target:
            return 0
        stored = labels[pos_j].get(target)
        if stored is not None:
            return stored
        pos_target = position[target]
        if pos_target is None:
            raise IndexConstructionError(
                f"interface target {target} missing from labels of position {pos_j}"
            )
        return labels[pos_target][node_j]

    for pos in positions:
        step = elimination.steps[pos]
        root = decomposition.root[pos]
        interface = decomposition.interface[root]
        label: dict[int, Weight] = {}

        if decomposition.parent[pos] is None:
            # Root bag: every neighbor is an interface (core) node and the
            # recorded wedge weight is already the λ-local distance
            # (Lemma 14 / line 25).
            label.update(step.local_distance)
        else:
            tree_neighbors = [
                (u, position[u]) for u in step.neighbors if position[u] is not None
            ]
            # Line 29-30: targets that are direct neighbors.
            for u in step.neighbors:
                best = step.local_distance[u]
                for v_j, pos_j in tree_neighbors:
                    if v_j == u:
                        continue
                    assert pos_j is not None
                    through = step.local_distance[v_j] + lookup(pos_j, u)
                    if through < best:
                        best = through
                label[u] = best
            # Line 31-32: remaining targets (ancestors beyond N_i and the
            # rest of the interface).
            chain_targets = [node_at(p) for p in decomposition.ancestors_of(pos)]
            for u in _iter_missing(chain_targets, interface, label):
                best: Weight = INF
                for v_j, pos_j in tree_neighbors:
                    assert pos_j is not None
                    through = step.local_distance[v_j] + lookup(pos_j, u)
                    if through < best:
                        best = through
                label[u] = best
        if budget is not None:
            budget.charge(len(label))
        labels[pos] = label


def build_tree_index(
    decomposition: CoreTreeDecomposition,
    *,
    budget: MemoryBudget | None = None,
    workers: int | None = None,
    pool=None,
) -> TreeIndex:
    """Compute the λ-local distance labels (Algorithm 1, lines 19-32).

    With ``workers > 1`` the per-tree labels are computed one task per
    tree group across worker processes (Theorem 4's labels are
    independent between trees); the result is identical to the serial
    sweep.  A live :class:`~repro.parallel.shm.ShmBuildPool` passed as
    ``pool`` (internal; :func:`construct` owns its lifecycle) routes the
    fan-out through shared-memory decomposition arrays instead of the
    pickled-snapshot pool of :mod:`repro.parallel.forest`.  Budget
    accounting then happens on the merged labels in the serial charge
    order, so an over-budget build still raises
    :class:`~repro.exceptions.OverMemoryError` (after the parallel work
    rather than mid-sweep).
    """
    from repro.parallel.pool import resolve_workers

    if budget is None:
        budget = MemoryBudget.unlimited()
    boundary = decomposition.boundary
    worker_count = resolve_workers(workers)
    with obs_span(
        "ct.forest_labeling", boundary=boundary, workers=worker_count
    ) as forest_span:
        if pool is not None and boundary:
            from repro.parallel.shm import parallel_tree_labels_shm

            labels = parallel_tree_labels_shm(decomposition, pool=pool)
            for pos in range(boundary - 1, -1, -1):
                budget.charge(len(labels[pos]))
        elif worker_count > 1 and boundary:
            from repro.parallel.forest import parallel_tree_labels

            labels = parallel_tree_labels(decomposition, workers=worker_count)
            for pos in range(boundary - 1, -1, -1):
                budget.charge(len(labels[pos]))
        else:
            labels = [{} for _ in range(boundary)]
            compute_tree_labels(
                decomposition, range(boundary - 1, -1, -1), labels, budget=budget
            )
        index = TreeIndex(decomposition, labels)
        if obs.tracing_enabled():
            forest_span.set(entries=index.size_entries())
    if obs.enabled():
        obs.registry().counter("ct.forest_label_entries").inc(index.size_entries())
    return index


def _iter_missing(
    chain_targets: list[int], interface: tuple[int, ...], label: dict[int, Weight]
):
    """Targets of lines 31-32: chain ancestors and interface not yet labeled."""
    for u in chain_targets:
        if u not in label:
            yield u
    for u in interface:
        if u not in label:
            yield u


def build_core_index(
    decomposition: CoreTreeDecomposition,
    *,
    budget: MemoryBudget | None = None,
    order: str | None = None,
    core_backend: str = "pll",
    workers: int | None = None,
    kernel: str = KERNEL_AUTO,
    core_order: str | None = None,
    hopdb_order: str = "degree",
    pool=None,
) -> tuple[PrunedLandmarkLabeling, list[int], dict[int, int]]:
    """2-hop labeling on the weighted reduced core graph ``G_{λ+1}`` (line 33).

    ``order`` selects the hub order: ``"degree"`` (the practical
    default, as in PSL) or ``"elimination"`` — the reverse of a continued
    MDE run over the core, the order behind the paper's Theorem 4.4
    bound and the one its Figure 5 example uses.  ``"is"`` is accepted
    for symmetry with :func:`construct`, where it selects independent-set
    periphery elimination; the core hubs then use degree order (IS-LABEL
    has no distinguished hub order of its own).  ``core_order=`` is the
    deprecated pre-PR-4 spelling and maps onto ``order=`` with a
    :class:`DeprecationWarning`.

    ``core_backend`` selects the construction schedule — the paper's
    line 33 says "PLL (or PSL equivalently)".  ``"psl"`` uses the
    round-synchronous propagation when the core graph is unweighted
    (d = 0, no fill-in shortcuts); ``"hopdb"`` the hop-doubling label
    composition of :mod:`repro.labeling.hopdb` (also unweighted-only,
    suited to scale-free cores).  Both fall back to pruned-Dijkstra PLL
    on weighted cores, since their rounds count hops.  Every backend
    builds the same canonical label sets, so the choice never changes a
    fingerprint.

    ``workers`` fans the PSL backend's rounds out over worker processes
    (see :mod:`repro.parallel`) and ``kernel`` selects PSL's
    construction path (vectorized vs pure Python); a live
    :class:`~repro.parallel.shm.ShmBuildPool` passed as ``pool``
    (internal) is reused for vectorized multi-worker rounds.  The PLL
    and hopdb backends ignore all three: a pruned search depends on
    every earlier root's finished label, so PLL is inherently
    sequential, and hopdb runs its own composition loop.

    ``hopdb_order`` tunes the hub order of the ``"hopdb"`` backend:
    ``"degree"`` (the default; fingerprint-identical to the other
    backends) or ``"psl-rank"`` (degree refined by neighbor degree
    mass, :func:`repro.labeling.ordering.psl_rank_order`).  A non-degree
    order changes which canonical label set is built — still an exact
    2-hop cover, but no longer byte-identical to the degree-ordered
    one, which is why the knob is hopdb-specific and exactness-gated
    (BFS) rather than fingerprint-gated in the benches.

    Returns ``(core_labeling, originals, compact)``: the 2-hop index
    over the compacted core graph, the original node id per compact id,
    and the reverse map.
    """
    from repro.deprecation import resolve_renamed_kwarg

    order = resolve_renamed_kwarg("core_order", "order", core_order, order) or "degree"
    if hopdb_order not in ("degree", "psl-rank"):
        raise IndexConstructionError(
            f"unknown hopdb_order {hopdb_order!r}; expected 'degree' or 'psl-rank'"
        )
    if hopdb_order != "degree" and core_backend != "hopdb":
        raise IndexConstructionError(
            f"hopdb_order={hopdb_order!r} tunes the hopdb backend; it cannot "
            f"be combined with core_backend={core_backend!r}"
        )
    with obs_span(
        "ct.core_labeling", order=order, core_backend=core_backend
    ) as core_span:
        core_graph, originals = decomposition.core_graph()
        if order in ("degree", "is"):
            hub_order = degree_order(core_graph)
        elif order == "elimination":
            from repro.treedec.elimination import minimum_degree_elimination

            continued = minimum_degree_elimination(core_graph, bandwidth=None)
            hub_order = list(reversed(continued.eliminated_order()))
        else:
            raise IndexConstructionError(
                f"unknown core order {order!r}; expected 'degree', "
                f"'elimination', or 'is'"
            )
        if core_backend not in ("pll", "psl", "hopdb"):
            raise IndexConstructionError(
                f"unknown core backend {core_backend!r}; expected 'pll', "
                f"'psl', or 'hopdb'"
            )
        if core_backend == "psl" and core_graph.unweighted:
            from repro.labeling.psl import build_psl

            psl = build_psl(
                core_graph,
                hub_order,
                budget=budget,
                workers=workers,
                kernel=kernel,
                pool=pool,
            )
            labeling = PrunedLandmarkLabeling(core_graph, psl.labels, psl.order)
            labeling.build_seconds = psl.build_seconds
            labeling.round_stats = psl.round_stats
        elif core_backend == "hopdb" and core_graph.unweighted:
            from repro.labeling.hopdb import build_hopdb

            if hopdb_order == "psl-rank":
                from repro.labeling.ordering import psl_rank_order

                hub_order = psl_rank_order(core_graph)
            hop = build_hopdb(core_graph, hub_order, budget=budget)
            labeling = PrunedLandmarkLabeling(core_graph, hop.labels, hop.order)
            labeling.build_seconds = hop.build_seconds
        else:
            labeling = build_pll(core_graph, hub_order, budget=budget)
        if obs.tracing_enabled():
            core_span.set(core_n=core_graph.n, entries=labeling.size_entries())
    if obs.enabled():
        obs.registry().counter("ct.core_label_entries").inc(labeling.size_entries())
    compact = {orig: i for i, orig in enumerate(originals)}
    return labeling, originals, compact


def construct(
    graph: Graph,
    bandwidth: int,
    *,
    budget: MemoryBudget | None = None,
    order: str | None = None,
    core_backend: str = "pll",
    workers: int | None = None,
    kernel: str = KERNEL_AUTO,
    core_order: str | None = None,
    hopdb_order: str = "degree",
) -> tuple[CoreTreeDecomposition, TreeIndex, PrunedLandmarkLabeling, list[int], dict[int, int], float]:
    """Run the full Algorithm 1 and return all the pieces plus build time.

    ``order="is"`` swaps the periphery elimination from bounded MDE to
    the IS-LABEL-style independent-set rounds of
    :func:`repro.treedec.elimination.independent_set_elimination` (each
    round eliminates a maximal independent set of low-degree nodes at
    once); the core hubs then use degree order.  Any other ``order``
    value keeps MDE and selects the core hub order as in
    :func:`build_core_index`.

    ``workers`` parallelizes the tree-index fan-out (and the core
    labeling when ``core_backend="psl"`` applies) and ``kernel`` selects
    PSL's in-process construction path, without changing any label — the
    decomposition itself stays sequential, as each elimination step
    depends on the fill-in of the previous one.  When ``workers > 1``
    and NumPy is importable, one shared-memory worker pool
    (:class:`repro.parallel.shm.ShmBuildPool`) is created here and
    reused by both the forest fan-out and the vectorized PSL rounds, so
    process spawn cost is paid once per build rather than once per
    phase.  ``hopdb_order`` tunes the hopdb backend's hub order (see
    :func:`build_core_index`).  ``core_order=`` is the deprecated
    spelling of ``order=``.
    """
    from repro.deprecation import resolve_renamed_kwarg

    order = resolve_renamed_kwarg("core_order", "order", core_order, order) or "degree"
    started = time.perf_counter()
    if budget is None:
        budget = MemoryBudget.unlimited()
    with obs_span("ct.decompose", n=graph.n, bandwidth=bandwidth, order=order):
        if order == "is":
            from repro.treedec.elimination import independent_set_elimination

            elimination = independent_set_elimination(graph, bandwidth)
            decomposition = core_tree_decomposition(
                graph, bandwidth, elimination=elimination
            )
        else:
            decomposition = core_tree_decomposition(graph, bandwidth)
    from repro.kernels import numpy_available
    from repro.parallel.pool import resolve_workers

    worker_count = resolve_workers(workers)
    pool = None
    if worker_count > 1 and numpy_available():
        from repro.parallel.shm import ShmBuildPool

        pool = ShmBuildPool(worker_count)
    try:
        tree_index = build_tree_index(
            decomposition, budget=budget, workers=workers, pool=pool
        )
        core_index, originals, compact = build_core_index(
            decomposition,
            budget=budget,
            order=order,
            core_backend=core_backend,
            workers=workers,
            kernel=kernel,
            hopdb_order=hopdb_order,
            pool=pool,
        )
    finally:
        if pool is not None:
            pool.shutdown()
    elapsed = time.perf_counter() - started
    logger.debug(
        "CT constructed: d=%d lambda=%d core=%d h_F=%d tree_entries=%d "
        "core_entries=%d in %.3fs",
        bandwidth,
        decomposition.boundary,
        len(decomposition.core_nodes),
        decomposition.forest_height(),
        tree_index.size_entries(),
        core_index.size_entries(),
        elapsed,
    )
    return decomposition, tree_index, core_index, originals, compact, elapsed
