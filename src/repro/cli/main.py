"""``repro`` command-line tool.

Subcommands::

    repro stats GRAPH                     structural summary of an edge list
    repro build GRAPH -d 20 -o IDX.json   build and save a CT-Index (--workers N parallel)
    repro query IDX.json S T [S T ...]    answer distance queries
    repro find-bandwidth GRAPH --memory-mb 2
    repro generate DATASET -o GRAPH       dump a registry dataset
    repro bench EXPERIMENT                run one paper experiment driver
    repro serve IDX --port 8080           serve distance queries over HTTP (batched)
    repro serve IDX --dynamic             …accepting POST /mutate + /reindex (overlay)
    repro serve-bench GRAPH -d 20         cached vs uncached serving on a skewed stream
    repro server-bench GRAPH -d 20        HTTP load generator: RPS + p50/p99/p999
    repro build-bench GRAPH -d 20         serial vs parallel construction speedup
    repro storage-bench GRAPH -d 20       dict vs flat labels, JSON vs binary snapshots
    repro fleet-bench GRAPH -d 20         N-worker serving over one mapped snapshot
    repro dynamic-bench GRAPH -d 20       update throughput + latency under churn (verified)
    repro obs-bench GRAPH -d 20           observability overhead, recorded in BENCH_obs.json
    repro scale-bench --tiers cp-100k     construction trajectory per scale tier (gated)
    repro trace TRACE.jsonl               render a recorded span trace (tree + summary)
    repro datasets                        list the dataset registry

Observability: ``build`` and ``serve-bench`` accept ``--trace FILE``
(record per-phase / per-query spans to JSON lines — view with ``repro
trace FILE``), ``--metrics FILE`` (Prometheus-style text dump of the
metrics registry; ``-`` for stdout), and ``build`` also ``--profile
FILE`` (cProfile text report).  All three are off by default and cost
nothing when off.

``build`` writes either on-disk format (``--format json|binary``) and
either in-memory backend (``--backend dict|flat``); ``query``, ``path``
and ``audit`` detect the format by magic, so a saved index file is a
saved index file.

Exit status is 0 on success, 1 on a handled library error, 2 on bad
arguments (argparse convention).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Sequence

from repro.exceptions import ConfigurationError, QueryError, ReproError
from repro.graphs.graph import INF


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CT-Index: distance labeling for core-periphery graphs (SIGMOD 2020 reproduction)",
    )
    sub = parser.add_subparsers(required=True)

    p_stats = sub.add_parser("stats", help="print a structural summary of an edge-list graph")
    p_stats.add_argument("graph", help="edge-list file (u v [w] per line)")
    p_stats.set_defaults(handler=_cmd_stats)

    p_build = sub.add_parser("build", help="build a CT-Index over an edge-list graph")
    p_build.add_argument("graph")
    p_build.add_argument(
        "-d",
        "--bandwidth",
        type=int,
        default=None,
        help="the paper's d (default 20; required here or in --config)",
    )
    p_build.add_argument("-o", "--output", required=True, help="where to save the index")
    p_build.add_argument(
        "--config",
        default=None,
        metavar="CONFIG.JSON",
        help="BuildConfig document (BuildConfig.to_dict() as JSON); flags "
        "passed alongside must agree with it",
    )
    p_build.add_argument(
        "--no-reduction", action="store_true", help="skip the equivalence (twin) reduction"
    )
    p_build.add_argument(
        "--backend",
        choices=("dict", "flat"),
        default=None,
        help="label storage of the built index: mutable dicts or CSR arrays "
        "(identical answers; flat is smaller in memory; default dict)",
    )
    p_build.add_argument(
        "--order",
        choices=("degree", "elimination", "is"),
        default=None,
        help="ordering strategy: degree (default), elimination (theory "
        "order), or is (independent-set periphery elimination)",
    )
    p_build.add_argument(
        "--core-backend",
        choices=("pll", "psl", "hopdb"),
        default=None,
        help="core labeling algorithm (identical labels; default pll)",
    )
    p_build.add_argument(
        "--hopdb-order",
        choices=("degree", "psl-rank"),
        default=None,
        help="hub order of the hopdb core backend (exact either way; "
        "psl-rank breaks degree ties by neighbor degree mass and is "
        "only valid with --core-backend hopdb)",
    )
    p_build.add_argument(
        "--kernel",
        choices=("auto", "numpy", "python"),
        default=None,
        help="NumPy vs pure-Python kernels for queries and vectorized "
        "construction (identical answers; default auto)",
    )
    p_build.add_argument(
        "--format",
        choices=("json", "binary"),
        default="json",
        help="on-disk format: inspectable JSON document or v4 binary "
        "snapshot (identical content; binary loads faster)",
    )
    p_build.add_argument(
        "--memory-mb", type=float, default=None, help="abort if the modeled size exceeds this"
    )
    p_build.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the parallel build (0 = one per CPU; "
        "any count builds the identical index)",
    )
    p_build.add_argument(
        "--chunked",
        action="store_true",
        help="load the edge list through the chunked out-of-core reader "
        "(identical graph; bounds parse-time memory on 10^5+ edge files)",
    )
    _add_obs_arguments(p_build, profile=True)
    p_build.set_defaults(handler=_cmd_build)

    p_query = sub.add_parser("query", help="answer distance queries from a saved index")
    p_query.add_argument("index")
    p_query.add_argument("nodes", nargs="+", type=int, help="pairs: s1 t1 s2 t2 ...")
    p_query.set_defaults(handler=_cmd_query)

    p_path = sub.add_parser("path", help="reconstruct a shortest path from a saved index")
    p_path.add_argument("index")
    p_path.add_argument("source", type=int)
    p_path.add_argument("target", type=int)
    p_path.set_defaults(handler=_cmd_path)

    p_find = sub.add_parser(
        "find-bandwidth", help="binary-search the smallest bandwidth fitting a memory limit"
    )
    p_find.add_argument("graph")
    p_find.add_argument("--memory-mb", type=float, required=True)
    p_find.set_defaults(handler=_cmd_find_bandwidth)

    p_gen = sub.add_parser("generate", help="write a registry dataset as an edge list")
    p_gen.add_argument("dataset")
    p_gen.add_argument("-o", "--output", required=True)
    p_gen.set_defaults(handler=_cmd_generate)

    p_bench = sub.add_parser("bench", help="run one paper experiment driver")
    p_bench.add_argument("experiment", help="exp1..exp7, table1, lemma3, serving, ablation-*")
    p_bench.set_defaults(handler=_cmd_bench)

    p_srv = sub.add_parser(
        "serve",
        help="serve distance queries over HTTP from a saved index "
        "(micro-batched, with backpressure and a per-run audit record)",
    )
    p_srv.add_argument("snapshot", help="a saved index (JSON or binary snapshot)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port", type=int, default=8080, help="0 binds an ephemeral port"
    )
    p_srv.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="micro-batch time window from the first queued request (default 2)",
    )
    p_srv.add_argument(
        "--batch-max",
        type=int,
        default=64,
        help="flush a micro-batch early at this many requests (default 64)",
    )
    p_srv.add_argument(
        "--queue-depth",
        type=int,
        default=1024,
        help="pending-query bound; beyond it requests get HTTP 429 (default 1024)",
    )
    p_srv.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to let in-flight requests finish on shutdown (default 10)",
    )
    p_srv.add_argument(
        "--cache", type=int, default=None, help="pair-level LRU capacity (default off)"
    )
    p_srv.add_argument(
        "--kernel",
        choices=("auto", "numpy", "python"),
        default=None,
        help="query kernel of the served index (default: index default)",
    )
    p_srv.add_argument(
        "--workers",
        type=int,
        default=None,
        help="serve through an N-process ServingFleet instead of in-process "
        "(requires a binary snapshot)",
    )
    p_srv.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map the snapshot (binary snapshots only)",
    )
    p_srv.add_argument(
        "--audit-dir",
        default=".",
        help="directory for artifact.json / eval_history.jsonl "
        "('-' disables the audit record; default: working directory)",
    )
    p_srv.add_argument(
        "--dynamic",
        action="store_true",
        help="wrap the index in a repro.dynamic.DeltaOverlayIndex and "
        "enable POST /mutate + /reindex (in-process engine only)",
    )
    p_srv.add_argument(
        "--reindex-threshold",
        type=int,
        default=None,
        help="auto-trigger a background rebuild once this many mutations "
        "are pending since the last swap (default: manual /reindex only)",
    )
    p_srv.add_argument(
        "--reindex-workers",
        type=int,
        default=None,
        help="worker processes for background rebuilds (0 = one per CPU)",
    )
    p_srv.set_defaults(handler=_cmd_serve)

    p_serve = sub.add_parser(
        "serve-bench",
        help="replay a skewed query stream through cached and uncached engines",
    )
    p_serve.add_argument("graph", help="edge-list file (u v [w] per line)")
    p_serve.add_argument("-d", "--bandwidth", type=int, default=20)
    p_serve.add_argument("--queries", type=int, default=2000)
    p_serve.add_argument(
        "--hot-fraction",
        type=float,
        default=0.9,
        help="fraction of queries drawn from the hot pair set (default 0.9)",
    )
    p_serve.add_argument(
        "--hot-pairs", type=int, default=16, help="size of the hot pair set"
    )
    p_serve.add_argument(
        "--cache", type=int, default=4096, help="pair-level LRU capacity"
    )
    p_serve.add_argument(
        "--kernel",
        choices=("auto", "numpy", "python"),
        default="auto",
        help="query kernel of the served index; 'numpy' builds the flat "
        "backend and requires the repro[fast] extra (default auto)",
    )
    p_serve.add_argument("--seed", type=int, default=12345)
    _add_obs_arguments(p_serve)
    p_serve.set_defaults(handler=_cmd_serve_bench)

    p_svbench = sub.add_parser(
        "server-bench",
        help="drive the HTTP front-end with concurrent clients, verifying "
        "answer identity, recording BENCH_serve.json",
    )
    p_svbench.add_argument("graph", help="edge-list file, or a registry dataset name")
    p_svbench.add_argument("-d", "--bandwidth", type=int, default=20)
    p_svbench.add_argument("--requests", type=int, default=2000)
    p_svbench.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="concurrent keep-alive client connections (default 8)",
    )
    p_svbench.add_argument(
        "--batch-window-ms",
        type=float,
        default=1.0,
        help="micro-batch window of the benched server (default 1)",
    )
    p_svbench.add_argument(
        "--kernel",
        choices=("auto", "numpy", "python"),
        default=None,
        help="query kernel of the served index (default: index default)",
    )
    p_svbench.add_argument(
        "--audit-dir",
        default=None,
        help="keep the run's artifact.json / eval_history.jsonl here "
        "(default: a temporary directory)",
    )
    p_svbench.add_argument(
        "-o",
        "--output",
        default="BENCH_serve.json",
        help="serve history file to append to ('-' skips recording)",
    )
    p_svbench.set_defaults(handler=_cmd_server_bench)

    p_bbench = sub.add_parser(
        "build-bench",
        help="time serial vs parallel index construction and record BENCH_build.json",
    )
    p_bbench.add_argument("graph", help="edge-list file, or a registry dataset name")
    p_bbench.add_argument("-d", "--bandwidth", type=int, default=20)
    p_bbench.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated worker counts; the first is the baseline (default 1,2,4)",
    )
    p_bbench.add_argument(
        "-o",
        "--output",
        default="BENCH_build.json",
        help="speedup history file to append to ('-' skips recording)",
    )
    p_bbench.set_defaults(handler=_cmd_build_bench)

    p_sbench = sub.add_parser(
        "storage-bench",
        help="compare dict vs flat label storage and JSON vs binary snapshots, "
        "recording BENCH_storage.json",
    )
    p_sbench.add_argument("graph", help="edge-list file, or a registry dataset name")
    p_sbench.add_argument("-d", "--bandwidth", type=int, default=20)
    p_sbench.add_argument("--queries", type=int, default=2000)
    p_sbench.add_argument(
        "-o",
        "--output",
        default="BENCH_storage.json",
        help="storage history file to append to ('-' skips recording)",
    )
    p_sbench.set_defaults(handler=_cmd_storage_bench)

    p_dbench = sub.add_parser(
        "dynamic-bench",
        help="update throughput + query latency under churn through a "
        "delta overlay, verified against BFS truth every batch",
    )
    p_dbench.add_argument(
        "graph", help="edge-list file or registry dataset name"
    )
    p_dbench.add_argument("-d", "--bandwidth", type=int, default=20)
    p_dbench.add_argument(
        "--batches", type=int, default=6, help="mutation batches (default 6)"
    )
    p_dbench.add_argument(
        "--batch-size",
        type=int,
        default=24,
        help="insert/delete ops per batch (default 24)",
    )
    p_dbench.add_argument(
        "--queries",
        type=int,
        default=200,
        help="queries timed after each batch (default 200)",
    )
    p_dbench.add_argument("--seed", type=int, default=0)
    p_dbench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the rebuild phase (0 = one per CPU)",
    )
    p_dbench.add_argument(
        "--output",
        default="BENCH_dynamic.json",
        help="bench history file ('-' disables recording)",
    )
    p_dbench.set_defaults(handler=_cmd_dynamic_bench)

    p_scale = sub.add_parser(
        "scale-bench",
        help="build the 10^3..10^6-node scale trajectory (core-periphery "
        "and R-MAT tiers), gated on fingerprint/BFS identity, recording "
        "BENCH_scale.json",
    )
    p_scale.add_argument(
        "--tiers",
        nargs="+",
        default=None,
        metavar="TIER",
        help="tier names to run (default: all); see repro.bench.scale_bench",
    )
    p_scale.add_argument(
        "--max-n",
        type=int,
        default=None,
        help="skip tiers whose target node count exceeds this",
    )
    p_scale.add_argument(
        "--config",
        default=None,
        metavar="CONFIG.JSON",
        help="BuildConfig document to measure (default: flat backend, "
        "psl core, auto kernel)",
    )
    p_scale.add_argument(
        "--workers",
        nargs="+",
        type=int,
        default=None,
        metavar="N",
        help="sweep these worker counts over every tier (one entry per "
        "count; entries after a workers=1 build record speedup_vs_serial)",
    )
    p_scale.add_argument(
        "--hopdb-ablation",
        action="store_true",
        help="per tier, also build core_backend=hopdb with "
        "hopdb_order=degree (fingerprint-gated) and psl-rank (BFS-gated)",
    )
    p_scale.add_argument(
        "-o",
        "--output",
        default="BENCH_scale.json",
        help="scale history file to append to ('-' skips recording)",
    )
    p_scale.set_defaults(handler=_cmd_scale_bench)

    p_fbench = sub.add_parser(
        "fleet-bench",
        help="serve one mapped snapshot from N worker processes, verifying "
        "answer and fingerprint identity, recording BENCH_fleet.json",
    )
    p_fbench.add_argument("graph", help="edge-list file, or a registry dataset name")
    p_fbench.add_argument("-d", "--bandwidth", type=int, default=20)
    p_fbench.add_argument("--queries", type=int, default=2000)
    p_fbench.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2],
        help="worker counts to sweep (default: 1 2)",
    )
    p_fbench.add_argument(
        "--kernel",
        choices=("auto", "numpy", "python"),
        default=None,
        help="query kernel of every worker engine (default: index default)",
    )
    p_fbench.add_argument(
        "-o",
        "--output",
        default="BENCH_fleet.json",
        help="fleet history file to append to ('-' skips recording)",
    )
    p_fbench.set_defaults(handler=_cmd_fleet_bench)

    p_obench = sub.add_parser(
        "obs-bench",
        help="measure observability overhead (disabled vs enabled), "
        "recording BENCH_obs.json",
    )
    p_obench.add_argument("graph", help="edge-list file, or a registry dataset name")
    p_obench.add_argument("-d", "--bandwidth", type=int, default=20)
    p_obench.add_argument("--queries", type=int, default=2000)
    p_obench.add_argument(
        "--kernel",
        choices=("auto", "numpy", "python"),
        default="auto",
        help="query kernel of the measured index (default auto)",
    )
    p_obench.add_argument(
        "-o",
        "--output",
        default="BENCH_obs.json",
        help="overhead history file to append to ('-' skips recording)",
    )
    p_obench.set_defaults(handler=_cmd_obs_bench)

    p_trace = sub.add_parser(
        "trace", help="render a JSON-lines span trace recorded with --trace"
    )
    p_trace.add_argument("trace", help="trace file written by a --trace run")
    p_trace.add_argument(
        "--max-spans",
        type=int,
        default=200,
        help="cap on tree lines printed (the summary always covers everything)",
    )
    p_trace.set_defaults(handler=_cmd_trace)

    p_list = sub.add_parser("datasets", help="list the synthetic dataset registry")
    p_list.set_defaults(handler=_cmd_datasets)

    p_audit = sub.add_parser("audit", help="self-check a saved index against its graph")
    p_audit.add_argument("index")
    p_audit.add_argument("--samples", type=int, default=200)
    p_audit.set_defaults(handler=_cmd_audit)

    p_compare = sub.add_parser(
        "compare", help="build several methods over one graph and print the lineup"
    )
    p_compare.add_argument("graph")
    p_compare.add_argument(
        "--methods",
        default="PSL+,PSL*,CT-20,CT-100",
        help="comma-separated method names (PSL+, PSL*, PLL, PSL, H2H, CT-<d>, CD-<d>)",
    )
    p_compare.add_argument("--queries", type=int, default=1000)
    p_compare.set_defaults(handler=_cmd_compare)

    return parser


def _add_obs_arguments(parser: argparse.ArgumentParser, *, profile: bool = False) -> None:
    """Attach the shared observability flags to a subcommand parser."""
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record spans to FILE as JSON lines (view with `repro trace FILE`)",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write a Prometheus-style text dump of the metrics registry "
        "to FILE ('-' for stdout)",
    )
    if profile:
        parser.add_argument(
            "--profile",
            metavar="FILE",
            default=None,
            help="run under cProfile and write the cumulative-time report to FILE",
        )


class _ObsSession:
    """Observability lifecycle for one CLI command.

    Enables instrumentation only when a flag asks for it, and writes
    the requested artifacts on :meth:`finish` — so the default CLI path
    stays on the no-op instrumentation.
    """

    def __init__(self, args: argparse.Namespace) -> None:
        self.trace_path = getattr(args, "trace", None)
        self.metrics_path = getattr(args, "metrics", None)
        self.profile_path = getattr(args, "profile", None)
        self.active = bool(self.trace_path or self.metrics_path)
        self._profiler = None
        if self.active:
            import repro.obs as obs

            obs.enable()
        if self.profile_path:
            import cProfile

            self._profiler = cProfile.Profile()
            self._profiler.enable()

    def finish(self) -> None:
        if self._profiler is not None:
            from repro.obs.profiling import ProfileReport

            self._profiler.disable()
            report = ProfileReport(self._profiler)
            with open(self.profile_path, "w", encoding="utf-8") as handle:
                handle.write(report.text())
            print(f"profile -> {self.profile_path}")
        if not self.active:
            return
        import repro.obs as obs

        tracer = obs.disable()
        if self.trace_path and tracer is not None:
            from repro.obs.export import write_trace

            write_trace(tracer, self.trace_path)
            print(f"trace: {len(tracer.finished)} spans -> {self.trace_path}")
        if self.metrics_path:
            text = obs.registry().render_prometheus()
            if self.metrics_path == "-":
                print(text, end="")
            else:
                with open(self.metrics_path, "w", encoding="utf-8") as handle:
                    handle.write(text)
                print(f"metrics -> {self.metrics_path}")


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.graphs.io import read_edge_list
    from repro.graphs.statistics import summarize

    graph, _ = read_edge_list(args.graph)
    summary = summarize(graph)
    for key, value in summary.as_row().items():
        print(f"{key:16s} {value}")
    return 0


def _resolve_build_config(args: argparse.Namespace):
    """Merge ``--config`` with explicit build flags into one BuildConfig.

    Flags default to ``None`` (= not passed) so only knobs the user
    actually spelled out participate; a flag that disagrees with the
    config document raises ConfigurationError via the shared shim.
    """
    from repro.api import BuildConfig
    from repro.deprecation import resolve_config_kwargs

    config = None
    if args.config is not None:
        with open(args.config, "r", encoding="utf-8") as handle:
            config = BuildConfig.from_dict(json.load(handle))
    explicit = {
        name: value
        for name, value in (
            ("bandwidth", args.bandwidth),
            ("workers", args.workers),
            ("backend", args.backend),
            ("order", args.order),
            ("core_backend", args.core_backend),
            ("hopdb_order", args.hopdb_order),
            ("kernel", args.kernel),
        )
        if value is not None
    }
    # store_true flags can't distinguish default from explicit False, so
    # --no-reduction only participates when actually raised.
    if args.no_reduction:
        explicit["use_equivalence_reduction"] = False
    return resolve_config_kwargs(config, explicit)


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.core.ct_index import CTIndex
    from repro.core.serialization import save_ct_index, save_ct_index_binary
    from repro.graphs.io import read_edge_list, read_edge_list_chunked
    from repro.labeling.base import MemoryBudget

    config = _resolve_build_config(args)
    if args.chunked:
        graph, _ = read_edge_list_chunked(args.graph)
    else:
        graph, _ = read_edge_list(args.graph)
    budget = (
        MemoryBudget.from_megabytes(args.memory_mb) if args.memory_mb is not None else None
    )
    session = _ObsSession(args)
    try:
        index = CTIndex.build(graph, config=config, budget=budget)
    finally:
        session.finish()
    if args.format == "binary":
        save_ct_index_binary(index, args.output)
    else:
        save_ct_index(index, args.output)
    stats = index.stats()
    workers = config.workers
    schedule = "" if workers in (None, 1) else f" ({workers or 'auto'} workers)"
    print(
        f"built CT-{config.bandwidth} on n={graph.n} m={graph.m}: "
        f"{stats.entries} entries ({stats.megabytes:.3f} MB modeled) "
        f"in {stats.build_seconds:.2f}s{schedule} -> {args.output} [{args.format}]"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.core.serialization import load_ct_index

    if len(args.nodes) % 2 != 0:
        print("error: provide an even number of node ids (s t pairs)", file=sys.stderr)
        return 2
    index = load_ct_index(args.index)
    started = time.perf_counter()
    for i in range(0, len(args.nodes), 2):
        s, t = args.nodes[i], args.nodes[i + 1]
        distance = index.distance(s, t)
        text = "unreachable" if distance == INF else str(distance)
        print(f"dist({s}, {t}) = {text}")
    elapsed = time.perf_counter() - started
    print(f"({len(args.nodes) // 2} queries in {elapsed * 1e3:.2f} ms)")
    return 0


def _cmd_path(args: argparse.Namespace) -> int:
    from repro.core.serialization import load_ct_index
    from repro.paths import path_length, shortest_path

    index = load_ct_index(args.index)
    path = shortest_path(index, index.graph, args.source, args.target)
    if path is None:
        print(f"{args.source} cannot reach {args.target}")
        return 0
    print(" -> ".join(str(v) for v in path))
    print(f"length {path_length(index.graph, path)} over {len(path) - 1} edges")
    return 0


def _cmd_find_bandwidth(args: argparse.Namespace) -> int:
    from repro.core.bandwidth import find_bandwidth
    from repro.graphs.io import read_edge_list

    graph, _ = read_edge_list(args.graph)
    result = find_bandwidth(graph, int(args.memory_mb * 1e6))
    print(f"smallest feasible bandwidth: d = {result.bandwidth}")
    print(f"search took {result.seconds:.2f}s over {len(result.probes)} construction probes:")
    for probe in result.probes:
        verdict = "fits" if probe.feasible else "OM"
        print(
            f"  d={probe.bandwidth:<6d} {verdict:4s} "
            f"modeled={probe.modeled_bytes / 1e6:.3f} MB in {probe.seconds:.2f}s"
        )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.bench.datasets import dataset_spec, load_dataset
    from repro.graphs.io import write_edge_list

    spec = dataset_spec(args.dataset)
    graph = load_dataset(args.dataset)
    write_edge_list(
        graph, args.output, header=f"synthetic analogue of {spec.paper_name} (seed {spec.seed})"
    )
    print(f"wrote {args.output}: n={graph.n} m={graph.m}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.experiments import run_experiment

    try:
        _, text = run_experiment(args.experiment)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(text)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serving.audit import fingerprint_sha256
    from repro.serving.server import DistanceServer, ServerConfig, serve_forever

    config = ServerConfig(
        host=args.host,
        port=args.port,
        batch_window_ms=args.batch_window_ms,
        batch_max_size=args.batch_max,
        max_queue_depth=args.queue_depth,
        drain_timeout_s=args.drain_timeout,
        audit_dir=None if args.audit_dir == "-" else args.audit_dir,
    )
    fleet = None
    reindexer = None
    try:
        if args.workers is not None and args.workers > 1:
            if args.dynamic:
                raise ConfigurationError(
                    "--dynamic serves through the in-process engine; "
                    "it cannot be combined with a --workers fleet"
                )
            from repro.serving.fleet import ServingFleet

            fleet = ServingFleet(
                args.snapshot,
                workers=args.workers,
                kernel=args.kernel,
                cache_capacity=args.cache,
            )
            engine = fleet
            n = fleet.index.graph.n
            digest = fleet.verify()
            backend_note = f"{args.workers}-worker fleet"
        else:
            from repro.core.serialization import load_ct_index
            from repro.serving.engine import QueryEngine

            index = load_ct_index(args.snapshot, mmap=args.mmap)
            digest = fingerprint_sha256(index)
            if args.dynamic:
                from repro.dynamic import BackgroundReindexer, DeltaOverlayIndex

                index = DeltaOverlayIndex(index)
                reindexer = BackgroundReindexer(
                    index,
                    workers=args.reindex_workers,
                    auto_threshold=args.reindex_threshold,
                ).start()
            engine = QueryEngine(
                index, kernel=args.kernel, cache_capacity=args.cache
            )
            n = index.graph.n if not args.dynamic else index.n
            backend_note = (
                "in-process engine (dynamic)"
                if args.dynamic
                else "in-process engine"
            )
        server = DistanceServer(
            engine,
            n=n,
            config=config,
            snapshot_path=args.snapshot,
            fingerprint=digest,
            reindexer=reindexer,
        )

        def announce(started: DistanceServer) -> None:
            host, port = started.address
            dynamic_routes = " /mutate /reindex" if args.dynamic else ""
            print(
                f"serving {args.snapshot} (n={n}, {backend_note}) on "
                f"http://{host}:{port} — POST /query /query/batch "
                f"/query/from{dynamic_routes}, GET /healthz /metrics "
                f"/stats; SIGTERM drains gracefully"
            )

        try:
            report = asyncio.run(serve_forever(server, ready=announce))
        except KeyboardInterrupt:
            # SIGINT before the loop's handler was armed (startup race).
            report = {"clean": True, "inflight_at_close": 0}
        drained = "clean drain" if report.get("clean") else "drain timed out"
        print(f"server stopped ({drained})")
        if server.artifact_path is not None:
            print(f"audit record -> {server.artifact_path}")
    finally:
        if reindexer is not None:
            reindexer.stop()
        if fleet is not None:
            fleet.shutdown()
    return 0


def _cmd_server_bench(args: argparse.Namespace) -> int:
    import os

    from repro.bench.datasets import dataset_names, load_dataset
    from repro.bench.reporting import format_table
    from repro.bench.server_bench import record_server_entry, server_bench_result
    from repro.graphs.io import read_edge_list

    if args.graph in dataset_names() and not os.path.exists(args.graph):
        name = args.graph
        graph = load_dataset(name)
    else:
        name = args.graph
        graph, _ = read_edge_list(args.graph)
    result = server_bench_result(
        graph,
        args.bandwidth,
        name=name,
        requests=args.requests,
        concurrency=args.concurrency,
        batch_window_ms=args.batch_window_ms,
        kernel=args.kernel,
        audit_dir=args.audit_dir,
    )
    print(
        format_table(
            [result.row()],
            [
                "dataset",
                "requests",
                "conc",
                "rps",
                "p50_us",
                "p99_us",
                "p999_us",
                "mean_batch",
                "verified",
            ],
            title=(
                f"server-bench: CT-{args.bandwidth} on {name} "
                f"(n={graph.n} m={graph.m}), {args.requests} requests over "
                f"{args.concurrency} connections"
            ),
        )
    )
    print(
        f"micro-batching: {result.batches} batches, mean size "
        f"{result.mean_batch_size:.2f} (max {result.max_batch_size}); "
        f"answers verified against direct QueryEngine: {result.verified}"
    )
    if args.audit_dir is not None:
        print(f"audit record -> {os.path.join(args.audit_dir, 'artifact.json')}")
    if args.output != "-":
        record_server_entry(result, args.output)
        print(f"recorded entry -> {args.output}")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_table
    from repro.bench.workloads import skewed_pairs
    from repro.core.ct_index import CTIndex
    from repro.graphs.io import read_edge_list
    from repro.serving.bench import serve_bench_rows

    if not 0.0 <= args.hot_fraction <= 1.0:
        raise QueryError(f"--hot-fraction {args.hot_fraction} outside [0, 1]")
    graph, _ = read_edge_list(args.graph)
    # The numpy kernel reads CSR arrays, so an explicit request selects
    # the flat backend; otherwise keep the historical dict-backend build.
    backend = "flat" if args.kernel == "numpy" else "dict"
    index = CTIndex.build(graph, args.bandwidth, backend=backend, kernel=args.kernel)
    workload = skewed_pairs(
        graph,
        args.queries,
        seed=args.seed,
        hot_fraction=args.hot_fraction,
        hot_pairs=args.hot_pairs,
    )
    session = _ObsSession(args)
    try:
        rows = serve_bench_rows(index, workload.pairs, cache_capacity=args.cache)
    finally:
        session.finish()
    print(
        format_table(
            rows,
            [
                "config",
                "queries",
                "mean_us",
                "p95_us",
                "core_probes",
                "ext_hit_rate",
                "pair_hit_rate",
            ],
            title=(
                f"serve-bench: CT-{args.bandwidth} on n={graph.n} m={graph.m}, "
                f"{args.queries} queries ({args.hot_fraction:.0%} hot), "
                f"kernel={index.kernel}"
            ),
        )
    )
    uncached = next(r for r in rows if r["config"] == "uncached")
    cached = next(r for r in rows if r["config"] == "ext-cache")
    if uncached["core_probes"]:
        saved = 1 - cached["core_probes"] / uncached["core_probes"]
        print(
            f"extension cache removed {saved:.0%} of core-label probes "
            f"({uncached['core_probes']} -> {cached['core_probes']})"
        )
    return 0


def _cmd_build_bench(args: argparse.Namespace) -> int:
    import os

    from repro.bench.build_bench import build_bench_rows, record_entry
    from repro.bench.datasets import dataset_names, load_dataset
    from repro.bench.reporting import format_table
    from repro.graphs.io import read_edge_list

    try:
        worker_counts = tuple(int(w) for w in args.workers.split(",") if w.strip())
    except ValueError:
        print(f"error: --workers {args.workers!r} is not a comma-separated int list",
              file=sys.stderr)
        return 2
    if not worker_counts:
        print("error: --workers needs at least one count", file=sys.stderr)
        return 2
    if args.graph in dataset_names() and not os.path.exists(args.graph):
        name = args.graph
        graph = load_dataset(name)
    else:
        name = args.graph
        graph, _ = read_edge_list(args.graph)
    result = build_bench_rows(
        graph, args.bandwidth, worker_counts=worker_counts, name=name
    )
    print(
        format_table(
            result.rows,
            ["workers", "build_s", "speedup", "entries", "identical"],
            title=(
                f"build-bench: CT-{args.bandwidth} on {name} "
                f"(n={graph.n} m={graph.m})"
            ),
        )
    )
    print(f"best parallel speedup over baseline: {result.best_speedup:.2f}x")
    if args.output != "-":
        record_entry(result, args.output)
        print(f"recorded entry -> {args.output}")
    return 0


def _cmd_storage_bench(args: argparse.Namespace) -> int:
    import os

    from repro.bench.datasets import dataset_names, load_dataset
    from repro.bench.reporting import format_table
    from repro.bench.storage_bench import record_storage_entry, storage_bench_result
    from repro.graphs.io import read_edge_list

    if args.graph in dataset_names() and not os.path.exists(args.graph):
        name = args.graph
        graph = load_dataset(name)
    else:
        name = args.graph
        graph, _ = read_edge_list(args.graph)
    result = storage_bench_result(
        graph, args.bandwidth, name=name, queries=args.queries
    )
    print(
        format_table(
            [result.row()],
            [
                "dataset",
                "n",
                "entries",
                "dict_kb",
                "flat_kb",
                "resident_x",
                "json_ms",
                "bin_ms",
                "load_x",
                "verified",
            ],
            title=(
                f"storage-bench: CT-{args.bandwidth} on {name} "
                f"(n={graph.n} m={graph.m})"
            ),
        )
    )
    print(
        f"resident label bytes: {result.resident_reduction:.2f}x smaller flat; "
        f"load: {result.load_speedup:.2f}x faster binary"
    )
    if args.output != "-":
        record_storage_entry(result, args.output)
        print(f"recorded entry -> {args.output}")
    return 0


def _cmd_scale_bench(args: argparse.Namespace) -> int:
    from repro.api import BuildConfig
    from repro.bench.scale_bench import DEFAULT_CONFIG, run_scale_bench

    config = DEFAULT_CONFIG
    if args.config is not None:
        with open(args.config, "r", encoding="utf-8") as handle:
            config = BuildConfig.from_dict(json.load(handle))
    output = None if args.output == "-" else args.output
    entries, text = run_scale_bench(
        args.tiers,
        config=config,
        workers=args.workers,
        hopdb_ablation=args.hopdb_ablation,
        max_n=args.max_n,
        output=output,
    )
    print(text)
    if output is not None:
        print(f"recorded {len(entries)} entries -> {output}")
    return 0


def _cmd_dynamic_bench(args: argparse.Namespace) -> int:
    import os

    from repro.bench.datasets import dataset_names, load_dataset
    from repro.bench.dynamic_bench import (
        dynamic_bench_result,
        record_dynamic_entry,
    )
    from repro.bench.reporting import format_table
    from repro.graphs.io import read_edge_list

    if args.graph in dataset_names() and not os.path.exists(args.graph):
        name = args.graph
        graph = load_dataset(name)
    else:
        name = args.graph
        graph, _ = read_edge_list(args.graph)
    result = dynamic_bench_result(
        graph,
        args.bandwidth,
        name=name,
        batches=args.batches,
        batch_size=args.batch_size,
        queries_per_batch=args.queries,
        seed=args.seed,
        workers=args.workers,
    )
    print(
        format_table(
            [result.row()],
            [
                "dataset",
                "n",
                "mutations",
                "upd_per_s",
                "q_p50_us",
                "q_p99_us",
                "rebuild_s",
                "replayed",
                "verified",
            ],
            title=(
                f"dynamic-bench: CT-{args.bandwidth} on {name} "
                f"(n={graph.n} m={graph.m})"
            ),
        )
    )
    print(
        f"{result.mutations_applied} mutations at "
        f"{result.updates_per_second:.0f}/s; query p99 under churn "
        f"{result.query_latency_us['p99']:.0f}µs; every answer verified "
        f"against ground truth ({result.verified_answers} checks)"
    )
    if args.output != "-":
        record_dynamic_entry(result, args.output)
        print(f"recorded entry -> {args.output}")
    return 0


def _cmd_fleet_bench(args: argparse.Namespace) -> int:
    import os

    from repro.bench.datasets import dataset_names, load_dataset
    from repro.bench.fleet_bench import fleet_bench_result, record_fleet_entry
    from repro.bench.reporting import format_table
    from repro.graphs.io import read_edge_list

    if args.graph in dataset_names() and not os.path.exists(args.graph):
        name = args.graph
        graph = load_dataset(name)
    else:
        name = args.graph
        graph, _ = read_edge_list(args.graph)
    result = fleet_bench_result(
        graph,
        args.bandwidth,
        name=name,
        queries=args.queries,
        worker_counts=tuple(args.workers),
        kernel=args.kernel,
    )
    print(
        format_table(
            result.rows(),
            ["dataset", "workers", "qps", "speedup_x", "worker_rss_kb", "verified"],
            title=(
                f"fleet-bench: CT-{args.bandwidth} on {name} "
                f"(n={graph.n} m={graph.m}), {args.queries} queries"
            ),
        )
    )
    print(
        f"snapshot: {result.snapshot_bytes} bytes; load: "
        f"{result.load_speedup:.2f}x faster mapped "
        f"({result.load['copy_s'] * 1e3:.1f} ms copy vs "
        f"{result.load['mmap_s'] * 1e3:.1f} ms mmap)"
    )
    if args.output != "-":
        record_fleet_entry(result, args.output)
        print(f"recorded entry -> {args.output}")
    return 0


def _cmd_obs_bench(args: argparse.Namespace) -> int:
    import os

    from repro.bench.datasets import dataset_names, load_dataset
    from repro.bench.obs_bench import obs_bench_result, record_obs_entry
    from repro.bench.reporting import format_table
    from repro.graphs.io import read_edge_list

    if args.graph in dataset_names() and not os.path.exists(args.graph):
        name = args.graph
        graph = load_dataset(name)
    else:
        name = args.graph
        graph, _ = read_edge_list(args.graph)
    result = obs_bench_result(
        graph, args.bandwidth, name=name, queries=args.queries, kernel=args.kernel
    )
    print(
        format_table(
            result.rows,
            ["config", "queries", "total_ms", "mean_us"],
            title=(
                f"obs-bench: CT-{args.bandwidth} on {name} "
                f"(n={graph.n} m={graph.m}), {args.queries} queries, "
                f"kernel={result.kernel}"
            ),
        )
    )
    print(
        f"enabled-tracing overhead: {result.overhead:+.1%} "
        f"(answers identical: {result.identical})"
    )
    print("traced build phases (by total time):")
    for phase in result.phases[:10]:
        print(
            f"  {phase['name']:24s} x{phase['count']:<4d} "
            f"{phase['total_ms']:9.2f} ms  (mean {phase['mean_us']:.0f} us)"
        )
    if args.output != "-":
        record_obs_entry(result, args.output)
        print(f"recorded entry -> {args.output}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.export import format_trace_tree, read_trace, summarize_trace

    records = read_trace(args.trace)
    if not records:
        print(f"{args.trace}: empty trace")
        return 0
    print(format_trace_tree(records, max_spans=args.max_spans))
    print()
    rows = summarize_trace(records)
    print(f"{'span':28s} {'count':>7s} {'total_ms':>10s} {'mean_us':>10s} {'max_us':>10s}")
    for row in rows:
        print(
            f"{row['name']:28s} {row['count']:7d} {row['total_ms']:10.2f} "
            f"{row['mean_us']:10.1f} {row['max_us']:10.1f}"
        )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.core.serialization import load_ct_index
    from repro.core.validation import audit_ct_index

    index = load_ct_index(args.index)
    report = audit_ct_index(index, samples=args.samples)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_table
    from repro.bench.runner import build_method, measure_query_seconds
    from repro.bench.workloads import random_pairs
    from repro.graphs.io import read_edge_list

    graph, _ = read_edge_list(args.graph)
    workload = random_pairs(graph, args.queries, seed=12345)
    rows = []
    for method in (m.strip() for m in args.methods.split(",") if m.strip()):
        index = build_method(method, graph)
        rows.append(
            {
                "method": method,
                "entries": index.size_entries(),
                "size_mb": round(index.size_bytes() / 1e6, 3),
                "index_s": round(index.build_seconds, 2),
                "query_s": f"{measure_query_seconds(index, workload):.2e}",
            }
        )
    print(format_table(rows, ["method", "entries", "size_mb", "index_s", "query_s"]))
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.bench.datasets import dataset_names, dataset_spec, load_dataset

    for name in dataset_names():
        spec = dataset_spec(name)
        graph = load_dataset(name)
        print(
            f"{name:8s} {spec.kind:9s} n={graph.n:<7d} m={graph.m:<8d} "
            f"(stands in for {spec.paper_name}: n={spec.paper_nodes:,}, m={spec.paper_edges:,})"
        )
    return 0


if __name__ == "__main__":  # allow `python -m repro.cli.main` without installing
    sys.exit(main())
