"""Command-line interface (``repro`` / ``python -m repro``)."""

from repro.cli.main import main

__all__ = ["main"]
