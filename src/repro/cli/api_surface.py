"""Print (or check) the stable public API surface.

The surface is the sorted contents of ``repro.__all__``; the checked-in
copy lives at ``docs/api_surface.txt`` with a ``#``-comment header.
CI runs the check mode so the facade cannot widen or narrow silently::

    python -m repro.cli.api_surface                      # print
    python -m repro.cli.api_surface --check docs/api_surface.txt

Exit status in check mode: 0 on match, 1 with a readable diff on
mismatch.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence


def current_surface() -> list[str]:
    """The live surface: ``repro.__all__``, sorted."""
    import repro

    return sorted(repro.__all__)


def read_manifest(path: str) -> list[str]:
    """Read a manifest file, skipping blank and ``#``-comment lines."""
    names: list[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line and not line.startswith("#"):
                names.append(line)
    return names


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli.api_surface", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--check",
        metavar="MANIFEST",
        default=None,
        help="compare against a checked-in manifest instead of printing",
    )
    args = parser.parse_args(argv)
    surface = current_surface()
    if args.check is None:
        for name in surface:
            print(name)
        return 0
    manifest = read_manifest(args.check)
    if surface == manifest:
        print(f"api-surface: {len(surface)} names, matches {args.check}")
        return 0
    added = sorted(set(surface) - set(manifest))
    removed = sorted(set(manifest) - set(surface))
    print(f"api-surface: repro.__all__ diverges from {args.check}", file=sys.stderr)
    for name in added:
        print(f"  + {name} (exported but not in manifest)", file=sys.stderr)
    for name in removed:
        print(f"  - {name} (in manifest but not exported)", file=sys.stderr)
    print(
        "  regenerate with: PYTHONPATH=src python -m repro.cli.api_surface",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
