"""Shortest-*path* reconstruction on top of any exact distance index.

The paper's indexes answer distances only; applications frequently need
the path itself.  Any exact oracle supports greedy next-hop expansion:
from ``s``, some neighbor ``u`` satisfies
``w(s, u) + dist(u, t) == dist(s, t)`` (the first edge of a shortest
path), so walking that recurrence materializes a shortest path with
``O(path length × max degree)`` oracle queries — no extra index state.

This module provides that walker plus convenience batch helpers shared
by the examples and the CLI.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import QueryError
from repro.graphs.graph import INF, Graph, Weight
from repro.labeling.base import DistanceIndex


def shortest_path(index: DistanceIndex, graph: Graph, s: int, t: int) -> list[int] | None:
    """A shortest ``s``-``t`` path as a node list, or ``None`` if unreachable.

    ``graph`` must be the graph ``index`` was built over (same node ids
    and weights); the result includes both endpoints and its edge-length
    sum equals ``index.distance(s, t)``.
    """
    total = index.distance(s, t)
    if total == INF:
        return None
    path = [s]
    current = s
    remaining: Weight = total
    # The remaining distance strictly decreases every hop, so the walk
    # terminates; the guard catches indexes that are not exact.
    guard = graph.n + 1
    while current != t:
        guard -= 1
        if guard < 0:
            raise QueryError(
                "path reconstruction did not converge; "
                "is the index exact and built over this graph?"
            )
        next_hop = _next_hop(index, graph, current, t, remaining)
        if next_hop is None:
            raise QueryError(
                f"no neighbor of {current} continues a shortest path to {t}; "
                "index and graph disagree"
            )
        hop_weight = graph.edge_weight(current, next_hop)
        remaining = remaining - hop_weight
        current = next_hop
        path.append(current)
    return path


def path_length(graph: Graph, path: list[int]) -> Weight:
    """Sum of edge weights along ``path`` (0 for single-node paths)."""
    return sum(graph.edge_weight(u, v) for u, v in zip(path, path[1:]))


def is_shortest_path(index: DistanceIndex, graph: Graph, path: list[int]) -> bool:
    """True when ``path`` is a valid path whose length equals the distance."""
    if not path:
        return False
    for u, v in zip(path, path[1:]):
        if not graph.has_edge(u, v):
            return False
    return path_length(graph, path) == index.distance(path[0], path[-1])


def distance_many(
    index: DistanceIndex, pairs: Iterable[tuple[int, int]]
) -> list[Weight]:
    """Answer a batch of ``(s, t)`` queries."""
    distance = index.distance
    return [distance(s, t) for s, t in pairs]


def eccentricity_lower_bound(
    index: DistanceIndex, graph: Graph, source: int, samples: Iterable[int]
) -> Weight:
    """Largest finite distance from ``source`` to the sampled targets.

    A cheap index-powered lower bound on the eccentricity, useful for
    diameter estimation over huge graphs where full sweeps are too slow.
    """
    best: Weight = 0
    for target in samples:
        d = index.distance(source, target)
        if d != INF and d > best:
            best = d
    return best


def _next_hop(
    index: DistanceIndex, graph: Graph, current: int, target: int, remaining: Weight
) -> int | None:
    """A neighbor on a shortest path from ``current`` to ``target``."""
    if graph.has_edge(current, target):
        if graph.edge_weight(current, target) == remaining:
            return target
    for u, w in graph.neighbors(current):
        if w <= remaining and w + index.distance(u, target) == remaining:
            return u
    return None
__all__ = [
    "distance_many",
    "eccentricity_lower_bound",
    "is_shortest_path",
    "path_length",
    "shortest_path",
]
