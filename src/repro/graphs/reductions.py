"""Equivalence-relation elimination (the PSL+ twin reduction).

Two nodes are *twins* when they have identical neighborhoods.  The paper
(Section 7, "Algorithms") keeps a single representative per twin class:
removing a twin cannot change any other pair's distance because every
path through it can be rerouted through its representative at equal
length.  Queries on the reduced graph are mapped back with a constant
amount of bookkeeping:

* **false twins** — ``N(u) = N(v)``, ``u`` and ``v`` not adjacent: two
  distinct class members are at distance 2 (through any shared neighbor);
* **true twins** — ``N(u) ∪ {u} = N(v) ∪ {v}``, adjacent: distance 1.

The reduction is defined for unweighted graphs (all the paper's datasets
are unweighted); weighted inputs are returned unreduced.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict

from repro.exceptions import GraphError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import INF, Graph, Weight


@dataclasses.dataclass(frozen=True)
class EquivalenceReduction:
    """Result of :func:`eliminate_equivalent_nodes`.

    Attributes
    ----------
    original:
        The input graph.
    reduced:
        The graph on one representative per twin class.
    representative:
        ``representative[v]`` is the reduced-graph node standing in for
        original node ``v``.
    originals:
        ``originals[i]`` is the original node id kept for reduced node ``i``.
    twin_kind:
        ``twin_kind[v]`` is ``"true"`` / ``"false"`` for nodes folded into
        a multi-member class and ``None`` for singleton classes.
    """

    original: Graph
    reduced: Graph
    representative: list[int]
    originals: list[int]
    twin_kind: list[str | None]

    @property
    def removed_count(self) -> int:
        """How many nodes the reduction removed."""
        return self.original.n - self.reduced.n

    def class_distance(self, u: int, v: int) -> Weight:
        """Distance between two original nodes sharing a representative."""
        if self.representative[u] != self.representative[v]:
            raise GraphError("nodes are not in the same equivalence class")
        if u == v:
            return 0
        kind = self.twin_kind[u]
        if kind == "true":
            return 1
        if kind == "false":
            # Distinct false twins share every neighbor; an isolated twin
            # class (no neighbors) is disconnected from itself only in the
            # degenerate deg-0 case, which cannot be a multi-member class.
            return 2
        raise GraphError(f"node {u} is not part of a folded twin class")

    def map_distance(self, s: int, t: int, reduced_distance: Weight) -> Weight:
        """Translate a reduced-graph distance back to the original pair.

        ``reduced_distance`` must be the distance between
        ``representative[s]`` and ``representative[t]`` in the reduced
        graph.  Handles the same-representative special case.
        """
        if s == t:
            return 0
        if self.representative[s] == self.representative[t]:
            return self.class_distance(s, t)
        return reduced_distance


def eliminate_equivalent_nodes(graph: Graph) -> EquivalenceReduction:
    """Collapse every twin class of ``graph`` to one representative.

    A single pass folds both false twins (equal open neighborhoods) and
    true twins (equal closed neighborhoods).  Weighted graphs are
    returned unreduced because twin distances are no longer the constant
    1 / 2 the query-time correction relies on.
    """
    identity = list(range(graph.n))
    if not graph.unweighted:
        return EquivalenceReduction(
            original=graph,
            reduced=graph,
            representative=identity,
            originals=identity.copy(),
            twin_kind=[None] * graph.n,
        )

    false_classes: dict[tuple[int, ...], list[int]] = defaultdict(list)
    true_classes: dict[tuple[int, ...], list[int]] = defaultdict(list)
    for v in graph.nodes():
        neighborhood = graph.neighbor_ids(v)
        false_classes[neighborhood].append(v)
        closed = tuple(sorted(neighborhood + (v,)))
        true_classes[closed].append(v)

    representative = identity.copy()
    twin_kind: list[str | None] = [None] * graph.n
    # False twins first; a node can belong to one false class and one true
    # class, but the classes never mix (members of a false class are
    # pairwise non-adjacent, of a true class pairwise adjacent).
    for neighborhood, members in false_classes.items():
        # Degree-0 nodes share the empty neighborhood but are mutually
        # unreachable, so they must not be folded.
        if len(members) > 1 and neighborhood:
            keeper = members[0]
            for v in members:
                representative[v] = keeper
                twin_kind[v] = "false"
    for members in true_classes.values():
        if len(members) > 1 and all(twin_kind[v] is None for v in members):
            keeper = members[0]
            for v in members:
                representative[v] = keeper
                twin_kind[v] = "true"

    keepers = sorted({representative[v] for v in graph.nodes()})
    compact = {orig: i for i, orig in enumerate(keepers)}
    builder = GraphBuilder(len(keepers))
    for u, v, w in graph.edges():
        ru, rv = representative[u], representative[v]
        if ru != rv:
            builder.add_edge(compact[ru], compact[rv], w)
    reduced = builder.build()
    final_representative = [compact[representative[v]] for v in graph.nodes()]
    return EquivalenceReduction(
        original=graph,
        reduced=reduced,
        representative=final_representative,
        originals=keepers,
        twin_kind=twin_kind,
    )


def reduction_identity(graph: Graph) -> EquivalenceReduction:
    """A no-op reduction, for code paths that make twin folding optional."""
    identity = list(range(graph.n))
    return EquivalenceReduction(
        original=graph,
        reduced=graph,
        representative=identity,
        originals=identity.copy(),
        twin_kind=[None] * graph.n,
    )


def verify_reduction_distances(reduction: EquivalenceReduction, samples: int = 50) -> None:
    """Assert (via BFS) that the reduction preserves sampled distances.

    Debugging helper used in tests; raises :class:`GraphError` on the
    first mismatch.
    """
    import random

    from repro.graphs.traversal import single_source_distances

    graph = reduction.original
    if graph.n == 0:
        return
    rng = random.Random(0xC0FFEE)
    reduced_cache: dict[int, list[Weight]] = {}
    for _ in range(samples):
        s = rng.randrange(graph.n)
        t = rng.randrange(graph.n)
        truth = single_source_distances(graph, s)[t]
        rs = reduction.representative[s]
        if rs not in reduced_cache:
            reduced_cache[rs] = single_source_distances(reduction.reduced, rs)
        reduced_distance = reduced_cache[rs][reduction.representative[t]]
        mapped = reduction.map_distance(s, t, reduced_distance)
        if mapped != truth and not (mapped == INF and truth == INF):
            raise GraphError(f"reduction broke distance ({s}, {t}): {mapped} != {truth}")
