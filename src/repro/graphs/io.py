"""Edge-list file input/output.

The on-disk format mirrors the widely used whitespace-separated edge-list
layout of SNAP / Network Repository / KONECT downloads: one edge per line
(``u v`` or ``u v w``), with ``#`` and ``%`` comment lines ignored.  Node
ids in a file may be arbitrary non-negative integers; they are compacted
to ``0 .. n-1`` on load and the mapping is returned alongside the graph.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

from repro.exceptions import GraphFormatError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph

PathLike = Union[str, os.PathLike]

_COMMENT_PREFIXES = ("#", "%")


def read_edge_list(path: PathLike) -> tuple[Graph, list[int]]:
    """Load an undirected graph from an edge-list file.

    Returns ``(graph, original_ids)`` where ``original_ids[i]`` is the node
    id that appeared in the file for compacted node ``i``.

    Raises :class:`GraphFormatError` for malformed lines.
    """
    raw_edges: list[tuple[int, int, float]] = []
    seen_ids: set[int] = set()
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(_COMMENT_PREFIXES):
                continue
            parts = stripped.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{line_no}: expected 'u v' or 'u v w', got {stripped!r}"
                )
            try:
                u = int(parts[0])
                v = int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{line_no}: non-integer node id") from exc
            if u < 0 or v < 0:
                raise GraphFormatError(f"{path}:{line_no}: negative node id")
            weight: float = 1
            if len(parts) == 3:
                try:
                    weight = _parse_weight(parts[2])
                except ValueError as exc:
                    raise GraphFormatError(f"{path}:{line_no}: bad weight {parts[2]!r}") from exc
            raw_edges.append((u, v, weight))
            seen_ids.add(u)
            seen_ids.add(v)
    original_ids = sorted(seen_ids)
    compact = {orig: i for i, orig in enumerate(original_ids)}
    builder = GraphBuilder(len(original_ids))
    for u, v, w in raw_edges:
        builder.add_edge(compact[u], compact[v], w)
    return builder.build(), original_ids


def write_edge_list(graph: Graph, path: PathLike, *, header: str | None = None) -> None:
    """Write ``graph`` as a whitespace-separated edge list.

    Weights are emitted only when the graph is weighted, so unweighted
    graphs round-trip through the common two-column format.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes={graph.n} edges={graph.m}\n")
        for u, v, w in graph.edges():
            if graph.unweighted:
                handle.write(f"{u} {v}\n")
            else:
                handle.write(f"{u} {v} {w}\n")


def _parse_weight(token: str) -> float:
    """Parse a weight token, preferring int when exact."""
    value = float(token)
    if value.is_integer():
        return int(value)
    return value
