"""Edge-list file input/output.

The on-disk format mirrors the widely used whitespace-separated edge-list
layout of SNAP / Network Repository / KONECT downloads: one edge per line
(``u v`` or ``u v w``), with ``#`` and ``%`` comment lines ignored.  Node
ids in a file may be arbitrary non-negative integers; they are compacted
to ``0 .. n-1`` on load and the mapping is returned alongside the graph.

Two loaders share the format: :func:`read_edge_list` buffers the parsed
lines (fine up to ~10⁴ nodes), while :func:`read_edge_list_chunked`
consumes the file in bounded chunks of edges — the loader the 10⁵–10⁶
scale tiers use.  Both return identical graphs for identical files.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

from repro.exceptions import GraphFormatError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph

PathLike = Union[str, os.PathLike]

_COMMENT_PREFIXES = ("#", "%")


def read_edge_list(path: PathLike) -> tuple[Graph, list[int]]:
    """Load an undirected graph from an edge-list file.

    Returns ``(graph, original_ids)`` where ``original_ids[i]`` is the node
    id that appeared in the file for compacted node ``i``.

    Raises :class:`GraphFormatError` for malformed lines.
    """
    raw_edges: list[tuple[int, int, float]] = []
    seen_ids: set[int] = set()
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(_COMMENT_PREFIXES):
                continue
            parts = stripped.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{line_no}: expected 'u v' or 'u v w', got {stripped!r}"
                )
            try:
                u = int(parts[0])
                v = int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{line_no}: non-integer node id") from exc
            if u < 0 or v < 0:
                raise GraphFormatError(f"{path}:{line_no}: negative node id")
            weight: float = 1
            if len(parts) == 3:
                try:
                    weight = _parse_weight(parts[2])
                except ValueError as exc:
                    raise GraphFormatError(f"{path}:{line_no}: bad weight {parts[2]!r}") from exc
            raw_edges.append((u, v, weight))
            seen_ids.add(u)
            seen_ids.add(v)
    original_ids = sorted(seen_ids)
    compact = {orig: i for i, orig in enumerate(original_ids)}
    builder = GraphBuilder(len(original_ids))
    for u, v, w in raw_edges:
        builder.add_edge(compact[u], compact[v], w)
    return builder.build(), original_ids


def read_edge_list_chunked(
    path: PathLike, *, chunk_edges: int = 1 << 18
) -> tuple[Graph, list[int]]:
    """Load an edge-list file in bounded chunks of parsed edges.

    Same contract and result as :func:`read_edge_list` — identical
    graph, identical ``original_ids`` — but the file is consumed in
    chunks of at most ``chunk_edges`` edges, holding numeric arrays (or,
    without NumPy, a second streaming pass) instead of the whole parsed
    line list.  This is the loader the 10⁵–10⁶-node scale tiers use:
    peak transient memory tracks the compact edge arrays, not the text.

    Normalization matches :class:`~repro.graphs.builder.GraphBuilder`
    exactly: self-loops are dropped, duplicate edges keep the minimum
    weight, and the graph is flagged unweighted when every surviving
    edge has weight 1.

    Malformed input raises :class:`GraphFormatError` (a
    :class:`~repro.exceptions.GraphError`) naming ``path:line`` and the
    chunk index; no line is ever silently dropped.
    """
    from repro.kernels import numpy_available

    if chunk_edges < 1:
        raise GraphFormatError(f"chunk_edges must be >= 1, got {chunk_edges}")
    path = Path(path)
    if numpy_available():
        return _read_chunked_numpy(path, chunk_edges)
    return _read_chunked_python(path, chunk_edges)


def _iter_edge_chunks(path: Path, chunk_edges: int):
    """Yield ``(chunk_index, us, vs, ws)`` lists of validated edges.

    Shared by both chunked backends so every malformed line fails with
    the same ``path:line (chunk k)`` diagnostic on either path.
    """
    us: list[int] = []
    vs: list[int] = []
    ws: list[float] = []
    chunk_idx = 0
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(_COMMENT_PREFIXES):
                continue
            parts = stripped.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{line_no}: expected 'u v' or 'u v w', "
                    f"got {stripped!r} (chunk {chunk_idx})"
                )
            try:
                u = int(parts[0])
                v = int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{line_no}: non-integer node id (chunk {chunk_idx})"
                ) from exc
            if u < 0 or v < 0:
                raise GraphFormatError(
                    f"{path}:{line_no}: negative node id (chunk {chunk_idx})"
                )
            weight: float = 1
            if len(parts) == 3:
                try:
                    weight = _parse_weight(parts[2])
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}:{line_no}: bad weight {parts[2]!r} (chunk {chunk_idx})"
                    ) from exc
                if weight <= 0:
                    raise GraphFormatError(
                        f"{path}:{line_no}: non-positive weight {weight} "
                        f"(chunk {chunk_idx})"
                    )
            us.append(u)
            vs.append(v)
            ws.append(weight)
            if len(us) >= chunk_edges:
                yield chunk_idx, us, vs, ws
                us, vs, ws = [], [], []
                chunk_idx += 1
    if us:
        yield chunk_idx, us, vs, ws


def _read_chunked_numpy(path: Path, chunk_edges: int) -> tuple[Graph, list[int]]:
    """Chunked load via flat arrays: compact, dedup, and build in bulk."""
    import numpy as np

    u_chunks: list = []
    v_chunks: list = []
    w_chunks: list = []
    ids = np.empty(0, dtype=np.int64)
    for _, us, vs, ws in _iter_edge_chunks(path, chunk_edges):
        u_arr = np.asarray(us, dtype=np.int64)
        v_arr = np.asarray(vs, dtype=np.int64)
        u_chunks.append(u_arr)
        v_chunks.append(v_arr)
        w_chunks.append(np.asarray(ws, dtype=np.float64))
        ids = np.union1d(ids, np.concatenate([u_arr, v_arr]))
    if not u_chunks:
        return Graph.empty(0), []
    n = int(ids.size)
    n64 = np.int64(n)

    cu = np.searchsorted(ids, np.concatenate(u_chunks))
    cv = np.searchsorted(ids, np.concatenate(v_chunks))
    weights = np.concatenate(w_chunks)
    # GraphBuilder semantics in bulk: drop self-loops, canonicalize the
    # endpoint order, keep the minimum weight among duplicates.
    keep = cu != cv
    lo = np.minimum(cu[keep], cv[keep])
    hi = np.maximum(cu[keep], cv[keep])
    weights = weights[keep]
    if lo.size == 0:
        return Graph.empty(n), ids.tolist()
    edge_keys = lo * n64 + hi
    sort_idx = np.argsort(edge_keys, kind="stable")
    edge_keys = edge_keys[sort_idx]
    weights = weights[sort_idx]
    first = np.empty(edge_keys.size, dtype=bool)
    first[0] = True
    np.not_equal(edge_keys[1:], edge_keys[:-1], out=first[1:])
    group_offsets = np.flatnonzero(first)
    min_w = np.minimum.reduceat(weights, group_offsets)
    uniq_keys = edge_keys[first]
    e_lo = uniq_keys // n64
    e_hi = uniq_keys % n64

    owners = np.concatenate([e_lo, e_hi])
    nbrs = np.concatenate([e_hi, e_lo])
    wts = np.concatenate([min_w, min_w])
    row_order = np.lexsort((nbrs, owners))
    nbrs = nbrs[row_order]
    wts = wts[row_order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(owners, minlength=n), out=indptr[1:])

    unweighted = bool((min_w == 1).all())
    nbr_list = nbrs.tolist()
    offsets = indptr.tolist()
    adj_ids = [
        tuple(nbr_list[offsets[v] : offsets[v + 1]]) for v in range(n)
    ]
    if unweighted:
        adj_weights = [(1,) * len(row) for row in adj_ids]
    else:
        w_list = [int(w) if w.is_integer() else w for w in wts.tolist()]
        adj_weights = [
            tuple(w_list[offsets[v] : offsets[v + 1]]) for v in range(n)
        ]
    graph = Graph._from_trusted_rows(
        n, adj_ids, adj_weights, int(e_lo.size), unweighted=unweighted
    )
    return graph, ids.tolist()


def _read_chunked_python(path: Path, chunk_edges: int) -> tuple[Graph, list[int]]:
    """Chunked load without NumPy: two streaming passes over the file.

    Pass 1 collects (and validates) the node-id universe, pass 2 feeds
    the compacted edges straight into a :class:`GraphBuilder` — at no
    point is the whole parsed edge list resident.
    """
    seen: set[int] = set()
    for _, us, vs, _ws in _iter_edge_chunks(path, chunk_edges):
        seen.update(us)
        seen.update(vs)
    original_ids = sorted(seen)
    compact = {orig: i for i, orig in enumerate(original_ids)}
    builder = GraphBuilder(len(original_ids))
    for _, us, vs, ws in _iter_edge_chunks(path, chunk_edges):
        for u, v, w in zip(us, vs, ws):
            builder.add_edge(compact[u], compact[v], w)
    return builder.build(), original_ids


def write_edge_list(graph: Graph, path: PathLike, *, header: str | None = None) -> None:
    """Write ``graph`` as a whitespace-separated edge list.

    Weights are emitted only when the graph is weighted, so unweighted
    graphs round-trip through the common two-column format.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes={graph.n} edges={graph.m}\n")
        for u, v, w in graph.edges():
            if graph.unweighted:
                handle.write(f"{u} {v}\n")
            else:
                handle.write(f"{u} {v} {w}\n")


def _parse_weight(token: str) -> float:
    """Parse a weight token, preferring int when exact."""
    value = float(token)
    if value.is_integer():
        return int(value)
    return value
