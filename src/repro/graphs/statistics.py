"""Structural statistics used to characterize datasets and report results.

The headline quantity is the *degeneracy* (computed by min-degree
peeling), which lower-bounds the MDE treewidth and is the cheapest
available signal of how core-periphery a graph is.
"""

from __future__ import annotations

import dataclasses
import heapq
import random
from collections import Counter

from repro.graphs.graph import Graph


@dataclasses.dataclass(frozen=True)
class GraphSummary:
    """One-line structural description of a graph."""

    n: int
    m: int
    min_degree: int
    max_degree: int
    average_degree: float
    degeneracy: int
    components: int

    def as_row(self) -> dict[str, float | int]:
        """Flatten to a dict for table rendering."""
        return dataclasses.asdict(self)


def summarize(graph: Graph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    from repro.graphs.traversal import connected_components

    degrees = [graph.degree(v) for v in graph.nodes()]
    return GraphSummary(
        n=graph.n,
        m=graph.m,
        min_degree=min(degrees, default=0),
        max_degree=max(degrees, default=0),
        average_degree=graph.average_degree(),
        degeneracy=degeneracy(graph),
        components=len(connected_components(graph)),
    )


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    return dict(Counter(graph.degree(v) for v in graph.nodes()))


def degeneracy(graph: Graph) -> int:
    """Graph degeneracy via min-degree peeling (a treewidth lower bound)."""
    _, core_number = degeneracy_ordering(graph)
    return max(core_number, default=0)


def degeneracy_ordering(graph: Graph) -> tuple[list[int], list[int]]:
    """Peel nodes by minimum *remaining* degree.

    Returns ``(order, core_number)`` where ``order`` is the peeling order
    and ``core_number[v]`` is the largest k such that ``v`` belongs to the
    k-core.  Runs in ``O((n + m) log n)`` with a lazy heap.
    """
    remaining_degree = [graph.degree(v) for v in graph.nodes()]
    removed = [False] * graph.n
    heap = [(remaining_degree[v], v) for v in graph.nodes()]
    heapq.heapify(heap)
    order: list[int] = []
    core_number = [0] * graph.n
    current_core = 0
    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != remaining_degree[v]:
            continue
        removed[v] = True
        current_core = max(current_core, d)
        core_number[v] = current_core
        order.append(v)
        for u in graph.neighbor_ids(v):
            if not removed[u]:
                remaining_degree[u] -= 1
                heapq.heappush(heap, (remaining_degree[u], u))
    return order, core_number


def approximate_clustering(graph: Graph, samples: int, seed: int) -> float:
    """Sampled average local clustering coefficient.

    Samples ``samples`` nodes of degree >= 2 (or all of them when fewer
    exist) and averages the exact local coefficient over the sample.
    """
    eligible = [v for v in graph.nodes() if graph.degree(v) >= 2]
    if not eligible:
        return 0.0
    rng = random.Random(seed)
    if len(eligible) > samples:
        eligible = rng.sample(eligible, samples)
    total = 0.0
    for v in eligible:
        neighbors = graph.neighbor_ids(v)
        k = len(neighbors)
        neighbor_set = set(neighbors)
        links = 0
        for u in neighbors:
            # Count each triangle edge once by scanning the smaller side.
            for w in graph.neighbor_ids(u):
                if w > u and w in neighbor_set:
                    links += 1
        total += 2.0 * links / (k * (k - 1))
    return total / len(eligible)


def core_periphery_coefficient(graph: Graph) -> float:
    """Fraction of nodes whose core number reaches half the degeneracy.

    A crude but monotone indicator: dense-core graphs score low (few
    nodes live deep in the core), regular graphs score near 1.
    """
    if graph.n == 0:
        return 0.0
    _, core_number = degeneracy_ordering(graph)
    top = max(core_number)
    if top == 0:
        return 1.0
    deep = sum(1 for c in core_number if c >= top / 2)
    return deep / graph.n
