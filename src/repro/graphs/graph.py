"""Static undirected graph with non-negative edge weights.

The :class:`Graph` type is the substrate every index in this library is
built on.  Nodes are the integers ``0 .. n-1``; the adjacency of each node
is stored as two parallel tuples (neighbor ids sorted ascending, and their
edge weights), which makes neighbor scans cheap and the structure
effectively immutable after construction.

Graphs are *simple*: no self-loops and no parallel edges.  Use
:class:`repro.graphs.builder.GraphBuilder` (or :meth:`Graph.from_edges`)
to normalize raw edge lists into this form.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from typing import Union

from repro.exceptions import GraphError

Weight = Union[int, float]
Edge = tuple[int, int, Weight]

#: Distance value used for unreachable node pairs.
INF = math.inf


class Graph:
    """An undirected, weighted, simple graph on nodes ``0 .. n-1``.

    Instances should be treated as immutable; all mutating workflows go
    through :class:`repro.graphs.builder.GraphBuilder`.
    """

    __slots__ = ("_n", "_m", "_adj_ids", "_adj_weights", "_unweighted")

    def __init__(
        self,
        n: int,
        adjacency: list[list[tuple[int, Weight]]],
        *,
        unweighted: bool,
    ) -> None:
        """Build a graph from a pre-normalized adjacency structure.

        ``adjacency[v]`` must list each neighbor of ``v`` exactly once as a
        ``(neighbor, weight)`` pair, must be symmetric, and must not contain
        self-loops.  Most callers should use :meth:`from_edges` instead,
        which performs that normalization.
        """
        if n < 0:
            raise GraphError(f"node count must be non-negative, got {n}")
        if len(adjacency) != n:
            raise GraphError(f"adjacency has {len(adjacency)} rows for {n} nodes")
        self._n = n
        adj_ids: list[tuple[int, ...]] = []
        adj_weights: list[tuple[Weight, ...]] = []
        m2 = 0
        for v, row in enumerate(adjacency):
            row = sorted(row)
            ids = tuple(u for u, _ in row)
            for u in ids:
                if not 0 <= u < n:
                    raise GraphError(f"neighbor {u} of node {v} is out of range")
                if u == v:
                    raise GraphError(f"self-loop on node {v}")
            if len(set(ids)) != len(ids):
                raise GraphError(f"parallel edges at node {v}")
            adj_ids.append(ids)
            adj_weights.append(tuple(w for _, w in row))
            m2 += len(ids)
        if m2 % 2 != 0:
            raise GraphError("adjacency is not symmetric (odd half-edge count)")
        self._adj_ids = adj_ids
        self._adj_weights = adj_weights
        self._m = m2 // 2
        self._unweighted = unweighted

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, ...]],
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` or ``(u, v, w)`` tuples.

        Self-loops are dropped; parallel edges keep the minimum weight.
        Missing weights default to 1 and the graph is flagged unweighted
        when every surviving edge has weight exactly 1.
        """
        from repro.graphs.builder import GraphBuilder

        builder = GraphBuilder(n)
        for edge in edges:
            builder.add_edge(*edge)
        return builder.build()

    @classmethod
    def empty(cls, n: int) -> "Graph":
        """Return a graph with ``n`` nodes and no edges."""
        return cls(n, [[] for _ in range(n)], unweighted=True)

    @classmethod
    def _from_trusted_rows(
        cls,
        n: int,
        adj_ids: list[tuple[int, ...]],
        adj_weights: list[tuple[Weight, ...]],
        m: int,
        *,
        unweighted: bool,
    ) -> "Graph":
        """Adopt pre-validated sorted adjacency rows without re-checking.

        Internal fast path for loaders that have already enforced the
        simple-graph invariants in bulk (the binary snapshot reader
        checks bounds, weights, loops, and duplicates against
        CRC-verified arrays before calling this).  ``adj_ids[v]`` must
        be strictly ascending and symmetric with ``adj_weights``
        aligned; ``m`` is the edge count.
        """
        graph = cls.__new__(cls)
        graph._n = n
        graph._adj_ids = adj_ids
        graph._adj_weights = adj_weights
        graph._m = m
        graph._unweighted = unweighted
        return graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of (undirected) edges."""
        return self._m

    @property
    def unweighted(self) -> bool:
        """True when every edge weight is exactly 1."""
        return self._unweighted

    def nodes(self) -> range:
        """All node ids, as a range."""
        return range(self._n)

    def degree(self, v: int) -> int:
        """Number of neighbors of ``v``."""
        self._check_node(v)
        return len(self._adj_ids[v])

    def neighbor_ids(self, v: int) -> tuple[int, ...]:
        """Neighbor ids of ``v``, sorted ascending."""
        self._check_node(v)
        return self._adj_ids[v]

    def neighbor_weights(self, v: int) -> tuple[Weight, ...]:
        """Edge weights aligned with :meth:`neighbor_ids`."""
        self._check_node(v)
        return self._adj_weights[v]

    def neighbors(self, v: int) -> Iterator[tuple[int, Weight]]:
        """Iterate over ``(neighbor, weight)`` pairs of ``v``."""
        self._check_node(v)
        return zip(self._adj_ids[v], self._adj_weights[v])

    def has_edge(self, u: int, v: int) -> bool:
        """True when ``{u, v}`` is an edge."""
        self._check_node(u)
        self._check_node(v)
        if len(self._adj_ids[u]) > len(self._adj_ids[v]):
            u, v = v, u
        return _binary_contains(self._adj_ids[u], v)

    def edge_weight(self, u: int, v: int) -> Weight:
        """Weight of edge ``{u, v}``; raises :class:`GraphError` if absent."""
        self._check_node(u)
        self._check_node(v)
        ids = self._adj_ids[u]
        idx = _binary_find(ids, v)
        if idx < 0:
            raise GraphError(f"edge ({u}, {v}) does not exist")
        return self._adj_weights[u][idx]

    def edges(self) -> Iterator[Edge]:
        """Iterate over every edge once as ``(u, v, w)`` with ``u < v``."""
        for u in range(self._n):
            ids = self._adj_ids[u]
            weights = self._adj_weights[u]
            for v, w in zip(ids, weights):
                if u < v:
                    yield (u, v, w)

    def total_weight(self) -> Weight:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    def max_degree(self) -> int:
        """Largest node degree (0 for an empty graph)."""
        if self._n == 0:
            return 0
        return max(len(ids) for ids in self._adj_ids)

    def average_degree(self) -> float:
        """Mean node degree (0.0 for an empty graph)."""
        if self._n == 0:
            return 0.0
        return 2.0 * self._m / self._n

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def induced_subgraph(self, nodes: Iterable[int]) -> tuple["Graph", list[int]]:
        """Return ``(subgraph, originals)`` for the induced subgraph on ``nodes``.

        Subgraph node ``i`` corresponds to original node ``originals[i]``;
        the originals are sorted ascending.  Duplicate input nodes are
        collapsed.
        """
        originals = sorted(set(nodes))
        for v in originals:
            self._check_node(v)
        remap = {v: i for i, v in enumerate(originals)}
        adjacency: list[list[tuple[int, Weight]]] = [[] for _ in originals]
        for i, v in enumerate(originals):
            for u, w in self.neighbors(v):
                j = remap.get(u)
                if j is not None:
                    adjacency[i].append((j, w))
        return Graph(len(originals), adjacency, unweighted=self._unweighted), originals

    def relabeled(self, new_id: list[int]) -> "Graph":
        """Return a copy where original node ``v`` becomes ``new_id[v]``.

        ``new_id`` must be a permutation of ``0 .. n-1``.
        """
        if sorted(new_id) != list(range(self._n)):
            raise GraphError("relabeling is not a permutation of the node ids")
        adjacency: list[list[tuple[int, Weight]]] = [[] for _ in range(self._n)]
        for v in range(self._n):
            row = adjacency[new_id[v]]
            for u, w in self.neighbors(v):
                row.append((new_id[u], w))
        return Graph(self._n, adjacency, unweighted=self._unweighted)

    def with_unit_weights(self) -> "Graph":
        """Return the same topology with all edge weights replaced by 1."""
        adjacency = [[(u, 1) for u in self._adj_ids[v]] for v in range(self._n)]
        return Graph(self._n, adjacency, unweighted=True)

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        kind = "unweighted" if self._unweighted else "weighted"
        return f"Graph(n={self._n}, m={self._m}, {kind})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and self._adj_ids == other._adj_ids
            and self._adj_weights == other._adj_weights
        )

    def __hash__(self) -> int:
        return hash((self._n, tuple(self._adj_ids)))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_node(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise GraphError(f"node {v} is out of range for a {self._n}-node graph")


def _binary_find(ids: tuple[int, ...], target: int) -> int:
    """Index of ``target`` in the sorted tuple ``ids``, or -1 if absent."""
    lo, hi = 0, len(ids)
    while lo < hi:
        mid = (lo + hi) // 2
        if ids[mid] < target:
            lo = mid + 1
        else:
            hi = mid
    if lo < len(ids) and ids[lo] == target:
        return lo
    return -1


def _binary_contains(ids: tuple[int, ...], target: int) -> bool:
    return _binary_find(ids, target) >= 0
