"""Directed graph support.

The paper treats undirected graphs and notes (Section 2) that its
techniques "easily extend to directed graphs".  This module supplies
that extension's substrate: a directed simple graph with out/in
adjacency, plus forward/backward single-source searches.  The directed
2-hop labeling itself lives in :mod:`repro.labeling.directed_pll`.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Iterable, Iterator

from repro.exceptions import GraphError
from repro.graphs.graph import INF, Weight


class DiGraph:
    """A directed, weighted, simple graph on nodes ``0 .. n-1``.

    At most one arc per ordered pair; no self-loops.  Build with
    :meth:`from_arcs`, which normalizes duplicates (keeping the minimum
    weight) and drops loops.
    """

    __slots__ = ("_n", "_m", "_out_ids", "_out_weights", "_in_ids", "_in_weights", "_unweighted")

    def __init__(
        self,
        n: int,
        arcs: dict[tuple[int, int], Weight],
        *,
        unweighted: bool,
    ) -> None:
        self._n = n
        out_adj: list[list[tuple[int, Weight]]] = [[] for _ in range(n)]
        in_adj: list[list[tuple[int, Weight]]] = [[] for _ in range(n)]
        for (u, v), w in arcs.items():
            out_adj[u].append((v, w))
            in_adj[v].append((u, w))
        self._out_ids = [tuple(x for x, _ in sorted(row)) for row in out_adj]
        self._out_weights = [tuple(w for _, w in sorted(row)) for row in out_adj]
        self._in_ids = [tuple(x for x, _ in sorted(row)) for row in in_adj]
        self._in_weights = [tuple(w for _, w in sorted(row)) for row in in_adj]
        self._m = len(arcs)
        self._unweighted = unweighted

    @classmethod
    def from_arcs(cls, n: int, arcs: Iterable[tuple[int, ...]]) -> "DiGraph":
        """Build from ``(u, v)`` / ``(u, v, w)`` tuples (u -> v)."""
        if n < 0:
            raise GraphError(f"node count must be non-negative, got {n}")
        normalized: dict[tuple[int, int], Weight] = {}
        unweighted = True
        for arc in arcs:
            if len(arc) == 2:
                u, v = arc  # type: ignore[misc]
                w: Weight = 1
            elif len(arc) == 3:
                u, v, w = arc  # type: ignore[misc]
            else:
                raise GraphError(f"arc {arc!r} must be (u, v) or (u, v, w)")
            if not 0 <= u < n or not 0 <= v < n:
                raise GraphError(f"arc ({u}, {v}) has a node outside 0..{n - 1}")
            if w <= 0:
                raise GraphError(f"arc ({u}, {v}) has non-positive weight {w}")
            if u == v:
                continue  # drop self-loops
            key = (u, v)
            old = normalized.get(key)
            if old is None or w < old:
                normalized[key] = w
        unweighted = all(w == 1 for w in normalized.values())
        return cls(n, normalized, unweighted=unweighted)

    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of arcs."""
        return self._m

    @property
    def unweighted(self) -> bool:
        """True when every arc weight is exactly 1."""
        return self._unweighted

    def nodes(self) -> range:
        """All node ids."""
        return range(self._n)

    def out_neighbors(self, v: int) -> Iterator[tuple[int, Weight]]:
        """``(successor, weight)`` pairs of ``v``."""
        self._check(v)
        return zip(self._out_ids[v], self._out_weights[v])

    def in_neighbors(self, v: int) -> Iterator[tuple[int, Weight]]:
        """``(predecessor, weight)`` pairs of ``v``."""
        self._check(v)
        return zip(self._in_ids[v], self._in_weights[v])

    def out_degree(self, v: int) -> int:
        self._check(v)
        return len(self._out_ids[v])

    def in_degree(self, v: int) -> int:
        self._check(v)
        return len(self._in_ids[v])

    def arcs(self) -> Iterator[tuple[int, int, Weight]]:
        """Every arc once as ``(u, v, w)``."""
        for u in range(self._n):
            yield from ((u, v, w) for v, w in zip(self._out_ids[u], self._out_weights[u]))

    def reversed(self) -> "DiGraph":
        """The graph with every arc flipped."""
        return DiGraph.from_arcs(self._n, ((v, u, w) for u, v, w in self.arcs()))

    def __repr__(self) -> str:
        return f"DiGraph(n={self._n}, m={self._m})"

    def _check(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise GraphError(f"node {v} is out of range for a {self._n}-node digraph")


def forward_distances(graph: DiGraph, source: int) -> list[Weight]:
    """Distances from ``source`` along arc directions."""
    return _search(graph, source, forward=True)


def backward_distances(graph: DiGraph, source: int) -> list[Weight]:
    """Distances *to* ``source`` (i.e. from every node, along arcs)."""
    return _search(graph, source, forward=False)


def _search(graph: DiGraph, source: int, *, forward: bool) -> list[Weight]:
    neighbors = graph.out_neighbors if forward else graph.in_neighbors
    dist: list[Weight] = [INF] * graph.n
    dist[source] = 0
    if graph.unweighted:
        queue: deque[int] = deque([source])
        while queue:
            v = queue.popleft()
            nd = dist[v] + 1
            for u, _ in neighbors(v):
                if dist[u] == INF:
                    dist[u] = nd
                    queue.append(u)
        return dist
    heap: list[tuple[Weight, int]] = [(0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for u, w in neighbors(v):
            nd = d + w
            if nd < dist[u]:
                dist[u] = nd
                heapq.heappush(heap, (nd, u))
    return dist
