"""NetworkX interoperability.

NetworkX is the lingua franca for graph data in Python; these helpers
move graphs in and out of it so downstream users can feed their existing
pipelines into the indexes.  networkx is imported lazily — the core
library never requires it.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import GraphError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph


def from_networkx(nx_graph: Any, *, weight_attribute: str = "weight") -> tuple[Graph, list]:
    """Convert an undirected networkx graph.

    Returns ``(graph, originals)``: node ``i`` of the returned graph
    corresponds to ``originals[i]`` in the networkx graph (nodes are
    sorted by their string representation for determinism).  Edge
    weights are read from ``weight_attribute`` (missing → 1); directed
    and multi-graphs are rejected.
    """
    if nx_graph.is_directed():
        raise GraphError("from_networkx expects an undirected graph; see DiGraph.from_arcs")
    if nx_graph.is_multigraph():
        raise GraphError("multigraphs are not supported; collapse parallel edges first")
    originals = sorted(nx_graph.nodes(), key=repr)
    compact = {node: i for i, node in enumerate(originals)}
    builder = GraphBuilder(len(originals))
    for u, v, data in nx_graph.edges(data=True):
        builder.add_edge(compact[u], compact[v], data.get(weight_attribute, 1))
    return builder.build(), originals


def to_networkx(graph: Graph):
    """Convert to a ``networkx.Graph`` with ``weight`` edge attributes."""
    import networkx as nx

    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.nodes())
    for u, v, w in graph.edges():
        nx_graph.add_edge(u, v, weight=w)
    return nx_graph


def digraph_from_networkx(nx_graph: Any, *, weight_attribute: str = "weight"):
    """Convert a directed networkx graph to a :class:`DiGraph`.

    Returns ``(digraph, originals)`` like :func:`from_networkx`.
    """
    from repro.graphs.digraph import DiGraph

    if not nx_graph.is_directed():
        raise GraphError("digraph_from_networkx expects a directed graph")
    if nx_graph.is_multigraph():
        raise GraphError("multigraphs are not supported; collapse parallel arcs first")
    originals = sorted(nx_graph.nodes(), key=repr)
    compact = {node: i for i, node in enumerate(originals)}
    arcs = [
        (compact[u], compact[v], data.get(weight_attribute, 1))
        for u, v, data in nx_graph.edges(data=True)
    ]
    return DiGraph.from_arcs(len(originals), arcs), originals
