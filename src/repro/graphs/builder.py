"""Incremental construction and normalization of :class:`~repro.graphs.graph.Graph`.

Raw edge lists coming out of generators or files may contain self-loops,
duplicate edges, or both orientations of the same edge.  The builder folds
those into a simple undirected graph: self-loops are dropped and parallel
edges keep the smallest weight (the only weight that can ever matter for a
shortest-path index).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import GraphError
from repro.graphs.graph import Graph, Weight


class GraphBuilder:
    """Accumulates edges and produces a normalized :class:`Graph`.

    Example
    -------
    >>> builder = GraphBuilder(3)
    >>> builder.add_edge(0, 1)
    >>> builder.add_edge(1, 2, 5)
    >>> graph = builder.build()
    >>> graph.m
    2
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise GraphError(f"node count must be non-negative, got {n}")
        self._n = n
        self._weights: dict[tuple[int, int], Weight] = {}
        self._dropped_self_loops = 0
        self._merged_parallel_edges = 0

    @property
    def n(self) -> int:
        """Number of nodes the built graph will have."""
        return self._n

    @property
    def edge_count(self) -> int:
        """Number of distinct edges accumulated so far."""
        return len(self._weights)

    @property
    def dropped_self_loops(self) -> int:
        """How many self-loops were silently discarded."""
        return self._dropped_self_loops

    @property
    def merged_parallel_edges(self) -> int:
        """How many duplicate edges were merged into an existing one."""
        return self._merged_parallel_edges

    def add_edge(self, u: int, v: int, weight: Weight = 1) -> None:
        """Add an undirected edge; normalizes loops and duplicates."""
        if not 0 <= u < self._n or not 0 <= v < self._n:
            raise GraphError(f"edge ({u}, {v}) has a node outside 0..{self._n - 1}")
        if weight <= 0:
            raise GraphError(f"edge ({u}, {v}) has non-positive weight {weight}")
        if u == v:
            self._dropped_self_loops += 1
            return
        key = (u, v) if u < v else (v, u)
        existing = self._weights.get(key)
        if existing is None:
            self._weights[key] = weight
        else:
            self._merged_parallel_edges += 1
            if weight < existing:
                self._weights[key] = weight

    def add_edges(self, edges: Iterable[tuple[int, ...]]) -> None:
        """Add many ``(u, v)`` or ``(u, v, w)`` tuples."""
        for edge in edges:
            self.add_edge(*edge)

    def add_clique(self, nodes: Iterable[int], weight: Weight = 1) -> None:
        """Add all edges of the clique over ``nodes``."""
        members = sorted(set(nodes))
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                self.add_edge(u, v, weight)

    def add_path(self, nodes: Iterable[int], weight: Weight = 1) -> None:
        """Add a path visiting ``nodes`` in order."""
        previous = None
        for v in nodes:
            if previous is not None:
                self.add_edge(previous, v, weight)
            previous = v

    def build(self) -> Graph:
        """Produce the normalized :class:`Graph`."""
        adjacency: list[list[tuple[int, Weight]]] = [[] for _ in range(self._n)]
        unweighted = True
        for (u, v), w in self._weights.items():
            adjacency[u].append((v, w))
            adjacency[v].append((u, w))
            if w != 1:
                unweighted = False
        return Graph(self._n, adjacency, unweighted=unweighted)
