"""Graph substrate: the data structures and algorithms every index builds on."""

from repro.graphs.builder import GraphBuilder
from repro.graphs.digraph import DiGraph, backward_distances, forward_distances
from repro.graphs.graph import INF, Graph, Weight
from repro.graphs.interop import digraph_from_networkx, from_networkx, to_networkx
from repro.graphs.io import read_edge_list, read_edge_list_chunked, write_edge_list
from repro.graphs.reductions import (
    EquivalenceReduction,
    eliminate_equivalent_nodes,
    reduction_identity,
)
from repro.graphs.statistics import GraphSummary, degeneracy, summarize
from repro.graphs.traversal import (
    all_pairs_distances,
    bfs_distances,
    connected_components,
    dijkstra_distances,
    is_connected,
    pairwise_distance,
    single_source_distances,
)

__all__ = [
    "DiGraph",
    "INF",
    "Graph",
    "GraphBuilder",
    "GraphSummary",
    "EquivalenceReduction",
    "Weight",
    "all_pairs_distances",
    "backward_distances",
    "bfs_distances",
    "connected_components",
    "degeneracy",
    "digraph_from_networkx",
    "dijkstra_distances",
    "eliminate_equivalent_nodes",
    "forward_distances",
    "from_networkx",
    "is_connected",
    "pairwise_distance",
    "read_edge_list",
    "read_edge_list_chunked",
    "reduction_identity",
    "single_source_distances",
    "summarize",
    "to_networkx",
    "write_edge_list",
]
