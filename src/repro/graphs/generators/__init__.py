"""Deterministic graph generators for tests, examples, and benchmarks."""

from repro.graphs.generators.core_periphery import (
    CorePeripheryConfig,
    core_periphery_graph,
    scaled_config,
)
from repro.graphs.generators.power_law import (
    barabasi_albert_graph,
    chung_lu_graph,
    power_law_cluster_graph,
    power_law_weights,
)
from repro.graphs.generators.primitives import (
    binary_tree_graph,
    clique_graph,
    complete_bipartite_graph,
    cycle_graph,
    grid_graph,
    lollipop_graph,
    path_graph,
    star_graph,
)
from repro.graphs.generators.geometric import random_geometric_graph
from repro.graphs.generators.rmat import GRAPH500_PROBS, rmat_graph
from repro.graphs.generators.random_graphs import (
    caveman_graph,
    connected_gnp_graph,
    gnm_graph,
    gnp_graph,
    random_tree,
    random_weighted,
)
from repro.graphs.generators.worst_case import (
    rolling_cliques_distance,
    rolling_cliques_graph,
    rolling_cliques_group,
)

__all__ = [
    "CorePeripheryConfig",
    "GRAPH500_PROBS",
    "barabasi_albert_graph",
    "binary_tree_graph",
    "caveman_graph",
    "chung_lu_graph",
    "clique_graph",
    "complete_bipartite_graph",
    "connected_gnp_graph",
    "core_periphery_graph",
    "cycle_graph",
    "gnm_graph",
    "gnp_graph",
    "grid_graph",
    "lollipop_graph",
    "path_graph",
    "power_law_cluster_graph",
    "power_law_weights",
    "random_geometric_graph",
    "random_tree",
    "random_weighted",
    "rmat_graph",
    "rolling_cliques_distance",
    "rolling_cliques_graph",
    "rolling_cliques_group",
    "scaled_config",
    "star_graph",
]
