"""Deterministic building-block graphs (paths, cycles, cliques, ...).

These tiny families have known treewidths and distances, which makes them
the backbone of the unit-test suite and of the theory-checking benches.
"""

from __future__ import annotations

from repro.exceptions import GraphError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph


def path_graph(n: int) -> Graph:
    """Path on ``n`` nodes: 0 - 1 - ... - (n-1).  Treewidth 1 for n >= 2."""
    builder = GraphBuilder(n)
    builder.add_path(range(n))
    return builder.build()


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` nodes.  Treewidth 2."""
    if n < 3:
        raise GraphError(f"a cycle needs at least 3 nodes, got {n}")
    builder = GraphBuilder(n)
    builder.add_path(range(n))
    builder.add_edge(n - 1, 0)
    return builder.build()


def clique_graph(n: int) -> Graph:
    """Complete graph on ``n`` nodes.  Treewidth n - 1."""
    builder = GraphBuilder(n)
    builder.add_clique(range(n))
    return builder.build()


def star_graph(n_leaves: int) -> Graph:
    """Star with center 0 and ``n_leaves`` leaves.  Treewidth 1."""
    builder = GraphBuilder(n_leaves + 1)
    for leaf in range(1, n_leaves + 1):
        builder.add_edge(0, leaf)
    return builder.build()


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """Complete bipartite graph K(a, b); sides are 0..a-1 and a..a+b-1."""
    builder = GraphBuilder(a + b)
    for u in range(a):
        for v in range(a, a + b):
            builder.add_edge(u, v)
    return builder.build()


def grid_graph(rows: int, cols: int) -> Graph:
    """Axis-aligned grid; node ``(r, c)`` is ``r * cols + c``.

    Grids are the library's stand-in for road networks: planar, low
    treewidth (``min(rows, cols)``), large diameter.
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    builder = GraphBuilder(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                builder.add_edge(v, v + 1)
            if r + 1 < rows:
                builder.add_edge(v, v + cols)
    return builder.build()


def binary_tree_graph(depth: int) -> Graph:
    """Complete binary tree of the given depth (depth 0 = single node)."""
    if depth < 0:
        raise GraphError("depth must be non-negative")
    n = 2 ** (depth + 1) - 1
    builder = GraphBuilder(n)
    for child in range(1, n):
        builder.add_edge(child, (child - 1) // 2)
    return builder.build()


def lollipop_graph(clique_size: int, tail_length: int) -> Graph:
    """A clique with a path ("tail") attached — a tiny core-periphery graph.

    Nodes ``0 .. clique_size-1`` form the clique; the tail hangs off node 0.
    """
    if clique_size < 1:
        raise GraphError("clique size must be positive")
    builder = GraphBuilder(clique_size + tail_length)
    builder.add_clique(range(clique_size))
    builder.add_path([0] + list(range(clique_size, clique_size + tail_length)))
    return builder.build()
