"""The Ω(nd) lower-bound gadget of Lemma 3: "rolling cliques".

The paper proves that 2-hop labeling cannot beat an Ω(n·d) index size on
graphs of treewidth ``d`` by constructing a ring of overlapping
``d``-cliques: the ``n`` nodes are split into ``2k`` groups of ``d/2``
nodes each, and every two cyclically-consecutive groups form a clique of
size ``d``.  This module builds that graph so the lower bound can be
checked empirically (see ``benchmarks/test_lemma3_lower_bound.py``).
"""

from __future__ import annotations

from repro.exceptions import GraphError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph


def rolling_cliques_graph(k: int, d: int) -> Graph:
    """Lemma 3 gadget with ``n = k * d`` nodes and treewidth >= d - 1.

    Parameters mirror the proof: ``2k`` disjoint groups
    ``C_0 .. C_{2k-1}`` of ``d/2`` nodes; for every ``i`` the union
    ``C_i ∪ C_{(i+1) mod 2k}`` is a clique.  Group ``g`` holds nodes
    ``g * d/2 .. (g+1) * d/2 - 1``.

    ``d`` must be even and ``k >= 2`` so the ring has at least 4 groups.
    """
    if d < 2 or d % 2 != 0:
        raise GraphError(f"d must be an even integer >= 2, got {d}")
    if k < 2:
        raise GraphError(f"k must be at least 2, got {k}")
    half = d // 2
    groups = 2 * k
    n = k * d
    builder = GraphBuilder(n)
    for g in range(groups):
        current = range(g * half, (g + 1) * half)
        nxt_g = (g + 1) % groups
        nxt = range(nxt_g * half, (nxt_g + 1) * half)
        builder.add_clique(list(current) + list(nxt))
    return builder.build()


def rolling_cliques_group(node: int, d: int) -> int:
    """Group index of ``node`` in a rolling-cliques graph with parameter ``d``."""
    if d < 2 or d % 2 != 0:
        raise GraphError(f"d must be an even integer >= 2, got {d}")
    return node // (d // 2)


def rolling_cliques_distance(s: int, t: int, k: int, d: int) -> int:
    """Closed-form shortest distance in the rolling-cliques graph.

    Every edge joins two nodes whose groups are equal or cyclically
    consecutive, so one hop changes the group index by at most 1.  Nodes
    in the same or adjacent groups share a clique (distance 1); otherwise
    the distance equals the cyclic group gap, achieved by walking one
    group per hop.
    """
    if s == t:
        return 0
    gs = rolling_cliques_group(s, d)
    gt = rolling_cliques_group(t, d)
    groups = 2 * k
    gap = min((gs - gt) % groups, (gt - gs) % groups)
    return max(1, gap)
