"""Random geometric ("road-like") graph generator.

Road networks are near-planar with low treewidth and large diameter —
the regime where H2H shines and the contrast class for the paper's
core-periphery graphs.  A random geometric graph (nodes uniform in the
unit square, edges between pairs within a radius, weights = rounded
Euclidean lengths) mimics that structure without external map data.
"""

from __future__ import annotations

import math
import random

from repro.exceptions import GraphError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph


def random_geometric_graph(
    n: int,
    radius: float,
    seed: int,
    *,
    weighted: bool = True,
    connect: bool = True,
) -> Graph:
    """Nodes uniform in [0,1]², edges within ``radius``.

    Weights are Euclidean lengths scaled to integers 1..100 (``weighted``)
    or 1 (hop metric).  With ``connect``, components are stitched by
    adding an edge between the closest pair of each component and the
    main one, preserving the geometric flavor.
    """
    if n < 1:
        raise GraphError("need at least one node")
    if radius <= 0:
        raise GraphError("radius must be positive")
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    builder = GraphBuilder(n)
    # Grid-bucket the points so neighbor search is ~O(n) for small radii.
    cell = max(radius, 1e-9)
    buckets: dict[tuple[int, int], list[int]] = {}
    for i, (x, y) in enumerate(points):
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(i)
    radius_sq = radius * radius
    for (bx, by), members in buckets.items():
        neighborhood: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                neighborhood.extend(buckets.get((bx + dx, by + dy), ()))
        for i in members:
            xi, yi = points[i]
            for j in neighborhood:
                if j <= i:
                    continue
                xj, yj = points[j]
                dist_sq = (xi - xj) ** 2 + (yi - yj) ** 2
                if dist_sq <= radius_sq:
                    builder.add_edge(i, j, _edge_weight(dist_sq, weighted))
    graph = builder.build()
    if not connect:
        return graph
    return _stitch_components(graph, points, weighted)


def _edge_weight(dist_sq: float, weighted: bool) -> int:
    if not weighted:
        return 1
    return max(1, round(math.sqrt(dist_sq) * 100))


def _stitch_components(graph: Graph, points, weighted: bool) -> Graph:
    from repro.graphs.traversal import connected_components

    components = connected_components(graph)
    if len(components) <= 1:
        return graph
    builder = GraphBuilder(graph.n)
    builder.add_edges(graph.edges())
    main = max(components, key=len)
    for component in components:
        if component is main:
            continue
        best_pair = None
        best_dist_sq = math.inf
        # Closest pair between the component and the main component;
        # components are typically tiny, so the scan is cheap.
        for u in component:
            xu, yu = points[u]
            for v in main:
                d = (xu - points[v][0]) ** 2 + (yu - points[v][1]) ** 2
                if d < best_dist_sq:
                    best_dist_sq = d
                    best_pair = (u, v)
        assert best_pair is not None
        builder.add_edge(*best_pair, _edge_weight(best_dist_sq, weighted))
    return builder.build()
