"""R-MAT (recursive matrix) graph generator.

R-MAT (Chakrabarti, Zhan, Faloutsos 2004) is the standard synthetic
model for web-like graphs: each edge lands in one quadrant of the
adjacency matrix recursively with probabilities ``(a, b, c, d)``, which
produces power-law degrees and community structure — the Graph500
benchmark uses ``(0.57, 0.19, 0.19, 0.05)``.  The generator emits the
undirected simple graph of the sampled arcs.
"""

from __future__ import annotations

import random

from repro.exceptions import GraphError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph

#: The Graph500 reference quadrant probabilities.
GRAPH500_PROBS = (0.57, 0.19, 0.19, 0.05)


def rmat_graph(
    scale: int,
    edge_factor: int,
    seed: int,
    *,
    probs: tuple[float, float, float, float] = GRAPH500_PROBS,
    noise: float = 0.1,
) -> Graph:
    """R-MAT graph with ``2**scale`` nodes and ``edge_factor * n`` edge draws.

    Parameters
    ----------
    scale:
        log2 of the node count (Graph500 convention).
    edge_factor:
        Edge draws per node; duplicates and loops are collapsed, so the
        final simple-edge count is somewhat lower.
    probs:
        The ``(a, b, c, d)`` quadrant probabilities; must sum to 1.
    noise:
        Per-level multiplicative jitter of the probabilities (the
        "smoothing" of the original paper that avoids degree staircases).
    """
    if scale < 1 or scale > 24:
        raise GraphError(f"scale must be in 1..24, got {scale}")
    if edge_factor < 1:
        raise GraphError("edge factor must be positive")
    if abs(sum(probs) - 1.0) > 1e-9 or any(p < 0 for p in probs):
        raise GraphError(f"quadrant probabilities must be a distribution, got {probs}")
    if not 0.0 <= noise < 1.0:
        raise GraphError("noise must be in [0, 1)")

    rng = random.Random(seed)
    n = 1 << scale
    builder = GraphBuilder(n)
    a, b, c, _ = probs
    for _ in range(edge_factor * n):
        u = v = 0
        for _level in range(scale):
            u <<= 1
            v <<= 1
            # Jitter the quadrant split per level, renormalizing.
            ja = a * (1 + noise * (rng.random() - 0.5))
            jb = b * (1 + noise * (rng.random() - 0.5))
            jc = c * (1 + noise * (rng.random() - 0.5))
            total = ja + jb + jc + (1 - a - b - c) * (1 + noise * (rng.random() - 0.5))
            r = rng.random() * total
            if r < ja:
                pass  # top-left: both bits 0
            elif r < ja + jb:
                v |= 1  # top-right
            elif r < ja + jb + jc:
                u |= 1  # bottom-left
            else:
                u |= 1
                v |= 1  # bottom-right
        if u != v:
            builder.add_edge(u, v)
    return builder.build()
