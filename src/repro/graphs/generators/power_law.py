"""Scale-free graph generators (Barabási–Albert and Chung–Lu).

Social networks and web graphs — the paper's target workloads — have
heavy-tailed degree sequences.  The generators here produce that shape
deterministically from a seed.
"""

from __future__ import annotations

import random

from repro.exceptions import GraphError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph


def barabasi_albert_graph(n: int, attach: int, seed: int) -> Graph:
    """Barabási–Albert preferential attachment.

    Starts from a clique on ``attach + 1`` nodes; every new node attaches
    to ``attach`` existing nodes chosen proportionally to degree.  The
    result is connected with a power-law degree tail — its high-degree
    hubs form a natural "core".
    """
    if attach < 1:
        raise GraphError("attachment count must be at least 1")
    if n < attach + 1:
        raise GraphError(f"need at least {attach + 1} nodes for attach={attach}")
    rng = random.Random(seed)
    builder = GraphBuilder(n)
    # Repeated-endpoint list: node v appears deg(v) times, which makes
    # degree-proportional sampling a single uniform draw.
    endpoints: list[int] = []
    seed_nodes = list(range(attach + 1))
    builder.add_clique(seed_nodes)
    for v in seed_nodes:
        endpoints.extend([v] * attach)
    for v in range(attach + 1, n):
        targets: set[int] = set()
        while len(targets) < attach:
            targets.add(endpoints[rng.randrange(len(endpoints))])
        for t in targets:
            builder.add_edge(v, t)
            endpoints.append(t)
        endpoints.extend([v] * attach)
    return builder.build()


def chung_lu_graph(weights: list[float], seed: int) -> Graph:
    """Chung–Lu random graph with expected degrees ``weights``.

    Pair ``(u, v)`` is an edge with probability
    ``min(1, w_u * w_v / sum(w))``; the expected degree of node ``u`` is
    approximately ``w_u``.  Implemented with the efficient sorted-weights
    skipping procedure (Miller & Hagberg 2011), so sparse graphs cost
    ``O(n + m)``.
    """
    import math

    n = len(weights)
    if any(w < 0 for w in weights):
        raise GraphError("expected degrees must be non-negative")
    total = sum(weights)
    builder = GraphBuilder(n)
    if total <= 0 or n < 2:
        return builder.build()
    rng = random.Random(seed)
    order = sorted(range(n), key=lambda v: -weights[v])
    sorted_w = [weights[v] for v in order]
    for i in range(n - 1):
        wi = sorted_w[i]
        if wi <= 0:
            break
        j = i + 1
        p = min(1.0, wi * sorted_w[j] / total)
        while j < n and p > 0:
            if p < 1.0:
                r = rng.random()
                j += int(math.log(r) / math.log(1.0 - p))
            if j < n:
                q = min(1.0, wi * sorted_w[j] / total)
                if rng.random() < q / p:
                    builder.add_edge(order[i], order[j])
                p = q
                j += 1
    return builder.build()


def power_law_weights(n: int, exponent: float, min_degree: float, seed: int) -> list[float]:
    """Expected-degree sequence following a power law with the given exponent."""
    if exponent <= 1.0:
        raise GraphError("power-law exponent must exceed 1")
    rng = random.Random(seed)
    weights = []
    inv = 1.0 / (exponent - 1.0)
    for _ in range(n):
        u = rng.random()
        weights.append(min_degree * (1.0 - u) ** (-inv))
    return weights


def power_law_cluster_graph(n: int, attach: int, triangle_prob: float, seed: int) -> Graph:
    """Holme–Kim model: BA attachment plus triangle-closing steps.

    Produces power-law degrees *and* high clustering, which is closer to
    real social networks than plain BA.
    """
    if not 0.0 <= triangle_prob <= 1.0:
        raise GraphError("triangle probability must be in [0, 1]")
    if attach < 1 or n < attach + 1:
        raise GraphError("invalid (n, attach) combination")
    rng = random.Random(seed)
    builder = GraphBuilder(n)
    endpoints: list[int] = []
    adjacency: list[set[int]] = [set() for _ in range(n)]

    def link(u: int, v: int) -> None:
        builder.add_edge(u, v)
        adjacency[u].add(v)
        adjacency[v].add(u)
        endpoints.append(u)
        endpoints.append(v)

    seed_nodes = list(range(attach + 1))
    for i, u in enumerate(seed_nodes):
        for v in seed_nodes[i + 1 :]:
            link(u, v)
    for v in range(attach + 1, n):
        added: set[int] = set()
        while len(added) < attach:
            if added and rng.random() < triangle_prob:
                # Triangle step: attach to a neighbor of the previous target.
                anchor = rng.choice(sorted(added))
                candidates = [u for u in adjacency[anchor] if u != v and u not in added]
                if candidates:
                    target = rng.choice(candidates)
                    added.add(target)
                    link(v, target)
                    continue
            target = endpoints[rng.randrange(len(endpoints))]
            if target != v and target not in added:
                added.add(target)
                link(v, target)
    return builder.build()
