"""Synthetic graphs with an explicit core-periphery structure.

The paper's datasets (social networks and web graphs) share one shape
that drives every experiment: a dense core whose elimination width blows
past any practical bandwidth, surrounded by a sparse periphery that
eliminates at small degree.  Real billion-edge graphs are out of reach
for a pure-Python build, so this module synthesizes that shape at a
controllable scale (see DESIGN.md §3 for the substitution argument):

* a dense Erdős–Rényi **core** whose minimum fill-in degree stays above
  every tested bandwidth, so it survives into ``B_c`` at all ``d``;
* **communities** — near-cliques with power-law sizes, stitched to the
  core by a handful of anchor edges.  These are the bandwidth lever: a
  community of size ``s`` sits (expensively) in the core while
  ``d ≲ s`` and is eliminated (cheaply — quadratic chain, tiny
  interface) once ``d`` exceeds its fill-in degree.  Web-graph cliques
  play exactly this role in the paper (footnote 2);
* a tree-like **fringe** attached mostly to the core (eliminated at
  ``d = 2``, and kept shallow so growing ``d`` does not deepen its
  ancestor chains).

The resulting CT-Index profile matches the paper's Figure 10: index
size falls monotonically in ``d`` with diminishing marginal gain, while
query time mildly rises.
"""

from __future__ import annotations

import dataclasses
import random

from repro.exceptions import GraphError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph


@dataclasses.dataclass(frozen=True)
class CorePeripheryConfig:
    """Parameters of the synthetic core-periphery generator.

    Attributes
    ----------
    core_size / core_density:
        The dense ER core.  Its minimum degree is roughly
        ``core_density * core_size``; keep that product above the largest
        bandwidth you intend to test so the core survives elimination.
    community_count:
        Number of near-clique communities.
    community_size_min / community_size_max / community_size_exponent:
        Community sizes follow a truncated power law over this range.
    community_density:
        Edge probability inside a community (a spanning path keeps it
        connected regardless).
    community_anchors:
        Core edges stitching each community to the core.
    fringe_size:
        Tree-like periphery nodes.
    fringe_core_bias:
        Probability a fringe node attaches to the core rather than to an
        arbitrary earlier node; high values keep fringe chains shallow.
    fringe_extra_edge_prob:
        Probability of one extra fringe edge (small periphery cycles).
    """

    core_size: int = 400
    core_density: float = 0.35
    community_count: int = 30
    community_size_min: int = 5
    community_size_max: int = 110
    community_size_exponent: float = 2.0
    community_density: float = 0.75
    community_anchors: int = 3
    fringe_size: int = 2000
    fringe_core_bias: float = 0.85
    fringe_extra_edge_prob: float = 0.15

    def expected_min_core_degree(self) -> float:
        """Rough minimum degree of the core (its elimination threshold)."""
        return self.core_density * (self.core_size - 1)

    def total_nodes_upper_bound(self) -> int:
        """Loose upper bound on the node count of a generated graph."""
        return self.core_size + self.community_count * self.community_size_max + self.fringe_size


def core_periphery_graph(config: CorePeripheryConfig, seed: int) -> Graph:
    """Generate a connected core-periphery graph from ``config`` and ``seed``."""
    _validate(config)
    rng = random.Random(seed)
    community_sizes = [
        _power_law_size(
            rng,
            config.community_size_min,
            config.community_size_max,
            config.community_size_exponent,
        )
        for _ in range(config.community_count)
    ]
    n = config.core_size + sum(community_sizes) + config.fringe_size
    builder = GraphBuilder(n)

    _build_core(builder, config, rng)
    next_id = config.core_size
    periphery_pool: list[int] = list(range(config.core_size))
    for size in community_sizes:
        members = list(range(next_id, next_id + size))
        next_id += size
        _build_community(builder, members, config, rng)
        periphery_pool.extend(members)

    for _ in range(config.fringe_size):
        v = next_id
        next_id += 1
        builder.add_edge(v, _pick_parent(config, periphery_pool, rng))
        if rng.random() < config.fringe_extra_edge_prob:
            other = _pick_parent(config, periphery_pool, rng)
            if other != v:
                builder.add_edge(v, other)
        periphery_pool.append(v)
    return builder.build()


def scaled_config(base: CorePeripheryConfig, scale: float) -> CorePeripheryConfig:
    """Scale the node-count knobs of ``base`` by ``scale`` (densities kept).

    Used to produce families of similar graphs of growing size (e.g. the
    scalability experiment's registry entries).
    """
    if scale <= 0:
        raise GraphError("scale must be positive")
    return dataclasses.replace(
        base,
        core_size=max(3, round(base.core_size * scale)),
        community_count=max(0, round(base.community_count * scale)),
        fringe_size=max(0, round(base.fringe_size * scale)),
    )


def _validate(config: CorePeripheryConfig) -> None:
    if config.core_size < 3:
        raise GraphError("core must have at least 3 nodes")
    if not 0.0 < config.core_density <= 1.0:
        raise GraphError("core density must be in (0, 1]")
    if config.community_size_min < 2 or config.community_size_max < config.community_size_min:
        raise GraphError("community size range is invalid")
    if not 0.0 < config.community_density <= 1.0:
        raise GraphError("community density must be in (0, 1]")
    if config.community_anchors < 1:
        raise GraphError("communities need at least one core anchor")
    if config.fringe_size < 0 or config.community_count < 0:
        raise GraphError("sizes must be non-negative")
    if not 0.0 <= config.fringe_core_bias <= 1.0:
        raise GraphError("fringe core bias must be in [0, 1]")


def _build_core(builder: GraphBuilder, config: CorePeripheryConfig, rng: random.Random) -> None:
    # A Hamiltonian cycle over the core guarantees connectivity even at
    # low densities; the ER edges on top provide the width blow-up.
    size = config.core_size
    for v in range(size):
        builder.add_edge(v, (v + 1) % size)
    for u in range(size):
        for v in range(u + 1, size):
            if rng.random() < config.core_density:
                builder.add_edge(u, v)


def _build_community(
    builder: GraphBuilder,
    members: list[int],
    config: CorePeripheryConfig,
    rng: random.Random,
) -> None:
    # Near-clique interior plus a spanning path for guaranteed connectivity.
    builder.add_path(members)
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            if rng.random() < config.community_density:
                builder.add_edge(u, v)
    for _ in range(config.community_anchors):
        builder.add_edge(rng.choice(members), rng.randrange(config.core_size))


def _pick_parent(
    config: CorePeripheryConfig, periphery_pool: list[int], rng: random.Random
) -> int:
    if rng.random() < config.fringe_core_bias:
        return rng.randrange(config.core_size)
    return periphery_pool[rng.randrange(len(periphery_pool))]


def _power_law_size(rng: random.Random, low: int, high: int, exponent: float) -> int:
    """Integer from [low, high] with P(s) roughly proportional to s^(-exponent)."""
    if low == high:
        return low
    # Inverse-CDF sampling of the continuous power law, then truncation.
    u = rng.random()
    inv = 1.0 - exponent
    a = low**inv
    b = (high + 1) ** inv
    value = (a + u * (b - a)) ** (1.0 / inv)
    return max(low, min(high, int(value)))
