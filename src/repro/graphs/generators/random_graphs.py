"""Seeded random graph families (Erdős–Rényi, caveman, random weights).

All generators take an explicit ``seed`` so every test, example, and
benchmark in the repository is reproducible run-to-run.
"""

from __future__ import annotations

import random

from repro.exceptions import GraphError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph


def gnp_graph(n: int, p: float, seed: int) -> Graph:
    """Erdős–Rényi G(n, p): each pair is an edge independently with prob ``p``."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = random.Random(seed)
    builder = GraphBuilder(n)
    if p >= 0.2:
        # Dense regime: test every pair directly.
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < p:
                    builder.add_edge(u, v)
    elif p > 0.0:
        # Sparse regime: geometric skipping over the pair sequence.
        _gnp_sparse(builder, n, p, rng)
    return builder.build()


def gnm_graph(n: int, m: int, seed: int) -> Graph:
    """Uniform random graph with exactly ``m`` distinct edges."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise GraphError(f"{m} edges requested but only {max_edges} are possible")
    rng = random.Random(seed)
    builder = GraphBuilder(n)
    chosen: set[tuple[int, int]] = set()
    while len(chosen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key not in chosen:
            chosen.add(key)
            builder.add_edge(*key)
    return builder.build()


def connected_gnp_graph(n: int, p: float, seed: int) -> Graph:
    """G(n, p) made connected by linking consecutive components.

    The patch edges join a random node of each component to a random node
    of the next, which perturbs the degree sequence only slightly.
    """
    from repro.graphs.traversal import connected_components

    graph = gnp_graph(n, p, seed)
    components = connected_components(graph)
    if len(components) <= 1:
        return graph
    rng = random.Random(seed ^ 0x5EED)
    builder = GraphBuilder(n)
    builder.add_edges((u, v, w) for u, v, w in graph.edges())
    for first, second in zip(components, components[1:]):
        builder.add_edge(rng.choice(first), rng.choice(second))
    return builder.build()


def caveman_graph(n_caves: int, cave_size: int, rewire_prob: float, seed: int) -> Graph:
    """Connected caveman graph: cliques on a ring, with optional rewiring.

    A classic community-structure benchmark; with small caves it is a
    low-treewidth, highly clustered graph.
    """
    if n_caves < 1 or cave_size < 1:
        raise GraphError("cave count and size must be positive")
    rng = random.Random(seed)
    n = n_caves * cave_size
    builder = GraphBuilder(n)
    for cave in range(n_caves):
        base = cave * cave_size
        members = range(base, base + cave_size)
        builder.add_clique(members)
    # Ring edges between consecutive caves.
    for cave in range(n_caves):
        u = cave * cave_size
        v = ((cave + 1) % n_caves) * cave_size
        if u != v:
            builder.add_edge(u, v)
    graph = builder.build()
    if rewire_prob <= 0:
        return graph
    rewired = GraphBuilder(n)
    for u, v, w in graph.edges():
        if rng.random() < rewire_prob:
            v = rng.randrange(n)
            if v == u:
                continue
        rewired.add_edge(u, v, w)
    return rewired.build()


def random_weighted(graph: Graph, low: int, high: int, seed: int) -> Graph:
    """Copy ``graph`` with integer edge weights drawn uniformly from [low, high]."""
    if low < 1 or high < low:
        raise GraphError("weights must satisfy 1 <= low <= high")
    rng = random.Random(seed)
    builder = GraphBuilder(graph.n)
    for u, v, _ in graph.edges():
        builder.add_edge(u, v, rng.randint(low, high))
    return builder.build()


def random_tree(n: int, seed: int) -> Graph:
    """Uniform-ish random tree: node i attaches to a random earlier node."""
    rng = random.Random(seed)
    builder = GraphBuilder(n)
    for v in range(1, n):
        builder.add_edge(v, rng.randrange(v))
    return builder.build()


def _gnp_sparse(builder: GraphBuilder, n: int, p: float, rng: random.Random) -> None:
    """Sample G(n, p) edges by geometric jumps over the ordered pair list."""
    import math

    log_q = math.log(1.0 - p)
    v = 1
    w = -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            builder.add_edge(v, w)
