"""Shortest-path searches and connectivity on :class:`~repro.graphs.graph.Graph`.

These routines are the ground truth every index in the library is tested
against, and they double as the online-search baseline the paper's
indexes are designed to beat.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Iterable

from repro.graphs.graph import INF, Graph, Weight


def bfs_distances(graph: Graph, source: int) -> list[Weight]:
    """Hop distances from ``source`` to every node (INF when unreachable).

    Only valid on unweighted graphs; weighted callers should use
    :func:`dijkstra_distances`.
    """
    dist: list[Weight] = [INF] * graph.n
    dist[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        v = queue.popleft()
        next_dist = dist[v] + 1
        for u in graph.neighbor_ids(v):
            if dist[u] == INF:
                dist[u] = next_dist
                queue.append(u)
    return dist


def dijkstra_distances(graph: Graph, source: int) -> list[Weight]:
    """Weighted shortest-path distances from ``source`` to every node."""
    dist: list[Weight] = [INF] * graph.n
    dist[source] = 0
    heap: list[tuple[Weight, int]] = [(0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for u, w in graph.neighbors(v):
            nd = d + w
            if nd < dist[u]:
                dist[u] = nd
                heapq.heappush(heap, (nd, u))
    return dist


def single_source_distances(graph: Graph, source: int) -> list[Weight]:
    """Distances from ``source``, picking BFS or Dijkstra automatically."""
    if graph.unweighted:
        return bfs_distances(graph, source)
    return dijkstra_distances(graph, source)


def pairwise_distance(graph: Graph, s: int, t: int) -> Weight:
    """Exact distance between one pair of nodes.

    Runs a bidirectional search (BFS on unweighted graphs, Dijkstra
    otherwise); this is the online-search baseline for a single query.
    """
    if s == t:
        return 0
    if graph.unweighted:
        return _bidirectional_bfs(graph, s, t)
    return _bidirectional_dijkstra(graph, s, t)


def all_pairs_distances(graph: Graph) -> list[list[Weight]]:
    """Full distance matrix; intended for small graphs and ground truth."""
    return [single_source_distances(graph, v) for v in graph.nodes()]


def connected_components(graph: Graph) -> list[list[int]]:
    """Connected components, each a sorted node list, ordered by smallest node."""
    seen = [False] * graph.n
    components: list[list[int]] = []
    for start in graph.nodes():
        if seen[start]:
            continue
        seen[start] = True
        component = [start]
        queue: deque[int] = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.neighbor_ids(v):
                if not seen[u]:
                    seen[u] = True
                    component.append(u)
                    queue.append(u)
        components.append(sorted(component))
    return components


def is_connected(graph: Graph) -> bool:
    """True when the graph has at most one connected component."""
    if graph.n <= 1:
        return True
    return len(connected_components(graph)) == 1


def largest_component_subgraph(graph: Graph) -> tuple[Graph, list[int]]:
    """Induced subgraph on the largest connected component.

    Returns ``(subgraph, originals)`` like
    :meth:`Graph.induced_subgraph`; ties break toward the component with
    the smallest minimum node id.
    """
    components = connected_components(graph)
    if not components:
        return Graph.empty(0), []
    largest = max(components, key=len)
    return graph.induced_subgraph(largest)


def eccentricity(graph: Graph, source: int) -> Weight:
    """Largest finite distance from ``source`` (0 if isolated)."""
    finite = [d for d in single_source_distances(graph, source) if d != INF]
    return max(finite) if finite else 0


def distances_to_targets(graph: Graph, source: int, targets: Iterable[int]) -> dict[int, Weight]:
    """Distances from ``source`` to each node in ``targets``."""
    wanted = set(targets)
    dist = single_source_distances(graph, source)
    return {t: dist[t] for t in wanted}


def _bidirectional_bfs(graph: Graph, s: int, t: int) -> Weight:
    dist_s: dict[int, int] = {s: 0}
    dist_t: dict[int, int] = {t: 0}
    frontier_s: list[int] = [s]
    frontier_t: list[int] = [t]
    best = INF
    while frontier_s and frontier_t:
        # Expand the smaller frontier for balance.
        if len(frontier_s) <= len(frontier_t):
            frontier, dist_here, dist_other = frontier_s, dist_s, dist_t
            forward = True
        else:
            frontier, dist_here, dist_other = frontier_t, dist_t, dist_s
            forward = False
        next_frontier: list[int] = []
        for v in frontier:
            base = dist_here[v] + 1
            for u in graph.neighbor_ids(v):
                if u not in dist_here:
                    dist_here[u] = base
                    next_frontier.append(u)
                    if u in dist_other:
                        best = min(best, base + dist_other[u])
        if forward:
            frontier_s = next_frontier
        else:
            frontier_t = next_frontier
        # A path not yet discovered must cross both frontiers, so it is at
        # least as long as the sum of the two search radii; once that sum
        # reaches the best meeting distance, the answer is final.
        radius_sum = _frontier_depth(dist_s, frontier_s) + _frontier_depth(dist_t, frontier_t)
        if best != INF and frontier_s and frontier_t and radius_sum >= best:
            return best
    return best


def _frontier_depth(dist: dict[int, int], frontier: list[int]) -> int:
    if not frontier:
        return 0
    return dist[frontier[0]]


def _bidirectional_dijkstra(graph: Graph, s: int, t: int) -> Weight:
    dist_s: dict[int, Weight] = {s: 0}
    dist_t: dict[int, Weight] = {t: 0}
    heap_s: list[tuple[Weight, int]] = [(0, s)]
    heap_t: list[tuple[Weight, int]] = [(0, t)]
    settled_s: set[int] = set()
    settled_t: set[int] = set()
    best = INF
    while heap_s and heap_t:
        if heap_s[0][0] + heap_t[0][0] >= best:
            break
        if heap_s[0][0] <= heap_t[0][0]:
            best = _dijkstra_step(graph, heap_s, dist_s, settled_s, dist_t, best)
        else:
            best = _dijkstra_step(graph, heap_t, dist_t, settled_t, dist_s, best)
    return best


def _dijkstra_step(
    graph: Graph,
    heap: list[tuple[Weight, int]],
    dist_here: dict[int, Weight],
    settled: set[int],
    dist_other: dict[int, Weight],
    best: Weight,
) -> Weight:
    d, v = heapq.heappop(heap)
    if v in settled:
        return best
    settled.add(v)
    for u, w in graph.neighbors(v):
        nd = d + w
        if nd < dist_here.get(u, INF):
            dist_here[u] = nd
            heapq.heappush(heap, (nd, u))
        if u in dist_other:
            best = min(best, nd + dist_other[u])
    return best
