"""Background re-indexing for :class:`~repro.dynamic.DeltaOverlayIndex`.

The overlay keeps answers exact while its patch grows, but every patched
query pays for touched-vertex searches.  :class:`BackgroundReindexer`
drains the patch: it snapshots the current graph, rebuilds a fresh
CT-Index through :mod:`repro.parallel` workers, **verifies** the result
(canonical :func:`~repro.core.serialization.index_fingerprint`, plus a
deterministic sample of answers checked against BFS/Dijkstra ground
truth on the snapshot graph), and only then hot-swaps it under the live
overlay — replaying any mutations that landed mid-build.  A serving
process keeps answering, correctly, across the whole cycle.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
import zlib
from dataclasses import dataclass, field

from repro.core.ct_index import CTIndex
from repro.core.serialization import index_fingerprint
from repro.dynamic.overlay import DeltaOverlayIndex
from repro.exceptions import ConfigurationError, DynamicUpdateError, ReproError
from repro.graphs.traversal import single_source_distances


@dataclass(frozen=True)
class RebuildResult:
    """Outcome of one :meth:`BackgroundReindexer.rebuild_once` cycle."""

    swapped: bool
    reason: str
    seq: int = 0
    replayed_ops: int = 0
    fingerprint_sha256: str = ""
    build_seconds: float = 0.0
    verified_pairs: int = 0
    n: int = 0
    m: int = 0

    def summary(self) -> dict:
        """Plain-data form for status endpoints and audit records."""
        return {
            "swapped": self.swapped,
            "reason": self.reason,
            "seq": self.seq,
            "replayed_ops": self.replayed_ops,
            "fingerprint_sha256": self.fingerprint_sha256,
            "build_seconds": round(self.build_seconds, 6),
            "verified_pairs": self.verified_pairs,
            "n": self.n,
            "m": self.m,
        }


@dataclass
class _ReindexerState:
    """Mutable counters shared between the worker thread and observers."""

    rebuilds_completed: int = 0
    rebuilds_skipped: int = 0
    rebuild_errors: int = 0
    last_result: RebuildResult | None = None
    last_error: str | None = None
    lock: threading.Lock = field(default_factory=threading.Lock)
    done: threading.Condition = field(init=False)

    def __post_init__(self) -> None:
        self.done = threading.Condition(self.lock)


class BackgroundReindexer:
    """Rebuild-verify-swap driver over one overlay.

    Use it synchronously (:meth:`rebuild_once`) or as a daemon thread
    (:meth:`start` / :meth:`request_rebuild` / :meth:`stop`) that wakes
    on demand — or automatically once the overlay's pending-mutation
    count reaches ``auto_threshold``.

    Parameters
    ----------
    overlay:
        The live :class:`DeltaOverlayIndex` to drain.
    bandwidth:
        CT-Index bandwidth for rebuilds; defaults to the current base's
        ``bandwidth`` (required when the base does not carry one).
    workers:
        Forwarded to :meth:`CTIndex.build` (``None`` serial, ``0`` one
        worker per CPU — see :mod:`repro.parallel`).
    backend:
        Label storage for rebuilt indexes; defaults to the current
        base's ``storage_backend``.
    verify_samples:
        Number of deterministically sampled ``(s, t)`` pairs checked
        against ground truth before a swap is allowed (0 disables the
        sample check; the fingerprint is always recorded).
    expected_fingerprint:
        Optional SHA-256 hex digest every rebuild must match (useful
        when an out-of-band build of the same snapshot is the
        authority); mismatch aborts the swap.
    auto_threshold:
        When set, :meth:`maybe_trigger` (and the background loop)
        request a rebuild once ``pending_since_swap`` reaches it.
    """

    def __init__(
        self,
        overlay: DeltaOverlayIndex,
        *,
        bandwidth: int | None = None,
        workers: int | None = None,
        backend: str | None = None,
        verify_samples: int = 48,
        expected_fingerprint: str | None = None,
        auto_threshold: int | None = None,
        poll_interval: float = 0.05,
    ) -> None:
        if bandwidth is None:
            bandwidth = getattr(overlay.base, "bandwidth", None)
        if bandwidth is None:
            raise ConfigurationError(
                "bandwidth= is required when the overlay's base index "
                "does not expose one"
            )
        if verify_samples < 0:
            raise ConfigurationError(
                f"verify_samples must be non-negative, got {verify_samples}"
            )
        if auto_threshold is not None and auto_threshold < 1:
            raise ConfigurationError(
                f"auto_threshold must be positive, got {auto_threshold}"
            )
        self.overlay = overlay
        self.bandwidth = bandwidth
        self.workers = workers
        self.backend = backend or getattr(overlay.base, "storage_backend", "dict")
        self.verify_samples = verify_samples
        self.expected_fingerprint = expected_fingerprint
        self.auto_threshold = auto_threshold
        self.poll_interval = poll_interval
        self._state = _ReindexerState()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Synchronous cycle
    # ------------------------------------------------------------------

    def rebuild_once(self, *, force: bool = False) -> RebuildResult:
        """Snapshot, rebuild, verify, swap — one full cycle.

        With an empty patch (and no ``force``) the cycle is skipped:
        the base already answers for the current graph.  Raises
        :class:`~repro.exceptions.DynamicUpdateError` when verification
        fails — the overlay is left untouched in that case.
        """
        overlay = self.overlay
        if not force and overlay.patch_size == 0:
            result = RebuildResult(swapped=False, reason="empty_patch")
            self._record(result)
            return result
        snap = overlay.snapshot()
        started = time.perf_counter()
        new_index = CTIndex.build(
            snap.graph,
            self.bandwidth,
            workers=self.workers,
            backend=self.backend,
        )
        build_seconds = time.perf_counter() - started
        fingerprint = index_fingerprint(new_index)
        sha = hashlib.sha256(fingerprint).hexdigest()
        if (
            self.expected_fingerprint is not None
            and sha != self.expected_fingerprint
        ):
            raise DynamicUpdateError(
                f"rebuild fingerprint {sha[:12]}… does not match the "
                f"expected {self.expected_fingerprint[:12]}…; swap aborted"
            )
        verified = self._verify_answers(new_index, snap.graph, fingerprint)
        replayed = overlay.swap_base(new_index, snap)
        result = RebuildResult(
            swapped=True,
            reason="swapped",
            seq=snap.seq,
            replayed_ops=replayed,
            fingerprint_sha256=sha,
            build_seconds=build_seconds,
            verified_pairs=verified,
            n=snap.graph.n,
            m=snap.graph.m,
        )
        self._record(result)
        return result

    def _verify_answers(self, index: CTIndex, graph, fingerprint: bytes) -> int:
        """Check a deterministic pair sample against ground truth.

        The RNG is seeded from the fingerprint itself, so reruns of the
        same build verify the same pairs — a failing sample is a
        reproducible counterexample, not a flake.
        """
        if self.verify_samples == 0 or graph.n == 0:
            return 0
        rng = random.Random(zlib.crc32(fingerprint))
        pairs = [
            (rng.randrange(graph.n), rng.randrange(graph.n))
            for _ in range(self.verify_samples)
        ]
        truth_cache: dict[int, list] = {}
        for s, t in pairs:
            truth = truth_cache.get(s)
            if truth is None:
                truth = truth_cache[s] = single_source_distances(graph, s)
            got = index.distance(s, t)
            if got != truth[t]:
                raise DynamicUpdateError(
                    f"rebuild verification failed: distance({s}, {t}) = "
                    f"{got!r}, ground truth {truth[t]!r}; swap aborted"
                )
        return len(pairs)

    # ------------------------------------------------------------------
    # Background thread
    # ------------------------------------------------------------------

    def start(self) -> "BackgroundReindexer":
        """Launch the daemon worker thread (idempotent); returns self."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-reindexer", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Signal the worker to exit and join it."""
        self._stop.set()
        self._wake.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None

    def request_rebuild(self) -> None:
        """Ask the worker thread for a cycle at its next wakeup."""
        self._wake.set()

    def maybe_trigger(self) -> bool:
        """Request a rebuild when the auto threshold is reached."""
        if self._auto_due():
            self.request_rebuild()
            return True
        return False

    def wait_for_cycle(self, baseline: int, timeout: float = 30.0) -> bool:
        """Block until the completed+skipped cycle count exceeds
        ``baseline`` (pair with :meth:`cycles` before the trigger)."""
        deadline = time.monotonic() + timeout
        with self._state.done:
            while self.cycles() <= baseline:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._state.done.wait(remaining)
        return True

    def cycles(self) -> int:
        """Total cycles recorded so far (swaps, skips, and errors)."""
        state = self._state
        return (
            state.rebuilds_completed
            + state.rebuilds_skipped
            + state.rebuild_errors
        )

    def status(self) -> dict:
        """Plain-data snapshot for stats endpoints."""
        state = self._state
        with state.lock:
            last = state.last_result
            return {
                "running": self._thread is not None and self._thread.is_alive(),
                "auto_threshold": self.auto_threshold,
                "rebuilds_completed": state.rebuilds_completed,
                "rebuilds_skipped": state.rebuilds_skipped,
                "rebuild_errors": state.rebuild_errors,
                "pending_since_swap": self.overlay.overlay_stats()[
                    "pending_since_swap"
                ],
                "last_result": None if last is None else last.summary(),
                "last_error": state.last_error,
            }

    def _auto_due(self) -> bool:
        if self.auto_threshold is None:
            return False
        return (
            self.overlay.overlay_stats()["pending_since_swap"]
            >= self.auto_threshold
        )

    def _run(self) -> None:
        while not self._stop.is_set():
            triggered = self._wake.wait(self.poll_interval)
            if self._stop.is_set():
                return
            if not triggered and not self._auto_due():
                continue
            self._wake.clear()
            try:
                self.rebuild_once()
            except ReproError as exc:
                with self._state.done:
                    self._state.rebuild_errors += 1
                    self._state.last_error = f"{type(exc).__name__}: {exc}"
                    self._state.done.notify_all()

    def _record(self, result: RebuildResult) -> None:
        with self._state.done:
            if result.swapped:
                self._state.rebuilds_completed += 1
            else:
                self._state.rebuilds_skipped += 1
            self._state.last_result = result
            self._state.last_error = None
            self._state.done.notify_all()


__all__ = ["BackgroundReindexer", "RebuildResult"]
