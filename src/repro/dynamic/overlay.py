"""Exact distance answering over a mutating graph: the delta overlay.

The paper's CT-Index is strictly static — any edge change invalidates
the labels.  :class:`DeltaOverlayIndex` wraps a built
:class:`~repro.labeling.base.DistanceIndex` and absorbs
``add_edge`` / ``remove_edge`` into a small *patch* consulted at query
time, keeping every answer exact on the **current** graph while a
background rebuild (:mod:`repro.dynamic.rebuild`) catches up.

Correctness model
-----------------
Let ``G0`` be the graph the base index answers for and ``G`` the current
graph (``G0`` plus the patch).  Every mutated endpoint is *touched*.
For a query ``(s, t)`` the overlay computes

* ``through`` — the best path through any touched vertex ``x``:
  ``min over x of d_G(x, s) + d_G(x, t)``, using exact single-source
  distances on ``G`` from each touched vertex (computed lazily, cached
  per mutation epoch).  By the triangle inequality ``through >=
  d_G(s, t)``, and any shortest path that crosses a touched vertex
  realizes it exactly.
* ``base_d = base.distance(s, t)`` — exact on ``G0``.

A shortest path in ``G`` either crosses a touched vertex (then
``through`` equals it) or avoids every touched vertex — in which case it
uses no patch edge and no removed edge, so it is a path of ``G0`` and
costs at least ``base_d``.  Hence ``d_G(s, t) >= min(base_d, through)``
and the three-way dispatch is exact:

1. ``base_d >= through`` — answer ``through``.
2. ``base_d < through`` and the deletion certificate holds (no
   *lossy* removed edge — truly deleted or weight-increased — lies on
   any ``G0``-shortest ``s``–``t`` path, checked per removed edge via
   ``d0(s,a) + w + d0(b,t) > base_d`` on both orientations) — then some
   ``G0``-shortest path survives unchanged in ``G`` and ``base_d`` is
   the answer.
3. Otherwise a bounded Dijkstra on ``G`` from ``s``, pruned at
   ``through`` (a valid upper bound), settles the query exactly.

Weight changes are modeled as a removal plus an insertion, so a weight
*increase* is lossy (case 2's certificate catches it) while a weight
*decrease* keeps every base path a valid upper bound and only ever
improves answers through its (touched) endpoints.

Concurrency
-----------
All state is guarded by one reentrant lock.  Batch queries take the
lock **per item**, so a fingerprint-verified :meth:`swap_base` — which
replays the mutation-log tail onto the fresh base — can interleave with
an in-flight batch; the swap is answer-preserving, so every interleaving
returns exact answers.  ``mutation_epoch`` increments on every effective
mutation (and **not** on swaps), giving outer caches such as
:class:`~repro.caching.CachedDistanceIndex` a cheap invalidation signal.
"""

from __future__ import annotations

import heapq
import threading
from collections.abc import Iterable
from dataclasses import dataclass

from repro.exceptions import DynamicUpdateError, GraphError, QueryError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import INF, Graph, Weight
from repro.labeling.base import DistanceIndex

#: Mutation-log entry kinds.
OP_ADD = "add"
OP_REMOVE = "remove"

#: A mutation-log entry: ``(op, u, v, weight)`` with ``u < v``;
#: ``weight`` is ``None`` for removals.
MutationOp = tuple[str, int, int, "Weight | None"]


@dataclass(frozen=True)
class OverlaySnapshot:
    """A consistent point-in-time view handed to the re-indexer.

    ``seq`` is the absolute mutation-log position the snapshot was taken
    at, ``token`` the swap generation (a snapshot taken before an
    intervening swap is stale), and ``graph`` the fully materialized
    current graph to rebuild from.
    """

    seq: int
    token: int
    graph: Graph


class DeltaOverlayIndex(DistanceIndex):
    """Exact distance oracle over ``base`` plus a mutable edge patch.

    Parameters
    ----------
    base:
        A built index for the starting graph.  Any backend/kernel works;
        the overlay only calls the ``DistanceIndex`` query protocol.
    graph:
        The graph ``base`` was built on.  Defaults to ``base.graph``
        (present on :class:`~repro.core.ct_index.CTIndex`); required for
        bases that do not carry their graph.
    """

    def __init__(self, base: DistanceIndex, graph: Graph | None = None) -> None:
        if graph is None:
            graph = getattr(base, "graph", None)
        if not isinstance(graph, Graph):
            raise DynamicUpdateError(
                f"{type(base).__name__} does not expose .graph; "
                f"pass the base graph explicitly"
            )
        self.base = base
        self.base_graph = graph
        self.method_name = f"overlay({base.method_name})"
        self._lock = threading.RLock()
        # Patch state.  Invariant: a key in both maps is a weight change
        # (``_added`` holds the new weight, ``_removed`` the base one);
        # a key only in ``_added`` is a brand-new edge; only in
        # ``_removed``, a deleted base edge.
        self._added: dict[tuple[int, int], Weight] = {}
        self._removed: dict[tuple[int, int], Weight] = {}
        self._patch_adj: dict[int, dict[int, Weight]] = {}
        self._touched: set[int] = set()
        self._log: list[MutationOp] = []
        self._log_offset = 0
        self._sssp: dict[int, list[Weight]] = {}
        #: Bumped on every effective mutation; outer caches watch this.
        self.mutation_epoch = 0
        #: Bumped on every completed base swap (staleness token).
        self.swap_count = 0
        # Answer-path counters for overlay_stats().
        self._base_answers = 0
        self._through_answers = 0
        self._certified_answers = 0
        self._fallback_searches = 0

    # ------------------------------------------------------------------
    # Mutation API
    # ------------------------------------------------------------------

    def add_edge(self, u: int, v: int, weight: Weight = 1) -> bool:
        """Insert edge ``{u, v}`` (or change its weight) in the patch.

        Returns ``True`` when the graph changed, ``False`` for a no-op
        (the edge already has exactly that weight).  Raises
        :class:`~repro.exceptions.GraphError` on out-of-range nodes,
        self-loops, or non-positive weights — the same contract as
        :class:`~repro.graphs.builder.GraphBuilder`, minus its silent
        normalization.
        """
        self._check_mutation_nodes(u, v)
        if u == v:
            raise GraphError(f"self-loop on node {u} is not a valid edge")
        if weight <= 0:
            raise GraphError(f"edge ({u}, {v}) has non-positive weight {weight}")
        key = (u, v) if u < v else (v, u)
        with self._lock:
            if self._current_weight(key) == weight:
                return False
            base_w = self._base_weight(key)
            if base_w == weight:
                # Reverting to exactly the base edge: drop the patch entry.
                self._added.pop(key, None)
                self._removed.pop(key, None)
                self._patch_adj_remove(key)
            else:
                self._added[key] = weight
                if base_w is not None:
                    self._removed[key] = base_w
                self._patch_adj_set(key, weight)
            self._touched.update(key)
            self._log.append((OP_ADD, key[0], key[1], weight))
            self._after_mutation()
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``{u, v}`` from the current graph.

        Raises :class:`~repro.exceptions.GraphError` when the edge does
        not currently exist (matching :meth:`Graph.edge_weight`).
        """
        self._check_mutation_nodes(u, v)
        key = (u, v) if u < v else (v, u)
        with self._lock:
            if self._current_weight(key) is None:
                raise GraphError(f"edge ({u}, {v}) does not exist")
            base_w = self._base_weight(key)
            self._added.pop(key, None)
            self._patch_adj_remove(key)
            if base_w is not None:
                self._removed[key] = base_w
            self._touched.update(key)
            self._log.append((OP_REMOVE, key[0], key[1], None))
            self._after_mutation()

    def apply(self, ops: Iterable[MutationOp]) -> int:
        """Apply a stream of ``(op, u, v, w)`` tuples; returns the
        number of *effective* mutations."""
        effective = 0
        for op in ops:
            kind, u, v, w = op
            if kind == OP_ADD:
                if self.add_edge(u, v, 1 if w is None else w):
                    effective += 1
            elif kind == OP_REMOVE:
                self.remove_edge(u, v)
                effective += 1
            else:
                raise DynamicUpdateError(f"unknown mutation op {kind!r}")
        return effective

    def _after_mutation(self) -> None:
        self.mutation_epoch += 1
        self._sssp.clear()
        if not self._added and not self._removed:
            # Patch drained back to the base graph: every touched-vertex
            # candidate is moot and the base answers alone are exact.
            self._touched.clear()

    # ------------------------------------------------------------------
    # Query API (DistanceIndex protocol)
    # ------------------------------------------------------------------

    def distance(self, s: int, t: int) -> Weight:
        """Exact distance on the *current* graph."""
        n = self.base_graph.n
        if not 0 <= s < n or not 0 <= t < n:
            raise QueryError(f"query nodes ({s}, {t}) out of range")
        if s == t:
            return 0
        with self._lock:
            if not self._added and not self._removed:
                self._base_answers += 1
                return self.base.distance(s, t)
            through = INF
            for x in self._touched:
                vec = self._sssp_from(x)
                candidate = vec[s] + vec[t]
                if candidate < through:
                    through = candidate
            base_d = self.base.distance(s, t)
            if base_d >= through:
                self._through_answers += 1
                return through
            if self._deletion_certificate(s, t, base_d):
                self._certified_answers += 1
                return base_d
            self._fallback_searches += 1
            return min(self._bounded_search(s, t, through), through)

    def distances_from(self, s: int, targets: Iterable[int]) -> list[Weight]:
        targets = list(targets)
        with self._lock:
            if not self._added and not self._removed:
                return self.base.distances_from(s, targets)
        # Per-item locking: a base swap may interleave mid-batch; swaps
        # are answer-preserving so every item is still exact.
        return [self.distance(s, t) for t in targets]

    def distances_batch(self, pairs: Iterable[tuple[int, int]]) -> list[Weight]:
        pairs = list(pairs)
        with self._lock:
            if not self._added and not self._removed:
                return self.base.distances_batch(pairs)
        return [self.distance(s, t) for s, t in pairs]

    def size_entries(self) -> int:
        """Base entries plus one modeled entry per patch record."""
        return self.base.size_entries() + len(self._added) + len(self._removed)

    # ------------------------------------------------------------------
    # Kernel passthrough (QueryEngine duck-typing)
    # ------------------------------------------------------------------

    @property
    def kernel(self) -> str:
        """The base index's resolved query kernel."""
        return getattr(self.base, "kernel", "python")

    def set_kernel(self, kernel: str = "auto"):
        """Forward kernel selection to the base index; returns ``self``."""
        set_kernel = getattr(self.base, "set_kernel", None)
        if set_kernel is not None:
            set_kernel(kernel)
        elif kernel == "numpy":
            from repro.exceptions import ConfigurationError

            raise ConfigurationError(
                f"kernel='numpy' requested but {type(self.base).__name__} "
                f"has no query-kernel support"
            )
        return self

    # ------------------------------------------------------------------
    # Snapshot / hot swap
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Node count (fixed: mutations change edges, not vertices)."""
        return self.base_graph.n

    @property
    def patch_size(self) -> int:
        """Number of live patch records (added + removed entries)."""
        return len(self._added) + len(self._removed)

    @property
    def log_length(self) -> int:
        """Absolute mutation-log position (monotone across swaps)."""
        with self._lock:
            return self._log_offset + len(self._log)

    def materialize_current(self) -> Graph:
        """The current graph as a fresh immutable :class:`Graph`."""
        with self._lock:
            builder = GraphBuilder(self.base_graph.n)
            for u, v, w in self.base_graph.edges():
                if (u, v) not in self._removed:
                    builder.add_edge(u, v, w)
            for (u, v), w in self._added.items():
                builder.add_edge(u, v, w)
            return builder.build()

    def snapshot(self) -> OverlaySnapshot:
        """Atomically capture ``(seq, token, current graph)`` for a rebuild."""
        with self._lock:
            return OverlaySnapshot(
                seq=self._log_offset + len(self._log),
                token=self.swap_count,
                graph=self.materialize_current(),
            )

    def swap_base(
        self,
        new_index: DistanceIndex,
        snapshot: OverlaySnapshot,
        *,
        expected_graph: Graph | None = None,
    ) -> int:
        """Atomically replace the base with ``new_index`` (built from
        ``snapshot``), replaying mutations that landed since.

        The swap is answer-neutral: the current graph — and therefore
        every query answer — is identical before and after, only the
        patch shrinks to the post-snapshot tail.  ``mutation_epoch`` is
        deliberately **not** bumped (outer caches stay valid);
        ``swap_count`` is.  Returns the number of replayed tail ops.

        Raises :class:`~repro.exceptions.DynamicUpdateError` when the
        snapshot is stale (an intervening swap) or the new base's graph
        does not match the snapshot graph.
        """
        verify_graph = expected_graph if expected_graph is not None else snapshot.graph
        new_graph = getattr(new_index, "graph", None)
        if isinstance(new_graph, Graph) and new_graph != verify_graph:
            raise DynamicUpdateError(
                "swap rejected: new index was not built on the snapshot graph"
            )
        with self._lock:
            if snapshot.token != self.swap_count:
                raise DynamicUpdateError(
                    f"swap rejected: snapshot token {snapshot.token} is stale "
                    f"(current swap generation {self.swap_count})"
                )
            tail_start = snapshot.seq - self._log_offset
            if not 0 <= tail_start <= len(self._log):
                raise DynamicUpdateError(
                    f"swap rejected: snapshot seq {snapshot.seq} is outside "
                    f"the retained log"
                )
            tail = self._log[tail_start:]
            saved_epoch = self.mutation_epoch
            self.base = new_index
            self.base_graph = verify_graph
            self.method_name = f"overlay({new_index.method_name})"
            self._added.clear()
            self._removed.clear()
            self._patch_adj.clear()
            self._touched.clear()
            self._sssp.clear()
            self._log = []
            self._log_offset = snapshot.seq
            for kind, u, v, w in tail:
                # Replays re-enter the public mutators; their log/epoch
                # effects are rolled back below so the swap stays
                # invisible to epoch watchers.
                if kind == OP_ADD:
                    self.add_edge(u, v, w)
                else:
                    self.remove_edge(u, v)
            self._log = list(tail)
            self.mutation_epoch = saved_epoch
            self.swap_count += 1
            return len(tail)

    def overlay_stats(self) -> dict:
        """Plain-data counters for stats endpoints and the bench."""
        with self._lock:
            return {
                "patch_added": len(self._added),
                "patch_removed": len(self._removed),
                "touched_vertices": len(self._touched),
                "log_length": self._log_offset + len(self._log),
                "pending_since_swap": len(self._log),
                "mutation_epoch": self.mutation_epoch,
                "swap_count": self.swap_count,
                "answers": {
                    "base": self._base_answers,
                    "through": self._through_answers,
                    "certified": self._certified_answers,
                    "fallback": self._fallback_searches,
                },
            }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_mutation_nodes(self, u: int, v: int) -> None:
        n = self.base_graph.n
        if not 0 <= u < n or not 0 <= v < n:
            raise GraphError(f"edge ({u}, {v}) has a node outside 0..{n - 1}")

    def _base_weight(self, key: tuple[int, int]) -> Weight | None:
        """Weight of ``key`` in the base graph, or None when absent."""
        masked = self._removed.get(key)
        if masked is not None:
            return masked
        u, v = key
        if self.base_graph.has_edge(u, v):
            return self.base_graph.edge_weight(u, v)
        return None

    def _current_weight(self, key: tuple[int, int]) -> Weight | None:
        """Weight of ``key`` in the current graph, or None when absent."""
        added = self._added.get(key)
        if added is not None:
            return added
        if key in self._removed:
            return None
        u, v = key
        if self.base_graph.has_edge(u, v):
            return self.base_graph.edge_weight(u, v)
        return None

    def _patch_adj_set(self, key: tuple[int, int], weight: Weight) -> None:
        u, v = key
        self._patch_adj.setdefault(u, {})[v] = weight
        self._patch_adj.setdefault(v, {})[u] = weight

    def _patch_adj_remove(self, key: tuple[int, int]) -> None:
        u, v = key
        for a, b in ((u, v), (v, u)):
            row = self._patch_adj.get(a)
            if row is not None:
                row.pop(b, None)
                if not row:
                    del self._patch_adj[a]

    def _current_neighbors(self, v: int):
        """Yield ``(neighbor, weight)`` on the current graph."""
        graph = self.base_graph
        removed = self._removed
        if removed:
            for u, w in graph.neighbors(v):
                if ((u, v) if u < v else (v, u)) not in removed:
                    yield u, w
        else:
            yield from graph.neighbors(v)
        row = self._patch_adj.get(v)
        if row:
            yield from row.items()

    def _sssp_from(self, source: int) -> list[Weight]:
        """Exact distances from ``source`` on the current graph (cached
        until the next mutation)."""
        vec = self._sssp.get(source)
        if vec is not None:
            return vec
        dist: list[Weight] = [INF] * self.base_graph.n
        dist[source] = 0
        heap: list[tuple[Weight, int]] = [(0, source)]
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist[v]:
                continue
            for u, w in self._current_neighbors(v):
                nd = d + w
                if nd < dist[u]:
                    dist[u] = nd
                    heapq.heappush(heap, (nd, u))
        self._sssp[source] = dist
        return dist

    def _deletion_certificate(self, s: int, t: int, base_d: Weight) -> bool:
        """True when no lossy removed edge can lie on a base-shortest
        ``s``–``t`` path, so ``base_d`` survives into the current graph."""
        if base_d == INF:
            # No base path at all; nothing to certify (and ``through``
            # already covered every patched path).
            return True
        base = self.base
        for (a, b), w in self._removed.items():
            new_w = self._added.get((a, b))
            if new_w is not None and new_w <= w:
                continue  # weight decrease: base paths only improve
            if (
                base.distance(s, a) + w + base.distance(b, t) <= base_d
                or base.distance(s, b) + w + base.distance(a, t) <= base_d
            ):
                return False
        return True

    def _bounded_search(self, s: int, t: int, bound: Weight) -> Weight:
        """Dijkstra on the current graph from ``s``, pruned at ``bound``."""
        dist: dict[int, Weight] = {s: 0}
        heap: list[tuple[Weight, int]] = [(0, s)]
        while heap:
            d, v = heapq.heappop(heap)
            if v == t:
                return d
            if d > dist.get(v, INF):
                continue
            for u, w in self._current_neighbors(v):
                nd = d + w
                if nd > bound:
                    continue
                if nd < dist.get(u, INF):
                    dist[u] = nd
                    heapq.heappush(heap, (nd, u))
        return dist.get(t, INF)


__all__ = [
    "DeltaOverlayIndex",
    "MutationOp",
    "OP_ADD",
    "OP_REMOVE",
    "OverlaySnapshot",
]
