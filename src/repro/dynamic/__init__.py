"""Dynamic graphs: exact answers under edge mutation, without a full rebuild.

Experimental tier.  :class:`DeltaOverlayIndex` wraps any built
:class:`~repro.labeling.base.DistanceIndex` and absorbs edge
insertions/deletions into a patch consulted at query time — answers
stay exact on the current graph (see :mod:`repro.dynamic.overlay` for
the correctness model).  :class:`BackgroundReindexer` drains the patch
by rebuilding through :mod:`repro.parallel` workers and hot-swapping
the verified fresh index under the live overlay.

The module is deliberately *not* re-exported from the stable
:mod:`repro` root: the API may still move while the tier matures.
"""

from repro.dynamic.overlay import (
    OP_ADD,
    OP_REMOVE,
    DeltaOverlayIndex,
    MutationOp,
    OverlaySnapshot,
)
from repro.dynamic.rebuild import BackgroundReindexer, RebuildResult

__all__ = [
    "BackgroundReindexer",
    "DeltaOverlayIndex",
    "MutationOp",
    "OP_ADD",
    "OP_REMOVE",
    "OverlaySnapshot",
    "RebuildResult",
]
